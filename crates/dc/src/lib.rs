//! # archetype-dc — the one-deep divide-and-conquer archetype
//!
//! Implementation of §2 of Massingill & Chandy, "Parallel Program
//! Archetypes" (IPPS 1999): the **one-deep divide-and-conquer** archetype —
//! a single level of split → solve → merge across `N` processes — together
//! with the **traditional recursive** divide-and-conquer baseline it is
//! compared against in the paper's Figure 6, and the paper's applications:
//!
//! | Application | Split | Merge | Paper section |
//! |---|---|---|---|
//! | [`mergesort::OneDeepMergesort`] | degenerate | splitters + redistribution + local merge | §2.4 |
//! | [`quicksort::OneDeepQuicksort`] | pivots + redistribution | degenerate (concatenation) | §2.5.2 |
//! | [`skyline::OneDeepSkyline`] | degenerate | vertical cut lines + redistribution + skyline merge | §2.5.1 |
//! | [`hull::OneDeepHull`] | x-slab partition | candidate exchange + final hull | §2.5 (named) |
//! | [`closest::OneDeepClosest`] | x-slab partition | δ-strip exchange + cross-pair check | §2.5 (named) |
//!
//! Every algorithm is expressed once against the [`skeleton::OneDeep`]
//! trait and can be executed three ways with identical results (the
//! paper's semantics-preservation property):
//!
//! 1. [`skeleton::run_shared`] with [`archetype_core::ExecutionMode::Sequential`] —
//!    the debuggable "version 1" run as plain loops;
//! 2. [`skeleton::run_shared`] with `ExecutionMode::Parallel` — version 1
//!    on the rayon thread pool;
//! 3. [`skeleton::run_spmd`] inside [`archetype_mp::run_spmd`] — the
//!    distributed-memory "version 2" with all-to-all redistribution,
//!    costed against the virtual clock for speedup studies.
//!
//! The crate also implements the **general recursive** form of the
//! archetype ([`recursive`]): a [`recursive::Recursive`] problem divides
//! into `k` subproblems per level and descends a tree of nested
//! [`archetype_mp::Group`] subcommunicators until a
//! performance-model-chosen cutoff ([`perfmodel::recursion_policy`]),
//! solving sequentially at the leaves and merging up a combining tree —
//! executed by [`recursive::run_shared`] on shared memory and
//! [`recursive::run_spmd_recursive`] over the substrate.
//! [`mergesort::RecursiveMergesort`], [`quicksort::RecursiveQuicksort`],
//! and [`closest::RecursiveClosest`] port the applications onto it, with
//! their one-deep and sequential versions kept as oracles.

pub mod closest;
pub mod geometry;
pub mod hull;
pub mod mergesort;
pub mod perfmodel;
pub mod quicksort;
pub mod recursive;
pub mod skeleton;
pub mod skyline;
pub mod traditional;

pub use closest::{global_closest, sequential_closest, OneDeepClosest, RecursiveClosest};
pub use geometry::{Building, Point, SkyPoint};
pub use hull::{convex_hull, OneDeepHull};
pub use mergesort::{sequential_mergesort, OneDeepMergesort, RecursiveMergesort};
pub use quicksort::{OneDeepQuicksort, RecursiveQuicksort};
pub use recursive::{
    run_shared as run_shared_recursive, run_spmd_recursive, CutoffPolicy, Recursive,
};
pub use skeleton::{run_shared, run_spmd, OneDeep};
pub use skyline::{concat_skyline, sequential_skyline, OneDeepSkyline};
pub use traditional::{
    run_fork_join, tree_mergesort_distributed_spmd, tree_mergesort_spmd, ForkJoin,
};
