//! Closest pair of points — the other problem the paper names as amenable
//! to one-deep solutions ("finding the two nearest neighbors in a set of
//! points in a plane", §2.5).
//!
//! One-deep structure: a non-trivial **split** partitions the points into
//! `N` vertical slabs (sampled splitters, as in the hull); the **solve**
//! finds each slab's closest-pair distance with the classic sequential
//! divide-and-conquer algorithm; the **merge** computes the global
//! candidate distance `δ = min_i d_i`, and each process sends every other
//! process the points lying within `δ` of that process's x-extent, so any
//! cross-slab pair closer than `δ` is examined by the slab that owns one of
//! its endpoints. Each process returns the minimum of its local distance
//! and its cross-pair distances; the global answer is the minimum over
//! processes (see [`global_closest`]).

use archetype_mp::Payload;

use crate::geometry::{cmp_xy, Point};
use crate::skeleton::OneDeep;

/// Brute-force closest distance, `O(n²)`; the oracle for tests and the
/// base case of the divide-and-conquer solve.
pub fn brute_force_closest(pts: &[Point]) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..pts.len() {
        for j in i + 1..pts.len() {
            best = best.min(pts[i].dist(&pts[j]));
        }
    }
    best
}

fn closest_rec(pts: &[Point]) -> f64 {
    let n = pts.len();
    if n <= 3 {
        return brute_force_closest(pts);
    }
    let mid = n / 2;
    let midx = pts[mid].x;
    let d = closest_rec(&pts[..mid]).min(closest_rec(&pts[mid..]));
    // Strip around the dividing line, checked in y-order.
    let mut strip: Vec<Point> = pts
        .iter()
        .copied()
        .filter(|p| (p.x - midx).abs() < d)
        .collect();
    strip.sort_by(|a, b| a.y.partial_cmp(&b.y).expect("non-NaN"));
    let mut best = d;
    for i in 0..strip.len() {
        for j in i + 1..strip.len() {
            if strip[j].y - strip[i].y >= best {
                break;
            }
            best = best.min(strip[i].dist(&strip[j]));
        }
    }
    best
}

/// Sequential divide-and-conquer closest-pair distance,
/// `O(n log² n)`. Returns `f64::INFINITY` for fewer than two points.
pub fn sequential_closest(points: &[Point]) -> f64 {
    let mut pts = points.to_vec();
    pts.sort_by(cmp_xy);
    closest_rec(&pts)
}

/// A local subsolution, or a strip of candidate points sent to a peer.
#[derive(Clone, Debug)]
pub struct ClosestMid {
    /// True on the piece a process keeps for itself (its full point set).
    pub home: bool,
    /// Closest distance found within the sending slab.
    pub best: f64,
    /// The points: the whole slab on the home piece, candidates otherwise.
    pub pts: Vec<Point>,
}

impl Payload for ClosestMid {
    fn size_bytes(&self) -> usize {
        1 + 8 + self.pts.len() * std::mem::size_of::<Point>()
    }
}

/// The one-deep closest-pair algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct OneDeepClosest {
    /// x-coordinate samples per process for slab splitter computation.
    pub oversample: usize,
}

impl OneDeepClosest {
    /// With the default oversampling factor.
    pub fn new() -> Self {
        OneDeepClosest { oversample: 8 }
    }
}

impl OneDeep for OneDeepClosest {
    type In = Vec<Point>;
    type Mid = ClosestMid;
    type Out = f64;
    type SplitParams = Vec<f64>;
    /// `(δ, per-process x extents)`.
    type MergeParams = (f64, Vec<(f64, f64)>);
    type SplitSample = Vec<f64>;
    /// `(dᵢ, min_xᵢ, max_xᵢ)`.
    type MergeSample = (f64, f64, f64);

    fn split_sample(&self, local: &Vec<Point>) -> Vec<f64> {
        if local.is_empty() {
            return Vec::new();
        }
        let k = self.oversample.max(1).min(local.len());
        (0..k)
            .map(|i| local[((2 * i + 1) * local.len()) / (2 * k)].x)
            .collect()
    }

    fn split_params(&self, samples: &[Vec<f64>], nparts: usize) -> Vec<f64> {
        let mut all: Vec<f64> = samples.iter().flatten().copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
        if all.is_empty() || nparts <= 1 {
            return Vec::new();
        }
        (1..nparts).map(|i| all[(i * all.len()) / nparts]).collect()
    }

    fn split_partition(
        &self,
        local: Vec<Point>,
        splitters: &Vec<f64>,
        nparts: usize,
        _self_idx: usize,
    ) -> Vec<Vec<Point>> {
        let mut out: Vec<Vec<Point>> = (0..nparts).map(|_| Vec::new()).collect();
        for p in local {
            let slab = splitters.partition_point(|s| *s < p.x);
            out[slab].push(p);
        }
        out
    }

    fn split_assemble(&self, pieces: Vec<Vec<Point>>) -> Vec<Point> {
        let mut all: Vec<Point> = pieces.into_iter().flatten().collect();
        all.sort_by(cmp_xy);
        all
    }

    fn solve(&self, local: Vec<Point>) -> ClosestMid {
        let best = if local.len() >= 2 {
            closest_rec(&local) // already sorted by split_assemble
        } else {
            f64::INFINITY
        };
        ClosestMid {
            home: true,
            best,
            pts: local,
        }
    }

    fn merge_sample(&self, local: &ClosestMid) -> (f64, f64, f64) {
        let min_x = local.pts.first().map(|p| p.x).unwrap_or(f64::INFINITY);
        let max_x = local.pts.last().map(|p| p.x).unwrap_or(f64::NEG_INFINITY);
        (local.best, min_x, max_x)
    }

    fn merge_params(&self, samples: &[(f64, f64, f64)], _nparts: usize) -> (f64, Vec<(f64, f64)>) {
        let delta = samples.iter().map(|s| s.0).fold(f64::INFINITY, f64::min);
        let extents = samples.iter().map(|s| (s.1, s.2)).collect();
        (delta, extents)
    }

    fn merge_partition(
        &self,
        local: ClosestMid,
        params: &(f64, Vec<(f64, f64)>),
        nparts: usize,
        self_idx: usize,
    ) -> Vec<ClosestMid> {
        let (delta, extents) = params;
        let mut out = Vec::with_capacity(nparts);
        #[allow(clippy::needless_range_loop)] // d indexes both slots and extents
        for d in 0..nparts {
            if d == self_idx {
                out.push(ClosestMid {
                    home: true,
                    best: local.best,
                    pts: local.pts.clone(),
                });
            } else if delta.is_finite() {
                let (lo, hi) = extents[d];
                let candidates: Vec<Point> = local
                    .pts
                    .iter()
                    .copied()
                    .filter(|p| p.x >= lo - delta && p.x <= hi + delta)
                    .collect();
                out.push(ClosestMid {
                    home: false,
                    best: local.best,
                    pts: candidates,
                });
            } else {
                // δ is infinite only when every slab holds at most one
                // point; send them all (at most one per process) so the
                // cross pairs are still examined.
                out.push(ClosestMid {
                    home: false,
                    best: local.best,
                    pts: local.pts.clone(),
                });
            }
        }
        out
    }

    fn merge_assemble(&self, pieces: Vec<ClosestMid>) -> f64 {
        let mut delta = pieces.iter().map(|p| p.best).fold(f64::INFINITY, f64::min);
        let home = pieces.iter().find(|p| p.home).expect("home piece present");
        for piece in &pieces {
            if piece.home {
                continue;
            }
            for q in &piece.pts {
                for p in &home.pts {
                    // Cheap axis rejection before the full distance.
                    if (p.x - q.x).abs() < delta {
                        delta = delta.min(p.dist(q));
                    }
                }
            }
        }
        delta
    }

    // ---- cost model --------------------------------------------------------
    fn split_cost(&self, local: &Vec<Point>) -> f64 {
        2.0 * local.len() as f64
    }
    fn solve_cost(&self, local: &Vec<Point>) -> f64 {
        let n = local.len().max(1) as f64;
        10.0 * n * n.log2().max(1.0)
    }
    fn merge_assemble_cost(&self, pieces: &[ClosestMid]) -> f64 {
        let foreign: usize = pieces.iter().filter(|p| !p.home).map(|p| p.pts.len()).sum();
        let home = pieces
            .iter()
            .find(|p| p.home)
            .map(|p| p.pts.len())
            .unwrap_or(0);
        4.0 * (foreign * home.max(1)) as f64
    }
}

/// The global closest-pair distance from the per-process outputs.
pub fn global_closest(outs: &[f64]) -> f64 {
    outs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// A subsolution of the recursive closest-pair algorithm: the slab's
/// closest distance plus its **boundary candidates** — the points lying
/// within `best` of the slab's x-extremes, sorted by (x, y). Only those
/// can ever participate in a cross-slab strip higher up the combining
/// tree (ancestor boundaries lie outside this subtree's x-range and the
/// candidate radius only shrinks as `best` improves), so interior points
/// are pruned before travelling — which is what keeps the upward
/// communication of the SPMD recursion proportional to strip density
/// rather than to the full point set.
#[derive(Clone, Debug)]
pub struct ClosestSolution {
    /// Closest distance found so far within this subtree's points.
    pub best: f64,
    /// Boundary-candidate points of the subtree, sorted by (x, y).
    pub pts: Vec<Point>,
}

/// Drop points that can never appear in an ancestor boundary strip:
/// those farther than `best` from both x-extremes of the (x-sorted) set.
fn prune_candidates(best: f64, pts: Vec<Point>) -> Vec<Point> {
    let (Some(first), Some(last)) = (pts.first(), pts.last()) else {
        return pts;
    };
    if !best.is_finite() || first.x + best >= last.x - best {
        return pts; // the two candidate bands overlap: keep everything
    }
    let lo = first.x + best;
    let hi = last.x - best;
    pts.into_iter().filter(|q| q.x < lo || q.x > hi).collect()
}

impl Payload for ClosestSolution {
    fn size_bytes(&self) -> usize {
        8 + self.pts.len() * std::mem::size_of::<Point>()
    }
}

/// Closest pair in general recursive divide-and-conquer form
/// ([`crate::recursive::Recursive`]): divide by bucketing the points into
/// `k` vertical slabs at sampled x-splitters (linear, no sorting); solve
/// a slab with the classic sequential divide-and-conquer; combine by
/// taking the minimum of the subtree distances and scanning the y-sorted
/// strip around every slab boundary for closer cross-slab pairs.
/// Whatever the recursion shape, the result is the exact distance of the
/// same closest pair, so the algorithm matches [`sequential_closest`]
/// and [`OneDeepClosest`] at every depth.
#[derive(Clone, Copy, Debug)]
pub struct RecursiveClosest {
    /// x-coordinate samples per slab for splitter selection.
    pub oversample: usize,
}

impl RecursiveClosest {
    /// With the default oversampling factor (8 samples per slab).
    pub fn new() -> Self {
        RecursiveClosest { oversample: 8 }
    }
}

impl Default for RecursiveClosest {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::recursive::Recursive for RecursiveClosest {
    type Problem = Vec<Point>;
    type Solution = ClosestSolution;

    fn size(&self, p: &Vec<Point>) -> usize {
        p.len()
    }

    fn divide(&self, p: Vec<Point>, k: usize) -> Vec<Vec<Point>> {
        // Sampled x-splitters cut the plane into k vertical slabs —
        // disjoint x-ranges in increasing order, one binary search per
        // point (shared with the recursive quicksort's divide).
        crate::quicksort::bucket_by_sampled_splitters(p, k, self.oversample, |q| q.x)
    }

    fn solve(&self, mut p: Vec<Point>) -> ClosestSolution {
        p.sort_by(cmp_xy);
        let best = if p.len() >= 2 {
            closest_rec(&p)
        } else {
            f64::INFINITY
        };
        ClosestSolution {
            best,
            pts: prune_candidates(best, p),
        }
    }

    fn combine(&self, parts: Vec<ClosestSolution>) -> ClosestSolution {
        let mut best = parts.iter().map(|s| s.best).fold(f64::INFINITY, f64::min);
        let mut all: Vec<Point> = Vec::with_capacity(parts.iter().map(|s| s.pts.len()).sum());
        for part in parts {
            if let (Some(left), Some(right)) = (all.last(), part.pts.first()) {
                // Vertical strip around the slab boundary between what we
                // have accumulated (all x ≤ boundary) and this part.
                let bx = 0.5 * (left.x + right.x);
                let mut strip: Vec<Point> = all
                    .iter()
                    .chain(part.pts.iter())
                    .filter(|q| (q.x - bx).abs() < best)
                    .copied()
                    .collect();
                strip.sort_by(|a, b| a.y.partial_cmp(&b.y).expect("non-NaN"));
                for i in 0..strip.len() {
                    for j in i + 1..strip.len() {
                        if strip[j].y - strip[i].y >= best {
                            break;
                        }
                        best = best.min(strip[i].dist(&strip[j]));
                    }
                }
            }
            all.extend(part.pts);
        }
        ClosestSolution {
            best,
            pts: prune_candidates(best, all),
        }
    }

    // ---- cost model ------------------------------------------------------
    fn divide_cost(&self, p: &Vec<Point>) -> f64 {
        // Splitter sampling plus one binary search per point.
        2.0 * p.len() as f64 + 64.0
    }
    fn solve_cost(&self, p: &Vec<Point>) -> f64 {
        let n = p.len().max(1) as f64;
        10.0 * n * n.log2().max(1.0)
    }
    fn combine_cost(&self, parts: &[ClosestSolution]) -> f64 {
        let total: usize = parts.iter().map(|s| s.pts.len()).sum();
        8.0 * total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::{run_shared, run_spmd};
    use archetype_core::ExecutionMode;
    use archetype_mp::{run_spmd as mp_run, MachineModel};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn pseudo_random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| p(next() * 1000.0, next() * 1000.0))
            .collect()
    }

    #[test]
    fn sequential_matches_brute_force() {
        for seed in 1..6u64 {
            let pts = pseudo_random_points(200, seed);
            let fast = sequential_closest(&pts);
            let slow = brute_force_closest(&pts);
            assert!((fast - slow).abs() < 1e-9, "seed={seed}: {fast} vs {slow}");
        }
    }

    #[test]
    fn trivial_inputs() {
        assert_eq!(sequential_closest(&[]), f64::INFINITY);
        assert_eq!(sequential_closest(&[p(1.0, 1.0)]), f64::INFINITY);
        assert_eq!(sequential_closest(&[p(0.0, 0.0), p(3.0, 4.0)]), 5.0);
    }

    #[test]
    fn coincident_points_give_zero() {
        let pts = vec![p(5.0, 5.0), p(5.0, 5.0), p(9.0, 9.0)];
        assert_eq!(sequential_closest(&pts), 0.0);
    }

    #[test]
    fn one_deep_matches_sequential() {
        for n in [1usize, 2, 4, 6] {
            let all = pseudo_random_points(600, 11);
            let expected = sequential_closest(&all);
            let inputs: Vec<Vec<Point>> = all.chunks(600 / n).map(<[Point]>::to_vec).collect();
            let inputs = {
                let mut v = inputs;
                v.resize(n, Vec::new());
                v.truncate(n);
                v
            };
            let out = run_shared(
                &OneDeepClosest::new(),
                inputs,
                ExecutionMode::Sequential,
                None,
            );
            let got = global_closest(&out);
            assert!((got - expected).abs() < 1e-9, "n={n}: {got} vs {expected}");
        }
    }

    #[test]
    fn cross_slab_pair_is_found() {
        // The closest pair straddles the slab boundary: each slab's local
        // best is large, the true pair crosses.
        let inputs = vec![
            vec![p(0.0, 0.0), p(49.9, 0.0)],
            vec![p(50.1, 0.0), p(100.0, 0.0)],
        ];
        let all: Vec<Point> = inputs.iter().flatten().copied().collect();
        let expected = sequential_closest(&all); // 0.2 across the boundary
        let out = run_shared(
            &OneDeepClosest::new(),
            inputs,
            ExecutionMode::Sequential,
            None,
        );
        let got = global_closest(&out);
        assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
        assert!((got - 0.2).abs() < 1e-6);
    }

    #[test]
    fn modes_and_spmd_agree() {
        let all = pseudo_random_points(400, 23);
        let expected = sequential_closest(&all);
        let inputs: Vec<Vec<Point>> = all.chunks(100).map(<[Point]>::to_vec).collect();
        let alg = OneDeepClosest::new();
        let seq = run_shared(&alg, inputs.clone(), ExecutionMode::Sequential, None);
        let par = run_shared(&alg, inputs.clone(), ExecutionMode::Parallel, None);
        assert_eq!(global_closest(&seq), global_closest(&par));
        let spmd = mp_run(inputs.len(), MachineModel::ibm_sp(), |ctx| {
            run_spmd(&OneDeepClosest::new(), ctx, inputs[ctx.rank()].clone())
        });
        assert!((global_closest(&spmd.results) - expected).abs() < 1e-9);
    }

    #[test]
    fn recursive_closest_matches_sequential_at_every_depth() {
        use crate::recursive::{run_shared as run_rec, CutoffPolicy};
        let pts = pseudo_random_points(500, 7);
        let expected = sequential_closest(&pts);
        for depth in 0..4 {
            for k in [2usize, 3] {
                let got = run_rec(
                    &RecursiveClosest::new(),
                    pts.clone(),
                    &CutoffPolicy::exact_depth(depth, k),
                    ExecutionMode::Sequential,
                    None,
                );
                assert!(
                    (got.best - expected).abs() < 1e-12,
                    "depth={depth} k={k}: {} vs {expected}",
                    got.best
                );
                assert!(got.pts.len() <= pts.len(), "pruning never invents points");
            }
        }
    }

    #[test]
    fn recursive_closest_finds_cross_slab_pairs() {
        use crate::recursive::{run_shared as run_rec, CutoffPolicy};
        // The closest pair straddles every boundary a 4-way cut makes.
        let pts = vec![
            p(0.0, 0.0),
            p(24.9, 0.0),
            p(25.1, 0.0),
            p(50.0, 0.0),
            p(75.0, 0.0),
            p(100.0, 0.0),
            p(125.0, 0.0),
            p(150.0, 0.0),
        ];
        let got = run_rec(
            &RecursiveClosest::new(),
            pts,
            &CutoffPolicy::exact_depth(1, 4),
            ExecutionMode::Sequential,
            None,
        );
        assert!((got.best - 0.2).abs() < 1e-9, "{}", got.best);
    }

    #[test]
    fn recursive_closest_spmd_matches_sequential_oracle() {
        use crate::recursive::{run_spmd_recursive, CutoffPolicy};
        let pts = pseudo_random_points(400, 31);
        let expected = sequential_closest(&pts);
        for depth in [0usize, 2, 3] {
            let inp = pts.clone();
            let out = mp_run(6, MachineModel::ibm_sp(), move |ctx| {
                let local = (ctx.rank() == 0).then(|| inp.clone());
                run_spmd_recursive(
                    &RecursiveClosest::new(),
                    ctx,
                    local,
                    &CutoffPolicy::exact_depth(depth, 2),
                    None,
                )
            });
            let got = out.results[0].as_ref().expect("root has the solution");
            assert!((got.best - expected).abs() < 1e-12, "depth={depth}");
        }
    }

    #[test]
    fn recursive_closest_degenerate_inputs() {
        use crate::recursive::{run_shared as run_rec, CutoffPolicy};
        let policy = CutoffPolicy::exact_depth(3, 2);
        let empty = run_rec(
            &RecursiveClosest::new(),
            Vec::new(),
            &policy,
            ExecutionMode::Sequential,
            None,
        );
        assert_eq!(empty.best, f64::INFINITY);
        let single = run_rec(
            &RecursiveClosest::new(),
            vec![p(1.0, 1.0)],
            &policy,
            ExecutionMode::Sequential,
            None,
        );
        assert_eq!(single.best, f64::INFINITY);
        let coincident = run_rec(
            &RecursiveClosest::new(),
            vec![p(5.0, 5.0), p(5.0, 5.0), p(9.0, 9.0)],
            &policy,
            ExecutionMode::Sequential,
            None,
        );
        assert_eq!(coincident.best, 0.0);
    }

    #[test]
    fn sparse_processes_with_too_few_points() {
        let inputs = vec![vec![p(0.0, 0.0)], vec![], vec![p(0.0, 1.5)]];
        let out = run_shared(
            &OneDeepClosest::new(),
            inputs,
            ExecutionMode::Sequential,
            None,
        );
        assert!((global_closest(&out) - 1.5).abs() < 1e-9);
    }
}
