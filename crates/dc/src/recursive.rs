//! The general **recursive** divide-and-conquer skeleton on nested
//! process groups.
//!
//! The paper's one-deep archetype (implemented in [`crate::skeleton`])
//! deliberately flattens the recursion to a single split/solve/merge
//! level; its §2.1.1 "traditional" form is the fully recursive structure.
//! This module generalizes both: a problem expressed through the
//! [`Recursive`] trait is divided into `k` subproblems per level, the
//! recursion descends until a cutoff chosen by a performance model
//! ([`CutoffPolicy`], see [`crate::perfmodel`]), leaves are solved with
//! the sequential algorithm, and subsolutions merge back up a combining
//! tree.
//!
//! Two drivers execute the same trait:
//!
//! - [`run_shared`] runs the recursion on shared memory — sequentially or
//!   with rayon-style fork/join via
//!   [`archetype_core::parfor_map_vec`] — with identical
//!   results in both modes;
//! - [`run_spmd_recursive`] runs it over the message-passing substrate:
//!   each level splits the current [`Group`] into `k` disjoint
//!   subcommunicators ([`Group::split_nested`]), scatters the
//!   subproblems to the subgroup roots ([`Group::scatter`]), recurses
//!   concurrently (sibling groups' tags are namespaced, so their traffic
//!   cannot interfere), and gathers subsolutions back to each group root
//!   for combining — all charged against the virtual clock.
//!
//! The one-deep skeleton is the `max_depth == 1` shape of this recursion
//! with `k == nprocs`; the equivalence of the sequential, shared,
//! one-deep, and recursive executions is asserted per application in
//! `tests/prop_dc.rs`.

use archetype_core::{parfor_map_vec, ExecutionMode, PhaseKind, PhaseTrace};
use archetype_mp::{Ctx, Group, Payload};

/// A problem expressed as general recursive divide-and-conquer.
///
/// Implementations must be **depth-insensitive**: dividing further (or
/// not at all) may change the work schedule but never the final solution.
/// That property is what lets one implementation run at any recursion
/// depth, on any number of processes, and still match the sequential
/// oracle — the archetype's semantics-preservation claim, recursively.
pub trait Recursive: Sync {
    /// A (sub)problem.
    type Problem: Send;
    /// A (sub)solution.
    type Solution: Send;

    /// Number of items in the problem, consulted by the cutoff policy.
    fn size(&self, p: &Self::Problem) -> usize;

    /// Divide a problem into exactly `k` subproblems (`k ≥ 2`), in order.
    /// Subproblems may be empty; each must be strictly smaller than the
    /// input whenever the input has at least two items, or the policy's
    /// depth cap is what terminates the recursion.
    fn divide(&self, p: Self::Problem, k: usize) -> Vec<Self::Problem>;

    /// Solve a problem with the sequential algorithm (the cutoff solve).
    fn solve(&self, p: Self::Problem) -> Self::Solution;

    /// Combine subsolutions, given in divide order.
    fn combine(&self, parts: Vec<Self::Solution>) -> Self::Solution;

    // ---- modeled costs (flop-equivalents) for the virtual clock ----------

    /// Cost of dividing the problem (the paper's first inefficiency: the
    /// split "can require inspection of all the input data").
    fn divide_cost(&self, _p: &Self::Problem) -> f64 {
        0.0
    }
    /// Cost of the sequential solve.
    fn solve_cost(&self, _p: &Self::Problem) -> f64 {
        0.0
    }
    /// Cost of combining the subsolutions.
    fn combine_cost(&self, _parts: &[Self::Solution]) -> f64 {
        0.0
    }
}

/// When to stop recursing: a branching factor plus two cutoffs — a
/// problem-size floor (normally chosen from the machine model, see
/// [`crate::perfmodel::recursion_policy`]) and a hard depth cap.
///
/// The SPMD driver additionally stops at singleton groups, where no
/// further process parallelism exists; the two drivers still compute the
/// same solution because [`Recursive`] implementations are
/// depth-insensitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutoffPolicy {
    /// Subproblems per divide (`k ≥ 2`).
    pub branching: usize,
    /// Problems smaller than this are solved sequentially. A floor of 2
    /// is always applied: single-item problems never divide.
    pub min_items: usize,
    /// Hard cap on recursion depth (`0` = solve sequentially at once).
    pub max_depth: usize,
}

impl CutoffPolicy {
    /// A policy with an explicit size floor and depth cap.
    ///
    /// # Panics
    /// Panics if `branching < 2`.
    pub fn new(branching: usize, min_items: usize, max_depth: usize) -> Self {
        assert!(branching >= 2, "divide needs at least two subproblems");
        CutoffPolicy {
            branching,
            min_items,
            max_depth,
        }
    }

    /// Recurse to exactly `depth` levels (no size floor) with the given
    /// branching factor — the fully specified shape used by equivalence
    /// tests; `exact_depth(0, k)` is pure sequential execution.
    pub fn exact_depth(depth: usize, branching: usize) -> Self {
        Self::new(branching, 0, depth)
    }

    /// True if a problem of `size` items may be divided at all.
    pub fn size_allows(&self, size: usize) -> bool {
        size >= self.min_items.max(2)
    }

    /// True if a problem of `size` items at recursion `depth` should be
    /// divided rather than solved sequentially.
    pub fn should_recurse(&self, size: usize, depth: usize) -> bool {
        depth < self.max_depth && self.size_allows(size)
    }
}

/// Execute the recursion on shared memory.
///
/// In [`ExecutionMode::Parallel`] each divide's subproblems run as a
/// fork/join ("every time the problem is split into concurrently
/// executable subproblems a new process is created"); results are
/// identical in both modes for deterministic algorithms. The trace
/// records `Recurse` entering each internal node, `Solve` at each leaf,
/// and `Merge` before each combine — in deterministic preorder in
/// sequential mode.
///
/// ```
/// use archetype_core::ExecutionMode;
/// use archetype_dc::{run_shared_recursive, CutoffPolicy, RecursiveMergesort};
///
/// let alg = RecursiveMergesort::<i64>::new();
/// let out = run_shared_recursive(
///     &alg,
///     vec![3, 1, 2],
///     &CutoffPolicy::exact_depth(1, 2),
///     ExecutionMode::Sequential,
///     None,
/// );
/// assert_eq!(out, vec![1, 2, 3]);
/// ```
pub fn run_shared<A: Recursive>(
    alg: &A,
    problem: A::Problem,
    policy: &CutoffPolicy,
    mode: ExecutionMode,
    trace: Option<&PhaseTrace>,
) -> A::Solution {
    shared_node(alg, problem, 0, policy, mode, trace)
}

fn shared_node<A: Recursive>(
    alg: &A,
    problem: A::Problem,
    depth: usize,
    policy: &CutoffPolicy,
    mode: ExecutionMode,
    trace: Option<&PhaseTrace>,
) -> A::Solution {
    if !policy.should_recurse(alg.size(&problem), depth) {
        if let Some(t) = trace {
            t.record(PhaseKind::Solve, "sequential solve at the cutoff");
        }
        return alg.solve(problem);
    }
    if let Some(t) = trace {
        t.record(PhaseKind::Recurse, "divide and descend");
    }
    let parts = alg.divide(problem, policy.branching);
    assert_eq!(
        parts.len(),
        policy.branching,
        "divide must return exactly k subproblems"
    );
    let sols = parfor_map_vec(mode, parts, |_i, part| {
        shared_node(alg, part, depth + 1, policy, mode, trace)
    });
    if let Some(t) = trace {
        t.record(PhaseKind::Merge, "combine subsolutions");
    }
    alg.combine(sols)
}

/// Execute the recursion over the SPMD substrate on nested process
/// groups. Must be called by every rank from within
/// [`archetype_mp::run_spmd`]; `input` must be `Some` on rank 0 and
/// `None` elsewhere, and the solution is returned on rank 0.
///
/// Each level of the recursion, executed by every member of the current
/// group:
///
/// 1. the subproblem size is group-broadcast so all members take the
///    same cutoff branch (skipped when the depth cap or a singleton
///    group already decides locally);
/// 2. the root divides and **group-scatters** the `k` subproblems over
///    the nested subgroup formed by the `k` subgroup roots — exactly
///    `k − 1` messages, no matter how large the group is;
/// 3. the group splits into `k` disjoint subcommunicators
///    ([`Group::split_nested`]) that recurse **concurrently** — sibling
///    subtrees may reach different depths without interfering, because
///    group tags are namespaced by member list;
/// 4. subsolutions **gather** over the same roots-subgroup back to the
///    group root, which combines them — the combining tree, with all
///    groups at one level merging in parallel.
///
/// Compute phases are charged to the virtual clock through the
/// algorithm's `*_cost` hooks, so repeated runs produce bit-identical
/// results, clocks, and traces.
pub fn run_spmd_recursive<A>(
    alg: &A,
    ctx: &mut Ctx,
    input: Option<A::Problem>,
    policy: &CutoffPolicy,
    trace: Option<&PhaseTrace>,
) -> Option<A::Solution>
where
    A: Recursive,
    A::Problem: Payload,
    A::Solution: Payload,
{
    assert_eq!(
        ctx.rank() == 0,
        input.is_some(),
        "the problem starts on rank 0 (None elsewhere)"
    );
    let mut world = Group::world(ctx);
    spmd_node(alg, ctx, &mut world, input, 0, policy, trace)
}

fn spmd_node<A>(
    alg: &A,
    ctx: &mut Ctx,
    group: &mut Group,
    problem: Option<A::Problem>,
    depth: usize,
    policy: &CutoffPolicy,
    trace: Option<&PhaseTrace>,
) -> Option<A::Solution>
where
    A: Recursive,
    A::Problem: Payload,
    A::Solution: Payload,
{
    let g = group.len();
    // Depth caps and singleton groups cut off without communicating; the
    // size-based cutoff needs the root's problem size replicated first.
    let cut = depth >= policy.max_depth || g == 1 || {
        let size = group.broadcast(ctx, 0, problem.as_ref().map(|p| alg.size(p) as u64));
        !policy.size_allows(size as usize)
    };
    if cut {
        return problem.map(|p| {
            ctx.charge_flops(alg.solve_cost(&p));
            ctx.trace_phase(PhaseKind::Solve.name(), "sequential solve at the cutoff");
            if let Some(t) = trace {
                t.record(PhaseKind::Solve, "sequential solve at the cutoff");
            }
            alg.solve(p)
        });
    }

    ctx.trace_phase(PhaseKind::Recurse.name(), "divide and descend into subgroups");
    if let Some(t) = trace {
        t.record(PhaseKind::Recurse, "divide and descend into subgroups");
    }
    let k = policy.branching.min(g);
    // Contiguous, balanced subgroups; roots[j] is subgroup j's first member.
    let colors: Vec<usize> = (0..g).map(|i| i * k / g).collect();
    let roots: Vec<usize> = (0..k)
        .map(|j| colors.iter().position(|&c| c == j).expect("color nonempty"))
        .collect();
    let me = group.rank();
    let is_sub_root = roots[colors[me]] == me;

    // The k subgroup roots form their own nested subgroup (the non-roots
    // form an unused sibling), over which the division is scattered and
    // the subsolutions gathered: k − 1 messages each way per level, with
    // the group root — a subgroup root itself — at index 0 of both.
    let cross_colors: Vec<usize> = (0..g).map(|i| usize::from(roots[colors[i]] != i)).collect();
    let mut cross = group.split_nested(ctx, &cross_colors);

    let mine: Option<A::Problem> = if is_sub_root {
        let parts: Option<Vec<A::Problem>> = problem.map(|p| {
            ctx.charge_flops(alg.divide_cost(&p));
            let parts = alg.divide(p, k);
            assert_eq!(parts.len(), k, "divide must return exactly k subproblems");
            parts
        });
        Some(cross.scatter(ctx, 0, parts))
    } else {
        None
    };

    let mut sub = group.split_nested(ctx, &colors);
    let sub_solution = spmd_node(alg, ctx, &mut sub, mine, depth + 1, policy, trace);

    // Combining tree: subgroup roots' solutions gather to the group root,
    // which merges them; all groups of a level combine concurrently.
    if !is_sub_root {
        return None;
    }
    let gathered = cross.gather(
        ctx,
        0,
        sub_solution.expect("a subgroup root holds its subgroup's solution"),
    );
    gathered.map(|parts| {
        ctx.charge_flops(alg.combine_cost(&parts));
        ctx.trace_phase(PhaseKind::Merge.name(), "combine subsolutions up the tree");
        if let Some(t) = trace {
            t.record(PhaseKind::Merge, "combine subsolutions up the tree");
        }
        alg.combine(parts)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use archetype_mp::{run_spmd, MachineModel};

    /// A toy recursive problem: sum a vector, dividing it into k chunks.
    struct TreeSum;

    impl Recursive for TreeSum {
        type Problem = Vec<u64>;
        type Solution = u64;

        fn size(&self, p: &Vec<u64>) -> usize {
            p.len()
        }
        fn divide(&self, p: Vec<u64>, k: usize) -> Vec<Vec<u64>> {
            crate::mergesort::chunk_evenly(p, k)
        }
        fn solve(&self, p: Vec<u64>) -> u64 {
            p.iter().sum()
        }
        fn combine(&self, parts: Vec<u64>) -> u64 {
            parts.iter().sum()
        }
        fn solve_cost(&self, p: &Vec<u64>) -> f64 {
            p.len() as f64
        }
    }

    fn numbers(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 2654435761) % 1000).collect()
    }

    #[test]
    fn shared_recursion_matches_sequential_at_every_depth() {
        let input = numbers(257);
        let expected: u64 = input.iter().sum();
        for depth in 0..5 {
            for k in [2usize, 3, 4] {
                for mode in ExecutionMode::both() {
                    let got = run_shared(
                        &TreeSum,
                        input.clone(),
                        &CutoffPolicy::exact_depth(depth, k),
                        mode,
                        None,
                    );
                    assert_eq!(got, expected, "depth={depth} k={k} {mode}");
                }
            }
        }
    }

    #[test]
    fn trace_records_preorder_recursion_shape() {
        use PhaseKind::{Merge, Recurse, Solve};
        let t = PhaseTrace::new();
        run_shared(
            &TreeSum,
            numbers(64),
            &CutoffPolicy::exact_depth(2, 2),
            ExecutionMode::Sequential,
            Some(&t),
        );
        // Preorder of the full binary tree of depth 2.
        assert!(t.matches(&[
            Recurse, Recurse, Solve, Solve, Merge, Recurse, Solve, Solve, Merge, Merge
        ]));
        assert_eq!(t.count(Recurse), 3);
        assert_eq!(t.count(Solve), 4);
    }

    #[test]
    fn size_floor_stops_recursion() {
        let t = PhaseTrace::new();
        let policy = CutoffPolicy::new(2, 1000, 10);
        let got = run_shared(
            &TreeSum,
            numbers(100),
            &policy,
            ExecutionMode::Sequential,
            Some(&t),
        );
        assert_eq!(got, numbers(100).iter().sum::<u64>());
        assert!(t.matches(&[PhaseKind::Solve]), "below the floor: no divide");
    }

    #[test]
    fn single_item_problems_never_divide() {
        let policy = CutoffPolicy::exact_depth(50, 2);
        assert!(!policy.should_recurse(1, 0));
        assert!(!policy.should_recurse(0, 0));
        assert!(policy.should_recurse(2, 0));
        let got = run_shared(&TreeSum, vec![7], &policy, ExecutionMode::Sequential, None);
        assert_eq!(got, 7);
    }

    #[test]
    fn spmd_recursion_matches_shared_for_all_ranks_and_depths() {
        let input = numbers(300);
        let expected: u64 = input.iter().sum();
        for p in [1usize, 2, 3, 5, 8] {
            for depth in 0..4 {
                let policy = CutoffPolicy::exact_depth(depth, 2);
                let inp = input.clone();
                let out = run_spmd(p, MachineModel::ibm_sp(), move |ctx| {
                    let input = (ctx.rank() == 0).then(|| inp.clone());
                    run_spmd_recursive(&TreeSum, ctx, input, &policy, None)
                });
                assert_eq!(out.results[0], Some(expected), "p={p} depth={depth}");
                for r in 1..p {
                    assert_eq!(out.results[r], None, "p={p} depth={depth}");
                }
            }
        }
    }

    #[test]
    fn depth_zero_spmd_is_message_free_sequential_execution() {
        let input = numbers(128);
        let expected: u64 = input.iter().sum();
        let out = run_spmd(6, MachineModel::ibm_sp(), move |ctx| {
            let inp = (ctx.rank() == 0).then(|| input.clone());
            run_spmd_recursive(&TreeSum, ctx, inp, &CutoffPolicy::exact_depth(0, 2), None)
        });
        assert_eq!(out.results[0], Some(expected));
        assert_eq!(out.stats.total_msgs(), 0, "depth 0 must not communicate");
        // Only rank 0 computes; elapsed equals its solve charge.
        let m = MachineModel::ibm_sp();
        assert!((out.elapsed_virtual - 128.0 * m.flop_time).abs() < 1e-15);
    }

    #[test]
    fn rank0_spmd_trace_walks_its_root_path() {
        use PhaseKind::{Merge, Recurse, Solve};
        let input = numbers(200);
        let out = run_spmd(8, MachineModel::ibm_sp(), move |ctx| {
            let inp = (ctx.rank() == 0).then(|| input.clone());
            let t = PhaseTrace::new();
            run_spmd_recursive(
                &TreeSum,
                ctx,
                inp,
                &CutoffPolicy::exact_depth(3, 2),
                Some(&t),
            );
            t.kinds()
        });
        // Rank 0 is the root at every level: it recurses three times,
        // solves its leaf, then merges on the way back up.
        assert_eq!(
            out.results[0],
            vec![Recurse, Recurse, Recurse, Solve, Merge, Merge, Merge]
        );
        // Rank 7 descends with its groups but roots none of them until its
        // own singleton leaf.
        assert_eq!(out.results[7], vec![Recurse, Recurse, Recurse, Solve]);
    }

    #[test]
    fn branching_wider_than_group_is_clamped() {
        let input = numbers(90);
        let expected: u64 = input.iter().sum();
        let out = run_spmd(3, MachineModel::ibm_sp(), move |ctx| {
            let inp = (ctx.rank() == 0).then(|| input.clone());
            run_spmd_recursive(&TreeSum, ctx, inp, &CutoffPolicy::exact_depth(2, 8), None)
        });
        assert_eq!(out.results[0], Some(expected));
    }

    #[test]
    #[should_panic]
    fn branching_below_two_is_rejected() {
        let _ = CutoffPolicy::new(1, 0, 3);
    }
}
