//! Traditional recursive divide-and-conquer (paper §2.1.1, Figure 1) —
//! the baseline the one-deep archetype is measured against.
//!
//! Two executions are provided:
//!
//! - [`run_fork_join`]: a generic binary fork/join skeleton on shared memory
//!   (rayon `join` in parallel mode), the direct transcription of Figure 1;
//! - [`tree_mergesort_spmd`]: the distributed-memory variant used for the
//!   Figure 6 comparison — data fans out from process 0 down a binary tree
//!   of splits, leaves solve locally, and subsolutions merge back up the
//!   tree. This exhibits exactly the inefficiencies the paper names: the
//!   split inspects all input data, and concurrency decays toward the root
//!   (the final merge is one process touching all `n` elements).

use archetype_core::ExecutionMode;
use archetype_mp::{Ctx, FixedSize};

/// A problem expressed as traditional *binary* recursive divide-and-conquer
/// (the paper's Figure 1 baseline). The general `k`-way, group-aware form
/// lives in [`crate::recursive::Recursive`].
pub trait ForkJoin: Sync {
    /// Problem type.
    type Problem: Send;
    /// Solution type.
    type Solution: Send;

    /// True when the problem should be solved directly.
    fn is_base(&self, p: &Self::Problem) -> bool;
    /// Solve a base-case problem directly.
    fn base_solve(&self, p: Self::Problem) -> Self::Solution;
    /// Split a problem into two subproblems.
    fn divide(&self, p: Self::Problem) -> (Self::Problem, Self::Problem);
    /// Combine two subsolutions.
    fn combine(&self, a: Self::Solution, b: Self::Solution) -> Self::Solution;
}

/// Execute a [`ForkJoin`] problem; in parallel mode each split spawns the
/// two subproblems with `rayon::join` ("every time the problem is split
/// into concurrently-executable subproblems a new process is created").
pub fn run_fork_join<A: ForkJoin>(alg: &A, p: A::Problem, mode: ExecutionMode) -> A::Solution {
    if alg.is_base(&p) {
        return alg.base_solve(p);
    }
    let (left, right) = alg.divide(p);
    let (a, b) = match mode {
        ExecutionMode::Sequential => (
            run_fork_join(alg, left, mode),
            run_fork_join(alg, right, mode),
        ),
        ExecutionMode::Parallel => rayon::join(
            || run_fork_join(alg, left, mode),
            || run_fork_join(alg, right, mode),
        ),
    };
    alg.combine(a, b)
}

/// Modeled flop cost per element of one comparison-and-move in a merge
/// or sort inner loop. Shared by the Figure 6 cost model so the
/// traditional and one-deep algorithms are charged consistently.
pub const SORT_FLOPS_PER_CMP: f64 = 4.0;

/// Flop model of sequentially sorting `n` items: `c · n log₂ n`.
pub fn sort_flops(n: usize) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    SORT_FLOPS_PER_CMP * n as f64 * (n as f64).log2()
}

/// Flop model of merging sorted runs totalling `n` items.
pub fn merge_flops(n: usize) -> f64 {
    SORT_FLOPS_PER_CMP * n as f64
}

/// Distributed traditional mergesort over the message-passing substrate.
///
/// The full input starts at rank 0 (the paper's first inefficiency: the
/// split "can require inspection of all the input data"). It is halved down
/// a binary tree of processes, sorted at the leaves, and pairwise-merged
/// back up; rank 0 returns the fully sorted data, other ranks return their
/// (empty) remainder. `nprocs` need not be a power of two — a rank splits
/// as long as it has a subtree partner in range.
///
/// Returns the sorted data on rank 0 and `None` elsewhere.
pub fn tree_mergesort_spmd<T>(ctx: &mut Ctx, input: Option<Vec<T>>) -> Option<Vec<T>>
where
    T: FixedSize + Ord,
{
    let n = ctx.nprocs();
    let me = ctx.rank();
    const TAG_SPLIT: u64 = 0x7001;
    const TAG_MERGE: u64 = 0x7002;

    // --- split phase: fan out down the binary tree -------------------------
    // Round k (k = ceil(log2 n)-1 .. 0): rank r < 2^k with r + 2^k < n sends
    // the upper half of its current data to rank r + 2^k.
    let mut levels = 0usize;
    while (1usize << levels) < n {
        levels += 1;
    }

    let mut data: Vec<T> = if me == 0 {
        input.expect("rank 0 must supply the input")
    } else {
        Vec::new()
    };

    for k in (0..levels).rev() {
        let bit = 1usize << k;
        let group = bit << 1;
        if me.is_multiple_of(group) && me + bit < n {
            // Inspecting/copying the data to split it costs linear work.
            ctx.charge_items(data.len(), 1.0);
            let upper = data.split_off(data.len() / 2);
            ctx.send(me + bit, TAG_SPLIT, upper);
        } else if me % group == bit {
            data = ctx.recv(me - bit, TAG_SPLIT);
        }
    }

    // --- solve phase: leaves sort locally ----------------------------------
    ctx.charge_flops(sort_flops(data.len()));
    data.sort_unstable();

    // --- merge phase: fan back in up the tree ------------------------------
    for k in 0..levels {
        let bit = 1usize << k;
        let group = bit << 1;
        if me % group == bit {
            ctx.send(me - bit, TAG_MERGE, std::mem::take(&mut data));
        } else if me.is_multiple_of(group) && me + bit < n {
            let other: Vec<T> = ctx.recv(me + bit, TAG_MERGE);
            ctx.charge_flops(merge_flops(data.len() + other.len()));
            data = merge_two(data, other);
        }
    }

    if me == 0 {
        Some(data)
    } else {
        None
    }
}

/// Distributed traditional mergesort starting from *distributed* data —
/// the variant measured in Figure 6, where both algorithms begin with the
/// input already in per-process blocks. Each rank sorts its block, then
/// subsolutions merge pairwise up a binary tree; concurrency decays toward
/// the root, whose final merge touches all `n` elements sequentially (the
/// paper's second inefficiency: "the amount of actual concurrency varies
/// over the lifetime of the algorithm").
///
/// Returns the sorted data on rank 0 and `None` elsewhere.
pub fn tree_mergesort_distributed_spmd<T>(ctx: &mut Ctx, local: Vec<T>) -> Option<Vec<T>>
where
    T: FixedSize + Ord,
{
    let n = ctx.nprocs();
    let me = ctx.rank();
    const TAG_MERGE: u64 = 0x7003;

    let mut levels = 0usize;
    while (1usize << levels) < n {
        levels += 1;
    }

    let mut data = local;
    ctx.charge_flops(sort_flops(data.len()));
    data.sort_unstable();

    for k in 0..levels {
        let bit = 1usize << k;
        let group = bit << 1;
        if me % group == bit {
            ctx.send(me - bit, TAG_MERGE, std::mem::take(&mut data));
        } else if me.is_multiple_of(group) && me + bit < n {
            let other: Vec<T> = ctx.recv(me + bit, TAG_MERGE);
            ctx.charge_flops(merge_flops(data.len() + other.len()));
            data = merge_two(data, other);
        }
    }

    if me == 0 {
        Some(data)
    } else {
        None
    }
}

/// Merge two sorted vectors into one sorted vector.
pub fn merge_two<T: Ord>(a: Vec<T>, b: Vec<T>) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    out.push(ia.next().expect("peeked"));
                } else {
                    out.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.extend(ia.by_ref()),
            (None, Some(_)) => out.extend(ib.by_ref()),
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use archetype_mp::{run_spmd, MachineModel};

    struct MergesortRec;
    impl ForkJoin for MergesortRec {
        type Problem = Vec<i64>;
        type Solution = Vec<i64>;
        fn is_base(&self, p: &Vec<i64>) -> bool {
            p.len() <= 8
        }
        fn base_solve(&self, mut p: Vec<i64>) -> Vec<i64> {
            p.sort_unstable();
            p
        }
        fn divide(&self, mut p: Vec<i64>) -> (Vec<i64>, Vec<i64>) {
            let right = p.split_off(p.len() / 2);
            (p, right)
        }
        fn combine(&self, a: Vec<i64>, b: Vec<i64>) -> Vec<i64> {
            merge_two(a, b)
        }
    }

    fn scrambled(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| (i * 48271) % 65537 - 32768).collect()
    }

    #[test]
    fn recursive_skeleton_sorts_in_both_modes() {
        let input = scrambled(3000);
        let mut expected = input.clone();
        expected.sort_unstable();
        for mode in ExecutionMode::both() {
            let got = run_fork_join(&MergesortRec, input.clone(), mode);
            assert_eq!(got, expected, "{mode}");
        }
    }

    #[test]
    fn recursive_base_case_only() {
        let got = run_fork_join(&MergesortRec, vec![3, 1, 2], ExecutionMode::Parallel);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn merge_two_interleaves() {
        assert_eq!(
            merge_two(vec![1, 3, 5], vec![2, 3, 6, 7]),
            vec![1, 2, 3, 3, 5, 6, 7]
        );
        assert_eq!(merge_two(Vec::<i32>::new(), vec![1]), vec![1]);
        assert_eq!(merge_two(vec![1], Vec::<i32>::new()), vec![1]);
    }

    #[test]
    fn tree_mergesort_sorts_for_many_process_counts() {
        for p in [1usize, 2, 3, 4, 6, 8, 13] {
            let input = scrambled(997);
            let mut expected = input.clone();
            expected.sort_unstable();
            let out = run_spmd(p, MachineModel::ibm_sp(), |ctx| {
                let inp = (ctx.rank() == 0).then(|| input.clone());
                tree_mergesort_spmd(ctx, inp)
            });
            assert_eq!(
                out.results[0].as_ref().expect("root has data"),
                &expected,
                "p={p}"
            );
            for r in 1..p {
                assert!(out.results[r].is_none());
            }
        }
    }

    #[test]
    fn tree_mergesort_speedup_saturates() {
        // The paper's point: concurrency decays toward the root, so speedup
        // grows sublinearly. Compare modeled times at P=4 and P=32 and check
        // the efficiency (speedup/P) drops substantially.
        let n_items = 1 << 16;
        let run_at = |p: usize| {
            let input = scrambled(n_items);
            run_spmd(p, MachineModel::intel_delta(), move |ctx| {
                let inp = (ctx.rank() == 0).then(|| input.clone());
                tree_mergesort_spmd(ctx, inp);
            })
            .elapsed_virtual
        };
        let t1 = run_at(1);
        let t4 = run_at(4);
        let t32 = run_at(32);
        let eff4 = t1 / t4 / 4.0;
        let eff32 = t1 / t32 / 32.0;
        assert!(t4 < t1, "some speedup at P=4");
        assert!(
            eff32 < eff4 * 0.8,
            "efficiency must decay: {eff4} -> {eff32}"
        );
    }

    #[test]
    fn tree_mergesort_distributed_sorts() {
        for p in [1usize, 2, 3, 5, 8] {
            let input = scrambled(500);
            let mut expected = input.clone();
            expected.sort_unstable();
            let blocks: Vec<Vec<i64>> = (0..p)
                .map(|r| {
                    let (s, l) = archetype_mp::topology::block_range(input.len(), p, r);
                    input[s..s + l].to_vec()
                })
                .collect();
            let out = run_spmd(p, MachineModel::ibm_sp(), |ctx| {
                tree_mergesort_distributed_spmd(ctx, blocks[ctx.rank()].clone())
            });
            assert_eq!(out.results[0].as_ref().unwrap(), &expected, "p={p}");
        }
    }

    #[test]
    fn sort_flops_model_is_superlinear() {
        assert!(sort_flops(2000) > 2.0 * sort_flops(1000));
        assert_eq!(sort_flops(0), 1.0);
        assert_eq!(sort_flops(1), 1.0);
    }
}
