//! One-deep quicksort (paper §2.5.2): the mirror image of one-deep
//! mergesort — a **non-trivial split** phase (select `N−1` pivots by
//! sampling and partition the *unsorted* data into key ranges) and a
//! **degenerate merge** ("the final sorted list is the concatenation of
//! the local lists").

use std::marker::PhantomData;

use crate::mergesort::SortItem;
use crate::skeleton::OneDeep;
use crate::traditional::sort_flops;

/// The one-deep quicksort algorithm. `oversample` controls pivot quality
/// exactly as in [`crate::mergesort::OneDeepMergesort`].
pub struct OneDeepQuicksort<T> {
    /// Samples per process used to compute pivots.
    pub oversample: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> OneDeepQuicksort<T> {
    /// With the default oversampling factor (8 samples per process).
    pub fn new() -> Self {
        Self::with_oversample(8)
    }

    /// With an explicit oversampling factor (≥ 1).
    pub fn with_oversample(oversample: usize) -> Self {
        assert!(oversample >= 1);
        OneDeepQuicksort {
            oversample,
            _marker: PhantomData,
        }
    }
}

impl<T> Default for OneDeepQuicksort<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Evenly spaced sample of up to `k` elements of *unsorted* data.
pub(crate) fn sample_unsorted<T: Copy>(data: &[T], k: usize) -> Vec<T> {
    if data.is_empty() || k == 0 {
        return Vec::new();
    }
    let k = k.min(data.len());
    (0..k)
        .map(|i| data[((2 * i + 1) * data.len()) / (2 * k)])
        .collect()
}

/// The sample → sort → splitter → bucket divide shared by the recursive
/// quicksort and closest-pair applications: take `oversample · k`
/// evenly spaced samples, sort their keys, pick `k − 1` splitters, and
/// partition the data into `k` key ranges with one binary search per
/// element. The strict `<` in the bucketing puts every key equal to a
/// splitter in the splitter's own bucket, so buckets are disjoint,
/// increasing key ranges — an invariant the closest-pair combine's
/// slab-boundary strips rely on.
pub(crate) fn bucket_by_sampled_splitters<T, K, F>(
    data: Vec<T>,
    k: usize,
    oversample: usize,
    key: F,
) -> Vec<Vec<T>>
where
    T: Copy,
    K: PartialOrd + Copy,
    F: Fn(&T) -> K,
{
    let mut samples: Vec<K> = sample_unsorted(&data, oversample.max(1) * k)
        .iter()
        .map(&key)
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("comparable keys"));
    let splitters: Vec<K> = if samples.is_empty() {
        Vec::new()
    } else {
        (1..k).map(|i| samples[(i * samples.len()) / k]).collect()
    };
    let mut out: Vec<Vec<T>> = (0..k).map(|_| Vec::new()).collect();
    for v in data {
        let kv = key(&v);
        let bucket = splitters.partition_point(|s| *s < kv);
        out[bucket].push(v);
    }
    out
}

impl<T: SortItem> OneDeep for OneDeepQuicksort<T> {
    type In = Vec<T>;
    type Mid = Vec<T>;
    type Out = Vec<T>;
    type SplitParams = Vec<T>; // the N−1 pivots
    type MergeParams = ();
    type SplitSample = Vec<T>;
    type MergeSample = ();

    fn split_sample(&self, local: &Vec<T>) -> Vec<T> {
        sample_unsorted(local, self.oversample)
    }

    fn split_params(&self, samples: &[Vec<T>], nparts: usize) -> Vec<T> {
        let mut all: Vec<T> = samples.iter().flatten().copied().collect();
        all.sort_unstable();
        if all.is_empty() || nparts <= 1 {
            return Vec::new();
        }
        (1..nparts).map(|i| all[(i * all.len()) / nparts]).collect()
    }

    fn split_partition(
        &self,
        local: Vec<T>,
        pivots: &Vec<T>,
        nparts: usize,
        _self_idx: usize,
    ) -> Vec<Vec<T>> {
        // "partitions data into segments P_1 … P_N such that data in
        // segment P_i is between p_i and p_{i+1}".
        let mut out: Vec<Vec<T>> = (0..nparts).map(|_| Vec::new()).collect();
        for v in local {
            let bucket = pivots.partition_point(|p| *p < v);
            out[bucket].push(v);
        }
        out
    }

    fn split_assemble(&self, pieces: Vec<Vec<T>>) -> Vec<T> {
        pieces.into_iter().flatten().collect()
    }

    fn solve(&self, mut local: Vec<T>) -> Vec<T> {
        local.sort_unstable();
        local
    }

    // Degenerate merge: concatenation of the local lists.
    fn merge_sample(&self, _local: &Vec<T>) {}
    fn merge_params(&self, _samples: &[()], _nparts: usize) {}
    fn merge_partition(
        &self,
        local: Vec<T>,
        _params: &(),
        nparts: usize,
        self_idx: usize,
    ) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = (0..nparts).map(|_| Vec::new()).collect();
        out[self_idx] = local;
        out
    }
    fn merge_assemble(&self, pieces: Vec<Vec<T>>) -> Vec<T> {
        pieces.into_iter().flatten().collect()
    }

    // ---- cost model --------------------------------------------------------
    fn split_cost(&self, local: &Vec<T>) -> f64 {
        // One binary search over the pivots per element.
        2.0 * local.len() as f64
    }
    fn params_cost(&self, nparts: usize) -> f64 {
        sort_flops(nparts * self.oversample)
    }
    fn solve_cost(&self, local: &Vec<T>) -> f64 {
        sort_flops(local.len())
    }
}

/// Quicksort in general recursive divide-and-conquer form
/// ([`crate::recursive::Recursive`]): divide by sampling `k − 1` pivots
/// and bucketing the *unsorted* data into key ranges, sort sequentially
/// at the cutoff, and combine by concatenation (the degenerate merge).
/// The bucket boundaries depend only on the data, so any recursion shape
/// produces the identical sorted vector.
pub struct RecursiveQuicksort<T> {
    /// Samples per pivot used when dividing (≥ 1).
    pub oversample: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> RecursiveQuicksort<T> {
    /// With the default oversampling factor (8 samples per pivot).
    pub fn new() -> Self {
        Self::with_oversample(8)
    }

    /// With an explicit oversampling factor (≥ 1).
    pub fn with_oversample(oversample: usize) -> Self {
        assert!(oversample >= 1);
        RecursiveQuicksort {
            oversample,
            _marker: PhantomData,
        }
    }
}

impl<T> Default for RecursiveQuicksort<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: SortItem> crate::recursive::Recursive for RecursiveQuicksort<T> {
    type Problem = Vec<T>;
    type Solution = Vec<T>;

    fn size(&self, p: &Vec<T>) -> usize {
        p.len()
    }

    fn divide(&self, p: Vec<T>, k: usize) -> Vec<Vec<T>> {
        bucket_by_sampled_splitters(p, k, self.oversample, |v| *v)
    }

    fn solve(&self, mut p: Vec<T>) -> Vec<T> {
        p.sort_unstable();
        p
    }

    fn combine(&self, parts: Vec<Vec<T>>) -> Vec<T> {
        parts.into_iter().flatten().collect()
    }

    // ---- cost model ------------------------------------------------------
    fn divide_cost(&self, p: &Vec<T>) -> f64 {
        // Pivot sort plus one binary search per element.
        sort_flops(self.oversample) + 2.0 * p.len() as f64
    }
    fn solve_cost(&self, p: &Vec<T>) -> f64 {
        sort_flops(p.len())
    }
    fn combine_cost(&self, parts: &[Vec<T>]) -> f64 {
        parts.iter().map(Vec::len).sum::<usize>() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::{run_shared, run_spmd};
    use archetype_core::{ExecutionMode, PhaseKind, PhaseTrace};
    use archetype_mp::{run_spmd as mp_run, MachineModel};

    fn blocks(nblocks: usize, per: usize) -> Vec<Vec<i64>> {
        (0..nblocks)
            .map(|b| {
                (0..per)
                    .map(|i| ((b * per + i) as i64 * 16807) % 65521 - 32000)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sorts_with_plain_concatenation_merge() {
        let alg = OneDeepQuicksort::<i64>::new();
        for n in [1usize, 2, 5, 8] {
            let input = blocks(n, 400);
            let mut expected: Vec<i64> = input.iter().flatten().copied().collect();
            expected.sort_unstable();
            let out = run_shared(&alg, input, ExecutionMode::Sequential, None);
            let flat: Vec<i64> = out.iter().flatten().copied().collect();
            assert_eq!(flat, expected, "n={n}");
            // Degenerate merge means blocks are already disjoint key ranges.
            for w in out.windows(2) {
                if let (Some(a), Some(b)) = (w[0].last(), w[1].first()) {
                    assert!(a <= b);
                }
            }
        }
    }

    #[test]
    fn modes_and_spmd_agree() {
        let input = blocks(4, 300);
        let alg = OneDeepQuicksort::<i64>::new();
        let seq = run_shared(&alg, input.clone(), ExecutionMode::Sequential, None);
        let par = run_shared(&alg, input.clone(), ExecutionMode::Parallel, None);
        assert_eq!(seq, par);
        let spmd = mp_run(4, MachineModel::ibm_sp(), |ctx| {
            let alg = OneDeepQuicksort::<i64>::new();
            run_spmd(&alg, ctx, input[ctx.rank()].clone())
        });
        assert_eq!(seq, spmd.results);
    }

    #[test]
    fn all_equal_keys_do_not_break_partitioning() {
        let alg = OneDeepQuicksort::<i64>::new();
        let input = vec![vec![7; 100], vec![7; 100], vec![7; 100]];
        let out = run_shared(&alg, input, ExecutionMode::Parallel, None);
        let flat: Vec<i64> = out.iter().flatten().copied().collect();
        assert_eq!(flat, vec![7; 300]);
    }

    #[test]
    fn trace_shows_nontrivial_split_then_degenerate_merge() {
        let alg = OneDeepQuicksort::<i64>::new();
        let trace = PhaseTrace::new();
        run_shared(&alg, blocks(3, 50), ExecutionMode::Sequential, Some(&trace));
        assert!(trace.matches(&[PhaseKind::Split, PhaseKind::Solve, PhaseKind::Merge]));
    }

    #[test]
    fn recursive_quicksort_matches_oracles_at_every_depth() {
        use crate::recursive::{run_shared as run_rec, run_spmd_recursive, CutoffPolicy};
        let input: Vec<i64> = blocks(1, 500).pop().unwrap();
        let mut expected = input.clone();
        expected.sort_unstable();
        for depth in 0..4 {
            let got = run_rec(
                &RecursiveQuicksort::<i64>::new(),
                input.clone(),
                &CutoffPolicy::exact_depth(depth, 3),
                ExecutionMode::Sequential,
                None,
            );
            assert_eq!(got, expected, "depth={depth}");
        }
        let inp = input.clone();
        let out = mp_run(5, MachineModel::ibm_sp(), move |ctx| {
            let local = (ctx.rank() == 0).then(|| inp.clone());
            run_spmd_recursive(
                &RecursiveQuicksort::<i64>::new(),
                ctx,
                local,
                &CutoffPolicy::exact_depth(3, 2),
                None,
            )
        });
        assert_eq!(out.results[0].as_ref().unwrap(), &expected);
    }

    #[test]
    fn recursive_quicksort_survives_all_equal_keys() {
        use crate::recursive::{run_shared as run_rec, CutoffPolicy};
        // Every element lands in one bucket; the depth cap terminates the
        // recursion and the answer is still correct.
        let got = run_rec(
            &RecursiveQuicksort::<i64>::new(),
            vec![7i64; 200],
            &CutoffPolicy::exact_depth(5, 2),
            ExecutionMode::Sequential,
            None,
        );
        assert_eq!(got, vec![7i64; 200]);
    }

    #[test]
    fn empty_blocks_are_fine() {
        let alg = OneDeepQuicksort::<i64>::new();
        let input = vec![vec![], vec![3, 1, 2], vec![]];
        let out = run_shared(&alg, input, ExecutionMode::Sequential, None);
        let flat: Vec<i64> = out.iter().flatten().copied().collect();
        assert_eq!(flat, vec![1, 2, 3]);
    }
}
