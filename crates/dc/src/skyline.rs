//! The skyline problem (paper §2.5.1): merge a collection of rectangular
//! buildings into a single skyline.
//!
//! The one-deep version mirrors one-deep mergesort: a degenerate split
//! (buildings are pre-distributed), a local solve (sequential
//! divide-and-conquer skyline per process), and a merge phase that samples
//! the local skylines' extents, computes vertical splitter lines, cuts every
//! local skyline into `N` regions, redistributes so process `i` receives all
//! skyline pieces in region `i`, and merges them locally. The concatenation
//! of the local skylines is the final skyline.

use crate::geometry::{canonicalize_skyline, Building, SkyPoint};
use crate::skeleton::OneDeep;

/// Merge two piecewise-constant skylines into their pointwise maximum.
///
/// Unlike textbook skyline merges this does *not* assume the inputs end at
/// height zero: a clipped skyline piece may end at positive height that
/// persists to the region boundary, and the sweep keeps applying `max`
/// with each side's running height to the end.
pub fn merge_skylines(a: &[SkyPoint], b: &[SkyPoint]) -> Vec<SkyPoint> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    let (mut ha, mut hb) = (0.0f64, 0.0f64);
    while ia < a.len() || ib < b.len() {
        let xa = a.get(ia).map(|p| p.x).unwrap_or(f64::INFINITY);
        let xb = b.get(ib).map(|p| p.x).unwrap_or(f64::INFINITY);
        let x = xa.min(xb);
        if xa <= x {
            ha = a[ia].h;
            ia += 1;
        }
        if xb <= x {
            hb = b[ib].h;
            ib += 1;
        }
        out.push(SkyPoint::new(x, ha.max(hb)));
    }
    canonicalize_skyline(&out)
}

/// Sequential divide-and-conquer skyline of a set of buildings —
/// the paper's base algorithm and the local solve of the one-deep version.
pub fn sequential_skyline(buildings: &[Building]) -> Vec<SkyPoint> {
    match buildings.len() {
        0 => Vec::new(),
        1 => {
            let b = buildings[0];
            if b.height == 0.0 {
                Vec::new()
            } else {
                vec![SkyPoint::new(b.left, b.height), SkyPoint::new(b.right, 0.0)]
            }
        }
        n => {
            let (l, r) = buildings.split_at(n / 2);
            merge_skylines(&sequential_skyline(l), &sequential_skyline(r))
        }
    }
}

/// Clip a skyline to the half-open range `[a, b)`: the points inside the
/// range plus, when `a` is finite, a point fixing the height active at `a`.
pub fn clip_skyline(sky: &[SkyPoint], a: f64, b: f64) -> Vec<SkyPoint> {
    let mut out = Vec::new();
    if a.is_finite() {
        // Height in force at position `a`: the last change at x <= a.
        let idx = sky.partition_point(|p| p.x <= a);
        let h = if idx == 0 { 0.0 } else { sky[idx - 1].h };
        out.push(SkyPoint::new(a, h));
    }
    out.extend(sky.iter().copied().filter(|p| p.x > a && p.x < b));
    canonicalize_skyline(&out)
}

/// The one-deep skyline algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct OneDeepSkyline;

impl OneDeep for OneDeepSkyline {
    type In = Vec<Building>;
    type Mid = Vec<SkyPoint>;
    type Out = Vec<SkyPoint>;
    type SplitParams = ();
    type MergeParams = Vec<f64>; // the vertical splitter lines
    type SplitSample = ();
    type MergeSample = (f64, f64); // (leftmost, rightmost) of the local skyline

    // Degenerate split.
    fn split_sample(&self, _local: &Vec<Building>) {}
    fn split_params(&self, _samples: &[()], _nparts: usize) {}
    fn split_partition(
        &self,
        local: Vec<Building>,
        _p: &(),
        nparts: usize,
        self_idx: usize,
    ) -> Vec<Vec<Building>> {
        let mut out: Vec<Vec<Building>> = (0..nparts).map(|_| Vec::new()).collect();
        out[self_idx] = local;
        out
    }
    fn split_assemble(&self, pieces: Vec<Vec<Building>>) -> Vec<Building> {
        pieces.into_iter().flatten().collect()
    }

    fn solve(&self, local: Vec<Building>) -> Vec<SkyPoint> {
        sequential_skyline(&local)
    }

    // "Sample the data locally … find the leftmost and the rightmost
    // points of each local skyline."
    fn merge_sample(&self, local: &Vec<SkyPoint>) -> (f64, f64) {
        match (local.first(), local.last()) {
            (Some(f), Some(l)) => (f.x, l.x),
            _ => (f64::INFINITY, f64::NEG_INFINITY),
        }
    }

    // "Compute splitters, which are the locations of vertical lines that
    // cut all local skylines into N regions."
    fn merge_params(&self, samples: &[(f64, f64)], nparts: usize) -> Vec<f64> {
        let lo = samples.iter().map(|s| s.0).fold(f64::INFINITY, f64::min);
        let hi = samples
            .iter()
            .map(|s| s.1)
            .fold(f64::NEG_INFINITY, f64::max);
        if nparts <= 1 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return vec![f64::INFINITY; nparts.saturating_sub(1)];
        }
        (1..nparts)
            .map(|i| lo + (hi - lo) * i as f64 / nparts as f64)
            .collect()
    }

    // "Use these splitters to split each skyline into N adjacent regions."
    fn merge_partition(
        &self,
        local: Vec<SkyPoint>,
        splitters: &Vec<f64>,
        nparts: usize,
        _self_idx: usize,
    ) -> Vec<Vec<SkyPoint>> {
        let mut out = Vec::with_capacity(nparts);
        let mut lo = f64::NEG_INFINITY;
        for d in 0..nparts {
            let hi = if d < splitters.len() {
                splitters[d]
            } else {
                f64::INFINITY
            };
            out.push(clip_skyline(&local, lo, hi));
            lo = hi;
        }
        out
    }

    // "In each process combine the buildings using the merge algorithm
    // from the sequential algorithm."
    fn merge_assemble(&self, pieces: Vec<Vec<SkyPoint>>) -> Vec<SkyPoint> {
        let mut acc: Vec<SkyPoint> = Vec::new();
        for p in pieces {
            acc = merge_skylines(&acc, &p);
        }
        acc
    }

    // ---- cost model --------------------------------------------------------
    fn solve_cost(&self, local: &Vec<Building>) -> f64 {
        let n = local.len().max(1) as f64;
        8.0 * n * n.log2().max(1.0)
    }
    fn merge_partition_cost(&self, local: &Vec<SkyPoint>) -> f64 {
        2.0 * local.len() as f64
    }
    fn merge_assemble_cost(&self, pieces: &[Vec<SkyPoint>]) -> f64 {
        4.0 * pieces.iter().map(Vec::len).sum::<usize>() as f64
    }
}

/// Concatenate per-process skyline blocks into the global skyline.
pub fn concat_skyline(blocks: &[Vec<SkyPoint>]) -> Vec<SkyPoint> {
    let all: Vec<SkyPoint> = blocks.iter().flatten().copied().collect();
    canonicalize_skyline(&all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::{run_shared, run_spmd};
    use archetype_core::ExecutionMode;
    use archetype_mp::{run_spmd as mp_run, MachineModel};

    fn b(l: f64, h: f64, r: f64) -> Building {
        Building::new(l, h, r)
    }

    #[test]
    fn single_building_skyline() {
        let sky = sequential_skyline(&[b(1.0, 5.0, 3.0)]);
        assert_eq!(sky, vec![SkyPoint::new(1.0, 5.0), SkyPoint::new(3.0, 0.0)]);
    }

    #[test]
    fn classic_textbook_case() {
        // The canonical LeetCode-style example.
        let buildings = [
            b(2.0, 10.0, 9.0),
            b(3.0, 15.0, 7.0),
            b(5.0, 12.0, 12.0),
            b(15.0, 10.0, 20.0),
            b(19.0, 8.0, 24.0),
        ];
        let sky = sequential_skyline(&buildings);
        let expected = vec![
            SkyPoint::new(2.0, 10.0),
            SkyPoint::new(3.0, 15.0),
            SkyPoint::new(7.0, 12.0),
            SkyPoint::new(12.0, 0.0),
            SkyPoint::new(15.0, 10.0),
            SkyPoint::new(20.0, 8.0),
            SkyPoint::new(24.0, 0.0),
        ];
        assert_eq!(sky, expected);
    }

    #[test]
    fn overlapping_equal_heights_fuse() {
        let sky = sequential_skyline(&[b(0.0, 4.0, 2.0), b(1.0, 4.0, 3.0)]);
        assert_eq!(sky, vec![SkyPoint::new(0.0, 4.0), SkyPoint::new(3.0, 0.0)]);
    }

    #[test]
    fn merge_handles_persistent_heights() {
        // A piece ending at positive height must keep dominating.
        let a = vec![SkyPoint::new(0.0, 5.0)]; // height 5 forever after 0
        let b_ = vec![SkyPoint::new(1.0, 2.0), SkyPoint::new(2.0, 0.0)];
        let m = merge_skylines(&a, &b_);
        assert_eq!(m, vec![SkyPoint::new(0.0, 5.0)]);
    }

    #[test]
    fn clip_inserts_boundary_height() {
        let sky = vec![SkyPoint::new(0.0, 5.0), SkyPoint::new(10.0, 0.0)];
        let piece = clip_skyline(&sky, 4.0, 8.0);
        assert_eq!(piece, vec![SkyPoint::new(4.0, 5.0)]);
        let piece2 = clip_skyline(&sky, -100.0, 5.0);
        assert_eq!(piece2, vec![SkyPoint::new(0.0, 5.0)]);
    }

    fn building_blocks(nblocks: usize, per: usize) -> Vec<Vec<Building>> {
        (0..nblocks)
            .map(|k| {
                (0..per)
                    .map(|i| {
                        let seed = (k * per + i) as f64;
                        let left = (seed * 7.3) % 100.0;
                        let width = 1.0 + (seed * 3.1) % 9.0;
                        let height = 1.0 + (seed * 5.7) % 50.0;
                        b(left, height, left + width)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn one_deep_matches_sequential() {
        for n in [1usize, 2, 4, 6] {
            let input = building_blocks(n, 60);
            let all: Vec<Building> = input.iter().flatten().copied().collect();
            let expected = sequential_skyline(&all);
            let out = run_shared(&OneDeepSkyline, input, ExecutionMode::Sequential, None);
            assert_eq!(concat_skyline(&out), expected, "n={n}");
        }
    }

    #[test]
    fn modes_and_spmd_agree() {
        let input = building_blocks(4, 40);
        let all: Vec<Building> = input.iter().flatten().copied().collect();
        let expected = sequential_skyline(&all);
        let seq = run_shared(
            &OneDeepSkyline,
            input.clone(),
            ExecutionMode::Sequential,
            None,
        );
        let par = run_shared(
            &OneDeepSkyline,
            input.clone(),
            ExecutionMode::Parallel,
            None,
        );
        assert_eq!(seq, par);
        let spmd = mp_run(4, MachineModel::ibm_sp(), |ctx| {
            run_spmd(&OneDeepSkyline, ctx, input[ctx.rank()].clone())
        });
        assert_eq!(seq, spmd.results);
        assert_eq!(concat_skyline(&spmd.results), expected);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let out = run_shared(
            &OneDeepSkyline,
            vec![vec![], vec![]],
            ExecutionMode::Sequential,
            None,
        );
        assert!(concat_skyline(&out).is_empty());

        let one = vec![vec![b(0.0, 1.0, 1.0)], vec![]];
        let out = run_shared(&OneDeepSkyline, one, ExecutionMode::Sequential, None);
        assert_eq!(
            concat_skyline(&out),
            vec![SkyPoint::new(0.0, 1.0), SkyPoint::new(1.0, 0.0)]
        );
    }

    #[test]
    fn disjoint_towers_across_processes() {
        // Buildings that do not overlap at all across processes.
        let input = vec![
            vec![b(0.0, 3.0, 1.0)],
            vec![b(10.0, 7.0, 11.0)],
            vec![b(20.0, 1.0, 21.0)],
        ];
        let all: Vec<Building> = input.iter().flatten().copied().collect();
        let expected = sequential_skyline(&all);
        let out = run_shared(&OneDeepSkyline, input, ExecutionMode::Parallel, None);
        assert_eq!(concat_skyline(&out), expected);
    }
}
