//! The one-deep divide-and-conquer skeleton (paper §2.1.2–§2.3).
//!
//! An algorithm instance describes, through the [`OneDeep`] trait, how to:
//!
//! 1. **Split** — sample the local input, combine samples into split
//!    parameters, partition local input into one piece per process, and
//!    assemble received pieces into the new local input;
//! 2. **Solve** — solve the local subproblem sequentially;
//! 3. **Merge** — sample the local subsolution, combine samples into merge
//!    parameters ("splitters"), repartition the local subsolution, and
//!    locally merge the received pieces.
//!
//! Either phase may be *degenerate* (paper: "for many problems either the
//! split or the merge step is degenerate"): a degenerate partition puts the
//! whole local block in the process's own slot and empty blocks elsewhere.
//!
//! Two drivers execute the same trait:
//!
//! - [`run_shared`] is the paper's "version 1": a `parfor` over process
//!   indices on shared memory, runnable sequentially or with rayon, with
//!   identical results;
//! - [`run_spmd`] is "version 2": one SPMD process per block over the
//!   message-passing substrate, with all-to-all redistribution and
//!   replicated parameter computation, charged against the virtual clock.
//!
//! Equality of the three executions is the paper's semantics-preservation
//! claim, asserted by this crate's tests for every application.

use archetype_core::{parfor_map, parfor_map_vec, ExecutionMode, PhaseKind, PhaseTrace};
use archetype_mp::{Ctx, Payload};

/// A problem expressed in one-deep divide-and-conquer form.
///
/// `In` is a process's block of problem input, `Mid` its subsolution after
/// the solve phase, and `Out` its block of the final output. The `*_cost`
/// hooks report modeled flop counts for the virtual clock; they default to
/// zero (useful for tests) and are overridden by the applications.
pub trait OneDeep: Sync {
    /// A local block of problem input.
    type In: Send + Sync;
    /// A local subsolution.
    type Mid: Send + Sync;
    /// A local block of the final output.
    type Out: Send;
    /// Parameters of the split phase (e.g. pivots). `()` when degenerate.
    type SplitParams: Clone + Send + Sync;
    /// Parameters of the merge phase (e.g. splitters). `()` when degenerate.
    type MergeParams: Clone + Send + Sync;
    /// Per-process sample from which split parameters are computed.
    type SplitSample: Clone + Send;
    /// Per-process sample from which merge parameters are computed.
    type MergeSample: Clone + Send;

    // ---- split phase -----------------------------------------------------

    /// Sample the local input ("parameters for the split are computed using
    /// a small sample of the problem data").
    fn split_sample(&self, local: &Self::In) -> Self::SplitSample;

    /// Combine all processes' samples into the split parameters.
    fn split_params(&self, samples: &[Self::SplitSample], nparts: usize) -> Self::SplitParams;

    /// Partition the local input into `nparts` pieces; piece `d` will be
    /// delivered to process `d`. `self_idx` is this process's index, so a
    /// degenerate split can keep everything local.
    fn split_partition(
        &self,
        local: Self::In,
        params: &Self::SplitParams,
        nparts: usize,
        self_idx: usize,
    ) -> Vec<Self::In>;

    /// Assemble the pieces received from all processes (in source order)
    /// into this process's new local input.
    fn split_assemble(&self, pieces: Vec<Self::In>) -> Self::In;

    // ---- solve phase -----------------------------------------------------

    /// Solve the local subproblem with a sequential algorithm.
    fn solve(&self, local: Self::In) -> Self::Mid;

    // ---- merge phase -----------------------------------------------------

    /// Sample the local subsolution.
    fn merge_sample(&self, local: &Self::Mid) -> Self::MergeSample;

    /// Combine all processes' samples into the merge parameters
    /// (the "splitters" of the paper's mergesort).
    fn merge_params(&self, samples: &[Self::MergeSample], nparts: usize) -> Self::MergeParams;

    /// Repartition the local subsolution into `nparts` pieces for
    /// redistribution; piece `d` goes to process `d`.
    fn merge_partition(
        &self,
        local: Self::Mid,
        params: &Self::MergeParams,
        nparts: usize,
        self_idx: usize,
    ) -> Vec<Self::Mid>;

    /// Locally merge the pieces received from all processes (in source
    /// order) into this process's block of the final output.
    fn merge_assemble(&self, pieces: Vec<Self::Mid>) -> Self::Out;

    // ---- modeled costs (flop-equivalents) for the virtual clock ----------

    /// Cost of sampling + partitioning the local input in the split phase.
    fn split_cost(&self, _local: &Self::In) -> f64 {
        0.0
    }
    /// Cost of computing split/merge parameters from `nparts` samples.
    fn params_cost(&self, _nparts: usize) -> f64 {
        0.0
    }
    /// Cost of the sequential local solve.
    fn solve_cost(&self, _local: &Self::In) -> f64 {
        0.0
    }
    /// Cost of sampling + repartitioning the local subsolution.
    fn merge_partition_cost(&self, _local: &Self::Mid) -> f64 {
        0.0
    }
    /// Cost of the local merge of received pieces.
    fn merge_assemble_cost(&self, _pieces: &[Self::Mid]) -> f64 {
        0.0
    }
}

/// Transpose a `src × dest` matrix of pieces into `dest × src` — the
/// shared-memory equivalent of the all-to-all exchange.
pub fn transpose<T>(rows: Vec<Vec<T>>) -> Vec<Vec<T>> {
    if rows.is_empty() {
        return Vec::new();
    }
    let ncols = rows[0].len();
    debug_assert!(rows.iter().all(|r| r.len() == ncols));
    let mut cols: Vec<Vec<T>> = (0..ncols).map(|_| Vec::with_capacity(rows.len())).collect();
    for row in rows {
        for (c, item) in row.into_iter().enumerate() {
            cols[c].push(item);
        }
    }
    cols
}

/// Execute the one-deep skeleton on shared memory ("version 1").
///
/// `inputs[i]` is the initial block of logical process `i`; the return
/// value's slot `i` is that process's block of the output. With
/// `ExecutionMode::Sequential` every `parfor` runs as a `for`, which is the
/// paper's sequentially-debuggable initial version; results are identical
/// in both modes for deterministic algorithms.
///
/// ```
/// use archetype_core::ExecutionMode;
/// use archetype_dc::{run_shared, OneDeepMergesort};
///
/// let alg = OneDeepMergesort::<i64>::new();
/// let out = run_shared(&alg, vec![vec![3, 1], vec![2]], ExecutionMode::Sequential, None);
/// let flat: Vec<i64> = out.into_iter().flatten().collect();
/// assert_eq!(flat, vec![1, 2, 3]);
/// ```
pub fn run_shared<A: OneDeep>(
    alg: &A,
    inputs: Vec<A::In>,
    mode: ExecutionMode,
    trace: Option<&PhaseTrace>,
) -> Vec<A::Out> {
    let n = inputs.len();
    assert!(n > 0, "need at least one block");

    // Split phase.
    if let Some(t) = trace {
        t.record(PhaseKind::Split, "compute split parameters and partition");
    }
    let samples = parfor_map(mode, n, |i| alg.split_sample(&inputs[i]));
    let sparams = alg.split_params(&samples, n);
    let partitioned = parfor_map_vec(mode, inputs, |i, local| {
        alg.split_partition(local, &sparams, n, i)
    });
    let exchanged = transpose(partitioned);
    let locals = parfor_map_vec(mode, exchanged, |_i, pieces| alg.split_assemble(pieces));

    // Solve phase.
    if let Some(t) = trace {
        t.record(PhaseKind::Solve, "independent local solves");
    }
    let mids = parfor_map_vec(mode, locals, |_i, local| alg.solve(local));

    // Merge phase.
    if let Some(t) = trace {
        t.record(
            PhaseKind::Merge,
            "compute merge parameters, repartition, merge locally",
        );
    }
    let msamples = parfor_map(mode, n, |i| alg.merge_sample(&mids[i]));
    let mparams = alg.merge_params(&msamples, n);
    let repartitioned = parfor_map_vec(mode, mids, |i, local| {
        alg.merge_partition(local, &mparams, n, i)
    });
    let exchanged = transpose(repartitioned);
    parfor_map_vec(mode, exchanged, |_i, pieces| alg.merge_assemble(pieces))
}

/// Execute the one-deep skeleton as one SPMD process ("version 2").
///
/// Must be called from within [`archetype_mp::run_spmd`] by every rank.
/// Split/merge parameters are computed redundantly in every process from
/// all-gathered samples (one of the strategies in paper §2.2); data moves
/// via all-to-all exchanges. Compute phases are charged to the virtual
/// clock through the algorithm's `*_cost` hooks.
pub fn run_spmd<A>(alg: &A, ctx: &mut Ctx, local: A::In) -> A::Out
where
    A: OneDeep,
    A::In: Payload,
    A::Mid: Payload,
    A::SplitSample: Payload + Sync,
    A::MergeSample: Payload + Sync,
{
    let n = ctx.nprocs();
    let me = ctx.rank();

    // Split phase: samples -> (replicated) parameters -> all-to-all.
    ctx.charge_flops(alg.split_cost(&local));
    let samples = ctx.all_gather(alg.split_sample(&local));
    let sparams = alg.split_params(&samples, n);
    ctx.charge_flops(alg.params_cost(n));
    let pieces = alg.split_partition(local, &sparams, n, me);
    let received = ctx.all_to_all(pieces);
    let local = alg.split_assemble(received);

    // Solve phase.
    ctx.charge_flops(alg.solve_cost(&local));
    let mid = alg.solve(local);

    // Merge phase: samples -> (replicated) parameters -> all-to-all -> merge.
    ctx.charge_flops(alg.merge_partition_cost(&mid));
    let msamples = ctx.all_gather(alg.merge_sample(&mid));
    let mparams = alg.merge_params(&msamples, n);
    ctx.charge_flops(alg.params_cost(n));
    let pieces = alg.merge_partition(mid, &mparams, n, me);
    let received = ctx.all_to_all(pieces);
    ctx.charge_flops(alg.merge_assemble_cost(&received));
    alg.merge_assemble(received)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_is_involution() {
        let m = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let t = transpose(m.clone());
        assert_eq!(t, vec![vec![1, 4], vec![2, 5], vec![3, 6]]);
        assert_eq!(transpose(t), m);
    }

    #[test]
    fn transpose_empty() {
        let m: Vec<Vec<u8>> = vec![];
        assert!(transpose(m).is_empty());
    }

    /// A toy one-deep algorithm: "sort" blocks of numbers with degenerate
    /// split and splitter-free merge (route every value to the process that
    /// owns its residue class, then sort locally). Exercises the driver
    /// plumbing without real sampling.
    struct ResidueRoute;

    impl OneDeep for ResidueRoute {
        type In = Vec<u64>;
        type Mid = Vec<u64>;
        type Out = Vec<u64>;
        type SplitParams = ();
        type MergeParams = ();
        type SplitSample = ();
        type MergeSample = ();

        fn split_sample(&self, _l: &Vec<u64>) {}
        fn split_params(&self, _s: &[()], _n: usize) {}
        fn split_partition(
            &self,
            local: Vec<u64>,
            _p: &(),
            nparts: usize,
            self_idx: usize,
        ) -> Vec<Vec<u64>> {
            // Degenerate split: keep everything local.
            let mut out: Vec<Vec<u64>> = (0..nparts).map(|_| Vec::new()).collect();
            out[self_idx] = local;
            out
        }
        fn split_assemble(&self, pieces: Vec<Vec<u64>>) -> Vec<u64> {
            pieces.into_iter().flatten().collect()
        }
        fn solve(&self, mut local: Vec<u64>) -> Vec<u64> {
            local.sort_unstable();
            local
        }
        fn merge_sample(&self, _l: &Vec<u64>) {}
        fn merge_params(&self, _s: &[()], _n: usize) {}
        fn merge_partition(
            &self,
            local: Vec<u64>,
            _p: &(),
            nparts: usize,
            _self_idx: usize,
        ) -> Vec<Vec<u64>> {
            let mut out: Vec<Vec<u64>> = (0..nparts).map(|_| Vec::new()).collect();
            for v in local {
                out[(v % nparts as u64) as usize].push(v);
            }
            out
        }
        fn merge_assemble(&self, pieces: Vec<Vec<u64>>) -> Vec<u64> {
            let mut all: Vec<u64> = pieces.into_iter().flatten().collect();
            all.sort_unstable();
            all
        }
    }

    fn toy_inputs(n: usize) -> Vec<Vec<u64>> {
        (0..n)
            .map(|i| {
                (0..50u64)
                    .map(|j| (j * 7919 + i as u64 * 104729) % 1000)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn shared_modes_agree() {
        for n in [1usize, 2, 3, 5, 8] {
            let seq = run_shared(
                &ResidueRoute,
                toy_inputs(n),
                ExecutionMode::Sequential,
                None,
            );
            let par = run_shared(&ResidueRoute, toy_inputs(n), ExecutionMode::Parallel, None);
            assert_eq!(seq, par, "n={n}");
        }
    }

    #[test]
    fn spmd_agrees_with_shared() {
        use archetype_mp::{run_spmd as mp_run, MachineModel};
        for n in [1usize, 2, 4, 7] {
            let shared = run_shared(
                &ResidueRoute,
                toy_inputs(n),
                ExecutionMode::Sequential,
                None,
            );
            let inputs = toy_inputs(n);
            let spmd = mp_run(n, MachineModel::ibm_sp(), |ctx| {
                let local = inputs[ctx.rank()].clone();
                run_spmd(&ResidueRoute, ctx, local)
            });
            assert_eq!(shared, spmd.results, "n={n}");
        }
    }

    #[test]
    fn every_output_block_holds_one_residue_class() {
        let n = 4;
        let out = run_shared(&ResidueRoute, toy_inputs(n), ExecutionMode::Parallel, None);
        for (i, block) in out.iter().enumerate() {
            assert!(block.iter().all(|v| (*v % n as u64) as usize == i));
            assert!(block.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn trace_records_split_solve_merge() {
        let trace = PhaseTrace::new();
        run_shared(
            &ResidueRoute,
            toy_inputs(2),
            ExecutionMode::Sequential,
            Some(&trace),
        );
        assert!(trace.matches(&[PhaseKind::Split, PhaseKind::Solve, PhaseKind::Merge]));
    }
}
