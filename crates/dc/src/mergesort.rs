//! One-deep mergesort (paper §2.4, Figures 4–5) — the archetype's primary
//! application, plus the sequential reference algorithm.
//!
//! The one-deep version:
//! - **split** is degenerate ("the initial distribution of data among
//!   processes is taken to be the split");
//! - **solve** sorts each local block with an efficient sequential sort;
//! - **merge** computes `N−1` splitters from regularly sampled local data
//!   (parallel sorting by regular sampling, the paper's cited approach),
//!   splits each local sorted run at the splitters, redistributes the
//!   sublists all-to-all so process `i` receives every element in the
//!   `i`-th key range, and merges the received sorted runs locally.
//!
//! After the algorithm, process `i`'s block is sorted and entirely between
//! its neighbours' blocks, so the concatenation of blocks is sorted.

use std::marker::PhantomData;

use archetype_mp::FixedSize;

use crate::skeleton::OneDeep;
use crate::traditional::{merge_flops, merge_two, sort_flops};

/// Elements sortable by the one-deep mergesort: POD, totally ordered.
pub trait SortItem: FixedSize + Ord + Send + Sync {}
impl<T: FixedSize + Ord + Send + Sync> SortItem for T {}

/// The one-deep mergesort algorithm.
///
/// `oversample` is the number of regular samples taken per process for
/// splitter computation; `nparts · oversample` samples are sorted
/// centrally (replicated), from which `nparts − 1` splitters are chosen.
/// Larger values balance better at slightly higher parameter cost.
pub struct OneDeepMergesort<T> {
    /// Samples per process used to compute splitters.
    pub oversample: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> OneDeepMergesort<T> {
    /// With the default oversampling factor (8 samples per process).
    pub fn new() -> Self {
        Self::with_oversample(8)
    }

    /// With an explicit oversampling factor (≥ 1).
    pub fn with_oversample(oversample: usize) -> Self {
        assert!(oversample >= 1);
        OneDeepMergesort {
            oversample,
            _marker: PhantomData,
        }
    }
}

impl<T> Default for OneDeepMergesort<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Evenly spaced sample of `k` elements from a slice (fewer if the slice
/// is shorter).
fn regular_sample<T: Copy>(data: &[T], k: usize) -> Vec<T> {
    if data.is_empty() || k == 0 {
        return Vec::new();
    }
    let k = k.min(data.len());
    // Midpoints of k equal strata: index (2i+1)·len / 2k < len.
    (0..k)
        .map(|i| data[((2 * i + 1) * data.len()) / (2 * k)])
        .collect()
}

/// Merge `k` sorted runs into one sorted vector (tournament by repeated
/// pairwise merging, `O(n log k)`).
pub fn merge_k<T: Ord>(mut runs: Vec<Vec<T>>) -> Vec<T> {
    runs.retain(|r| !r.is_empty());
    if runs.is_empty() {
        return Vec::new();
    }
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().expect("one run remains")
}

impl<T: SortItem> OneDeep for OneDeepMergesort<T> {
    type In = Vec<T>;
    type Mid = Vec<T>;
    type Out = Vec<T>;
    type SplitParams = ();
    type MergeParams = Vec<T>;
    type SplitSample = ();
    type MergeSample = Vec<T>;

    // Degenerate split: the initial distribution *is* the split.
    fn split_sample(&self, _local: &Vec<T>) {}
    fn split_params(&self, _samples: &[()], _nparts: usize) {}
    fn split_partition(
        &self,
        local: Vec<T>,
        _params: &(),
        nparts: usize,
        self_idx: usize,
    ) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = (0..nparts).map(|_| Vec::new()).collect();
        out[self_idx] = local;
        out
    }
    fn split_assemble(&self, pieces: Vec<Vec<T>>) -> Vec<T> {
        pieces.into_iter().flatten().collect()
    }

    fn solve(&self, mut local: Vec<T>) -> Vec<T> {
        local.sort_unstable();
        local
    }

    fn merge_sample(&self, local: &Vec<T>) -> Vec<T> {
        regular_sample(local, self.oversample)
    }

    fn merge_params(&self, samples: &[Vec<T>], nparts: usize) -> Vec<T> {
        let mut all: Vec<T> = samples.iter().flatten().copied().collect();
        all.sort_unstable();
        if all.is_empty() || nparts <= 1 {
            return Vec::new();
        }
        (1..nparts).map(|i| all[(i * all.len()) / nparts]).collect()
    }

    fn merge_partition(
        &self,
        local: Vec<T>,
        splitters: &Vec<T>,
        nparts: usize,
        _self_idx: usize,
    ) -> Vec<Vec<T>> {
        // local is sorted; cut it at the splitters with binary search.
        let mut out: Vec<Vec<T>> = Vec::with_capacity(nparts);
        let mut rest = local;
        for s in splitters {
            let cut = rest.partition_point(|v| v <= s);
            let tail = rest.split_off(cut);
            out.push(rest);
            rest = tail;
        }
        out.push(rest);
        while out.len() < nparts {
            out.push(Vec::new());
        }
        out
    }

    fn merge_assemble(&self, pieces: Vec<Vec<T>>) -> Vec<T> {
        merge_k(pieces)
    }

    // ---- cost model (Figure 6) -------------------------------------------
    fn solve_cost(&self, local: &Vec<T>) -> f64 {
        sort_flops(local.len())
    }
    fn params_cost(&self, nparts: usize) -> f64 {
        sort_flops(nparts * self.oversample)
    }
    fn merge_partition_cost(&self, local: &Vec<T>) -> f64 {
        // binary searches + split bookkeeping: ~log n per splitter plus
        // linear repacking.
        local.len() as f64
    }
    fn merge_assemble_cost(&self, pieces: &[Vec<T>]) -> f64 {
        let total: usize = pieces.iter().map(Vec::len).sum();
        let k = pieces.iter().filter(|p| !p.is_empty()).count().max(1);
        merge_flops(total) * (k as f64).log2().max(1.0)
    }
}

/// Mergesort in general recursive divide-and-conquer form
/// ([`crate::recursive::Recursive`]): divide a block positionally into
/// `k` balanced chunks, sort chunks sequentially at the cutoff, and
/// `k`-way-merge subsolutions up the combining tree. Depth-insensitive by
/// construction — any recursion shape yields the identical sorted vector
/// — so it matches [`OneDeepMergesort`] and [`sequential_mergesort`] as
/// oracles at every depth and rank count.
pub struct RecursiveMergesort<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> RecursiveMergesort<T> {
    /// Construct the algorithm (it has no tuning parameters: the divide
    /// is positional, so no sampling is involved).
    pub fn new() -> Self {
        RecursiveMergesort {
            _marker: PhantomData,
        }
    }
}

impl<T> Default for RecursiveMergesort<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Split a vector positionally into `k` balanced contiguous chunks.
pub(crate) fn chunk_evenly<T>(mut data: Vec<T>, k: usize) -> Vec<Vec<T>> {
    let n = data.len();
    let mut out = Vec::with_capacity(k);
    for j in (1..k).rev() {
        let (start, _) = archetype_mp::topology::block_range(n, k, j);
        out.push(data.split_off(start));
    }
    out.push(data);
    out.reverse();
    out
}

impl<T: SortItem> crate::recursive::Recursive for RecursiveMergesort<T> {
    type Problem = Vec<T>;
    type Solution = Vec<T>;

    fn size(&self, p: &Vec<T>) -> usize {
        p.len()
    }

    fn divide(&self, p: Vec<T>, k: usize) -> Vec<Vec<T>> {
        chunk_evenly(p, k)
    }

    fn solve(&self, mut p: Vec<T>) -> Vec<T> {
        p.sort_unstable();
        p
    }

    fn combine(&self, parts: Vec<Vec<T>>) -> Vec<T> {
        merge_k(parts)
    }

    // ---- cost model ------------------------------------------------------
    fn divide_cost(&self, p: &Vec<T>) -> f64 {
        // The split inspects/copies the whole block (the paper's first
        // inefficiency of the traditional structure).
        p.len() as f64
    }
    fn solve_cost(&self, p: &Vec<T>) -> f64 {
        sort_flops(p.len())
    }
    fn combine_cost(&self, parts: &[Vec<T>]) -> f64 {
        let total: usize = parts.iter().map(Vec::len).sum();
        let k = parts.iter().filter(|p| !p.is_empty()).count().max(1);
        merge_flops(total) * (k as f64).log2().max(1.0)
    }
}

/// Sequential mergesort — the baseline all Figure 6 speedups are relative
/// to, and the reference implementation in correctness tests.
pub fn sequential_mergesort<T: Ord>(data: Vec<T>) -> Vec<T> {
    if data.len() <= 1 {
        return data;
    }
    let mut data = data;
    let right = data.split_off(data.len() / 2);
    merge_two(sequential_mergesort(data), sequential_mergesort(right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::{run_shared, run_spmd};
    use archetype_core::ExecutionMode;
    use archetype_mp::{run_spmd as mp_run, MachineModel};

    fn blocks(nblocks: usize, per: usize) -> Vec<Vec<i64>> {
        (0..nblocks)
            .map(|b| {
                (0..per)
                    .map(|i| ((b * per + i) as i64 * 48271) % 99991 - 50000)
                    .collect()
            })
            .collect()
    }

    fn flat_sorted(blocks: &[Vec<i64>]) -> Vec<i64> {
        let mut all: Vec<i64> = blocks.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn sequential_mergesort_sorts() {
        let input = blocks(1, 1234).pop().unwrap();
        let mut expected = input.clone();
        expected.sort_unstable();
        assert_eq!(sequential_mergesort(input), expected);
        assert_eq!(sequential_mergesort(Vec::<i64>::new()), vec![]);
        assert_eq!(sequential_mergesort(vec![5]), vec![5]);
    }

    #[test]
    fn merge_k_merges_many_runs() {
        let runs = vec![vec![1, 5, 9], vec![2, 6], vec![], vec![3, 4, 7, 8]];
        assert_eq!(merge_k(runs), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(merge_k(Vec::<Vec<i32>>::new()), Vec::<i32>::new());
    }

    #[test]
    fn one_deep_sorts_and_blocks_are_ordered() {
        let alg = OneDeepMergesort::<i64>::new();
        for n in [1usize, 2, 4, 7] {
            let input = blocks(n, 500);
            let expected = flat_sorted(&input);
            let out = run_shared(&alg, input, ExecutionMode::Sequential, None);
            // Concatenation is the sorted array...
            let flat: Vec<i64> = out.iter().flatten().copied().collect();
            assert_eq!(flat, expected, "n={n}");
            // ...and each block is itself sorted ("process i's list is
            // larger than process i-1's and smaller than process i+1's").
            for w in out.windows(2) {
                if let (Some(a), Some(b)) = (w[0].last(), w[1].first()) {
                    assert!(a <= b);
                }
            }
        }
    }

    #[test]
    fn version1_sequential_equals_parallel() {
        let alg = OneDeepMergesort::<i64>::new();
        let seq = run_shared(&alg, blocks(6, 333), ExecutionMode::Sequential, None);
        let par = run_shared(&alg, blocks(6, 333), ExecutionMode::Parallel, None);
        assert_eq!(seq, par);
    }

    #[test]
    fn version2_spmd_equals_version1() {
        let alg = OneDeepMergesort::<i64>::new();
        for n in [1usize, 3, 4, 8] {
            let input = blocks(n, 250);
            let shared = run_shared(&alg, input.clone(), ExecutionMode::Sequential, None);
            let out = mp_run(n, MachineModel::ibm_sp(), |ctx| {
                let alg = OneDeepMergesort::<i64>::new();
                run_spmd(&alg, ctx, input[ctx.rank()].clone())
            });
            assert_eq!(shared, out.results, "n={n}");
        }
    }

    #[test]
    fn uneven_blocks_still_sort() {
        let alg = OneDeepMergesort::<i64>::new();
        let input = vec![vec![5, 3, 1], vec![], vec![9, 9, 9, 9, 2, 0, -7]];
        let expected = flat_sorted(&input);
        let out = run_shared(&alg, input, ExecutionMode::Parallel, None);
        let flat: Vec<i64> = out.iter().flatten().copied().collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn duplicates_are_preserved() {
        let alg = OneDeepMergesort::<i64>::new();
        let input = vec![vec![2, 2, 2, 2], vec![2, 2, 1, 3]];
        let out = run_shared(&alg, input, ExecutionMode::Sequential, None);
        let flat: Vec<i64> = out.iter().flatten().copied().collect();
        assert_eq!(flat, vec![1, 2, 2, 2, 2, 2, 2, 3]);
    }

    #[test]
    fn oversampling_improves_balance() {
        // With heavy oversampling, block sizes should be near n/P for
        // uniform-ish data.
        let alg = OneDeepMergesort::<i64>::with_oversample(64);
        let n = 8;
        let per = 2000;
        let out = run_shared(&alg, blocks(n, per), ExecutionMode::Parallel, None);
        let sizes: Vec<usize> = out.iter().map(Vec::len).collect();
        let max = *sizes.iter().max().unwrap() as f64;
        assert!(
            max < 2.0 * per as f64,
            "largest block {max} should be < 2x ideal {per}"
        );
    }

    #[test]
    fn recursive_mergesort_matches_oracles_at_every_depth() {
        use crate::recursive::{run_shared as run_rec, CutoffPolicy};
        let input: Vec<i64> = blocks(1, 700).pop().unwrap();
        let expected = sequential_mergesort(input.clone());
        for depth in 0..4 {
            for k in [2usize, 3] {
                let got = run_rec(
                    &RecursiveMergesort::<i64>::new(),
                    input.clone(),
                    &CutoffPolicy::exact_depth(depth, k),
                    ExecutionMode::Sequential,
                    None,
                );
                assert_eq!(got, expected, "depth={depth} k={k}");
            }
        }
    }

    #[test]
    fn recursive_mergesort_spmd_matches_one_deep() {
        use crate::recursive::{run_spmd_recursive, CutoffPolicy};
        let input: Vec<i64> = blocks(1, 600).pop().unwrap();
        let expected = sequential_mergesort(input.clone());
        for p in [1usize, 4, 8] {
            let inp = input.clone();
            let out = mp_run(p, MachineModel::ibm_sp(), move |ctx| {
                let local = (ctx.rank() == 0).then(|| inp.clone());
                run_spmd_recursive(
                    &RecursiveMergesort::<i64>::new(),
                    ctx,
                    local,
                    &CutoffPolicy::exact_depth(4, 2),
                    None,
                )
            });
            assert_eq!(out.results[0].as_ref().unwrap(), &expected, "p={p}");
        }
    }

    #[test]
    fn chunk_evenly_is_balanced_and_order_preserving() {
        let v: Vec<i64> = (0..10).collect();
        let chunks = chunk_evenly(v.clone(), 3);
        assert_eq!(chunks.len(), 3);
        let flat: Vec<i64> = chunks.iter().flatten().copied().collect();
        assert_eq!(flat, v);
        assert!(chunks.iter().all(|c| (3..=4).contains(&c.len())));
        // Degenerate shapes.
        assert_eq!(chunk_evenly(Vec::<i64>::new(), 4), vec![vec![]; 4]);
        let single = chunk_evenly(vec![9i64], 3);
        assert_eq!(single.iter().flatten().count(), 1);
    }

    #[test]
    fn one_deep_beats_traditional_in_virtual_time() {
        // The headline claim of Figure 6 in miniature.
        use crate::traditional::tree_mergesort_spmd;
        let p = 16;
        let per = 4000;
        let input = blocks(p, per);
        let flat: Vec<i64> = input.iter().flatten().copied().collect();

        let t_onedeep = mp_run(p, MachineModel::intel_delta(), |ctx| {
            let alg = OneDeepMergesort::<i64>::new();
            run_spmd(&alg, ctx, input[ctx.rank()].clone());
        })
        .elapsed_virtual;

        let t_trad = mp_run(p, MachineModel::intel_delta(), |ctx| {
            let inp = (ctx.rank() == 0).then(|| flat.clone());
            tree_mergesort_spmd(ctx, inp);
        })
        .elapsed_virtual;

        assert!(
            t_onedeep < t_trad,
            "one-deep ({t_onedeep}) must beat traditional ({t_trad})"
        );
    }
}
