//! Convex hull — one of the problems the paper names as "amenable to
//! one-deep solutions" (§2.5).
//!
//! One-deep structure: a **non-trivial split** partitions the points into
//! `N` vertical slabs using sampled x-coordinates (so slab hulls have
//! bounded candidate overlap); the **solve** computes each slab's hull with
//! Andrew's monotone chain; the **merge** exploits the fact that every
//! vertex of the global hull is a vertex of its slab's hull, so the slab
//! hulls are a small candidate set: each process shares its slab hull with
//! every other process (an all-to-all of hull copies), and each assembles
//! the global hull from the union of candidates. The output is therefore
//! replicated — the degenerate-merge limit where "combining the results …
//! through concatenation" is replaced by a cheap final hull of candidates.

use crate::geometry::{cmp_xy, cross, Point};
use crate::skeleton::OneDeep;

/// Andrew's monotone-chain convex hull. Returns the hull in
/// counter-clockwise order starting from the lexicographically smallest
/// point; collinear boundary points are excluded. Inputs of size < 3
/// return the (deduplicated, sorted) input.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(cmp_xy);
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for p in &pts {
        while hull.len() >= 2 && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(*p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for p in pts.iter().rev() {
        while hull.len() >= lower_len
            && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }
    hull.pop(); // last point equals the first
    hull
}

/// The one-deep convex hull algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct OneDeepHull {
    /// x-coordinate samples per process for slab splitter computation.
    pub oversample: usize,
}

impl OneDeepHull {
    /// With the default oversampling factor.
    pub fn new() -> Self {
        OneDeepHull { oversample: 8 }
    }
}

impl OneDeep for OneDeepHull {
    type In = Vec<Point>;
    type Mid = Vec<Point>; // the slab hull
    type Out = Vec<Point>; // the global hull (replicated)
    type SplitParams = Vec<f64>; // slab boundaries
    type MergeParams = ();
    type SplitSample = Vec<f64>; // sampled x coordinates
    type MergeSample = ();

    fn split_sample(&self, local: &Vec<Point>) -> Vec<f64> {
        if local.is_empty() {
            return Vec::new();
        }
        let k = self.oversample.max(1).min(local.len());
        (0..k)
            .map(|i| local[((2 * i + 1) * local.len()) / (2 * k)].x)
            .collect()
    }

    fn split_params(&self, samples: &[Vec<f64>], nparts: usize) -> Vec<f64> {
        let mut all: Vec<f64> = samples.iter().flatten().copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
        if all.is_empty() || nparts <= 1 {
            return Vec::new();
        }
        (1..nparts).map(|i| all[(i * all.len()) / nparts]).collect()
    }

    fn split_partition(
        &self,
        local: Vec<Point>,
        splitters: &Vec<f64>,
        nparts: usize,
        _self_idx: usize,
    ) -> Vec<Vec<Point>> {
        let mut out: Vec<Vec<Point>> = (0..nparts).map(|_| Vec::new()).collect();
        for p in local {
            let slab = splitters.partition_point(|s| *s < p.x);
            out[slab].push(p);
        }
        out
    }

    fn split_assemble(&self, pieces: Vec<Vec<Point>>) -> Vec<Point> {
        pieces.into_iter().flatten().collect()
    }

    fn solve(&self, local: Vec<Point>) -> Vec<Point> {
        convex_hull(&local)
    }

    fn merge_sample(&self, _local: &Vec<Point>) {}
    fn merge_params(&self, _samples: &[()], _nparts: usize) {}

    fn merge_partition(
        &self,
        local: Vec<Point>,
        _params: &(),
        nparts: usize,
        _self_idx: usize,
    ) -> Vec<Vec<Point>> {
        // Share the slab hull with everyone (hulls are small).
        (0..nparts).map(|_| local.clone()).collect()
    }

    fn merge_assemble(&self, pieces: Vec<Vec<Point>>) -> Vec<Point> {
        let candidates: Vec<Point> = pieces.into_iter().flatten().collect();
        convex_hull(&candidates)
    }

    // ---- cost model --------------------------------------------------------
    fn split_cost(&self, local: &Vec<Point>) -> f64 {
        2.0 * local.len() as f64
    }
    fn solve_cost(&self, local: &Vec<Point>) -> f64 {
        let n = local.len().max(1) as f64;
        6.0 * n * n.log2().max(1.0)
    }
    fn merge_assemble_cost(&self, pieces: &[Vec<Point>]) -> f64 {
        let n = pieces.iter().map(Vec::len).sum::<usize>().max(1) as f64;
        6.0 * n * n.log2().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::{run_shared, run_spmd};
    use archetype_core::ExecutionMode;
    use archetype_mp::{run_spmd as mp_run, MachineModel};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0),
            p(0.0, 1.0),
            p(0.5, 0.5),
            p(0.3, 0.7),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        assert_eq!(h[0], p(0.0, 0.0)); // starts at lexicographic minimum
    }

    #[test]
    fn hull_small_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[p(1.0, 1.0)]), vec![p(1.0, 1.0)]);
        assert_eq!(convex_hull(&[p(1.0, 1.0), p(1.0, 1.0)]), vec![p(1.0, 1.0)]);
        assert_eq!(
            convex_hull(&[p(2.0, 0.0), p(0.0, 0.0)]),
            vec![p(0.0, 0.0), p(2.0, 0.0)]
        );
    }

    #[test]
    fn hull_excludes_collinear_points() {
        let pts = vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0), p(1.0, 1.0)];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 3);
        assert!(!h.contains(&p(1.0, 0.0)));
    }

    fn pseudo_random_points(n: usize, seed: u64) -> Vec<Point> {
        // Deterministic LCG; coordinates in the unit disk-ish region.
        let mut s = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| p(next() * 100.0, next() * 100.0)).collect()
    }

    fn hull_is_convex_ccw(h: &[Point]) -> bool {
        let n = h.len();
        if n < 3 {
            return true;
        }
        (0..n).all(|i| cross(&h[i], &h[(i + 1) % n], &h[(i + 2) % n]) > 0.0)
    }

    fn all_points_inside(h: &[Point], pts: &[Point]) -> bool {
        if h.len() < 3 {
            return true;
        }
        let n = h.len();
        pts.iter()
            .all(|q| (0..n).all(|i| cross(&h[i], &h[(i + 1) % n], q) >= -1e-9))
    }

    #[test]
    fn hull_is_convex_and_contains_all_points() {
        let pts = pseudo_random_points(500, 7);
        let h = convex_hull(&pts);
        assert!(hull_is_convex_ccw(&h));
        assert!(all_points_inside(&h, &pts));
    }

    #[test]
    fn one_deep_hull_matches_direct_hull() {
        for n in [1usize, 2, 4, 7] {
            let all = pseudo_random_points(400, 42);
            let expected = convex_hull(&all);
            let inputs: Vec<Vec<Point>> = all.chunks(400 / n + 1).map(<[Point]>::to_vec).collect();
            let inputs = {
                let mut v = inputs;
                v.resize(n, Vec::new());
                v.truncate(n);
                v
            };
            // Re-flatten to ensure we kept every point despite resizing.
            let kept: usize = inputs.iter().map(Vec::len).sum();
            assert_eq!(kept, 400);
            let out = run_shared(&OneDeepHull::new(), inputs, ExecutionMode::Sequential, None);
            for block in &out {
                assert_eq!(block, &expected, "n={n}: replicated hull must match");
            }
        }
    }

    #[test]
    fn modes_and_spmd_agree() {
        let all = pseudo_random_points(300, 99);
        let inputs: Vec<Vec<Point>> = all.chunks(75).map(<[Point]>::to_vec).collect();
        let alg = OneDeepHull::new();
        let seq = run_shared(&alg, inputs.clone(), ExecutionMode::Sequential, None);
        let par = run_shared(&alg, inputs.clone(), ExecutionMode::Parallel, None);
        assert_eq!(seq, par);
        let spmd = mp_run(inputs.len(), MachineModel::ibm_sp(), |ctx| {
            run_spmd(&OneDeepHull::new(), ctx, inputs[ctx.rank()].clone())
        });
        assert_eq!(seq, spmd.results);
    }

    #[test]
    fn empty_processes_are_tolerated() {
        let inputs = vec![
            vec![p(0.0, 0.0), p(4.0, 0.0), p(2.0, 3.0)],
            vec![],
            vec![p(2.0, 1.0)], // interior
        ];
        let out = run_shared(&OneDeepHull::new(), inputs, ExecutionMode::Sequential, None);
        assert_eq!(out[0].len(), 3);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[1], out[2]);
    }
}
