//! Analytic performance model for the one-deep divide-and-conquer
//! archetype.
//!
//! The paper (§1.1) proposes that archetypes "may also be helpful in
//! developing performance models for classes of programs with common
//! structure", citing the authors' mesh/mesh-spectral performance-model
//! report. This module is that idea applied to one-deep sorting: a closed
//! form for the SPMD execution time from the machine parameters alone —
//! no simulation — validated against the virtual-time simulator in tests.

use archetype_mp::MachineModel;

use crate::traditional::{merge_flops, sort_flops};

/// Closed-form prediction of the one-deep mergesort SPMD time for `n`
/// items on `p` processes with `oversample` samples per process.
///
/// Terms follow the phases of the skeleton:
/// local sort; sample all-gather (ring, `p − 1` rounds); splitter sort;
/// repartition; all-to-all exchange (`p − 1` rounds moving `(1 − 1/p)` of
/// the local block); local multiway merge.
pub fn predict_one_deep_mergesort(
    model: &MachineModel,
    n: usize,
    p: usize,
    oversample: usize,
) -> f64 {
    let ft = model.flop_time;
    let local = n as f64 / p as f64;
    let elem = 8.0; // bytes per i64/f64 item
    let rounds = (p - 1) as f64;
    let per_msg = model.send_overhead + model.latency + model.recv_overhead;

    // Solve phase: local sequential sort.
    let t_solve = sort_flops(local as usize) * ft;

    // Sample all-gather: ring of p−1 rounds, each carrying one sample set.
    let sample_bytes = oversample as f64 * elem;
    let t_allgather = rounds * (per_msg + sample_bytes * model.byte_time);

    // Splitter computation (replicated).
    let t_params = sort_flops(p * oversample) * ft;

    // Repartition bookkeeping.
    let t_partition = local * ft;

    // All-to-all: p−1 exchange rounds; the whole non-resident fraction of
    // the local block crosses the wire.
    let t_exchange = rounds * per_msg + local * (1.0 - 1.0 / p as f64) * elem * model.byte_time;

    // Local multiway merge of ~p runs.
    let t_merge = merge_flops(local as usize) * (p as f64).log2().max(1.0) * ft;

    t_solve + t_allgather + t_params + t_partition + t_exchange + t_merge
}

/// Predicted speedup over the modeled sequential mergesort.
pub fn predict_one_deep_speedup(
    model: &MachineModel,
    n: usize,
    p: usize,
    oversample: usize,
) -> f64 {
    sort_flops(n) * model.flop_time / predict_one_deep_mergesort(model, n, p, oversample)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mergesort::OneDeepMergesort;
    use crate::skeleton::run_spmd as dc_spmd;
    use archetype_mp::{run_spmd, MachineModel};

    fn simulated_time(n: usize, p: usize, oversample: usize, model: MachineModel) -> f64 {
        let data: Vec<i64> = (0..n as i64).map(|i| (i * 48271) % 99991).collect();
        let blocks: Vec<Vec<i64>> = (0..p)
            .map(|r| {
                let (s, l) = archetype_mp::topology::block_range(n, p, r);
                data[s..s + l].to_vec()
            })
            .collect();
        run_spmd(p, model, |ctx| {
            let alg = OneDeepMergesort::<i64>::with_oversample(oversample);
            dc_spmd(&alg, ctx, blocks[ctx.rank()].clone());
        })
        .elapsed_virtual
    }

    #[test]
    fn prediction_tracks_simulation_within_35_percent() {
        for model in [MachineModel::intel_delta(), MachineModel::ibm_sp()] {
            for p in [2usize, 4, 8, 16] {
                let n = 200_000;
                let sim = simulated_time(n, p, 16, model);
                let pred = predict_one_deep_mergesort(&model, n, p, 16);
                let ratio = pred / sim;
                assert!(
                    (0.65..=1.35).contains(&ratio),
                    "{} p={p}: predicted {pred:.4}, simulated {sim:.4} (ratio {ratio:.2})",
                    model.name
                );
            }
        }
    }

    #[test]
    fn predicted_speedup_is_monotone_then_saturating() {
        let model = MachineModel::intel_delta();
        let n = 1_000_000;
        let s8 = predict_one_deep_speedup(&model, n, 8, 16);
        let s32 = predict_one_deep_speedup(&model, n, 32, 16);
        let s64 = predict_one_deep_speedup(&model, n, 64, 16);
        assert!(s8 < s32 && s32 < s64, "{s8} {s32} {s64}");
        // Efficiency must fall with p (communication grows).
        assert!(s64 / 64.0 < s8 / 8.0);
    }

    #[test]
    fn zero_comm_prediction_is_pure_compute() {
        let model = MachineModel::zero_comm();
        let n = 100_000;
        let p = 8;
        let pred = predict_one_deep_mergesort(&model, n, p, 8);
        let compute_only =
            (sort_flops(n / p) + sort_flops(p * 8) + (n / p) as f64 + merge_flops(n / p) * 3.0)
                * model.flop_time;
        assert!((pred - compute_only).abs() < 1e-12);
    }
}
