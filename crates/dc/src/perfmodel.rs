//! Analytic performance model for the one-deep divide-and-conquer
//! archetype.
//!
//! The paper (§1.1) proposes that archetypes "may also be helpful in
//! developing performance models for classes of programs with common
//! structure", citing the authors' mesh/mesh-spectral performance-model
//! report. This module is that idea applied to one-deep sorting: a closed
//! form for the SPMD execution time from the machine parameters alone —
//! no simulation — validated against the virtual-time simulator in tests.

use archetype_mp::MachineModel;

use crate::recursive::CutoffPolicy;
use crate::traditional::{merge_flops, sort_flops};

/// Closed-form prediction of the one-deep mergesort SPMD time for `n`
/// items on `p` processes with `oversample` samples per process.
///
/// Terms follow the phases of the skeleton:
/// local sort; sample all-gather (ring, `p − 1` rounds); splitter sort;
/// repartition; all-to-all exchange (`p − 1` rounds moving `(1 − 1/p)` of
/// the local block); local multiway merge.
pub fn predict_one_deep_mergesort(
    model: &MachineModel,
    n: usize,
    p: usize,
    oversample: usize,
) -> f64 {
    let ft = model.flop_time;
    let local = n as f64 / p as f64;
    let elem = 8.0; // bytes per i64/f64 item
    let rounds = (p - 1) as f64;
    let per_msg = model.send_overhead + model.latency + model.recv_overhead;

    // Solve phase: local sequential sort.
    let t_solve = sort_flops(local as usize) * ft;

    // Sample all-gather: ring of p−1 rounds, each carrying one sample set.
    let sample_bytes = oversample as f64 * elem;
    let t_allgather = rounds * (per_msg + sample_bytes * model.byte_time);

    // Splitter computation (replicated).
    let t_params = sort_flops(p * oversample) * ft;

    // Repartition bookkeeping.
    let t_partition = local * ft;

    // All-to-all: p−1 exchange rounds; the whole non-resident fraction of
    // the local block crosses the wire.
    let t_exchange = rounds * per_msg + local * (1.0 - 1.0 / p as f64) * elem * model.byte_time;

    // Local multiway merge of ~p runs.
    let t_merge = merge_flops(local as usize) * (p as f64).log2().max(1.0) * ft;

    t_solve + t_allgather + t_params + t_partition + t_exchange + t_merge
}

/// Smallest block size for which dividing a sort in two across two
/// processes beats solving it sequentially under `model` — the
/// performance-model-chosen recursion cutoff of the recursive
/// divide-and-conquer skeleton.
///
/// The comparison is the closed-form analogue of one recursion level:
/// sequential time `sort(n)` against divide (linear inspection) + one
/// subproblem shipped out and one subsolution shipped back (`n/2`
/// elements each way) + the slower child's `sort(n/2)` + the combining
/// merge. Below the returned size, communication dominates the saved
/// compute and the skeleton solves sequentially.
pub fn sort_recursion_cutoff(model: &MachineModel, elem_bytes: usize) -> usize {
    let ft = model.flop_time;
    let per_msg = model.send_overhead + model.latency + model.recv_overhead;
    let mut n = 4usize;
    while n < (1 << 30) {
        let seq = sort_flops(n) * ft;
        let half = n / 2;
        let wire = per_msg + (half * elem_bytes) as f64 * model.byte_time;
        let split = (n as f64 + merge_flops(n)) * ft // divide + combine
            + 2.0 * wire // subproblem down, subsolution up
            + sort_flops(half) * ft; // the critical-path child
        if split < seq {
            return n;
        }
        n *= 2;
    }
    1 << 30
}

/// The model-derived [`CutoffPolicy`] for the recursive sorting
/// applications: recurse `branching`-way while blocks stay above the
/// machine's [`sort_recursion_cutoff`], with a generous depth cap as a
/// termination backstop for pathological divides.
pub fn recursion_policy(model: &MachineModel, branching: usize, elem_bytes: usize) -> CutoffPolicy {
    CutoffPolicy::new(branching, sort_recursion_cutoff(model, elem_bytes), 40)
}

/// [`sort_recursion_cutoff`]'s analogue for the recursive closest-pair
/// application, using its cost model (`10 n log₂ n` solve, linear
/// splitter divide and strip combine, 16-byte points on the wire).
pub fn closest_recursion_cutoff(model: &MachineModel) -> usize {
    let ft = model.flop_time;
    let per_msg = model.send_overhead + model.latency + model.recv_overhead;
    let solve = |n: usize| 10.0 * n.max(1) as f64 * (n.max(1) as f64).log2().max(1.0);
    let mut n = 4usize;
    while n < (1 << 30) {
        let seq = solve(n) * ft;
        let half = n / 2;
        let wire = per_msg + (half * 16) as f64 * model.byte_time;
        let split = (2.0 * n as f64 + 8.0 * n as f64) * ft // divide + combine
            + 2.0 * wire // subproblem down, candidates up
            + solve(half) * ft; // the critical-path child
        if split < seq {
            return n;
        }
        n *= 2;
    }
    1 << 30
}

/// The model-derived [`CutoffPolicy`] for the recursive closest-pair
/// application.
pub fn closest_recursion_policy(model: &MachineModel, branching: usize) -> CutoffPolicy {
    CutoffPolicy::new(branching, closest_recursion_cutoff(model), 40)
}

/// Machine-independent estimate of the total work of sorting `n` items
/// recursively: the sequential `c·n·log₂n` solve plus one linear merge
/// pass per recursion level down to `cutoff`-sized leaves. This is the
/// estimate a composition allocator (`crates/compose`) prices a sort
/// stage with when sharing ranks between plan branches — flop-equivalents
/// only, so the same plan allocates identically on every machine model.
///
/// ```
/// use archetype_dc::perfmodel::mergesort_work_flops;
/// // More merge levels -> more total work; never below the plain sort.
/// assert!(mergesort_work_flops(4096, 64) > mergesort_work_flops(4096, 1024));
/// assert!(mergesort_work_flops(4096, 8192) >= 4.0 * 4096.0 * 12.0);
/// ```
pub fn mergesort_work_flops(n: usize, cutoff: usize) -> f64 {
    let levels = if n <= cutoff.max(1) {
        0.0
    } else {
        (n as f64 / cutoff.max(1) as f64).log2().ceil()
    };
    sort_flops(n) + levels * merge_flops(n)
}

/// Predicted speedup over the modeled sequential mergesort.
pub fn predict_one_deep_speedup(
    model: &MachineModel,
    n: usize,
    p: usize,
    oversample: usize,
) -> f64 {
    sort_flops(n) * model.flop_time / predict_one_deep_mergesort(model, n, p, oversample)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mergesort::OneDeepMergesort;
    use crate::skeleton::run_spmd as dc_spmd;
    use archetype_mp::{run_spmd, MachineModel};

    fn simulated_time(n: usize, p: usize, oversample: usize, model: MachineModel) -> f64 {
        let data: Vec<i64> = (0..n as i64).map(|i| (i * 48271) % 99991).collect();
        let blocks: Vec<Vec<i64>> = (0..p)
            .map(|r| {
                let (s, l) = archetype_mp::topology::block_range(n, p, r);
                data[s..s + l].to_vec()
            })
            .collect();
        run_spmd(p, model, |ctx| {
            let alg = OneDeepMergesort::<i64>::with_oversample(oversample);
            dc_spmd(&alg, ctx, blocks[ctx.rank()].clone());
        })
        .elapsed_virtual
    }

    #[test]
    fn prediction_tracks_simulation_within_35_percent() {
        for model in [MachineModel::intel_delta(), MachineModel::ibm_sp()] {
            for p in [2usize, 4, 8, 16] {
                let n = 200_000;
                let sim = simulated_time(n, p, 16, model);
                let pred = predict_one_deep_mergesort(&model, n, p, 16);
                let ratio = pred / sim;
                assert!(
                    (0.65..=1.35).contains(&ratio),
                    "{} p={p}: predicted {pred:.4}, simulated {sim:.4} (ratio {ratio:.2})",
                    model.name
                );
            }
        }
    }

    #[test]
    fn predicted_speedup_is_monotone_then_saturating() {
        let model = MachineModel::intel_delta();
        let n = 1_000_000;
        let s8 = predict_one_deep_speedup(&model, n, 8, 16);
        let s32 = predict_one_deep_speedup(&model, n, 32, 16);
        let s64 = predict_one_deep_speedup(&model, n, 64, 16);
        assert!(s8 < s32 && s32 < s64, "{s8} {s32} {s64}");
        // Efficiency must fall with p (communication grows).
        assert!(s64 / 64.0 < s8 / 8.0);
    }

    #[test]
    fn recursion_cutoff_tracks_network_quality() {
        // A faster network should let the recursion profitably divide
        // smaller blocks; zero-cost communication always pays.
        let fast = sort_recursion_cutoff(&MachineModel::cray_t3d(), 8);
        let slow = sort_recursion_cutoff(&MachineModel::workstation_network(), 8);
        let free = sort_recursion_cutoff(&MachineModel::zero_comm(), 8);
        assert!(fast < slow, "t3d cutoff {fast} < ethernet cutoff {slow}");
        assert!(free <= fast);
        assert!(fast < 1 << 20, "a real machine still has a finite cutoff");
        // Heavier elements raise the cutoff (more bytes per item moved).
        assert!(
            sort_recursion_cutoff(&MachineModel::ibm_sp(), 64)
                >= sort_recursion_cutoff(&MachineModel::ibm_sp(), 8)
        );
        // The closest-pair cutoff follows the same ordering.
        assert!(
            closest_recursion_cutoff(&MachineModel::cray_t3d())
                <= closest_recursion_cutoff(&MachineModel::workstation_network())
        );
        assert!(closest_recursion_cutoff(&MachineModel::ibm_sp()) < 1 << 20);
    }

    #[test]
    fn recursion_policy_is_usable_end_to_end() {
        use crate::mergesort::RecursiveMergesort;
        use crate::recursive::run_spmd_recursive;
        let model = MachineModel::cray_t3d();
        let policy = recursion_policy(&model, 2, 8);
        assert!(policy.min_items >= 2);
        let data: Vec<i64> = (0..40_000).map(|i| (i * 48271) % 99991).collect();
        let mut expected = data.clone();
        expected.sort_unstable();
        let out = run_spmd(8, model, move |ctx| {
            let local = (ctx.rank() == 0).then(|| data.clone());
            run_spmd_recursive(&RecursiveMergesort::<i64>::new(), ctx, local, &policy, None)
        });
        assert_eq!(out.results[0].as_ref().unwrap(), &expected);
    }

    #[test]
    fn zero_comm_prediction_is_pure_compute() {
        let model = MachineModel::zero_comm();
        let n = 100_000;
        let p = 8;
        let pred = predict_one_deep_mergesort(&model, n, p, 8);
        let compute_only =
            (sort_flops(n / p) + sort_flops(p * 8) + (n / p) as f64 + merge_flops(n / p) * 3.0)
                * model.flop_time;
        assert!((pred - compute_only).abs() < 1e-12);
    }
}
