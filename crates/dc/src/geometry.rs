//! Plane geometry primitives shared by the skyline, convex-hull, and
//! closest-pair applications.

use archetype_mp::impl_fixed_size;

/// A point in the plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl_fixed_size!(Point);

impl Point {
    /// Construct a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, o: &Point) -> f64 {
        let dx = self.x - o.x;
        let dy = self.y - o.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Lexicographic (x, then y) comparison for sorting point sets.
pub fn cmp_xy(a: &Point, b: &Point) -> std::cmp::Ordering {
    a.x.partial_cmp(&b.x)
        .expect("non-NaN coordinates")
        .then(a.y.partial_cmp(&b.y).expect("non-NaN coordinates"))
}

/// Twice the signed area of triangle (o, a, b): positive for a left turn.
pub fn cross(o: &Point, a: &Point, b: &Point) -> f64 {
    (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)
}

/// A building of the skyline problem: a rectangle `[left, right] × [0, height]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Building {
    /// Left edge.
    pub left: f64,
    /// Roof height.
    pub height: f64,
    /// Right edge.
    pub right: f64,
}

impl_fixed_size!(Building);

impl Building {
    /// Construct a building; panics if `left >= right` or `height < 0`.
    pub fn new(left: f64, height: f64, right: f64) -> Self {
        assert!(left < right, "building must have positive width");
        assert!(height >= 0.0, "building height must be non-negative");
        Building {
            left,
            height,
            right,
        }
    }
}

/// One vertex of a skyline: "at `x` the height becomes `h`".
///
/// A well-formed skyline has strictly increasing `x`, no two consecutive
/// equal heights, and a final height of zero.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SkyPoint {
    /// Horizontal position of the height change.
    pub x: f64,
    /// New height from this position (until the next point).
    pub h: f64,
}

impl_fixed_size!(SkyPoint);

impl SkyPoint {
    /// Construct a skyline vertex.
    pub const fn new(x: f64, h: f64) -> Self {
        SkyPoint { x, h }
    }
}

/// Canonicalize a piecewise-constant height profile: sort order is assumed,
/// removes consecutive points with equal height and duplicate positions
/// (keeping the last height set at a position).
pub fn canonicalize_skyline(points: &[SkyPoint]) -> Vec<SkyPoint> {
    let mut out: Vec<SkyPoint> = Vec::with_capacity(points.len());
    for p in points {
        if let Some(last) = out.last_mut() {
            if last.x == p.x {
                last.h = p.h; // later point at same x wins
                              // May now equal the height before it; fix below.
                if out.len() >= 2 && out[out.len() - 2].h == out[out.len() - 1].h {
                    out.pop();
                }
                continue;
            }
            if last.h == p.h {
                continue;
            }
        } else if p.h == 0.0 {
            continue; // leading ground-level point carries no information
        }
        out.push(*p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn cross_sign_encodes_turn_direction() {
        let o = Point::new(0.0, 0.0);
        let a = Point::new(1.0, 0.0);
        let left = Point::new(1.0, 1.0);
        let right = Point::new(1.0, -1.0);
        assert!(cross(&o, &a, &left) > 0.0);
        assert!(cross(&o, &a, &right) < 0.0);
        assert_eq!(cross(&o, &a, &Point::new(2.0, 0.0)), 0.0);
    }

    #[test]
    fn cmp_xy_orders_lexicographically() {
        let mut pts = [
            Point::new(1.0, 2.0),
            Point::new(0.0, 5.0),
            Point::new(1.0, -1.0),
        ];
        pts.sort_by(cmp_xy);
        assert_eq!(pts[0], Point::new(0.0, 5.0));
        assert_eq!(pts[1], Point::new(1.0, -1.0));
        assert_eq!(pts[2], Point::new(1.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "positive width")]
    fn zero_width_building_rejected() {
        Building::new(1.0, 5.0, 1.0);
    }

    #[test]
    fn canonicalize_removes_redundant_points() {
        let raw = vec![
            SkyPoint::new(0.0, 0.0), // leading ground level: dropped
            SkyPoint::new(1.0, 3.0),
            SkyPoint::new(2.0, 3.0), // same height as previous: dropped
            SkyPoint::new(3.0, 5.0),
            SkyPoint::new(3.0, 4.0), // same x: last wins
            SkyPoint::new(4.0, 0.0),
        ];
        let c = canonicalize_skyline(&raw);
        assert_eq!(
            c,
            vec![
                SkyPoint::new(1.0, 3.0),
                SkyPoint::new(3.0, 4.0),
                SkyPoint::new(4.0, 0.0),
            ]
        );
    }

    #[test]
    fn canonicalize_collapses_same_x_to_equal_height() {
        // After "last wins" at equal x, a now-redundant equal height with
        // the previous point must also collapse.
        let raw = vec![
            SkyPoint::new(1.0, 3.0),
            SkyPoint::new(2.0, 5.0),
            SkyPoint::new(2.0, 3.0), // back to 3.0 == height before x=2
        ];
        let c = canonicalize_skyline(&raw);
        assert_eq!(c, vec![SkyPoint::new(1.0, 3.0)]);
    }

    #[test]
    fn canonicalize_empty_and_trivial() {
        assert!(canonicalize_skyline(&[]).is_empty());
        let one = vec![SkyPoint::new(1.0, 2.0)];
        assert_eq!(canonicalize_skyline(&one), one);
    }
}
