//! A small metrics registry with Prometheus-style text exposition.
//!
//! [`PlanService`](crate::PlanService) keeps one [`Metrics`] instance and
//! feeds it at admission and serve time; [`metrics_text`](crate::PlanService::metrics_text)
//! renders the whole registry in the Prometheus text exposition format
//! (`# HELP` / `# TYPE` headers, one `name{labels} value` sample per
//! line) so any scraper — or a test with a line parser — can consume it.
//!
//! The registry is deliberately tiny and dependency-free:
//!
//! * **Counters** are monotone `u64`s.
//! * **Gauges** are last-write-wins `f64`s.
//! * **Histograms** have fixed upper bounds declared once via
//!   [`Metrics::describe_histogram`] and render cumulative `_bucket`
//!   series plus `_sum`/`_count`.
//! * **Summaries** carry precomputed quantiles (the service's latency
//!   [`Digest`](archetype_pipeline::apps::Digest)s already know their
//!   p50/p99) plus cumulative `_sum`/`_count`.
//!
//! Series are keyed by `(name, sorted label pairs)` in `BTreeMap`s, so
//! the rendered text is deterministic — same history, same bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One labeled time series: metric name plus sorted `(key, value)` label
/// pairs.
type Series = (&'static str, Vec<(&'static str, String)>);

/// Fixed-bound histogram state.
#[derive(Clone, Debug)]
struct Histogram {
    /// Upper bounds of the buckets, ascending; an implicit `+Inf` bucket
    /// follows.
    bounds: Vec<f64>,
    /// Per-bound observation counts (non-cumulative; rendering
    /// accumulates).
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

/// Summary state: externally computed quantiles plus running totals.
#[derive(Clone, Debug, Default)]
struct Summary {
    /// `(quantile, value)` pairs, e.g. `(0.5, 1.25e-3)`; last write wins.
    quantiles: Vec<(f64, f64)>,
    sum: f64,
    count: u64,
}

/// What a metric name is declared as; governs the `# TYPE` header and
/// which storage the samples live in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Last-write-wins gauge.
    Gauge,
    /// Fixed-bound histogram (declare via
    /// [`Metrics::describe_histogram`]).
    Histogram,
    /// Quantile summary.
    Summary,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::Summary => "summary",
        }
    }
}

/// The registry. See the module docs; construct with [`Metrics::new`],
/// declare names with the `describe*` methods, then feed samples.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// `name -> (kind, help)`, in declaration order via BTreeMap key
    /// order.
    descs: BTreeMap<&'static str, (MetricKind, &'static str)>,
    /// Histogram bucket bounds per declared histogram name.
    bounds: BTreeMap<&'static str, Vec<f64>>,
    counters: BTreeMap<Series, u64>,
    gauges: BTreeMap<Series, f64>,
    histograms: BTreeMap<Series, Histogram>,
    summaries: BTreeMap<Series, Summary>,
}

/// Normalize a label set: owned values, sorted by key for a canonical
/// series identity.
fn series(name: &'static str, labels: &[(&'static str, &str)]) -> Series {
    let mut ls: Vec<(&'static str, String)> = labels
        .iter()
        .map(|&(k, v)| (k, v.to_string()))
        .collect();
    ls.sort_by_key(|&(k, _)| k);
    (name, ls)
}

/// Escape a label value per the exposition format: backslash, quote,
/// newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a float the way Prometheus expects (`+Inf`, integral values
/// without an exponent, shortest round-trip otherwise).
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Format `name{k="v",...}` with an optional extra label appended (used
/// for `le` / `quantile`).
fn fmt_series(name: &str, labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{}}}", parts.join(","))
    }
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Declare a counter, gauge, or summary name with its help text.
    /// Idempotent; histograms use [`Metrics::describe_histogram`].
    pub fn describe(&mut self, name: &'static str, kind: MetricKind, help: &'static str) {
        assert!(
            kind != MetricKind::Histogram,
            "histograms need bounds; use describe_histogram"
        );
        self.descs.insert(name, (kind, help));
    }

    /// Declare a histogram with its bucket upper bounds (ascending; an
    /// implicit `+Inf` bucket is always appended at render time).
    pub fn describe_histogram(&mut self, name: &'static str, help: &'static str, bounds: &[f64]) {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "ascending bounds");
        self.descs.insert(name, (MetricKind::Histogram, help));
        self.bounds.insert(name, bounds.to_vec());
    }

    /// Add `by` to a counter series (created at zero on first touch).
    pub fn inc(&mut self, name: &'static str, labels: &[(&'static str, &str)], by: u64) {
        *self.counters.entry(series(name, labels)).or_insert(0) += by;
    }

    /// Set a gauge series.
    pub fn set(&mut self, name: &'static str, labels: &[(&'static str, &str)], value: f64) {
        self.gauges.insert(series(name, labels), value);
    }

    /// Record one observation into a histogram series. The name must
    /// have been declared with [`Metrics::describe_histogram`].
    pub fn observe(&mut self, name: &'static str, labels: &[(&'static str, &str)], value: f64) {
        let bounds = self
            .bounds
            .get(name)
            .unwrap_or_else(|| panic!("histogram {name} was never described"))
            .clone();
        let h = self
            .histograms
            .entry(series(name, labels))
            .or_insert_with(|| Histogram {
                counts: vec![0; bounds.len()],
                bounds,
                sum: 0.0,
                count: 0,
            });
        if let Some(i) = h.bounds.iter().position(|&b| value <= b) {
            h.counts[i] += 1;
        }
        h.sum += value;
        h.count += 1;
    }

    /// Fold a pre-aggregated batch into a summary series: add
    /// `sum`/`count` to the running totals and replace the published
    /// quantiles.
    pub fn observe_summary(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        sum: f64,
        count: u64,
        quantiles: &[(f64, f64)],
    ) {
        let s = self.summaries.entry(series(name, labels)).or_default();
        s.sum += sum;
        s.count += count;
        s.quantiles = quantiles.to_vec();
    }

    /// Overwrite a counter series with an absolute cumulative value —
    /// for mirroring counters owned elsewhere (e.g. the plan service's
    /// [`CacheStats`](crate::CacheStats), which are already monotone).
    pub fn sync_counter(&mut self, name: &'static str, labels: &[(&'static str, &str)], value: u64) {
        self.counters.insert(series(name, labels), value);
    }

    /// The current value of a counter series (0 if never touched); test
    /// and introspection helper.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> u64 {
        self.counters.get(&series(name, labels)).copied().unwrap_or(0)
    }

    /// The current value of a gauge series, if set.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Option<f64> {
        self.gauges.get(&series(name, labels)).copied()
    }

    /// Render the whole registry in the Prometheus text exposition
    /// format. Deterministic: same history, same bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (&name, &(kind, help)) in &self.descs {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {}", kind.as_str());
            match kind {
                MetricKind::Counter => {
                    for ((n, labels), v) in &self.counters {
                        if *n == name {
                            let _ = writeln!(out, "{} {v}", fmt_series(name, labels, None));
                        }
                    }
                }
                MetricKind::Gauge => {
                    for ((n, labels), v) in &self.gauges {
                        if *n == name {
                            let _ =
                                writeln!(out, "{} {}", fmt_series(name, labels, None), fmt_value(*v));
                        }
                    }
                }
                MetricKind::Histogram => {
                    for ((n, labels), h) in &self.histograms {
                        if *n != name {
                            continue;
                        }
                        let mut cum = 0u64;
                        for (b, c) in h.bounds.iter().zip(&h.counts) {
                            cum += c;
                            let le = fmt_value(*b);
                            let series = fmt_series(
                                &format!("{name}_bucket"),
                                labels,
                                Some(("le", &le)),
                            );
                            let _ = writeln!(out, "{series} {cum}");
                        }
                        let inf =
                            fmt_series(&format!("{name}_bucket"), labels, Some(("le", "+Inf")));
                        let _ = writeln!(out, "{inf} {}", h.count);
                        let _ = writeln!(
                            out,
                            "{} {}",
                            fmt_series(&format!("{name}_sum"), labels, None),
                            fmt_value(h.sum)
                        );
                        let _ = writeln!(
                            out,
                            "{} {}",
                            fmt_series(&format!("{name}_count"), labels, None),
                            h.count
                        );
                    }
                }
                MetricKind::Summary => {
                    for ((n, labels), s) in &self.summaries {
                        if *n != name {
                            continue;
                        }
                        for &(q, v) in &s.quantiles {
                            let qs = fmt_value(q);
                            let series = fmt_series(name, labels, Some(("quantile", &qs)));
                            let _ = writeln!(out, "{series} {}", fmt_value(v));
                        }
                        let _ = writeln!(
                            out,
                            "{} {}",
                            fmt_series(&format!("{name}_sum"), labels, None),
                            fmt_value(s.sum)
                        );
                        let _ = writeln!(
                            out,
                            "{} {}",
                            fmt_series(&format!("{name}_count"), labels, None),
                            s.count
                        );
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut m = Metrics::new();
        m.describe("req_total", MetricKind::Counter, "requests");
        m.inc("req_total", &[("code", "200")], 2);
        m.inc("req_total", &[("code", "200")], 1);
        m.inc("req_total", &[("code", "500")], 1);
        assert_eq!(m.counter("req_total", &[("code", "200")]), 3);
        assert_eq!(m.counter("req_total", &[("code", "500")]), 1);
        assert_eq!(m.counter("req_total", &[("code", "404")]), 0);
        let text = m.render();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{code=\"200\"} 3"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets_and_inf() {
        let mut m = Metrics::new();
        m.describe_histogram("lat", "latency", &[0.1, 1.0]);
        for v in [0.05, 0.5, 0.5, 5.0] {
            m.observe("lat", &[], v);
        }
        let text = m.render();
        assert!(text.contains("lat_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"1\"} 3"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_count 4"));
        assert!(text.contains("lat_sum 6.05"));
    }

    #[test]
    fn summary_folds_batches_and_replaces_quantiles() {
        let mut m = Metrics::new();
        m.describe("t_lat", MetricKind::Summary, "tenant latency");
        m.observe_summary("t_lat", &[("tenant", "7")], 3.0, 2, &[(0.5, 1.5)]);
        m.observe_summary("t_lat", &[("tenant", "7")], 1.0, 1, &[(0.5, 1.0)]);
        let text = m.render();
        assert!(text.contains("t_lat{tenant=\"7\",quantile=\"0.5\"} 1"));
        assert!(text.contains("t_lat_sum{tenant=\"7\"} 4"));
        assert!(text.contains("t_lat_count{tenant=\"7\"} 3"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut m = Metrics::new();
        m.describe("g", MetricKind::Gauge, "a gauge");
        m.set("g", &[("path", "a\"b\\c\nd")], 1.0);
        assert!(m.render().contains(r#"g{path="a\"b\\c\nd"} 1"#));
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let build = |order_flip: bool| {
            let mut m = Metrics::new();
            m.describe("z_total", MetricKind::Counter, "z");
            m.describe("a_gauge", MetricKind::Gauge, "a");
            if order_flip {
                m.set("a_gauge", &[], 2.0);
                m.inc("z_total", &[("t", "1")], 1);
            } else {
                m.inc("z_total", &[("t", "1")], 1);
                m.set("a_gauge", &[], 2.0);
            }
            m.render()
        };
        let text = build(false);
        assert_eq!(text, build(true));
        let a = text.find("a_gauge").unwrap();
        let z = text.find("z_total").unwrap();
        assert!(a < z, "names render in sorted order");
    }
}
