//! The plan service: sustained multi-tenant composition on the pooled
//! executor.
//!
//! [`run_plan`](crate::run_plan) executes one plan and tears down; a
//! [`PlanService`] keeps the substrate hot across **batches of
//! heterogeneous plans from many tenants**. Its dataflow:
//!
//! 1. **Submission** ([`PlanService::submit`]): each `(tenant, plan,
//!    input)` passes the admission controller — a queue-capacity check
//!    and a cost ceiling priced from the plan's flop estimate — and
//!    lands in the FIFO queue, or comes back as a typed [`AdmitError`].
//!    Plan *structure* is memoized on the way in
//!    ([`Plan::structure_hash`]): node/atom counts, the derived
//!    composite grammar, and the cost estimate are computed once per
//!    distinct `(structure, input shape)` and reused across identical
//!    submissions ([`CacheStats`] counts the hits).
//! 2. **Packing** ([`pack_waves`]): the queue is cut into *waves* of up
//!    to `max_concurrent` plans; within a wave the largest-remainder
//!    allocator ([`crate::allocate`]) — the same one `Par` branches use
//!    — apportions the world's ranks cost-proportionally, one disjoint
//!    contiguous subgroup per plan. Allocations are memoized per
//!    `(cost vector, p)`.
//! 3. **Scoped execution** ([`PlanService::serve`]): one SPMD run
//!    executes the whole schedule. Every rank walks the same static wave
//!    plan; per wave it enters its subgroup's [`Ctx::scoped`] section
//!    and runs the assigned plan with
//!    [`try_run_plan_with`](crate::try_run_plan_with) — concurrent
//!    plans' traffic cannot collide because sibling scopes are fully
//!    isolated. No inter-wave barrier is needed: the schedule is static,
//!    so matched sends/receives exist within scopes only.
//! 4. **Stats return**: each subgroup root records its plan's outcome
//!    and virtual finish time; a final `all_gather` assembles, on every
//!    rank identically, the [`ServeReport`] — per-submission results or
//!    typed [`PlanError`]s, per-tenant [`TenantStats`] (schedule- and
//!    `p`-invariant), and a completion-latency [`Digest`] with p50/p99.
//!
//! Determinism: virtual clocks are driven solely by the machine model,
//! so given the same submission sequence (and fault seed, under
//! [`PlanService::serve_ft`]) the results, per-tenant stats, and latency
//! percentiles are bit-identical across runs on the virtual backend. On
//! the real backend results and stats match; only measured wall time
//! differs.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use archetype_core::PatternExpr;
use archetype_mp::{
    run_spmd_ft_with, run_spmd_with, Ctx, FaultPlan, MachineModel, Payload, RunConfig, SpmdError,
    SpmdResult,
};
use archetype_pipeline::apps::Digest;

use crate::alloc::allocate;
use crate::exec::{mix, try_run_plan_with, ComposeConfig, ComposeStats, PlanError};
use crate::metrics::{MetricKind, Metrics};
use crate::plan::Plan;
use crate::value::Value;

/// Tenant identity: submissions, stats, and rejections are accounted per
/// tenant.
pub type TenantId = u32;

/// Scope-salt namespace of the service's per-wave subgroups, keeping
/// their traffic disjoint from plan-internal `Par` scopes.
const SERVE_SALT: u64 = 0x5345_5256; // "SERV"

/// Tuning knobs of a [`PlanService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Most plans packed into one wave (each gets ≥ 1 rank, so the
    /// effective bound is `min(max_concurrent, nprocs)`). `1` serializes:
    /// every plan runs alone on the full world — the baseline the
    /// `serve_scaling` bench measures concurrent admission against.
    pub max_concurrent: usize,
    /// Admission bound on queued submissions; beyond it `submit` returns
    /// [`AdmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Admission bound on a submission's estimated flops; beyond it
    /// `submit` returns [`AdmitError::CostCeiling`].
    pub cost_ceiling: f64,
    /// Executor configuration for every plan run (scheduling mode, retry
    /// budget under fault injection).
    pub compose: ComposeConfig,
    /// Top-k capacity of the completion-latency digest.
    pub latency_top_k: usize,
    /// Histogram buckets of the completion-latency digest.
    pub latency_buckets: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_concurrent: 8,
            queue_capacity: 4096,
            cost_ceiling: f64::INFINITY,
            compose: ComposeConfig::default(),
            latency_top_k: 10,
            latency_buckets: 256,
        }
    }
}

/// Typed admission rejection, returned by [`PlanService::submit`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdmitError {
    /// The submission queue is at [`ServeConfig::queue_capacity`].
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The plan's estimated work exceeds [`ServeConfig::cost_ceiling`].
    CostCeiling {
        /// The submission's estimated flops.
        estimated_flops: f64,
        /// The configured ceiling it exceeded.
        ceiling: f64,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::QueueFull { capacity } => {
                write!(f, "submission queue is full ({capacity} plans)")
            }
            AdmitError::CostCeiling {
                estimated_flops,
                ceiling,
            } => write!(
                f,
                "plan estimated at {estimated_flops:.3e} flops exceeds the \
                 admission ceiling of {ceiling:.3e}"
            ),
        }
    }
}

impl AdmitError {
    /// Stable label of the rejection class, used as the `reason` label
    /// of the service's `planserve_rejected_total` metric.
    pub fn reason(&self) -> &'static str {
        match self {
            AdmitError::QueueFull { .. } => "queue_full",
            AdmitError::CostCeiling { .. } => "cost_ceiling",
        }
    }
}

impl std::error::Error for AdmitError {}

/// Hit/miss counters of the service's structure caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plan-shape lookups (node/atom counts + derived grammar) answered
    /// from the cache.
    pub shape_hits: u64,
    /// Plan shapes derived fresh.
    pub shape_misses: u64,
    /// Cost estimates answered from the cache.
    pub cost_hits: u64,
    /// Cost estimates priced fresh.
    pub cost_misses: u64,
    /// Wave allocations answered from the cache.
    pub alloc_hits: u64,
    /// Wave allocations computed fresh.
    pub alloc_misses: u64,
}

/// Memoized structural derivations of one plan shape.
struct PlanShape {
    nodes: u64,
    atoms: u64,
    grammar: PatternExpr,
}

/// The service's memo tables, keyed on [`Plan::structure_hash`].
#[derive(Default)]
struct PlanCache {
    shapes: HashMap<u64, Arc<PlanShape>>,
    costs: HashMap<(u64, u64), f64>,
    allocs: HashMap<(Vec<u64>, usize), Arc<Vec<usize>>>,
    stats: CacheStats,
}

impl PlanCache {
    fn shape(&mut self, hash: u64, plan: &Plan) -> Arc<PlanShape> {
        if let Some(s) = self.shapes.get(&hash) {
            self.stats.shape_hits += 1;
            return Arc::clone(s);
        }
        self.stats.shape_misses += 1;
        let s = Arc::new(PlanShape {
            nodes: plan.nodes(),
            atoms: plan.atoms(),
            grammar: plan.grammar(),
        });
        self.shapes.insert(hash, Arc::clone(&s));
        s
    }

    fn cost(&mut self, hash: u64, input: &Value, plan: &Plan) -> f64 {
        let key = (hash, value_fingerprint(input));
        if let Some(&c) = self.costs.get(&key) {
            self.stats.cost_hits += 1;
            return c;
        }
        self.stats.cost_misses += 1;
        let c = plan.estimate_flops_lenient(input);
        self.costs.insert(key, c);
        c
    }

    fn alloc(&mut self, costs: &[f64], p: usize) -> Arc<Vec<usize>> {
        let key = (costs.iter().map(|c| c.to_bits()).collect::<Vec<u64>>(), p);
        if let Some(a) = self.allocs.get(&key) {
            self.stats.alloc_hits += 1;
            return Arc::clone(a);
        }
        self.stats.alloc_misses += 1;
        let a = Arc::new(allocate(costs, p));
        self.allocs.insert(key, Arc::clone(&a));
        a
    }
}

/// Fingerprint of a value's *pricing-relevant* identity: shape tags,
/// lengths, and scalar bits — not bulk contents. Collisions only reuse a
/// cost estimate (a scheduling hint), never affect results.
fn value_fingerprint(v: &Value) -> u64 {
    match v {
        Value::Unit => 1,
        Value::U64(x) => mix(2, *x),
        Value::F64(x) => mix(3, x.to_bits()),
        Value::I64s(xs) => mix(4, xs.len() as u64),
        Value::F64s(xs) => mix(5, xs.len() as u64),
        Value::Tuple(parts) => parts.iter().fold(mix(6, parts.len() as u64), |h, p| {
            mix(h, value_fingerprint(p))
        }),
    }
}

/// One admitted submission awaiting service.
struct Submission {
    tenant: TenantId,
    plan: Plan,
    input: Value,
    cost: f64,
}

/// One wave of the packed schedule: `plans[j]` (a queue index) runs on
/// the contiguous rank range `starts[j] .. starts[j] + sizes[j]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Wave {
    /// Queue indices of the wave's plans, in admission order.
    pub plans: Vec<usize>,
    /// Rank share of each plan (≥ 1, summing to `p`).
    pub sizes: Vec<usize>,
    /// First rank of each plan's subgroup (`starts[0] == 0`, contiguous).
    pub starts: Vec<usize>,
}

/// Pack `costs.len()` queued plans into waves of at most
/// `max_concurrent` over `p` ranks: FIFO cuts, then the
/// largest-remainder [`crate::allocate`] apportions ranks within each
/// wave cost-proportionally. Every wave's sizes sum to exactly `p` with
/// one rank minimum per plan, so admission can never oversubscribe.
pub fn pack_waves(costs: &[f64], p: usize, max_concurrent: usize) -> Vec<Wave> {
    pack_waves_with(costs, p, max_concurrent, &mut |c, p| allocate(c, p))
}

/// [`pack_waves`] with a pluggable allocator, so the service can thread
/// its memo table through without changing the schedule.
fn pack_waves_with(
    costs: &[f64],
    p: usize,
    max_concurrent: usize,
    alloc: &mut dyn FnMut(&[f64], usize) -> Vec<usize>,
) -> Vec<Wave> {
    assert!(p >= 1, "a service needs at least one rank");
    let per_wave = max_concurrent.max(1).min(p);
    let mut waves = Vec::new();
    let mut next = 0usize;
    while next < costs.len() {
        let k = per_wave.min(costs.len() - next);
        let sizes = alloc(&costs[next..next + k], p);
        let mut starts = vec![0usize; k];
        for j in 1..k {
            starts[j] = starts[j - 1] + sizes[j - 1];
        }
        waves.push(Wave {
            plans: (next..next + k).collect(),
            sizes,
            starts,
        });
        next += k;
    }
    waves
}

/// Per-tenant service accounting. Everything here counts *logical*
/// execution, so the record is identical across schedules
/// (`max_concurrent`), process counts, machine models, and backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Plans admitted (and therefore executed) for this tenant.
    pub submitted: u64,
    /// Plans that completed with a value.
    pub completed: u64,
    /// Plans that failed with a typed [`PlanError`].
    pub failed: u64,
    /// Submissions rejected at admission ([`AdmitError`]); filled by the
    /// service wrapper, always `0` inside a raw [`PlanService::serve_spmd`]
    /// report.
    pub rejected: u64,
    /// Combined [`ComposeStats`] of the tenant's completed plans.
    pub compose: ComposeStats,
}

impl TenantStats {
    fn absorb(&mut self, other: &TenantStats) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.failed += other.failed;
        self.rejected += other.rejected;
        self.compose = ComposeStats::combine(self.compose, other.compose);
    }
}

/// What one service run returns — identical on every rank.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Per-submission outcome, in admission order: the plan's output
    /// value, or the typed error that felled it.
    pub outcomes: Vec<Result<Value, PlanError>>,
    /// Per-tenant accounting, ascending by tenant id.
    pub tenants: Vec<(TenantId, TenantStats)>,
    /// Completion-time digest over the batch's completed plans (virtual
    /// seconds from batch start); p50/p99 come from here.
    pub latency: Digest,
    /// Per-tenant completion-time digests (same bucket range as
    /// [`ServeReport::latency`]), ascending by tenant id — the source of
    /// the service's per-tenant latency metrics.
    pub tenant_latency: Vec<(TenantId, Digest)>,
    /// Waves the schedule packed the batch into.
    pub waves: u64,
}

/// A [`ServeReport`] plus the run's timing and the service's cache
/// counters.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The per-rank-identical report.
    pub report: ServeReport,
    /// Modeled virtual time of the whole batch.
    pub elapsed_virtual: f64,
    /// Measured wall time of the whole batch, microseconds.
    pub wall_us: u64,
    /// Cumulative cache counters after this batch.
    pub cache: CacheStats,
}

/// A subgroup root's record of one finished plan.
#[derive(Clone)]
struct PlanDone {
    id: u64,
    tenant: TenantId,
    finish: f64,
    outcome: Result<(Value, ComposeStats), PlanError>,
}

/// The per-rank batch of finished-plan records, gathered world-wide.
#[derive(Clone)]
struct DoneBatch(Vec<PlanDone>);

impl Payload for DoneBatch {
    fn size_bytes(&self) -> usize {
        self.0
            .iter()
            .map(|d| {
                20 + match &d.outcome {
                    Ok((v, _)) => v.size_bytes() + std::mem::size_of::<ComposeStats>(),
                    Err(_) => 32,
                }
            })
            .sum()
    }
}

/// A persistent multi-tenant plan server over the pooled executor. See
/// the module docs for the dataflow.
///
/// ```
/// use archetype_compose::{forecast_input, forecast_plan, ForecastConfig, PlanService, ServeConfig};
/// use archetype_mp::MachineModel;
///
/// let mut svc = PlanService::new(4, ServeConfig::default());
/// let cfg = ForecastConfig { sweep_points: 16, mesh_n: 10, mesh_iters: 25 };
/// for tenant in 0..3 {
///     svc.submit(tenant, forecast_plan(cfg), forecast_input()).unwrap();
/// }
/// let out = svc.serve(MachineModel::ibm_sp());
/// assert_eq!(out.report.outcomes.len(), 3);
/// assert!(out.report.outcomes.iter().all(|o| o.is_ok()));
/// // Identical plans share one cached shape and cost estimate.
/// assert_eq!(out.cache.shape_misses, 1);
/// assert_eq!(out.cache.shape_hits, 2);
/// ```
pub struct PlanService {
    nprocs: usize,
    config: ServeConfig,
    cache: PlanCache,
    queue: Vec<Submission>,
    rejected: BTreeMap<TenantId, u64>,
    tenants: BTreeMap<TenantId, TenantStats>,
    metrics: Metrics,
}

/// The service's metric registry, with every series name declared up
/// front so `metrics_text` always exposes the full schema.
fn service_metrics() -> Metrics {
    let mut m = Metrics::new();
    m.describe(
        "planserve_queue_depth",
        MetricKind::Gauge,
        "Submissions currently queued awaiting service.",
    );
    m.describe(
        "planserve_admitted_total",
        MetricKind::Counter,
        "Submissions accepted by the admission controller.",
    );
    m.describe(
        "planserve_rejected_total",
        MetricKind::Counter,
        "Submissions rejected at admission, by AdmitError reason.",
    );
    m.describe(
        "planserve_batches_total",
        MetricKind::Counter,
        "Batches served (serve / serve_ft calls that executed).",
    );
    m.describe(
        "planserve_waves_total",
        MetricKind::Counter,
        "Waves executed across all served batches.",
    );
    m.describe_histogram(
        "planserve_wave_occupancy",
        "Plans packed per executed wave.",
        &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
    );
    m.describe(
        "planserve_plans_completed_total",
        MetricKind::Counter,
        "Plans that completed with a value, by tenant.",
    );
    m.describe(
        "planserve_plans_failed_total",
        MetricKind::Counter,
        "Plans that failed with a typed PlanError, by tenant.",
    );
    m.describe(
        "planserve_cache_hits_total",
        MetricKind::Counter,
        "Structure-cache lookups answered from cache, by cache.",
    );
    m.describe(
        "planserve_cache_misses_total",
        MetricKind::Counter,
        "Structure-cache lookups computed fresh, by cache.",
    );
    m.describe(
        "planserve_tenant_latency_virtual_seconds",
        MetricKind::Summary,
        "Plan completion latency in virtual seconds, by tenant (quantiles from the last batch).",
    );
    m.describe(
        "planserve_last_batch_virtual_seconds",
        MetricKind::Gauge,
        "Modeled virtual time of the most recently served batch.",
    );
    m
}

impl PlanService {
    /// A service over `nprocs` ranks.
    ///
    /// # Panics
    /// Panics if `nprocs == 0`.
    pub fn new(nprocs: usize, config: ServeConfig) -> PlanService {
        assert!(nprocs >= 1, "a service needs at least one rank");
        PlanService {
            nprocs,
            config,
            cache: PlanCache::default(),
            queue: Vec::new(),
            rejected: BTreeMap::new(),
            tenants: BTreeMap::new(),
            metrics: service_metrics(),
        }
    }

    /// Ranks the service schedules over.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Submissions currently queued.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Cumulative cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// Cumulative per-tenant accounting across every served batch (and
    /// rejections recorded since), ascending by tenant id.
    pub fn tenant_totals(&self) -> Vec<(TenantId, TenantStats)> {
        let mut totals = self.tenants.clone();
        for (&t, &n) in &self.rejected {
            totals.entry(t).or_default().rejected += n;
        }
        totals.into_iter().collect()
    }

    /// Admit one submission, or reject it with a typed [`AdmitError`].
    /// On admission, returns the submission's id — its index (and its
    /// [`ServeReport::outcomes`] position) in the current batch.
    pub fn submit(
        &mut self,
        tenant: TenantId,
        plan: Plan,
        input: Value,
    ) -> Result<u64, AdmitError> {
        if self.queue.len() >= self.config.queue_capacity {
            *self.rejected.entry(tenant).or_default() += 1;
            let err = AdmitError::QueueFull {
                capacity: self.config.queue_capacity,
            };
            self.metrics
                .inc("planserve_rejected_total", &[("reason", err.reason())], 1);
            return Err(err);
        }
        let hash = plan.structure_hash();
        let _shape = self.cache.shape(hash, &plan);
        let cost = self.cache.cost(hash, &input, &plan);
        if cost > self.config.cost_ceiling {
            *self.rejected.entry(tenant).or_default() += 1;
            let err = AdmitError::CostCeiling {
                estimated_flops: cost,
                ceiling: self.config.cost_ceiling,
            };
            self.metrics
                .inc("planserve_rejected_total", &[("reason", err.reason())], 1);
            return Err(err);
        }
        let id = self.queue.len() as u64;
        self.queue.push(Submission {
            tenant,
            plan,
            input,
            cost,
        });
        self.metrics.inc("planserve_admitted_total", &[], 1);
        Ok(id)
    }

    /// The memoized grammar of a previously submitted plan shape, if the
    /// cache holds it.
    pub fn cached_grammar(&self, plan: &Plan) -> Option<&PatternExpr> {
        self.cache
            .shapes
            .get(&plan.structure_hash())
            .map(|s| &s.grammar)
    }

    /// The memoized `(nodes, atoms)` counts of a previously submitted
    /// plan shape, if the cache holds it.
    pub fn cached_shape_counts(&self, plan: &Plan) -> Option<(u64, u64)> {
        self.cache
            .shapes
            .get(&plan.structure_hash())
            .map(|s| (s.nodes, s.atoms))
    }

    /// Pack the current queue into its wave schedule (also what the next
    /// `serve` call will execute), threading the allocation memo.
    fn pack(&mut self) -> Vec<Wave> {
        let costs: Vec<f64> = self.queue.iter().map(|s| s.cost).collect();
        let cache = &mut self.cache;
        pack_waves_with(
            &costs,
            self.nprocs,
            self.config.max_concurrent,
            &mut |c, p| cache.alloc(c, p).as_ref().clone(),
        )
    }

    /// Drain the queue and execute it as one SPMD run, returning the raw
    /// [`SpmdResult`] whose per-rank results are identical
    /// [`ServeReport`]s. Rejection accounting is *not* folded in here —
    /// use [`PlanService::serve`] for the full wrapper. This is the
    /// entry point determinism tests snapshot (results, per-rank clocks,
    /// elapsed virtual time).
    pub fn serve_spmd(&mut self, model: MachineModel, run: RunConfig) -> SpmdResult<ServeReport> {
        let waves = self.pack();
        self.record_schedule_metrics(&waves);
        let subs = Arc::new(std::mem::take(&mut self.queue));
        let body = serve_body(Arc::clone(&subs), Arc::new(waves), self.config);
        let result = run_spmd_with(self.nprocs, model, run, body);
        self.absorb(&result.results[0]);
        self.record_report_metrics(&result.results[0], result.elapsed_virtual);
        result
    }

    /// Serve the queued batch on the virtual-time backend and fold
    /// rejection accounting into the report.
    pub fn serve(&mut self, model: MachineModel) -> ServeOutcome {
        self.serve_with(model, RunConfig::virtual_time())
    }

    /// [`PlanService::serve`] with an explicit [`RunConfig`] — e.g.
    /// [`RunConfig::real`] to execute the same schedule on the real
    /// shared-memory backend (identical report, measured `wall_us`).
    pub fn serve_with(&mut self, model: MachineModel, run: RunConfig) -> ServeOutcome {
        let rejected = std::mem::take(&mut self.rejected);
        let result = self.serve_spmd(model, run);
        let mut report = result.results.into_iter().next().expect("one rank minimum");
        fold_rejections(&mut report, &rejected, &mut self.tenants);
        ServeOutcome {
            report,
            elapsed_virtual: result.elapsed_virtual,
            wall_us: result.wall_us,
            cache: self.cache.stats,
        }
    }

    /// Serve the queued batch under a deterministic [`FaultPlan`]
    /// (virtual backend only, per `run_spmd_ft`'s contract). Injected
    /// atom exhaustion surfaces *inside* the report as per-submission
    /// [`PlanError`]s; an injected rank crash fails the whole batch with
    /// [`SpmdError::Ranks`] (the drained submissions are dropped).
    pub fn serve_ft(
        &mut self,
        model: MachineModel,
        fault: FaultPlan,
    ) -> Result<ServeOutcome, SpmdError> {
        let rejected = std::mem::take(&mut self.rejected);
        let waves = self.pack();
        self.record_schedule_metrics(&waves);
        let subs = Arc::new(std::mem::take(&mut self.queue));
        let body = serve_body(Arc::clone(&subs), Arc::new(waves), self.config);
        let ft = run_spmd_ft_with(self.nprocs, model, fault, RunConfig::virtual_time(), body)?;
        let failures: Vec<_> = ft
            .results
            .iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect();
        if !failures.is_empty() {
            return Err(SpmdError::Ranks { failures });
        }
        let mut report = ft
            .results
            .into_iter()
            .next()
            .expect("one rank minimum")
            .expect("no failures");
        self.absorb(&report);
        self.record_report_metrics(&report, ft.elapsed_virtual);
        fold_rejections(&mut report, &rejected, &mut self.tenants);
        Ok(ServeOutcome {
            report,
            elapsed_virtual: ft.elapsed_virtual,
            wall_us: 0,
            cache: self.cache.stats,
        })
    }

    /// Fold a batch report into the cumulative per-tenant totals.
    fn absorb(&mut self, report: &ServeReport) {
        for (t, s) in &report.tenants {
            self.tenants.entry(*t).or_default().absorb(s);
        }
    }

    /// Count a packed schedule that is about to execute.
    fn record_schedule_metrics(&mut self, waves: &[Wave]) {
        self.metrics
            .inc("planserve_waves_total", &[], waves.len() as u64);
        for wave in waves {
            self.metrics
                .observe("planserve_wave_occupancy", &[], wave.plans.len() as f64);
        }
        if !waves.is_empty() {
            self.metrics.inc("planserve_batches_total", &[], 1);
        }
    }

    /// Fold one batch's report into the metrics registry.
    fn record_report_metrics(&mut self, report: &ServeReport, elapsed_virtual: f64) {
        for (t, s) in &report.tenants {
            let tenant = t.to_string();
            let labels: [(&'static str, &str); 1] = [("tenant", &tenant)];
            self.metrics
                .inc("planserve_plans_completed_total", &labels, s.completed);
            self.metrics
                .inc("planserve_plans_failed_total", &labels, s.failed);
        }
        for (t, digest) in &report.tenant_latency {
            let tenant = t.to_string();
            let labels: [(&'static str, &str); 1] = [("tenant", &tenant)];
            self.metrics.observe_summary(
                "planserve_tenant_latency_virtual_seconds",
                &labels,
                digest.sum,
                digest.count,
                &[(0.5, digest.percentile(0.50)), (0.99, digest.percentile(0.99))],
            );
        }
        self.metrics
            .set("planserve_last_batch_virtual_seconds", &[], elapsed_virtual);
    }

    /// Render the service's metrics in the Prometheus text exposition
    /// format. Live counters (admissions, rejections, waves, per-tenant
    /// completions and latency) are joined by point-in-time mirrors of
    /// the queue depth and the cumulative [`CacheStats`].
    pub fn metrics_text(&self) -> String {
        let mut m = self.metrics.clone();
        m.set("planserve_queue_depth", &[], self.queue.len() as f64);
        let c = self.cache.stats;
        for (cache, hits, misses) in [
            ("shape", c.shape_hits, c.shape_misses),
            ("cost", c.cost_hits, c.cost_misses),
            ("alloc", c.alloc_hits, c.alloc_misses),
        ] {
            m.sync_counter("planserve_cache_hits_total", &[("cache", cache)], hits);
            m.sync_counter("planserve_cache_misses_total", &[("cache", cache)], misses);
        }
        m.render()
    }
}

/// Merge admission rejections into a batch report (and the cumulative
/// totals): tenants with only rejections gain a fresh entry.
fn fold_rejections(
    report: &mut ServeReport,
    rejected: &BTreeMap<TenantId, u64>,
    totals: &mut BTreeMap<TenantId, TenantStats>,
) {
    for (&t, &n) in rejected {
        totals.entry(t).or_default().rejected += n;
        match report.tenants.binary_search_by_key(&t, |(id, _)| *id) {
            Ok(i) => report.tenants[i].1.rejected += n,
            Err(i) => {
                let stats = TenantStats {
                    rejected: n,
                    ..TenantStats::default()
                };
                report.tenants.insert(i, (t, stats));
            }
        }
    }
}

/// The SPMD body executing a packed schedule: a pure function of the
/// shared submission list and wave plan, so every rank walks the same
/// schedule and returns the identical report.
fn serve_body(
    subs: Arc<Vec<Submission>>,
    waves: Arc<Vec<Wave>>,
    config: ServeConfig,
) -> impl Fn(&mut Ctx) -> ServeReport + Sync {
    move |ctx| {
        let mut mine: Vec<PlanDone> = Vec::new();
        for (w, wave) in waves.iter().enumerate() {
            ctx.trace_wave_start(w, wave.plans.len());
            let me = ctx.rank();
            let j = (0..wave.plans.len())
                .rfind(|&j| wave.starts[j] <= me)
                .expect("every rank belongs to a branch");
            let members: Vec<usize> = (wave.starts[j]..wave.starts[j] + wave.sizes[j]).collect();
            let sub = &subs[wave.plans[j]];
            let salt = mix(SERVE_SALT, mix(w as u64 + 1, j as u64 + 1));
            let outcome = ctx.scoped(&members, salt, |ctx| {
                let input = if ctx.rank() == 0 {
                    sub.input.clone()
                } else {
                    Value::Unit
                };
                try_run_plan_with(ctx, &sub.plan, input, config.compose, None)
            });
            if me == wave.starts[j] {
                mine.push(PlanDone {
                    id: wave.plans[j] as u64,
                    tenant: sub.tenant,
                    finish: ctx.now(),
                    outcome,
                });
            }
        }

        // Assemble the world-identical report: every root's records,
        // sorted back into admission order.
        let batches: Vec<DoneBatch> = ctx.all_gather(DoneBatch(mine));
        let mut done: Vec<PlanDone> = batches.into_iter().flat_map(|b| b.0).collect();
        done.sort_by_key(|d| d.id);

        let hi = done
            .iter()
            .filter(|d| d.outcome.is_ok())
            .map(|d| d.finish)
            .fold(0.0f64, f64::max);
        let hi = if hi > 0.0 { hi * (1.0 + 1e-9) } else { 1.0 };
        let mut latency = Digest::new(config.latency_top_k, config.latency_buckets, 0.0, hi);
        let mut tenant_latency: BTreeMap<TenantId, Digest> = BTreeMap::new();
        let mut outcomes = Vec::with_capacity(done.len());
        let mut tenants: BTreeMap<TenantId, TenantStats> = BTreeMap::new();
        for d in done {
            let t = tenants.entry(d.tenant).or_default();
            t.submitted += 1;
            match d.outcome {
                Ok((value, stats)) => {
                    t.completed += 1;
                    t.compose = ComposeStats::combine(t.compose, stats);
                    latency.add(d.finish);
                    tenant_latency
                        .entry(d.tenant)
                        .or_insert_with(|| {
                            Digest::new(config.latency_top_k, config.latency_buckets, 0.0, hi)
                        })
                        .add(d.finish);
                    outcomes.push(Ok(value));
                }
                Err(e) => {
                    t.failed += 1;
                    outcomes.push(Err(e));
                }
            }
        }
        ServeReport {
            outcomes,
            tenants: tenants.into_iter().collect(),
            latency,
            tenant_latency: tenant_latency.into_iter().collect(),
            waves: waves.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use archetype_core::{ArchetypeInfo, PhaseKind, PhaseTrace};
    use archetype_mp::{CrashSite, MachineModel};

    use super::*;
    use crate::job::ArchetypeJob;

    /// A cheap deterministic atom: folds any input value to an `F64` and
    /// nudges it, so arbitrary plan shapes type-check from a `Unit` root
    /// input (every `Par` fans `Unit` out).
    struct Fold {
        weight: f64,
    }

    fn fold_value(v: &Value) -> f64 {
        match v {
            Value::Unit => 1.0,
            Value::U64(x) => *x as f64,
            Value::F64(x) => *x,
            Value::I64s(xs) => xs.iter().map(|&x| x as f64).sum(),
            Value::F64s(xs) => xs.iter().sum(),
            Value::Tuple(parts) => parts.iter().map(fold_value).sum(),
        }
    }

    impl ArchetypeJob for Fold {
        type In = Value;
        type Out = Value;

        fn name(&self) -> &'static str {
            "fold"
        }

        fn info(&self) -> &'static ArchetypeInfo {
            &archetype_core::archetype::ONE_DEEP_DC
        }

        fn estimate_flops(&self, _input: &Value) -> f64 {
            self.weight
        }

        fn run(&self, ctx: &mut Ctx, input: Value, trace: Option<&PhaseTrace>) -> Value {
            let _ = ctx;
            if let Some(t) = trace {
                t.record(PhaseKind::Split, "fold split");
                t.record(PhaseKind::Solve, "fold solve");
                t.record(PhaseKind::Merge, "fold merge");
            }
            Value::F64(fold_value(&input) * 1.5 + self.weight)
        }

        fn fingerprint(&self) -> u64 {
            self.weight.to_bits()
        }
    }

    fn fold_plan(weight: f64) -> Plan {
        Plan::seq(vec![
            Plan::atom(Fold { weight }).alongside(Plan::atom(Fold {
                weight: weight * 2.0,
            })),
            Plan::atom(Fold { weight: 1.0 }),
        ])
    }

    #[test]
    fn identical_submissions_share_cached_shape_cost_and_allocation() {
        let mut svc = PlanService::new(6, ServeConfig::default());
        for t in 0..4 {
            svc.submit(t % 2, fold_plan(3.0), Value::Unit).unwrap();
        }
        assert!(svc.cached_grammar(&fold_plan(3.0)).is_some());
        assert!(svc.cached_grammar(&fold_plan(4.0)).is_none());
        let out = svc.serve(MachineModel::ibm_sp());
        assert_eq!(out.cache.shape_misses, 1);
        assert_eq!(out.cache.shape_hits, 3);
        assert_eq!(out.cache.cost_misses, 1);
        assert_eq!(out.cache.cost_hits, 3);

        // A second identical batch reuses even the wave allocations.
        let before = out.cache;
        for t in 0..4 {
            svc.submit(t % 2, fold_plan(3.0), Value::Unit).unwrap();
        }
        let out2 = svc.serve(MachineModel::ibm_sp());
        assert_eq!(out2.cache.shape_hits, before.shape_hits + 4);
        assert!(out2.cache.alloc_hits > before.alloc_hits);
        assert_eq!(
            out2.report, out.report,
            "identical batches, identical reports"
        );
    }

    #[test]
    fn admission_rejections_are_typed_and_accounted() {
        let mut svc = PlanService::new(
            4,
            ServeConfig {
                queue_capacity: 2,
                cost_ceiling: 10.0,
                ..ServeConfig::default()
            },
        );
        assert_eq!(svc.submit(7, fold_plan(1.0), Value::Unit), Ok(0));
        let err = svc
            .submit(7, fold_plan(100.0), Value::Unit)
            .expect_err("over the ceiling");
        assert!(matches!(err, AdmitError::CostCeiling { ceiling, .. } if ceiling == 10.0));
        assert_eq!(svc.submit(8, fold_plan(2.0), Value::Unit), Ok(1));
        let err = svc
            .submit(9, fold_plan(1.0), Value::Unit)
            .expect_err("queue is full");
        assert_eq!(err, AdmitError::QueueFull { capacity: 2 });
        assert!(err.to_string().contains("full"));

        let out = svc.serve(MachineModel::ibm_sp());
        let find = |t: TenantId| {
            out.report
                .tenants
                .iter()
                .find(|(id, _)| *id == t)
                .map(|(_, s)| *s)
                .unwrap()
        };
        assert_eq!(find(7).completed, 1);
        assert_eq!(find(7).rejected, 1);
        assert_eq!(find(8).completed, 1);
        assert_eq!(find(9).rejected, 1);
        assert_eq!(find(9).submitted, 0, "tenant 9 never ran a plan");
        assert_eq!(svc.tenant_totals(), out.report.tenants);
    }

    #[test]
    fn concurrent_and_serial_schedules_agree_on_outcomes_and_stats() {
        let run = |max_concurrent: usize| {
            let mut svc = PlanService::new(
                8,
                ServeConfig {
                    max_concurrent,
                    ..ServeConfig::default()
                },
            );
            for i in 0..10u32 {
                svc.submit(i % 3, fold_plan(f64::from(i % 4) + 1.0), Value::Unit)
                    .unwrap();
            }
            svc.serve(MachineModel::cray_t3d())
        };
        let serial = run(1);
        let packed = run(4);
        assert_eq!(serial.report.outcomes, packed.report.outcomes);
        assert_eq!(serial.report.tenants, packed.report.tenants);
        assert_eq!(serial.report.waves, 10);
        assert!(packed.report.waves < 10);
        assert!(
            packed.elapsed_virtual < serial.elapsed_virtual,
            "packing must beat serial: {} vs {}",
            packed.elapsed_virtual,
            serial.elapsed_virtual
        );
    }

    #[test]
    fn injected_atom_exhaustion_is_a_per_submission_error() {
        let mut svc = PlanService::new(4, ServeConfig::default());
        svc.submit(1, fold_plan(1.0), Value::Unit).unwrap();
        // Node 1 is the first plan's Par; its first atom is node 2. Doom
        // it past the default 3-retry budget.
        let fault = FaultPlan::new(11).fail_atom(2, 9);
        let out = svc
            .serve_ft(MachineModel::ibm_sp(), fault)
            .expect("no rank crashed");
        assert_eq!(out.report.outcomes.len(), 1);
        let err = out.report.outcomes[0].as_ref().expect_err("doomed atom");
        assert!(matches!(err, PlanError::AtomExhausted { node: 2, .. }));
        let (_, stats) = out.report.tenants[0];
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(out.report.latency.count, 0, "failed plans leave no latency");
    }

    #[test]
    fn an_injected_crash_fails_the_whole_batch_typed() {
        let mut svc = PlanService::new(3, ServeConfig::default());
        svc.submit(1, fold_plan(1.0), Value::Unit).unwrap();
        let fault = FaultPlan::new(11).crash(0, CrashSite::Send(0));
        let err = svc
            .serve_ft(MachineModel::ibm_sp(), fault)
            .expect_err("rank 0 dies");
        assert!(!err.failures().is_empty());
        assert!(err.failures().iter().any(|f| f.injected));
    }

    #[test]
    fn pack_waves_covers_every_plan_exactly_once() {
        let costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let waves = pack_waves(&costs, 5, 3);
        let mut seen = vec![0u32; costs.len()];
        for w in &waves {
            assert_eq!(w.sizes.iter().sum::<usize>(), 5);
            assert!(w.sizes.iter().all(|&s| s >= 1));
            assert_eq!(w.starts[0], 0);
            for i in &w.plans {
                seen[*i] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1));
        assert_eq!(waves.len(), 3); // ceil(7 / 3)
    }
}
