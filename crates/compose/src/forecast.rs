//! The flagship composite: a forecast-style workload spanning all four
//! archetype crates in one plan.
//!
//! ```text
//! par ┬ atom sweep   [task-farm]      irregular parameter sweep
//!     └ atom poisson [mesh-spectral]  fixed-budget Jacobi solve
//! seq → atom sort    [recursive D&C]  merge + sort both result sets
//! seq → atom top-k   [pipeline]       streaming digest of the sorted data
//! ```
//!
//! The two `Par` branches model a forecasting run: an emissions-scenario
//! sweep (a task farm whose per-point cost varies ~300×) alongside a
//! pollutant-dispersion solve (a Poisson relaxation with a fixed
//! iteration budget). Their outputs — scenario severity scores and field
//! samples — merge into one dataset that a recursive-D&C mergesort
//! orders and a bounded-stream pipeline digests into top-k values and
//! percentiles.
//!
//! Everything downstream consumes *values*, so results are bit-identical
//! across process counts, machine models, and `Par` scheduling — the
//! sweep's score table is index-merged (schedule-independent), the
//! Jacobi field is exact, the sort is a sort, and the digest folds in
//! stream order. `examples/forecast_plan.rs` runs the plan end to end;
//! the `compose_scaling` bench gates its speedup over serialized
//! branches.

use archetype_core::archetype::{MESH_SPECTRAL, PIPELINE, RECURSIVE_DC, TASK_FARM};
use archetype_core::{ArchetypeInfo, PhaseTrace};
use archetype_dc::perfmodel::mergesort_work_flops;
use archetype_dc::{run_spmd_recursive, CutoffPolicy, RecursiveMergesort};
use archetype_farm::apps::GridSweepFarm;
use archetype_farm::{run_farm_traced, FarmConfig};
use archetype_mesh::apps::poisson::{
    poisson_estimate_flops, poisson_spmd_traced, sine_problem, PoissonSpec,
};
use archetype_mp::{Ctx, ProcessGrid2};
use archetype_pipeline::apps::ChunkedStream;
use archetype_pipeline::{run_pipeline_traced, PipelineConfig};

use crate::exec::mix;
use crate::job::ArchetypeJob;
use crate::plan::Plan;
use crate::value::Value;

/// Fixed-point scale for sorting `f64` measurements as `i64` keys
/// (deterministic, order-preserving for the value ranges involved).
const SORT_SCALE: f64 = 1e7;

/// The parameter-sweep branch: a [`GridSweepFarm`] whose output is the
/// full score table, returned as plain values.
pub struct SweepJob {
    /// The grid sweep to run.
    pub farm: GridSweepFarm,
}

impl ArchetypeJob for SweepJob {
    type In = ();
    type Out = Vec<f64>;

    fn name(&self) -> &'static str {
        "sweep"
    }

    fn info(&self) -> &'static ArchetypeInfo {
        &TASK_FARM
    }

    fn estimate_flops(&self, _input: &()) -> f64 {
        self.farm.total_flops()
    }

    fn run(&self, ctx: &mut Ctx, _input: (), trace: Option<&PhaseTrace>) -> Vec<f64> {
        let (scores, _stats) = run_farm_traced(&self.farm, ctx, FarmConfig::default(), trace);
        scores.into_iter().map(|(_, s)| s).collect()
    }

    fn fingerprint(&self) -> u64 {
        mix(
            mix(self.farm.lo.to_bits(), self.farm.hi.to_bits()),
            u64::from(self.farm.points),
        )
    }
}

/// The dispersion-solve branch: a fixed-budget Jacobi relaxation whose
/// output is the solution field (row-major, every grid point).
pub struct PoissonJob {
    /// The problem to solve.
    pub spec: PoissonSpec,
}

impl PoissonJob {
    /// A 2-D process grid for `p` ranks (factored near-square).
    fn grid_for(p: usize) -> ProcessGrid2 {
        let mut px = (p as f64).sqrt() as usize;
        while px > 1 && !p.is_multiple_of(px) {
            px -= 1;
        }
        ProcessGrid2::new(px.max(1), p / px.max(1))
    }
}

impl ArchetypeJob for PoissonJob {
    type In = ();
    type Out = Vec<f64>;

    fn name(&self) -> &'static str {
        "poisson"
    }

    fn info(&self) -> &'static ArchetypeInfo {
        &MESH_SPECTRAL
    }

    fn estimate_flops(&self, _input: &()) -> f64 {
        poisson_estimate_flops(&self.spec)
    }

    fn run(&self, ctx: &mut Ctx, _input: (), trace: Option<&PhaseTrace>) -> Vec<f64> {
        let grid = Self::grid_for(ctx.nprocs());
        let result = poisson_spmd_traced(ctx, &self.spec, grid, trace);
        result.grid.unwrap_or_default() // the solution lands on rank 0
    }

    fn fingerprint(&self) -> u64 {
        // The rhs/boundary fn pointers are not part of the identity; all
        // in-repo specs come from `sine_problem`.
        mix(
            mix(self.spec.nx as u64, self.spec.ny as u64),
            mix(self.spec.tolerance.to_bits(), self.spec.max_iters as u64),
        )
    }
}

/// The merge/sort stage: concatenates the branch outputs, quantizes to
/// fixed-point keys, and sorts with the recursive divide-and-conquer
/// mergesort on nested process groups.
pub struct SortJob {
    /// Recursion policy of the underlying `run_spmd_recursive`.
    pub policy: CutoffPolicy,
}

impl Default for SortJob {
    fn default() -> Self {
        SortJob {
            policy: CutoffPolicy::new(2, 64, 4),
        }
    }
}

impl ArchetypeJob for SortJob {
    type In = (Vec<f64>, Vec<f64>);
    type Out = Vec<i64>;

    fn name(&self) -> &'static str {
        "sort"
    }

    fn info(&self) -> &'static ArchetypeInfo {
        &RECURSIVE_DC
    }

    fn estimate_flops(&self, input: &(Vec<f64>, Vec<f64>)) -> f64 {
        mergesort_work_flops(input.0.len() + input.1.len(), self.policy.min_items)
    }

    fn run(
        &self,
        ctx: &mut Ctx,
        (scores, field): (Vec<f64>, Vec<f64>),
        trace: Option<&PhaseTrace>,
    ) -> Vec<i64> {
        // Only the root's keys enter the recursion; spare the other
        // ranks the quantization pass over their (discarded) copies.
        let local = (ctx.rank() == 0).then(|| {
            scores
                .iter()
                .chain(field.iter())
                .map(|&v| (v * SORT_SCALE).round() as i64)
                .collect::<Vec<i64>>()
        });
        run_spmd_recursive(
            &RecursiveMergesort::<i64>::new(),
            ctx,
            local,
            &self.policy,
            trace,
        )
        .unwrap_or_default() // the sorted keys land on rank 0
    }

    fn fingerprint(&self) -> u64 {
        mix(
            mix(self.policy.branching as u64, self.policy.min_items as u64),
            self.policy.max_depth as u64,
        )
    }
}

/// The digest stage: streams the sorted keys (as values) through the
/// normalize/trim chain into a top-k + percentile digest, summarized as
/// `[count, mean, p50, p99, top…]`.
pub struct TopKJob {
    /// Samples per stream chunk.
    pub chunk_len: usize,
    /// Top-k capacity.
    pub k: usize,
    /// Histogram buckets.
    pub buckets: usize,
    /// Trim cutoff (after log-compression).
    pub cutoff: f64,
}

impl Default for TopKJob {
    fn default() -> Self {
        TopKJob {
            chunk_len: 64,
            k: 8,
            buckets: 64,
            cutoff: 3.0,
        }
    }
}

impl ArchetypeJob for TopKJob {
    type In = Vec<i64>;
    type Out = Vec<f64>;

    fn name(&self) -> &'static str {
        "top-k"
    }

    fn info(&self) -> &'static ArchetypeInfo {
        &PIPELINE
    }

    fn estimate_flops(&self, input: &Vec<i64>) -> f64 {
        input.len() as f64 * ChunkedStream::flops_per_sample(self.k)
    }

    fn run(&self, ctx: &mut Ctx, input: Vec<i64>, trace: Option<&PhaseTrace>) -> Vec<f64> {
        let values: Vec<f64> = input.iter().map(|&q| q as f64 / SORT_SCALE).collect();
        let stream = ChunkedStream::new(values, self.chunk_len, self.k, self.buckets, self.cutoff);
        let (digest, _stats) = run_pipeline_traced(&stream, ctx, PipelineConfig::default(), trace);
        let mut out = vec![
            digest.count as f64,
            digest.mean(),
            digest.percentile(0.5),
            digest.percentile(0.99),
        ];
        out.extend(digest.top.iter().copied());
        out
    }

    fn fingerprint(&self) -> u64 {
        mix(
            mix(self.chunk_len as u64, self.k as u64),
            mix(self.buckets as u64, self.cutoff.to_bits()),
        )
    }
}

/// Configuration of the flagship forecast composite.
#[derive(Clone, Copy, Debug)]
pub struct ForecastConfig {
    /// Evaluation points of the parameter sweep.
    pub sweep_points: u32,
    /// Poisson grid extent (`n × n`).
    pub mesh_n: usize,
    /// Poisson iteration budget.
    pub mesh_iters: usize,
}

impl Default for ForecastConfig {
    /// The `compose_scaling` benchmark shape: the sweep carries most of
    /// the flops, so the allocator keeps the latency-bound mesh solve on
    /// a small subgroup — where it is *fastest* — instead of spreading
    /// it across the world, which is exactly the regime where
    /// cost-proportional composition beats serializing the branches.
    fn default() -> Self {
        ForecastConfig {
            sweep_points: 6000,
            mesh_n: 24,
            mesh_iters: 600,
        }
    }
}

/// Build the flagship plan:
/// `(sweep ∥ poisson) → sort → top-k`.
pub fn forecast_plan(cfg: ForecastConfig) -> Plan {
    let sweep = Plan::atom(SweepJob {
        farm: GridSweepFarm {
            lo: 0.0,
            hi: 2.0,
            points: cfg.sweep_points,
        },
    });
    let poisson = Plan::atom(PoissonJob {
        // An effectively unreachable tolerance keeps the budget binding,
        // so the allocator's estimate is exact.
        spec: sine_problem(cfg.mesh_n, 1e-14, cfg.mesh_iters),
    });
    sweep
        .alongside(poisson)
        .then(Plan::atom(SortJob::default()))
        .then(Plan::atom(TopKJob::default()))
}

/// The input value the forecast plan consumes: both branches are
/// self-contained, so the `Par` fans out `Unit`.
pub fn forecast_input() -> Value {
    Value::Unit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_plan, run_plan_with, ComposeConfig, ParMode};
    use archetype_mp::{run_spmd, MachineModel};

    fn mini() -> ForecastConfig {
        ForecastConfig {
            sweep_points: 24,
            mesh_n: 12,
            mesh_iters: 40,
        }
    }

    #[test]
    fn forecast_results_are_process_count_invariant() {
        let reference = run_spmd(1, MachineModel::ibm_sp(), |ctx| {
            run_plan(ctx, &forecast_plan(mini()), forecast_input()).0
        })
        .results[0]
            .clone();
        match &reference {
            Value::F64s(v) => assert!(v.len() >= 4, "summary has header + top-k"),
            other => panic!("expected F64s, got {}", other.shape()),
        }
        for p in [2usize, 3, 5, 8] {
            let out = run_spmd(p, MachineModel::ibm_sp(), |ctx| {
                run_plan(ctx, &forecast_plan(mini()), forecast_input()).0
            });
            for (r, v) in out.results.iter().enumerate() {
                assert_eq!(v, &reference, "p={p} rank={r}");
            }
        }
    }

    #[test]
    fn serialized_and_allocated_schedules_agree_on_results_and_stats() {
        let run = |mode: ParMode, p: usize| {
            run_spmd(p, MachineModel::cray_t3d(), move |ctx| {
                run_plan_with(
                    ctx,
                    &forecast_plan(mini()),
                    forecast_input(),
                    ComposeConfig {
                        par: mode,
                        ..ComposeConfig::default()
                    },
                    None,
                )
            })
        };
        let a = run(ParMode::Allocate, 6);
        let b = run(ParMode::Serialize, 6);
        assert_eq!(a.results[0].0, b.results[0].0);
        assert_eq!(
            a.results[0].1, b.results[0].1,
            "stats are schedule-invariant"
        );
        assert!(
            a.elapsed_virtual < b.elapsed_virtual,
            "cost-proportional allocation should beat serialization: {} vs {}",
            a.elapsed_virtual,
            b.elapsed_virtual
        );
    }

    #[test]
    fn forecast_stats_count_the_plan_structure() {
        let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
            run_plan(ctx, &forecast_plan(mini()), forecast_input()).1
        });
        let stats = out.results[0];
        assert_eq!(stats.atoms, 4);
        assert_eq!(stats.par_sections, 1);
        assert_eq!(stats.branches, 2);
        assert_eq!(stats.seq_stages, 3);
        assert_eq!(stats.handoffs, 4);
        assert!(stats.handoff_bytes > 0);
    }
}
