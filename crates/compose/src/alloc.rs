//! The model-driven allocator: how many ranks each `Par` branch gets.
//!
//! Branch work estimates come from the jobs' flop counts
//! ([`crate::ArchetypeJob::estimate_flops`], summed over each branch's
//! plan). Ranks are apportioned **proportionally to estimated work**
//! with a guaranteed minimum of one rank per branch, using the largest-
//! remainder method: every branch first receives one rank, then the
//! remaining `p − k` ranks are distributed by quota
//! `qᵢ = (p − k) · costᵢ / Σcost`, each branch receiving `⌊qᵢ⌋` plus at
//! most one more, in descending fractional-remainder order (ties broken
//! by branch index, so the allocation is deterministic).
//!
//! The resulting invariants — checked by `tests/prop_compose.rs` over
//! random costs and process counts — are exactly the ones the executor's
//! group arithmetic relies on: sizes sum to `p`, every branch gets at
//! least one rank, and every size is within one rank of its quota.

/// Rank shares for `k = costs.len()` branches over `p` ranks.
///
/// Non-finite or negative costs are treated as zero; if every cost is
/// zero the spare ranks are spread evenly. Requires `p >= k` (the
/// executor serializes branches instead of calling this when the group
/// is too small).
///
/// ```
/// use archetype_compose::allocate;
/// assert_eq!(allocate(&[3.0, 1.0], 8), vec![6, 2]);
/// assert_eq!(allocate(&[1.0, 1.0, 1.0], 4), vec![2, 1, 1]);
/// assert_eq!(allocate(&[0.0, 0.0], 5), vec![3, 2]);
/// ```
///
/// # Panics
/// Panics if `costs` is empty or `p < costs.len()`.
pub fn allocate(costs: &[f64], p: usize) -> Vec<usize> {
    let k = costs.len();
    assert!(k >= 1, "allocate needs at least one branch");
    assert!(
        p >= k,
        "allocate needs at least one rank per branch (p={p}, k={k})"
    );

    let sane: Vec<f64> = costs
        .iter()
        .map(|&c| if c.is_finite() && c > 0.0 { c } else { 0.0 })
        .collect();
    let total: f64 = sane.iter().sum();
    let spare = (p - k) as f64;

    // Quotas over the spare ranks (even spread when nothing is priced).
    let quotas: Vec<f64> = if total > 0.0 {
        sane.iter().map(|&c| spare * c / total).collect()
    } else {
        vec![spare / k as f64; k]
    };

    let mut sizes: Vec<usize> = quotas.iter().map(|&q| 1 + q.floor() as usize).collect();
    let assigned: usize = sizes.iter().sum();
    let mut leftover = p - assigned;

    // Largest fractional remainders first; index order on ties.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        let fa = quotas[a].fract();
        let fb = quotas[b].fract();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for &i in &order {
        if leftover == 0 {
            break;
        }
        sizes[i] += 1;
        leftover -= 1;
    }
    debug_assert_eq!(sizes.iter().sum::<usize>(), p);
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_p_and_respect_quota_bounds() {
        let costs = [5.0, 1.0, 3.0, 1.0];
        for p in 4..=32 {
            let sizes = allocate(&costs, p);
            assert_eq!(sizes.iter().sum::<usize>(), p);
            let total: f64 = costs.iter().sum();
            let spare = (p - costs.len()) as f64;
            for (i, &s) in sizes.iter().enumerate() {
                let q = spare * costs[i] / total;
                assert!(s >= 1, "p={p} branch {i}");
                assert!(
                    (s as f64 - (1.0 + q)).abs() < 1.0 + 1e-9,
                    "p={p} branch {i}: share {s} vs quota {}",
                    1.0 + q
                );
            }
        }
    }

    #[test]
    fn zero_and_pathological_costs_fall_back_to_even_spread() {
        assert_eq!(allocate(&[0.0, 0.0, 0.0], 9), vec![3, 3, 3]);
        let sizes = allocate(&[f64::NAN, f64::INFINITY, -3.0], 6);
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn exact_fit_gives_one_rank_each() {
        assert_eq!(allocate(&[9.0, 1.0, 4.0], 3), vec![1, 1, 1]);
    }

    #[test]
    fn heavily_skewed_costs_still_feed_every_branch() {
        let sizes = allocate(&[1e12, 1.0, 1.0], 8);
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert_eq!(sizes[1], 1);
        assert_eq!(sizes[2], 1);
        assert_eq!(sizes[0], 6);
    }

    #[test]
    #[should_panic(expected = "one rank per branch")]
    fn too_few_ranks_panic() {
        allocate(&[1.0, 1.0, 1.0], 2);
    }
}
