//! The plan executor: groups, handoffs, traces, statistics.
//!
//! [`run_plan`] walks a [`Plan`] collectively on the current process
//! group, maintaining one invariant throughout: **the plan value on an
//! edge is held by rank 0 of the group executing that edge**. From it,
//! each constructor's communication is derived:
//!
//! - **Atom** — the group enters a fresh [`Ctx::scoped`] section (so the
//!   archetype's internal protocol, whatever tags it uses, is isolated
//!   from every sibling and from the executor's own traffic), the root
//!   broadcasts the input to the members, and the job runs collectively;
//!   the root keeps the output.
//! - **Seq** — stages execute in order on the whole group; the value
//!   stays at the root between stages, so consecutive stages hand off
//!   without communication.
//! - **Par / Replicate** — the root splits the tuple input, prices each
//!   branch through its jobs' flop estimates, and broadcasts the cost
//!   vector; every rank then computes the same proportional allocation
//!   ([`crate::allocate`]) and joins its contiguous branch subgroup. The
//!   root ships branch inputs to the branch roots (bit-59
//!   [`archetype_mp::tags::compose_tag`] namespace), branches recurse
//!   concurrently inside disjoint scopes, and branch roots ship outputs
//!   (with their trace slices) back to the root, which assembles the
//!   output tuple — in branch order, so results, clocks, and the
//!   composite trace are deterministic. Groups too small to host every
//!   branch (`p < k`), or a [`ParMode::Serialize`] config, run the
//!   branches one after another on the whole group instead — same
//!   results, same statistics, different schedule.
//!
//! Statistics ([`ComposeStats`]) count *logical* structure — atoms run,
//! stages, branches, handoffs and their bytes — so they are identical
//! across process counts, machine models, and `Par` modes; determinism
//! of results and virtual clocks across repeated runs follows from the
//! substrate's.

use archetype_core::{Phase, PhaseKind, PhaseTrace};
use archetype_mp::tags::{compose_tag, ComposeTag};
use archetype_mp::{impl_fixed_size, Ctx, Payload};

use crate::alloc::allocate;
use crate::plan::{Plan, PlanNode};
use crate::value::Value;

/// How `Par`/`Replicate` nodes use the group.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParMode {
    /// Branches run concurrently on disjoint subgroups sized by the
    /// model-driven allocator (serializing only when the group is
    /// smaller than the branch count).
    #[default]
    Allocate,
    /// Branches run one after another on the full group — the baseline
    /// the `compose_scaling` bench compares cost-proportional allocation
    /// against.
    Serialize,
}

/// Tuning knobs for [`run_plan_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ComposeConfig {
    /// Branch scheduling policy.
    pub par: ParMode,
}

/// Deterministic, structural statistics of a plan run — identical on
/// every rank, across runs, process counts, machine models, and
/// [`ParMode`]s (they count the plan's logical execution, not its
/// schedule).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComposeStats {
    /// Atom executions ([`crate::ArchetypeJob::run`] calls, counted once
    /// per atom instance regardless of group size).
    pub atoms: u64,
    /// `Seq` stages executed.
    pub seq_stages: u64,
    /// `Par`/`Replicate` sections executed.
    pub par_sections: u64,
    /// Branches executed across all sections (replicate copies included).
    pub branches: u64,
    /// Branches that were replicate copies.
    pub replicated: u64,
    /// Logical inter-stage value transfers: one input and one output per
    /// branch of every section.
    pub handoffs: u64,
    /// Total payload bytes of those transfers (branch inputs + outputs).
    pub handoff_bytes: u64,
    /// Plan nodes executed (replicate bodies counted once per copy).
    pub plan_nodes: u64,
    /// Deepest nesting level reached.
    pub max_depth: u64,
}

impl_fixed_size!(ComposeStats);

impl ComposeStats {
    fn combine(a: ComposeStats, b: ComposeStats) -> ComposeStats {
        ComposeStats {
            atoms: a.atoms + b.atoms,
            seq_stages: a.seq_stages + b.seq_stages,
            par_sections: a.par_sections + b.par_sections,
            branches: a.branches + b.branches,
            replicated: a.replicated + b.replicated,
            handoffs: a.handoffs + b.handoffs,
            handoff_bytes: a.handoff_bytes + b.handoff_bytes,
            plan_nodes: a.plan_nodes + b.plan_nodes,
            max_depth: a.max_depth.max(b.max_depth),
        }
    }
}

/// A branch's trace slice travelling back to the parent root.
struct TraceBatch(Vec<Phase>);

impl Payload for TraceBatch {
    fn size_bytes(&self) -> usize {
        self.0.iter().map(|p| 1 + p.label.len()).sum()
    }
}

/// A branch output and its trace slice, shipped root-to-root.
struct Handoff {
    value: Value,
    trace: TraceBatch,
}

impl Payload for Handoff {
    fn size_bytes(&self) -> usize {
        self.value.size_bytes() + self.trace.size_bytes()
    }
}

fn mix(a: u64, b: u64) -> u64 {
    let mut h = 0x9e3779b97f4a7c15u64 ^ a;
    h = h.wrapping_mul(0x100000001b3);
    h ^= b;
    h.wrapping_mul(0x100000001b3)
}

/// Split a `Par`/`Replicate` input into one part per branch.
fn split_parts(v: Value, k: usize) -> Vec<Value> {
    match v {
        Value::Tuple(parts) => {
            assert_eq!(
                parts.len(),
                k,
                "a Par/Replicate over {k} branches needs a {k}-tuple input (got {} parts)",
                parts.len()
            );
            parts
        }
        Value::Unit => vec![Value::Unit; k],
        other => panic!(
            "a Par/Replicate over {k} branches needs a Tuple or Unit input, got {}",
            other.shape()
        ),
    }
}

struct Walker {
    config: ComposeConfig,
    stats: ComposeStats,
}

impl Walker {
    /// Execute one plan node on the current scope. `input` is `Some`
    /// exactly on the scope's rank 0; likewise the returned value and
    /// trace slice.
    fn node(
        &mut self,
        ctx: &mut Ctx,
        plan: &Plan,
        input: Option<Value>,
        node_id: u64,
        salt: u64,
        depth: u64,
    ) -> (Option<Value>, Vec<Phase>) {
        let root = ctx.rank() == 0;
        if root {
            self.stats.plan_nodes += 1;
            self.stats.max_depth = self.stats.max_depth.max(depth);
        }
        match &plan.node {
            PlanNode::Atom(job) => {
                let members: Vec<usize> = (0..ctx.nprocs()).collect();
                let stats = &mut self.stats;
                ctx.scoped(&members, mix(salt, node_id), |ctx| {
                    let root = ctx.rank() == 0;
                    let mut phases = Vec::new();
                    if root && ctx.nprocs() > 1 {
                        phases.push(Phase::new(
                            PhaseKind::Communication,
                            format!("replicate input of {}", job.name()),
                        ));
                    }
                    let v = ctx.broadcast(0, input);
                    let local = if root { Some(PhaseTrace::new()) } else { None };
                    let out = job.run(ctx, v, local.as_ref());
                    if root {
                        stats.atoms += 1;
                        phases.extend(local.expect("root trace").phases());
                        (Some(out), phases)
                    } else {
                        (None, Vec::new())
                    }
                })
            }
            PlanNode::Seq(stages) => {
                if root {
                    self.stats.seq_stages += stages.len() as u64;
                }
                let mut v = input;
                let mut phases = Vec::new();
                let mut child = node_id + 1;
                for stage in stages {
                    let (nv, ph) = self.node(ctx, stage, v, child, salt, depth + 1);
                    child += stage.nodes();
                    v = nv;
                    phases.extend(ph);
                }
                (v, phases)
            }
            PlanNode::Par(branches) => {
                let refs: Vec<&Plan> = branches.iter().collect();
                let mut bases = Vec::with_capacity(refs.len());
                let mut base = node_id + 1;
                for b in &refs {
                    bases.push(base);
                    base += b.nodes();
                }
                self.section(ctx, &refs, &bases, input, node_id, salt, depth, false)
            }
            PlanNode::Replicate(copies, inner) => {
                let refs: Vec<&Plan> = (0..*copies).map(|_| inner.as_ref()).collect();
                let bases = vec![node_id + 1; *copies];
                self.section(ctx, &refs, &bases, input, node_id, salt, depth, true)
            }
        }
    }

    /// Execute a `Par`/`Replicate` section: `branches[j]` over part `j`
    /// of the tuple input, starting its subtree's node ids at `bases[j]`.
    #[allow(clippy::too_many_arguments)] // internal walker plumbing
    fn section(
        &mut self,
        ctx: &mut Ctx,
        branches: &[&Plan],
        bases: &[u64],
        input: Option<Value>,
        node_id: u64,
        salt: u64,
        depth: u64,
        is_replicate: bool,
    ) -> (Option<Value>, Vec<Phase>) {
        let k = branches.len();
        let p = ctx.nprocs();
        let root = ctx.rank() == 0;
        if root {
            self.stats.par_sections += 1;
            self.stats.branches += k as u64;
            if is_replicate {
                self.stats.replicated += k as u64;
            }
        }

        let mut parts: Option<Vec<Value>> = input.map(|v| split_parts(v, k));
        let parts_bytes: u64 = parts.iter().flatten().map(|v| v.size_bytes() as u64).sum();

        let parallel = self.config.par == ParMode::Allocate && k > 1 && p >= k;
        let mut phases = Vec::new();
        let mut outs: Option<Vec<Value>> = if root { Some(Vec::new()) } else { None };

        if !parallel {
            // Serialized: every branch runs on the whole group, in order.
            for (j, branch) in branches.iter().enumerate() {
                let part = parts
                    .as_mut()
                    .map(|ps| std::mem::replace(&mut ps[j], Value::Unit));
                let (ov, ph) = self.node(
                    ctx,
                    branch,
                    part,
                    bases[j],
                    mix(salt, j as u64 + 1),
                    depth + 1,
                );
                if let Some(outs) = outs.as_mut() {
                    outs.push(ov.expect("the scope root holds every branch output"));
                }
                phases.extend(ph);
            }
        } else {
            // Price the branches and share the verdict, so every rank
            // computes the identical allocation.
            let costs: Option<Vec<f64>> = parts.as_ref().map(|ps| {
                branches
                    .iter()
                    .zip(ps)
                    .map(|(b, part)| b.estimate_flops(part))
                    .collect()
            });
            if root {
                phases.push(Phase::new(
                    PhaseKind::Communication,
                    "par fan-out: cost broadcast + branch inputs",
                ));
            }
            let costs: Vec<f64> = ctx.broadcast(0, costs);
            let sizes = allocate(&costs, p);
            let mut starts = vec![0usize; k];
            for j in 1..k {
                starts[j] = starts[j - 1] + sizes[j - 1];
            }
            let me = ctx.rank();
            let my_branch = (0..k).rfind(|&j| starts[j] <= me).expect("rank in range");

            // Branch inputs travel root-to-root in the parent scope.
            if root {
                let mut ps = parts.take().expect("root holds the input");
                for j in (1..k).rev() {
                    let part = ps.pop().expect("one part per branch");
                    ctx.send(starts[j], compose_tag(ComposeTag::Input, node_id), part);
                }
                parts = Some(ps); // now just branch 0's part
            }
            let my_input: Option<Value> = if me == starts[my_branch] {
                if my_branch == 0 {
                    Some(parts.take().expect("root").pop().expect("branch 0 part"))
                } else {
                    Some(ctx.recv(0, compose_tag(ComposeTag::Input, node_id)))
                }
            } else {
                None
            };

            // Concurrent descent inside disjoint scopes.
            let members: Vec<usize> =
                (starts[my_branch]..starts[my_branch] + sizes[my_branch]).collect();
            let branch = branches[my_branch];
            let base = bases[my_branch];
            let walker = &mut *self;
            let (ov, ph) = ctx.scoped(&members, mix(mix(salt, node_id), my_branch as u64), |ctx| {
                walker.node(
                    ctx,
                    branch,
                    my_input,
                    base,
                    mix(salt, my_branch as u64 + 1),
                    depth + 1,
                )
            });

            // Branch outputs (with trace slices) gather back to the root.
            if me == starts[my_branch] && my_branch != 0 {
                ctx.send(
                    0,
                    compose_tag(ComposeTag::Output, node_id),
                    Handoff {
                        value: ov.expect("a branch root holds its output"),
                        trace: TraceBatch(ph),
                    },
                );
            } else if root {
                let outs_vec = outs.as_mut().expect("root collects");
                outs_vec.push(ov.expect("branch 0's root is the section root"));
                phases.extend(ph);
                for &start in starts.iter().skip(1) {
                    let h: Handoff = ctx.recv(start, compose_tag(ComposeTag::Output, node_id));
                    outs_vec.push(h.value);
                    phases.extend(h.trace.0);
                }
                phases.push(Phase::new(
                    PhaseKind::Communication,
                    "par gather: branch outputs",
                ));
            }
        }

        if root {
            let out_bytes: u64 = outs
                .as_ref()
                .expect("root collects")
                .iter()
                .map(|v| v.size_bytes() as u64)
                .sum();
            self.stats.handoffs += 2 * k as u64;
            self.stats.handoff_bytes += parts_bytes + out_bytes;
        }
        (outs.map(Value::Tuple), phases)
    }
}

/// Execute `plan` collectively on the current group: `input` feeds the
/// first stage (only rank 0's copy is used), and every rank returns the
/// identical final output and [`ComposeStats`].
///
/// Must be called by every rank of the group, like the archetype
/// drivers; composes with [`Ctx::scoped`], so a plan can itself appear
/// inside a larger scoped computation.
pub fn run_plan(ctx: &mut Ctx, plan: &Plan, input: Value) -> (Value, ComposeStats) {
    run_plan_with(ctx, plan, input, ComposeConfig::default(), None)
}

/// [`run_plan`] with phase tracing: rank 0 records the canonical
/// composite trace — every atom's phase sequence in plan order, with the
/// executor's own `Communication` phases for input replication, `Par`
/// fan-out, and output gather — which [`Plan::grammar`] accepts by
/// construction.
pub fn run_plan_traced(
    ctx: &mut Ctx,
    plan: &Plan,
    input: Value,
    trace: Option<&PhaseTrace>,
) -> (Value, ComposeStats) {
    run_plan_with(ctx, plan, input, ComposeConfig::default(), trace)
}

/// [`run_plan_traced`] with explicit scheduling configuration.
pub fn run_plan_with(
    ctx: &mut Ctx,
    plan: &Plan,
    input: Value,
    config: ComposeConfig,
    trace: Option<&PhaseTrace>,
) -> (Value, ComposeStats) {
    let root = ctx.rank() == 0;
    let mut walker = Walker {
        config,
        stats: ComposeStats::default(),
    };
    let (out, phases) = walker.node(ctx, plan, root.then_some(input), 0, 0, 0);
    let out = ctx.broadcast(0, out);
    let stats = ctx.all_reduce(walker.stats, ComposeStats::combine);
    if root {
        if let Some(t) = trace {
            for ph in phases {
                t.record(ph.kind, ph.label);
            }
        }
    }
    (out, stats)
}
