//! The plan executor: groups, handoffs, traces, statistics.
//!
//! [`run_plan`] walks a [`Plan`] collectively on the current process
//! group, maintaining one invariant throughout: **the plan value on an
//! edge is held by rank 0 of the group executing that edge**. From it,
//! each constructor's communication is derived:
//!
//! - **Atom** — the group enters a fresh [`Ctx::scoped`] section (so the
//!   archetype's internal protocol, whatever tags it uses, is isolated
//!   from every sibling and from the executor's own traffic), the root
//!   broadcasts the input to the members, and the job runs collectively;
//!   the root keeps the output.
//! - **Seq** — stages execute in order on the whole group; the value
//!   stays at the root between stages, so consecutive stages hand off
//!   without communication.
//! - **Par / Replicate** — the root splits the tuple input, prices each
//!   branch through its jobs' flop estimates, and broadcasts the cost
//!   vector; every rank then computes the same proportional allocation
//!   ([`crate::allocate`]) and joins its contiguous branch subgroup. The
//!   root ships branch inputs to the branch roots (bit-59
//!   [`archetype_mp::tags::compose_tag`] namespace), branches recurse
//!   concurrently inside disjoint scopes, and branch roots ship outputs
//!   (with their trace slices) back to the root, which assembles the
//!   output tuple — in branch order, so results, clocks, and the
//!   composite trace are deterministic. Groups too small to host every
//!   branch (`p < k`), or a [`ParMode::Serialize`] config, run the
//!   branches one after another on the whole group instead — same
//!   results, same statistics, different schedule.
//!
//! Statistics ([`ComposeStats`]) count *logical* structure — atoms run,
//! stages, branches, handoffs and their bytes — so they are identical
//! across process counts, machine models, and `Par` modes; determinism
//! of results and virtual clocks across repeated runs follows from the
//! substrate's.

use std::fmt;

use archetype_core::{Phase, PhaseKind, PhaseTrace};
use archetype_mp::tags::{compose_tag, ComposeTag};
use archetype_mp::{impl_fixed_size, Ctx, FaultPlan, Payload};

use crate::alloc::allocate;
use crate::plan::{Plan, PlanNode};
use crate::value::Value;

/// How `Par`/`Replicate` nodes use the group.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParMode {
    /// Branches run concurrently on disjoint subgroups sized by the
    /// model-driven allocator (serializing only when the group is
    /// smaller than the branch count).
    #[default]
    Allocate,
    /// Branches run one after another on the full group — the baseline
    /// the `compose_scaling` bench compares cost-proportional allocation
    /// against.
    Serialize,
}

/// Bounded replay of atoms whose attempts a
/// [`FaultPlan`] fails (see [`FaultPlan::atom_failures`] /
/// [`FaultPlan::fail_atom`]). A failed attempt runs the atom to
/// completion, loses its result, charges an exponential virtual-time
/// backoff, and replays from the edge-value checkpoint the executor's
/// root retains; a schedule that outlasts the budget surfaces as
/// [`PlanError::AtomExhausted`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Replays allowed per atom beyond its first attempt.
    pub max_retries: u32,
    /// Virtual seconds charged after the first lost attempt; doubles per
    /// subsequent loss (bounded by `max_retries`).
    pub backoff_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_secs: 1e-3,
        }
    }
}

/// Typed failure of a plan run under fault injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// An atom's failure schedule outlasts its retry budget. Because the
    /// schedule is a pure function of the [`FaultPlan`], every rank
    /// derives the identical error before any plan traffic is exchanged.
    AtomExhausted {
        /// Plan-preorder id of the doomed atom node.
        node: u64,
        /// The atom job's name.
        atom: String,
        /// Attempts the schedule would consume (`max_retries + 1` at the
        /// point the budget is exceeded).
        attempts: u32,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::AtomExhausted {
                node,
                atom,
                attempts,
            } => write!(
                f,
                "atom {atom} (plan node {node}) lost {attempts} attempt(s), \
                 exhausting its retry budget"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Tuning knobs for [`run_plan_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ComposeConfig {
    /// Branch scheduling policy.
    pub par: ParMode,
    /// Atom replay budget under fault injection (inert without a
    /// [`FaultPlan`] in the context).
    pub retry: RetryPolicy,
}

/// Deterministic, structural statistics of a plan run — identical on
/// every rank, across runs, process counts, machine models, and
/// [`ParMode`]s (they count the plan's logical execution, not its
/// schedule).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComposeStats {
    /// Atom executions ([`crate::ArchetypeJob::run`] calls, counted once
    /// per atom instance regardless of group size).
    pub atoms: u64,
    /// `Seq` stages executed.
    pub seq_stages: u64,
    /// `Par`/`Replicate` sections executed.
    pub par_sections: u64,
    /// Branches executed across all sections (replicate copies included).
    pub branches: u64,
    /// Branches that were replicate copies.
    pub replicated: u64,
    /// Logical inter-stage value transfers: one input and one output per
    /// branch of every section.
    pub handoffs: u64,
    /// Total payload bytes of those transfers (branch inputs + outputs).
    pub handoff_bytes: u64,
    /// Plan nodes executed (replicate bodies counted once per copy).
    pub plan_nodes: u64,
    /// Deepest nesting level reached.
    pub max_depth: u64,
    /// Atom attempts whose results were lost to fault injection and
    /// replayed from their input checkpoints (0 without a fault plan).
    pub retries: u64,
}

impl_fixed_size!(ComposeStats);

impl ComposeStats {
    /// Merge two stat records: counters add, depths max. Used by the
    /// executor's collective reduction and by the plan service to fold
    /// per-submission stats into per-tenant totals.
    pub fn combine(a: ComposeStats, b: ComposeStats) -> ComposeStats {
        ComposeStats {
            atoms: a.atoms + b.atoms,
            seq_stages: a.seq_stages + b.seq_stages,
            par_sections: a.par_sections + b.par_sections,
            branches: a.branches + b.branches,
            replicated: a.replicated + b.replicated,
            handoffs: a.handoffs + b.handoffs,
            handoff_bytes: a.handoff_bytes + b.handoff_bytes,
            plan_nodes: a.plan_nodes + b.plan_nodes,
            max_depth: a.max_depth.max(b.max_depth),
            retries: a.retries + b.retries,
        }
    }
}

/// A branch's trace slice travelling back to the parent root.
struct TraceBatch(Vec<Phase>);

impl Payload for TraceBatch {
    fn size_bytes(&self) -> usize {
        self.0.iter().map(|p| 1 + p.label.len()).sum()
    }
}

/// A branch output and its trace slice, shipped root-to-root.
struct Handoff {
    value: Value,
    trace: TraceBatch,
}

impl Payload for Handoff {
    fn size_bytes(&self) -> usize {
        self.value.size_bytes() + self.trace.size_bytes()
    }
}

pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut h = 0x9e3779b97f4a7c15u64 ^ a;
    h = h.wrapping_mul(0x100000001b3);
    h ^= b;
    h.wrapping_mul(0x100000001b3)
}

/// Split a `Par`/`Replicate` input into one part per branch.
fn split_parts(v: Value, k: usize) -> Vec<Value> {
    match v {
        Value::Tuple(parts) => {
            assert_eq!(
                parts.len(),
                k,
                "a Par/Replicate over {k} branches needs a {k}-tuple input (got {} parts)",
                parts.len()
            );
            parts
        }
        Value::Unit => vec![Value::Unit; k],
        other => panic!(
            "a Par/Replicate over {k} branches needs a Tuple or Unit input, got {}",
            other.shape()
        ),
    }
}

struct Walker {
    config: ComposeConfig,
    stats: ComposeStats,
}

impl Walker {
    /// Execute one plan node on the current scope. `input` is `Some`
    /// exactly on the scope's rank 0; likewise the returned value and
    /// trace slice.
    fn node(
        &mut self,
        ctx: &mut Ctx,
        plan: &Plan,
        input: Option<Value>,
        node_id: u64,
        salt: u64,
        depth: u64,
    ) -> (Option<Value>, Vec<Phase>) {
        let root = ctx.rank() == 0;
        if root {
            self.stats.plan_nodes += 1;
            self.stats.max_depth = self.stats.max_depth.max(depth);
        }
        match &plan.node {
            PlanNode::Atom(job) => {
                // How many leading attempts the fault plan loses is a
                // pure function of (plan seed, node id), so every rank of
                // the group derives the identical retry schedule without
                // exchanging a verdict. Exhausted schedules were rejected
                // by the collective pre-scan in `try_run_plan_with`.
                let failed = ctx.fault_plan().map_or(0u32, |fp| {
                    let mut a = 0;
                    while fp.atom_fails(node_id, a) {
                        a += 1;
                    }
                    a
                });
                debug_assert!(
                    failed <= self.config.retry.max_retries,
                    "doomed atoms must be rejected before execution"
                );
                let members: Vec<usize> = (0..ctx.nprocs()).collect();
                let mut input = input;
                let mut phases = Vec::new();
                for attempt in 0..=failed {
                    let last = attempt == failed;
                    // The edge value is the checkpoint: the root re-feeds
                    // a clone into every replay and surrenders the
                    // original only to the final attempt.
                    let checkpoint = if last { input.take() } else { input.clone() };
                    // Attempt 0 keeps the historical scope salt so
                    // fault-free runs stay bit-identical; replays re-salt
                    // to isolate their traffic from the lost attempt's.
                    let scope_salt = if attempt == 0 {
                        mix(salt, node_id)
                    } else {
                        mix(mix(salt, node_id), u64::from(attempt))
                    };
                    let stats = &mut self.stats;
                    let (out, ph) = ctx.scoped(&members, scope_salt, |ctx| {
                        let root = ctx.rank() == 0;
                        let mut phases = Vec::new();
                        if root && ctx.nprocs() > 1 {
                            phases.push(Phase::new(
                                PhaseKind::Communication,
                                format!("replicate input of {}", job.name()),
                            ));
                        }
                        let v = ctx.broadcast(0, checkpoint);
                        let local = if root { Some(PhaseTrace::new()) } else { None };
                        let out = job.run(ctx, v, local.as_ref());
                        if root {
                            if last {
                                stats.atoms += 1;
                            }
                            phases.extend(local.expect("root trace").phases());
                            (Some(out), phases)
                        } else {
                            (None, Vec::new())
                        }
                    });
                    if last {
                        phases.extend(ph);
                        return (out, phases);
                    }
                    // The attempt ran to completion but its result is
                    // lost (and its trace with it): charge the bounded
                    // exponential backoff and replay from the checkpoint.
                    drop(out);
                    ctx.charge_seconds(
                        self.config.retry.backoff_secs * f64::from(1u32 << attempt.min(20)),
                    );
                    if ctx.rank() == 0 {
                        self.stats.retries += 1;
                        phases.push(Phase::new(
                            PhaseKind::Detect,
                            format!("atom {} lost attempt {attempt}", job.name()),
                        ));
                        phases.push(Phase::new(
                            PhaseKind::Recover,
                            format!("replaying {} from its input checkpoint", job.name()),
                        ));
                    }
                }
                unreachable!("the final attempt returns from the loop")
            }
            PlanNode::Seq(stages) => {
                if root {
                    self.stats.seq_stages += stages.len() as u64;
                }
                let mut v = input;
                let mut phases = Vec::new();
                let mut child = node_id + 1;
                for stage in stages {
                    let (nv, ph) = self.node(ctx, stage, v, child, salt, depth + 1);
                    child += stage.nodes();
                    v = nv;
                    phases.extend(ph);
                }
                (v, phases)
            }
            PlanNode::Par(branches) => {
                let refs: Vec<&Plan> = branches.iter().collect();
                let mut bases = Vec::with_capacity(refs.len());
                let mut base = node_id + 1;
                for b in &refs {
                    bases.push(base);
                    base += b.nodes();
                }
                self.section(ctx, &refs, &bases, input, node_id, salt, depth, false)
            }
            PlanNode::Replicate(copies, inner) => {
                let refs: Vec<&Plan> = (0..*copies).map(|_| inner.as_ref()).collect();
                let bases = vec![node_id + 1; *copies];
                self.section(ctx, &refs, &bases, input, node_id, salt, depth, true)
            }
        }
    }

    /// Execute a `Par`/`Replicate` section: `branches[j]` over part `j`
    /// of the tuple input, starting its subtree's node ids at `bases[j]`.
    #[allow(clippy::too_many_arguments)] // internal walker plumbing
    fn section(
        &mut self,
        ctx: &mut Ctx,
        branches: &[&Plan],
        bases: &[u64],
        input: Option<Value>,
        node_id: u64,
        salt: u64,
        depth: u64,
        is_replicate: bool,
    ) -> (Option<Value>, Vec<Phase>) {
        let k = branches.len();
        let p = ctx.nprocs();
        let root = ctx.rank() == 0;
        if root {
            self.stats.par_sections += 1;
            self.stats.branches += k as u64;
            if is_replicate {
                self.stats.replicated += k as u64;
            }
        }

        let mut parts: Option<Vec<Value>> = input.map(|v| split_parts(v, k));
        let parts_bytes: u64 = parts.iter().flatten().map(|v| v.size_bytes() as u64).sum();

        let parallel = self.config.par == ParMode::Allocate && k > 1 && p >= k;
        let mut phases = Vec::new();
        let mut outs: Option<Vec<Value>> = if root { Some(Vec::new()) } else { None };

        if !parallel {
            // Serialized: every branch runs on the whole group, in order.
            for (j, branch) in branches.iter().enumerate() {
                let part = parts
                    .as_mut()
                    .map(|ps| std::mem::replace(&mut ps[j], Value::Unit));
                let (ov, ph) = self.node(
                    ctx,
                    branch,
                    part,
                    bases[j],
                    mix(salt, j as u64 + 1),
                    depth + 1,
                );
                if let Some(outs) = outs.as_mut() {
                    outs.push(ov.expect("the scope root holds every branch output"));
                }
                phases.extend(ph);
            }
        } else {
            // Price the branches and share the verdict, so every rank
            // computes the identical allocation.
            let costs: Option<Vec<f64>> = parts.as_ref().map(|ps| {
                branches
                    .iter()
                    .zip(ps)
                    .map(|(b, part)| b.estimate_flops(part))
                    .collect()
            });
            if root {
                phases.push(Phase::new(
                    PhaseKind::Communication,
                    "par fan-out: cost broadcast + branch inputs",
                ));
            }
            let costs: Vec<f64> = ctx.broadcast(0, costs);
            let sizes = allocate(&costs, p);
            let mut starts = vec![0usize; k];
            for j in 1..k {
                starts[j] = starts[j - 1] + sizes[j - 1];
            }
            let me = ctx.rank();
            let my_branch = (0..k).rfind(|&j| starts[j] <= me).expect("rank in range");

            // Branch inputs travel root-to-root in the parent scope.
            if root {
                let mut ps = parts.take().expect("root holds the input");
                for j in (1..k).rev() {
                    let part = ps.pop().expect("one part per branch");
                    ctx.send(starts[j], compose_tag(ComposeTag::Input, node_id), part);
                }
                parts = Some(ps); // now just branch 0's part
            }
            let my_input: Option<Value> = if me == starts[my_branch] {
                if my_branch == 0 {
                    Some(parts.take().expect("root").pop().expect("branch 0 part"))
                } else {
                    Some(ctx.recv(0, compose_tag(ComposeTag::Input, node_id)))
                }
            } else {
                None
            };

            // Concurrent descent inside disjoint scopes.
            let members: Vec<usize> =
                (starts[my_branch]..starts[my_branch] + sizes[my_branch]).collect();
            let branch = branches[my_branch];
            let base = bases[my_branch];
            let walker = &mut *self;
            let (ov, ph) = ctx.scoped(&members, mix(mix(salt, node_id), my_branch as u64), |ctx| {
                walker.node(
                    ctx,
                    branch,
                    my_input,
                    base,
                    mix(salt, my_branch as u64 + 1),
                    depth + 1,
                )
            });

            // Branch outputs (with trace slices) gather back to the root.
            if me == starts[my_branch] && my_branch != 0 {
                ctx.send(
                    0,
                    compose_tag(ComposeTag::Output, node_id),
                    Handoff {
                        value: ov.expect("a branch root holds its output"),
                        trace: TraceBatch(ph),
                    },
                );
            } else if root {
                let outs_vec = outs.as_mut().expect("root collects");
                outs_vec.push(ov.expect("branch 0's root is the section root"));
                phases.extend(ph);
                for &start in starts.iter().skip(1) {
                    let h: Handoff = ctx.recv(start, compose_tag(ComposeTag::Output, node_id));
                    outs_vec.push(h.value);
                    phases.extend(h.trace.0);
                }
                phases.push(Phase::new(
                    PhaseKind::Communication,
                    "par gather: branch outputs",
                ));
            }
        }

        if root {
            let out_bytes: u64 = outs
                .as_ref()
                .expect("root collects")
                .iter()
                .map(|v| v.size_bytes() as u64)
                .sum();
            self.stats.handoffs += 2 * k as u64;
            self.stats.handoff_bytes += parts_bytes + out_bytes;
        }
        (outs.map(Value::Tuple), phases)
    }
}

/// Find the first atom (in plan preorder, the executor's node-id order)
/// whose leading-failure schedule outlasts the retry budget. Pure in the
/// fault plan, so every rank of every group agrees on the verdict.
fn doomed_atom(plan: &Plan, fp: &FaultPlan, retry: RetryPolicy, node_id: u64) -> Option<PlanError> {
    match &plan.node {
        PlanNode::Atom(job) => {
            let mut a = 0u32;
            while fp.atom_fails(node_id, a) {
                a += 1;
                if a > retry.max_retries {
                    return Some(PlanError::AtomExhausted {
                        node: node_id,
                        atom: job.name().to_string(),
                        attempts: a,
                    });
                }
            }
            None
        }
        PlanNode::Seq(xs) | PlanNode::Par(xs) => {
            let mut child = node_id + 1;
            for x in xs {
                if let Some(e) = doomed_atom(x, fp, retry, child) {
                    return Some(e);
                }
                child += x.nodes();
            }
            None
        }
        // Replicate copies share their body's node ids (and thus a
        // failure schedule), so one scan covers every copy.
        PlanNode::Replicate(_, inner) => doomed_atom(inner, fp, retry, node_id + 1),
    }
}

/// Execute `plan` collectively on the current group: `input` feeds the
/// first stage (only rank 0's copy is used), and every rank returns the
/// identical final output and [`ComposeStats`].
///
/// Must be called by every rank of the group, like the archetype
/// drivers; composes with [`Ctx::scoped`], so a plan can itself appear
/// inside a larger scoped computation.
pub fn run_plan(ctx: &mut Ctx, plan: &Plan, input: Value) -> (Value, ComposeStats) {
    run_plan_with(ctx, plan, input, ComposeConfig::default(), None)
}

/// [`run_plan`] that surfaces retry exhaustion as a typed
/// [`PlanError`] instead of panicking. Without a fault plan in the
/// context it cannot fail.
pub fn try_run_plan(ctx: &mut Ctx, plan: &Plan, input: Value) -> PlanResult {
    try_run_plan_with(ctx, plan, input, ComposeConfig::default(), None)
}

/// What a fallible plan run returns on every rank.
pub type PlanResult = Result<(Value, ComposeStats), PlanError>;

/// [`run_plan_with`], fallible. The doom verdict is a pure function of
/// the plan structure and the group's [`FaultPlan`], so it is computed
/// *before* any plan traffic: either every rank returns the identical
/// `Err` immediately (nothing sent, nothing leaked), or the plan runs —
/// replaying lost atom attempts within [`RetryPolicy`]'s budget — and
/// every rank returns the identical `Ok`.
pub fn try_run_plan_with(
    ctx: &mut Ctx,
    plan: &Plan,
    input: Value,
    config: ComposeConfig,
    trace: Option<&PhaseTrace>,
) -> PlanResult {
    if let Some(err) = ctx
        .fault_plan()
        .and_then(|fp| doomed_atom(plan, fp, config.retry, 0))
    {
        return Err(err);
    }
    let root = ctx.rank() == 0;
    let mut walker = Walker {
        config,
        stats: ComposeStats::default(),
    };
    let (out, phases) = walker.node(ctx, plan, root.then_some(input), 0, 0, 0);
    let out = ctx.broadcast(0, out);
    let stats = ctx.all_reduce(walker.stats, ComposeStats::combine);
    if root {
        if let Some(t) = trace {
            for ph in phases {
                t.record(ph.kind, ph.label);
            }
        }
    }
    Ok((out, stats))
}

/// [`run_plan`] with phase tracing: rank 0 records the canonical
/// composite trace — every atom's phase sequence in plan order, with the
/// executor's own `Communication` phases for input replication, `Par`
/// fan-out, and output gather — which [`Plan::grammar`] accepts by
/// construction.
pub fn run_plan_traced(
    ctx: &mut Ctx,
    plan: &Plan,
    input: Value,
    trace: Option<&PhaseTrace>,
) -> (Value, ComposeStats) {
    run_plan_with(ctx, plan, input, ComposeConfig::default(), trace)
}

/// [`run_plan_traced`] with explicit scheduling configuration.
///
/// # Panics
/// Panics (identically on every rank, before any communication) if the
/// group's fault plan dooms an atom beyond the retry budget; use
/// [`try_run_plan_with`] to get the typed [`PlanError`] instead.
pub fn run_plan_with(
    ctx: &mut Ctx,
    plan: &Plan,
    input: Value,
    config: ComposeConfig,
    trace: Option<&PhaseTrace>,
) -> (Value, ComposeStats) {
    match try_run_plan_with(ctx, plan, input, config, trace) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use archetype_core::{ArchetypeInfo, PhaseKind, PhaseTrace};
    use archetype_mp::{run_spmd, run_spmd_ft, Ctx, FaultPlan, MachineModel};

    use super::*;
    use crate::job::ArchetypeJob;
    use crate::plan::Plan;
    use crate::value::Value;

    /// A deterministic atom that counts its executions — so tests can see
    /// replays — and emits a trace its declared grammar accepts.
    struct Scale {
        factor: f64,
        runs: Arc<AtomicU64>,
    }

    impl ArchetypeJob for Scale {
        type In = Value;
        type Out = Value;

        fn name(&self) -> &'static str {
            "scale"
        }

        fn info(&self) -> &'static ArchetypeInfo {
            &archetype_core::archetype::ONE_DEEP_DC
        }

        fn estimate_flops(&self, _input: &Value) -> f64 {
            1.0
        }

        fn run(&self, ctx: &mut Ctx, input: Value, trace: Option<&PhaseTrace>) -> Value {
            if ctx.rank() == 0 {
                self.runs.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(t) = trace {
                t.record(PhaseKind::Split, "scale split");
                t.record(PhaseKind::Solve, "scale solve");
                t.record(PhaseKind::Merge, "scale merge");
            }
            match input {
                Value::F64(x) => Value::F64(x * self.factor + 1.0),
                other => panic!("scale expects F64, got {}", other.shape()),
            }
        }
    }

    fn two_stage(runs: &Arc<AtomicU64>) -> Plan {
        Plan::seq(vec![
            Plan::atom(Scale {
                factor: 3.0,
                runs: runs.clone(),
            }),
            Plan::atom(Scale {
                factor: 5.0,
                runs: runs.clone(),
            }),
        ])
    }

    #[test]
    fn lost_attempts_replay_from_the_checkpoint() {
        let clean_runs = Arc::new(AtomicU64::new(0));
        let clean = run_spmd(3, MachineModel::ibm_sp(), {
            let runs = clean_runs.clone();
            move |ctx| run_plan(ctx, &two_stage(&runs), Value::F64(2.0))
        });
        let runs = Arc::new(AtomicU64::new(0));
        // Node ids: 0 = the Seq, 1 and 2 = the atoms. Lose the first
        // atom's first two attempts.
        let plan = FaultPlan::new(9).fail_atom(1, 2);
        let faulty = run_spmd_ft(3, MachineModel::ibm_sp(), plan, {
            let runs = runs.clone();
            move |ctx| run_plan(ctx, &two_stage(&runs), Value::F64(2.0))
        });
        let (clean_value, clean_stats) = &clean.results[0];
        for r in &faulty.results {
            let (value, stats) = r.as_ref().expect("retries recover");
            assert_eq!(value, clean_value);
            assert_eq!(stats.retries, 2);
            assert_eq!(stats.atoms, clean_stats.atoms);
        }
        assert_eq!(faulty.leaked_messages, 0);
        // The lost attempts really executed: 2 replays + 2 final runs.
        assert_eq!(runs.load(Ordering::Relaxed), 4);
        assert_eq!(clean_runs.load(Ordering::Relaxed), 2);
        assert!(
            faulty.elapsed_virtual > clean.elapsed_virtual,
            "replays and backoff must cost virtual time"
        );
    }

    #[test]
    fn retry_exhaustion_is_a_typed_collective_error() {
        let runs = Arc::new(AtomicU64::new(0));
        // Default budget is 3 retries; 5 scheduled losses doom node 2.
        let plan = FaultPlan::new(9).fail_atom(2, 5);
        let out = run_spmd_ft(3, MachineModel::ibm_sp(), plan, {
            let runs = runs.clone();
            move |ctx| try_run_plan(ctx, &two_stage(&runs), Value::F64(2.0))
        });
        for r in &out.results {
            let err = r
                .as_ref()
                .expect("no rank panics")
                .as_ref()
                .expect_err("doomed plan");
            assert_eq!(
                *err,
                PlanError::AtomExhausted {
                    node: 2,
                    atom: "scale".into(),
                    attempts: 4,
                }
            );
        }
        assert_eq!(out.leaked_messages, 0);
        // The doom verdict is pre-communication: nothing ran at all.
        assert_eq!(runs.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn run_plan_panics_on_exhaustion_with_the_typed_message() {
        let runs = Arc::new(AtomicU64::new(0));
        let plan = FaultPlan::new(9).fail_atom(1, 9);
        let out = run_spmd_ft(2, MachineModel::ibm_sp(), plan, {
            let runs = runs.clone();
            move |ctx| run_plan(ctx, &two_stage(&runs), Value::F64(2.0))
        });
        for r in &out.results {
            let failure = r.as_ref().expect_err("run_plan panics when doomed");
            assert!(failure.message.contains("exhausting its retry budget"));
        }
    }

    #[test]
    fn retried_traces_conform_to_the_derived_grammar() {
        let runs = Arc::new(AtomicU64::new(0));
        let plan = FaultPlan::new(9).fail_atom(1, 1).fail_atom(2, 3);
        let trace = PhaseTrace::new();
        let shape = two_stage(&runs);
        let grammar = shape.grammar();
        run_spmd_ft(3, MachineModel::ibm_sp(), plan, move |ctx| {
            let t = (ctx.rank() == 0).then_some(&trace);
            let (_, stats) = run_plan_traced(ctx, &shape, Value::F64(2.0), t);
            if let Some(t) = t {
                let kinds = t.kinds();
                assert!(
                    kinds.contains(&PhaseKind::Detect) && kinds.contains(&PhaseKind::Recover),
                    "retries must surface in the trace: {kinds:?}"
                );
                assert!(
                    grammar.matches(&kinds),
                    "{kinds:?} rejected by the derived grammar"
                );
            }
            stats.retries
        });
    }

    #[test]
    fn an_inert_fault_plan_is_bit_identical_to_no_fault_plan() {
        let runs = Arc::new(AtomicU64::new(0));
        let clean = run_spmd(3, MachineModel::ibm_sp(), {
            let runs = runs.clone();
            move |ctx| run_plan(ctx, &two_stage(&runs), Value::F64(2.0))
        });
        let inert = run_spmd_ft(3, MachineModel::ibm_sp(), FaultPlan::new(9), {
            let runs = runs.clone();
            move |ctx| run_plan(ctx, &two_stage(&runs), Value::F64(2.0))
        });
        let (clean_value, clean_stats) = &clean.results[0];
        for r in &inert.results {
            let (value, stats) = r.as_ref().expect("inert plan");
            assert_eq!(value, clean_value);
            assert_eq!(stats, clean_stats);
        }
        assert_eq!(
            inert.elapsed_virtual.to_bits(),
            clean.elapsed_virtual.to_bits(),
            "idle fault hooks must not perturb the virtual clock"
        );
    }
}
