//! # archetype-compose — the composition archetype
//!
//! The paper's future-work list (§7) asks for "a theory and strategy for
//! archetype composition … for example task-parallel compositions of
//! data-parallel computations". This crate is that layer for the
//! workspace: a **plan algebra** whose atoms are whole archetype runs —
//! task farms, pipelines, recursive divide-and-conquer, mesh solvers —
//! and whose combinators place them **sequentially** (outputs feeding
//! inputs) or **concurrently on disjoint process subgroups**, with rank
//! shares chosen by a model-driven allocator from the jobs' work
//! estimates.
//!
//! Three layers make that composable without touching the archetype
//! skeletons:
//!
//! 1. **Scoped contexts** ([`archetype_mp::Ctx::scoped`]): a subgroup's
//!    view of the substrate in which *all* traffic — collectives, farm
//!    steal protocols, pipeline credit streams — matches only within the
//!    scope. Sibling branches therefore run unmodified skeletons
//!    concurrently without any tag discipline between them.
//! 2. **Uniform jobs** ([`ArchetypeJob`]): one archetype run behind typed
//!    input/output, an [`archetype_core::ArchetypeInfo`] whose grammar
//!    the composite trace check reuses, and a flop estimate the
//!    allocator prices.
//! 3. **The executor** ([`run_plan`]): keeps each edge's value at its
//!    group's rank 0, replicates it into atoms, ships branch inputs and
//!    outputs root-to-root in the bit-59 compose tag namespace, and
//!    assembles results, statistics ([`ComposeStats`]), and the
//!    composite phase trace deterministically — bit-identical results
//!    across runs, process counts, machine models, and schedules.
//!
//! ```
//! use archetype_compose::{forecast_input, forecast_plan, run_plan, ForecastConfig, Value};
//! use archetype_mp::{run_spmd, MachineModel};
//!
//! // The flagship composite: (farm sweep ∥ mesh solve) → DC sort → top-k.
//! let cfg = ForecastConfig { sweep_points: 16, mesh_n: 10, mesh_iters: 25 };
//! let out = run_spmd(4, MachineModel::ibm_sp(), move |ctx| {
//!     run_plan(ctx, &forecast_plan(cfg), forecast_input())
//! });
//! let (value, stats) = &out.results[0];
//! assert!(matches!(value, Value::F64s(v) if v.len() >= 4));
//! assert_eq!(stats.atoms, 4);
//! assert_eq!(stats.branches, 2);
//! // Every rank returns the identical value and statistics.
//! assert!(out.results.iter().all(|r| r == &out.results[0]));
//! ```

#![deny(missing_docs)]

mod alloc;
mod exec;
mod forecast;
mod job;
mod metrics;
mod plan;
mod serve;
mod value;

pub use alloc::allocate;
pub use exec::{
    run_plan, run_plan_traced, run_plan_with, try_run_plan, try_run_plan_with, ComposeConfig,
    ComposeStats, ParMode, PlanError, PlanResult, RetryPolicy,
};
pub use forecast::{
    forecast_input, forecast_plan, ForecastConfig, PoissonJob, SortJob, SweepJob, TopKJob,
};
pub use job::ArchetypeJob;
pub use metrics::{MetricKind, Metrics};
pub use plan::Plan;
pub use serve::{
    pack_waves, AdmitError, CacheStats, PlanService, ServeConfig, ServeOutcome, ServeReport,
    TenantId, TenantStats, Wave,
};
pub use value::{ComposeData, Value};
