//! The plan algebra: how archetype instances compose.
//!
//! A [`Plan`] is a tree over four constructors —
//!
//! - [`Plan::atom`]: one archetype run ([`crate::ArchetypeJob`]);
//! - [`Plan::seq`]: stages executed one after another, each stage's
//!   output feeding the next stage's input;
//! - [`Plan::par`]: branches executed **concurrently on disjoint process
//!   subgroups**, rank shares chosen by the model-driven allocator
//!   ([`crate::allocate`]); the input must be a
//!   [`Value::Tuple`](crate::Value) with one element per branch (or
//!   `Unit`, fanned out as `Unit` to every branch), and the output is the
//!   tuple of branch outputs in branch order;
//! - [`Plan::replicate`]: `n` concurrent copies of the same sub-plan over
//!   the `n` elements of a tuple input — `par` with a shared body.
//!
//! Because `Seq` chains `Par` outputs into later stages' inputs, any DAG
//! of stages with fan-out/fan-in expressible as tuples can be written as
//! a plan. The derived composite grammar ([`Plan::grammar`]) is built
//! from the members' static archetype grammars by sequence composition —
//! with [`Plan::grammar_interleaved`] as the shuffle-closed variant for
//! traces merged by timestamp rather than in canonical branch order.

use std::sync::Arc;

use archetype_core::{PatternExpr, PhaseKind};
use archetype_mp::MachineModel;

use crate::job::{ArchetypeJob, DynJob, JobAdapter};
use crate::value::Value;

/// A composed computation over archetype instances. See the module docs
/// for the algebra; construction is by [`Plan::atom`] and the
/// combinators, execution by [`crate::run_plan`].
#[derive(Clone)]
pub struct Plan {
    pub(crate) node: PlanNode,
}

#[derive(Clone)]
pub(crate) enum PlanNode {
    Atom(Arc<dyn DynJob>),
    Seq(Vec<Plan>),
    Par(Vec<Plan>),
    Replicate(usize, Box<Plan>),
}

impl Plan {
    /// A single archetype run as a plan leaf.
    pub fn atom<J: ArchetypeJob + 'static>(job: J) -> Plan {
        Plan {
            node: PlanNode::Atom(Arc::new(JobAdapter(job))),
        }
    }

    /// Sequential composition: each stage's output is the next stage's
    /// input.
    ///
    /// # Panics
    /// Panics if `stages` is empty.
    pub fn seq(stages: Vec<Plan>) -> Plan {
        assert!(!stages.is_empty(), "a Seq needs at least one stage");
        Plan {
            node: PlanNode::Seq(stages),
        }
    }

    /// Task-parallel composition: branches run concurrently on disjoint
    /// subgroups sized by estimated cost.
    ///
    /// # Panics
    /// Panics if `branches` is empty.
    pub fn par(branches: Vec<Plan>) -> Plan {
        assert!(!branches.is_empty(), "a Par needs at least one branch");
        Plan {
            node: PlanNode::Par(branches),
        }
    }

    /// `copies` concurrent instances of the same sub-plan, one per
    /// element of a tuple input.
    ///
    /// # Panics
    /// Panics if `copies == 0`.
    pub fn replicate(copies: usize, inner: Plan) -> Plan {
        assert!(copies >= 1, "Replicate needs at least one copy");
        Plan {
            node: PlanNode::Replicate(copies, Box::new(inner)),
        }
    }

    /// Sugar: `self` then `next` (flattens nested `then` chains).
    pub fn then(self, next: Plan) -> Plan {
        match self.node {
            PlanNode::Seq(mut stages) => {
                stages.push(next);
                Plan::seq(stages)
            }
            node => Plan::seq(vec![Plan { node }, next]),
        }
    }

    /// Sugar: `self` running concurrently alongside `other`.
    pub fn alongside(self, other: Plan) -> Plan {
        Plan::par(vec![self, other])
    }

    /// Number of plan nodes in this subtree (each `Replicate` body
    /// counted once) — the preorder-id stride the executor uses to keep
    /// node identities consistent across ranks that descend different
    /// branches.
    pub fn nodes(&self) -> u64 {
        match &self.node {
            PlanNode::Atom(_) => 1,
            PlanNode::Seq(xs) | PlanNode::Par(xs) => 1 + xs.iter().map(Plan::nodes).sum::<u64>(),
            PlanNode::Replicate(_, inner) => 1 + inner.nodes(),
        }
    }

    /// Structural identity of the plan: an FNV-1a fold, in preorder, of
    /// each node's constructor tag, child count, and — for atoms — the
    /// job's name and [`ArchetypeJob::fingerprint`]. Two plans with equal
    /// hashes have the same tree shape over interchangeable atoms, so the
    /// plan service memoizes derived grammars, node/atom counts, and
    /// allocations under this key across identical submissions.
    pub fn structure_hash(&self) -> u64 {
        fn fnv(h: u64, x: u64) -> u64 {
            let mut h = h;
            for shift in [0u32, 16, 32, 48] {
                h ^= (x >> shift) & 0xffff;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        }
        fn go(p: &Plan, mut h: u64) -> u64 {
            match &p.node {
                PlanNode::Atom(job) => {
                    h = fnv(h, 1);
                    for b in job.name().bytes() {
                        h ^= u64::from(b);
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                    fnv(h, job.fingerprint())
                }
                PlanNode::Seq(xs) => {
                    h = fnv(fnv(h, 2), xs.len() as u64);
                    xs.iter().fold(h, |h, x| go(x, h))
                }
                PlanNode::Par(xs) => {
                    h = fnv(fnv(h, 3), xs.len() as u64);
                    xs.iter().fold(h, |h, x| go(x, h))
                }
                PlanNode::Replicate(n, inner) => go(inner, fnv(fnv(h, 4), *n as u64)),
            }
        }
        go(self, 0xcbf2_9ce4_8422_2325)
    }

    /// Number of atom *executions* a run of this plan performs
    /// (`Replicate` bodies counted once per copy).
    pub fn atoms(&self) -> u64 {
        match &self.node {
            PlanNode::Atom(_) => 1,
            PlanNode::Seq(xs) | PlanNode::Par(xs) => xs.iter().map(Plan::atoms).sum(),
            PlanNode::Replicate(n, inner) => *n as u64 * inner.atoms(),
        }
    }

    /// Machine-independent estimate of the plan's total work in
    /// flop-equivalents, given its input. `Par`/`Replicate` inputs are
    /// split per branch when the value is a matching tuple; stages of a
    /// `Seq` after the first are priced against the `Seq`'s own input
    /// (intermediate shapes are unknown without running) — an
    /// approximation that is exact for self-contained stages and
    /// adequate for proportional rank sharing.
    pub fn estimate_flops(&self, input: &Value) -> f64 {
        match &self.node {
            PlanNode::Atom(job) => job.estimate_flops(input),
            PlanNode::Seq(xs) => xs.iter().map(|s| s.estimate_flops(input)).sum(),
            PlanNode::Par(xs) => match input {
                Value::Tuple(parts) if parts.len() == xs.len() => xs
                    .iter()
                    .zip(parts)
                    .map(|(b, part)| b.estimate_flops(part))
                    .sum(),
                other => xs.iter().map(|b| b.estimate_flops(other)).sum(),
            },
            PlanNode::Replicate(n, inner) => match input {
                Value::Tuple(parts) if parts.len() == *n => {
                    parts.iter().map(|part| inner.estimate_flops(part)).sum()
                }
                other => *n as f64 * inner.estimate_flops(other),
            },
        }
    }

    /// [`Plan::estimate_flops`], tolerant of shape mismatches: atoms
    /// whose typed input cannot be recovered from the value at hand
    /// (e.g. a later `Seq` stage whose real input only exists at run
    /// time) contribute `0` instead of panicking. The plan service
    /// prices admission with this — an under-estimate only skews the
    /// scheduler's rank shares, never results.
    pub fn estimate_flops_lenient(&self, input: &Value) -> f64 {
        match &self.node {
            PlanNode::Atom(job) => job.try_estimate_flops(input).unwrap_or(0.0),
            PlanNode::Seq(xs) => xs.iter().map(|s| s.estimate_flops_lenient(input)).sum(),
            PlanNode::Par(xs) => match input {
                Value::Tuple(parts) if parts.len() == xs.len() => xs
                    .iter()
                    .zip(parts)
                    .map(|(b, part)| b.estimate_flops_lenient(part))
                    .sum(),
                other => xs.iter().map(|b| b.estimate_flops_lenient(other)).sum(),
            },
            PlanNode::Replicate(n, inner) => match input {
                Value::Tuple(parts) if parts.len() == *n => parts
                    .iter()
                    .map(|part| inner.estimate_flops_lenient(part))
                    .sum(),
                other => *n as f64 * inner.estimate_flops_lenient(other),
            },
        }
    }

    /// The estimate priced in virtual seconds on `model` — what the
    /// allocator actually compares (proportions are model-invariant
    /// because every branch is priced with the same model).
    pub fn estimate_seconds(&self, model: &MachineModel, input: &Value) -> f64 {
        model.compute_time(self.estimate_flops(input))
    }

    /// The derived composite grammar of the **canonical** composite
    /// trace [`crate::run_plan_traced`] emits: members' grammars in plan
    /// order — `Seq` stages concatenate, `Par`/`Replicate` branch traces
    /// are flattened in branch order between optional
    /// [`PhaseKind::Communication`] brackets (the cost broadcast /
    /// fan-out and the output gather), and every atom's grammar is
    /// preceded by any number of `Detect`/`Recover` retry pairs (lost
    /// attempts under fault injection) and an optional `Communication`
    /// (its input replication).
    pub fn grammar(&self) -> PatternExpr {
        self.grammar_with(PatternExpr::seq)
    }

    /// The shuffle-closed variant: `Par`/`Replicate` members compose by
    /// interleaving instead of branch-order concatenation, accepting any
    /// timestamp-merge of concurrently emitted branch traces (the
    /// canonical trace is one such shuffle, so everything
    /// [`Plan::grammar`] accepts, this accepts too).
    pub fn grammar_interleaved(&self) -> PatternExpr {
        self.grammar_with(PatternExpr::interleave)
    }

    fn grammar_with(&self, par_compose: fn(Vec<PatternExpr>) -> PatternExpr) -> PatternExpr {
        let comm = || PatternExpr::opt(PatternExpr::Kind(PhaseKind::Communication));
        match &self.node {
            // A lost attempt leaves one Detect/Recover pair in the trace
            // (its own phases are lost with its result), so an atom's
            // element admits any number of retry pairs up front.
            PlanNode::Atom(job) => PatternExpr::seq(vec![
                PatternExpr::Star(Box::new(PatternExpr::seq(vec![
                    PatternExpr::Kind(PhaseKind::Detect),
                    PatternExpr::Kind(PhaseKind::Recover),
                ]))),
                comm(),
                PatternExpr::from_static(&job.info().grammar),
            ]),
            PlanNode::Seq(xs) => {
                PatternExpr::seq(xs.iter().map(|s| s.grammar_with(par_compose)).collect())
            }
            PlanNode::Par(xs) => {
                let members = xs.iter().map(|b| b.grammar_with(par_compose)).collect();
                PatternExpr::seq(vec![comm(), par_compose(members), comm()])
            }
            PlanNode::Replicate(n, inner) => {
                let members = (0..*n).map(|_| inner.grammar_with(par_compose)).collect();
                PatternExpr::seq(vec![comm(), par_compose(members), comm()])
            }
        }
    }

    /// Indented description of the plan tree with per-atom archetypes.
    pub fn describe(&self) -> String {
        fn go(p: &Plan, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match &p.node {
                PlanNode::Atom(job) => {
                    out.push_str(&format!("{pad}atom {} [{}]\n", job.name(), job.info().name));
                }
                PlanNode::Seq(xs) => {
                    out.push_str(&format!("{pad}seq\n"));
                    for x in xs {
                        go(x, indent + 1, out);
                    }
                }
                PlanNode::Par(xs) => {
                    out.push_str(&format!("{pad}par\n"));
                    for x in xs {
                        go(x, indent + 1, out);
                    }
                }
                PlanNode::Replicate(n, inner) => {
                    out.push_str(&format!("{pad}replicate x{n}\n"));
                    go(inner, indent + 1, out);
                }
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}
