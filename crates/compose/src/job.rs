//! The uniform job interface every archetype instance presents to the
//! plan algebra.
//!
//! An [`ArchetypeJob`] wraps one archetype run — `run_farm`,
//! `run_pipeline`, `run_spmd_recursive`, a mesh solver — behind typed
//! input/output ([`crate::ComposeData`]), a declared [`ArchetypeInfo`]
//! (whose grammar the composite trace check reuses), and a
//! machine-independent work estimate the model-driven allocator prices
//! branches with. The executor erases the types at plan edges
//! ([`crate::Value`]) and recovers them at each job boundary.

use archetype_core::{ArchetypeInfo, PhaseTrace};
use archetype_mp::Ctx;

use crate::value::{ComposeData, Value};

/// One archetype instance, runnable as an atom of a [`crate::Plan`].
///
/// The executor calls [`ArchetypeJob::run`] **collectively** on every
/// rank of the group the allocator assigned to this atom: the context is
/// already scoped to that group (so `ctx.rank()`/`ctx.nprocs()` describe
/// it, and the job's internal traffic — whatever tags it uses — is
/// isolated from concurrently running sibling atoms), and `input` has
/// been replicated to every member. The returned value is taken from the
/// group's rank 0; other ranks may return any placeholder (conventionally
/// `Default::default()`).
///
/// `trace` is `Some` only on the group's rank 0; jobs forward it to their
/// skeleton's `*_traced` driver so the atom's phase trace lands in the
/// composite trace in plan order.
pub trait ArchetypeJob: Send + Sync {
    /// Typed stage input, recovered from the plan edge's [`Value`].
    type In: ComposeData;
    /// Typed stage output, erased back onto the plan edge.
    type Out: ComposeData;

    /// Job name for plan descriptions and diagnostics.
    fn name(&self) -> &'static str;

    /// The archetype this job instantiates; its grammar becomes this
    /// atom's slice of the derived composite grammar.
    fn info(&self) -> &'static ArchetypeInfo;

    /// Machine-independent estimate of the job's **total** work in
    /// flop-equivalents (as if run on one rank). The allocator prices it
    /// with the machine model at hand; because every branch is priced
    /// with the same model, the resulting rank shares — and therefore
    /// the plan's structural statistics — are model-invariant.
    fn estimate_flops(&self, input: &Self::In) -> f64;

    /// Execute the archetype on the current (already scoped) group.
    fn run(&self, ctx: &mut Ctx, input: Self::In, trace: Option<&PhaseTrace>) -> Self::Out;

    /// Hash of the job's *configuration* — everything beyond its name
    /// that steers what it computes (problem sizes, policies, scale
    /// factors). Two atoms with equal `(name, fingerprint)` must be
    /// interchangeable, because the plan service's structure cache keys
    /// memoized grammars and cost estimates on it. The default (`0`) is
    /// safe only for jobs whose name fully determines their behaviour.
    fn fingerprint(&self) -> u64 {
        0
    }
}

/// Object-safe erased form of [`ArchetypeJob`], stored in plan atoms.
pub(crate) trait DynJob: Send + Sync {
    fn name(&self) -> &'static str;
    fn info(&self) -> &'static ArchetypeInfo;
    fn estimate_flops(&self, input: &Value) -> f64;
    fn try_estimate_flops(&self, input: &Value) -> Option<f64>;
    fn run(&self, ctx: &mut Ctx, input: Value, trace: Option<&PhaseTrace>) -> Value;
    fn fingerprint(&self) -> u64;
}

/// The adapter that erases a typed job.
pub(crate) struct JobAdapter<J>(pub J);

impl<J: ArchetypeJob> DynJob for JobAdapter<J> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn info(&self) -> &'static ArchetypeInfo {
        self.0.info()
    }

    fn estimate_flops(&self, input: &Value) -> f64 {
        // Price by reference when the typed input can be borrowed out of
        // the value; only tuple-typed jobs pay a clone here.
        match J::In::peek(input) {
            Some(borrowed) => self.0.estimate_flops(borrowed),
            None => self.0.estimate_flops(&J::In::from_value(input.clone())),
        }
    }

    fn try_estimate_flops(&self, input: &Value) -> Option<f64> {
        J::In::accepts(input).then(|| self.estimate_flops(input))
    }

    fn run(&self, ctx: &mut Ctx, input: Value, trace: Option<&PhaseTrace>) -> Value {
        self.0
            .run(ctx, J::In::from_value(input), trace)
            .into_value()
    }

    fn fingerprint(&self) -> u64 {
        self.0.fingerprint()
    }
}
