//! The dynamic value that flows between plan stages, and the typed
//! conversions jobs use at their boundaries.
//!
//! A [`crate::Plan`] is a heterogeneous DAG: a sort stage produces
//! `Vec<i64>`, a solver produces a field of `f64`, a `Par` node produces
//! one output per branch. [`Value`] is the closed union the executor
//! moves between stages — it implements the substrate's
//! [`Payload`], so inter-stage handoffs are priced by the machine model
//! like any other message — while [`ComposeData`] recovers static types
//! at every [`crate::ArchetypeJob`] boundary, so jobs themselves stay
//! fully typed.

use archetype_mp::Payload;

/// A dynamically typed plan value: what flows along the edges of a
/// composed plan.
///
/// ```
/// use archetype_compose::Value;
/// use archetype_mp::Payload;
///
/// let v = Value::Tuple(vec![Value::F64s(vec![1.0, 2.0]), Value::Unit]);
/// assert_eq!(v.size_bytes(), 8 + (8 + 16) + 0); // tuple header + parts
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// No data (the input of a self-contained stage).
    Unit,
    /// A scalar count or index.
    U64(u64),
    /// A scalar measurement.
    F64(f64),
    /// A list of integers (e.g. sorted keys).
    I64s(Vec<i64>),
    /// A list of floats (e.g. scores, field samples).
    F64s(Vec<f64>),
    /// One value per member — the shape `Par`/`Replicate` nodes consume
    /// (one element per branch) and produce (one element per branch).
    Tuple(Vec<Value>),
}

impl Value {
    /// Short shape description for wiring-error diagnostics.
    pub fn shape(&self) -> String {
        match self {
            Value::Unit => "Unit".into(),
            Value::U64(_) => "U64".into(),
            Value::F64(_) => "F64".into(),
            Value::I64s(v) => format!("I64s[{}]", v.len()),
            Value::F64s(v) => format!("F64s[{}]", v.len()),
            Value::Tuple(vs) => format!(
                "Tuple({})",
                vs.iter().map(Value::shape).collect::<Vec<_>>().join(", ")
            ),
        }
    }
}

impl Payload for Value {
    fn size_bytes(&self) -> usize {
        match self {
            Value::Unit => 0,
            Value::U64(_) | Value::F64(_) => 8,
            Value::I64s(v) => 8 + v.len() * 8,
            Value::F64s(v) => 8 + v.len() * 8,
            Value::Tuple(vs) => 8 + vs.iter().map(Value::size_bytes).sum::<usize>(),
        }
    }
}

#[cold]
fn wiring_bug(expected: &str, got: &Value) -> ! {
    panic!(
        "plan wiring bug: a stage expected {expected} but received {}",
        got.shape()
    )
}

/// Conversion between a job's static input/output types and the dynamic
/// [`Value`] moving between stages.
///
/// `from_value` panics (with the offending shape) on a mismatch — that is
/// a plan wiring bug, exactly like a tag-matched message of the wrong
/// type in the substrate.
pub trait ComposeData: Send + Sized + 'static {
    /// Wrap this value for the plan edge.
    fn into_value(self) -> Value;
    /// Recover the static type at a job boundary.
    fn from_value(v: Value) -> Self;
    /// Borrow the static type out of a value without copying, where the
    /// representations coincide — used on the cost-estimation path so
    /// pricing a branch never deep-copies its (possibly large) input.
    /// Types without a borrowed form (tuples) return `None` and fall
    /// back to a clone.
    fn peek(_v: &Value) -> Option<&Self> {
        None
    }
    /// True if `from_value(v.clone())` would succeed — the shape check
    /// lenient pricing ([`crate::Plan::estimate_flops_lenient`]) uses to
    /// skip stages whose inputs only exist at run time.
    fn accepts(v: &Value) -> bool;
}

impl ComposeData for () {
    fn into_value(self) -> Value {
        Value::Unit
    }
    fn from_value(v: Value) -> Self {
        match v {
            Value::Unit => (),
            other => wiring_bug("Unit", &other),
        }
    }
    fn peek(v: &Value) -> Option<&Self> {
        matches!(v, Value::Unit).then_some(&())
    }
    fn accepts(v: &Value) -> bool {
        matches!(v, Value::Unit)
    }
}

impl ComposeData for u64 {
    fn into_value(self) -> Value {
        Value::U64(self)
    }
    fn from_value(v: Value) -> Self {
        match v {
            Value::U64(x) => x,
            other => wiring_bug("U64", &other),
        }
    }
    fn peek(v: &Value) -> Option<&Self> {
        match v {
            Value::U64(x) => Some(x),
            _ => None,
        }
    }
    fn accepts(v: &Value) -> bool {
        matches!(v, Value::U64(_))
    }
}

impl ComposeData for f64 {
    fn into_value(self) -> Value {
        Value::F64(self)
    }
    fn from_value(v: Value) -> Self {
        match v {
            Value::F64(x) => x,
            other => wiring_bug("F64", &other),
        }
    }
    fn peek(v: &Value) -> Option<&Self> {
        match v {
            Value::F64(x) => Some(x),
            _ => None,
        }
    }
    fn accepts(v: &Value) -> bool {
        matches!(v, Value::F64(_))
    }
}

impl ComposeData for Vec<i64> {
    fn into_value(self) -> Value {
        Value::I64s(self)
    }
    fn from_value(v: Value) -> Self {
        match v {
            Value::I64s(x) => x,
            other => wiring_bug("I64s", &other),
        }
    }
    fn peek(v: &Value) -> Option<&Self> {
        match v {
            Value::I64s(x) => Some(x),
            _ => None,
        }
    }
    fn accepts(v: &Value) -> bool {
        matches!(v, Value::I64s(_))
    }
}

impl ComposeData for Vec<f64> {
    fn into_value(self) -> Value {
        Value::F64s(self)
    }
    fn from_value(v: Value) -> Self {
        match v {
            Value::F64s(x) => x,
            other => wiring_bug("F64s", &other),
        }
    }
    fn peek(v: &Value) -> Option<&Self> {
        match v {
            Value::F64s(x) => Some(x),
            _ => None,
        }
    }
    fn accepts(v: &Value) -> bool {
        matches!(v, Value::F64s(_))
    }
}

/// The identity conversion: a job that wants to handle the dynamic value
/// itself (e.g. a fan-in over a variable number of branches).
impl ComposeData for Value {
    fn into_value(self) -> Value {
        self
    }
    fn from_value(v: Value) -> Self {
        v
    }
    fn peek(v: &Value) -> Option<&Self> {
        Some(v)
    }
    fn accepts(_v: &Value) -> bool {
        true
    }
}

impl<A: ComposeData, B: ComposeData> ComposeData for (A, B) {
    fn into_value(self) -> Value {
        Value::Tuple(vec![self.0.into_value(), self.1.into_value()])
    }
    fn from_value(v: Value) -> Self {
        match v {
            Value::Tuple(vs) if vs.len() == 2 => {
                let mut it = vs.into_iter();
                (
                    A::from_value(it.next().expect("len 2")),
                    B::from_value(it.next().expect("len 2")),
                )
            }
            other => wiring_bug("Tuple(_, _)", &other),
        }
    }
    fn accepts(v: &Value) -> bool {
        matches!(v, Value::Tuple(vs) if vs.len() == 2 && A::accepts(&vs[0]) && B::accepts(&vs[1]))
    }
}

impl<A: ComposeData, B: ComposeData, C: ComposeData> ComposeData for (A, B, C) {
    fn into_value(self) -> Value {
        Value::Tuple(vec![
            self.0.into_value(),
            self.1.into_value(),
            self.2.into_value(),
        ])
    }
    fn from_value(v: Value) -> Self {
        match v {
            Value::Tuple(vs) if vs.len() == 3 => {
                let mut it = vs.into_iter();
                (
                    A::from_value(it.next().expect("len 3")),
                    B::from_value(it.next().expect("len 3")),
                    C::from_value(it.next().expect("len 3")),
                )
            }
            other => wiring_bug("Tuple(_, _, _)", &other),
        }
    }
    fn accepts(v: &Value) -> bool {
        matches!(v, Value::Tuple(vs)
            if vs.len() == 3 && A::accepts(&vs[0]) && B::accepts(&vs[1]) && C::accepts(&vs[2]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_preserve_values() {
        assert_eq!(<()>::from_value(().into_value()), ());
        assert_eq!(u64::from_value(7u64.into_value()), 7);
        assert_eq!(
            Vec::<i64>::from_value(vec![3i64, 1].into_value()),
            vec![3, 1]
        );
        let pair = (vec![1.0f64], vec![2i64]);
        assert_eq!(
            <(Vec<f64>, Vec<i64>)>::from_value(pair.clone().into_value()),
            pair
        );
    }

    #[test]
    fn sizes_add_up() {
        assert_eq!(Value::Unit.size_bytes(), 0);
        assert_eq!(Value::U64(1).size_bytes(), 8);
        assert_eq!(Value::I64s(vec![1, 2, 3]).size_bytes(), 32);
        assert_eq!(
            Value::Tuple(vec![Value::Unit, Value::F64(0.0)]).size_bytes(),
            16
        );
    }

    #[test]
    #[should_panic(expected = "plan wiring bug")]
    fn shape_mismatch_panics_with_diagnostic() {
        Vec::<i64>::from_value(Value::F64s(vec![1.0]));
    }
}
