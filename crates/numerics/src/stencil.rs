//! Finite-difference stencil helpers shared by the grid applications.

/// Five-point Jacobi update for the Poisson problem `∇²u = f`
/// (paper §3.6): `u' = (u_W + u_E + u_S + u_N − h²·f) / 4`.
#[inline]
pub fn jacobi_update(h2f: f64, w: f64, e: f64, s: f64, n: f64) -> f64 {
    0.25 * (w + e + s + n - h2f)
}

/// Second-order central first derivative on a uniform grid.
#[inline]
pub fn central_diff1(um: f64, up: f64, h: f64) -> f64 {
    (up - um) / (2.0 * h)
}

/// Second-order central second derivative on a uniform grid.
#[inline]
pub fn central_diff2(um: f64, u0: f64, up: f64, h: f64) -> f64 {
    (up - 2.0 * u0 + um) / (h * h)
}

/// Fourth-order central first derivative (used by the spectral-flow
/// application's radial finite differences, paper §3.7.3).
#[inline]
pub fn central_diff1_4th(um2: f64, um1: f64, up1: f64, up2: f64, h: f64) -> f64 {
    (um2 - 8.0 * um1 + 8.0 * up1 - up2) / (12.0 * h)
}

/// One Lax–Friedrichs step for a conservation law `u_t + f(u)_x = 0`:
/// `u'_i = ½(u_{i−1} + u_{i+1}) − λ/2 (f_{i+1} − f_{i−1})` with
/// `λ = dt/dx`.
#[inline]
pub fn lax_friedrichs(um: f64, up: f64, fm: f64, fp: f64, lambda: f64) -> f64 {
    0.5 * (um + up) - 0.5 * lambda * (fp - fm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_fixed_point_of_harmonic_function() {
        // u(x,y) = x + y is harmonic: the Jacobi update with f = 0 leaves
        // interior values unchanged on a uniform grid.
        let h = 0.1;
        let u = |x: f64, y: f64| x + y;
        let (x, y) = (0.5, 0.3);
        let updated = jacobi_update(0.0, u(x - h, y), u(x + h, y), u(x, y - h), u(x, y + h));
        assert!((updated - u(x, y)).abs() < 1e-12);
    }

    #[test]
    fn central_differences_are_exact_on_polynomials() {
        let h = 0.25;
        // d/dx of x² at x=1 is 2; central difference is exact on quadratics.
        let f = |x: f64| x * x;
        assert!((central_diff1(f(1.0 - h), f(1.0 + h), h) - 2.0).abs() < 1e-12);
        // d²/dx² of x² is 2 everywhere.
        assert!((central_diff2(f(1.0 - h), f(1.0), f(1.0 + h), h) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fourth_order_diff_is_exact_on_quartics() {
        let h = 0.2;
        let f = |x: f64| x * x * x * x;
        let x0 = 0.7f64;
        let d = central_diff1_4th(f(x0 - 2.0 * h), f(x0 - h), f(x0 + h), f(x0 + 2.0 * h), h);
        let exact = 4.0 * x0.powi(3);
        assert!((d - exact).abs() < 1e-10, "got {d}, want {exact}");
    }

    #[test]
    fn fourth_order_beats_second_order_on_smooth_data() {
        let h = 0.1;
        let x0 = 0.3f64;
        let f = |x: f64| x.sin();
        let exact = x0.cos();
        let e2 = (central_diff1(f(x0 - h), f(x0 + h), h) - exact).abs();
        let e4 = (central_diff1_4th(f(x0 - 2.0 * h), f(x0 - h), f(x0 + h), f(x0 + 2.0 * h), h)
            - exact)
            .abs();
        assert!(
            e4 < e2 / 10.0,
            "e4={e4} should be much smaller than e2={e2}"
        );
    }

    #[test]
    fn lax_friedrichs_preserves_constant_states() {
        // A constant state is a fixed point for any consistent flux.
        let u = 3.0;
        let f = 0.5 * u * u;
        let next = lax_friedrichs(u, u, f, f, 0.4);
        assert!((next - u).abs() < 1e-12);
    }
}
