//! Minimal complex arithmetic for the FFT and spectral kernels.
//!
//! Written from scratch (no `num-complex`) to keep the dependency set to
//! the approved list; only the operations the archetype applications need.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

// Complex values travel in messages during grid redistribution; the marker
// declares their wire size as `size_of::<Complex>()`.
archetype_mp::impl_fixed_size!(Complex);

/// A complex number with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Complex zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A real number as a complex.
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, o: Complex) -> Complex {
        let d = o.norm_sqr();
        Complex::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        *self = *self + o;
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, o: Complex) {
        *self = *self - o;
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, o: Complex) {
        *self = *self * o;
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert!(close(a + b, b + a));
        assert!(close(a * b, b * a));
        assert!(close(a * (b + Complex::ONE), a * b + a));
        assert!(close(a + (-a), Complex::ZERO));
        assert!(close(a * Complex::ONE, a));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::I * Complex::I, -Complex::ONE));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(2.0, -7.0);
        let b = Complex::new(0.5, 1.5);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        assert!(close(Complex::cis(0.0), Complex::ONE));
        assert!(close(Complex::cis(std::f64::consts::FRAC_PI_2), Complex::I));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!(close(a * a.conj(), Complex::from_re(25.0)));
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let a = Complex::new(1.0, 1.0);
        let b = Complex::new(2.0, -3.0);
        let mut c = a;
        c += b;
        assert!(close(c, a + b));
        c -= b;
        assert!(close(c, a));
        c *= b;
        assert!(close(c, a * b));
    }
}
