//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! The 2-D FFT application of the mesh-spectral archetype (paper §3.5.1,
//! after Numerical Recipes) performs an in-place 1-D FFT on every row and
//! then on every column. This module supplies that 1-D building block:
//! in-place, power-of-two lengths, forward and inverse (inverse scales by
//! `1/n` so `ifft(fft(x)) == x`).

use crate::complex::Complex;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// `X[k] = Σ x[j]·e^{−2πi jk/n}`
    Forward,
    /// `x[j] = (1/n) Σ X[k]·e^{+2πi jk/n}`
    Inverse,
}

/// In-place FFT of `data` in the given direction.
///
/// # Panics
/// Panics unless `data.len()` is a power of two (including 1).
pub fn fft_in_place(data: &mut [Complex], dir: Direction) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterfly passes.
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w *= wlen;
            }
        }
        len <<= 1;
    }

    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }
}

/// Forward FFT, returning a new vector.
///
/// ```
/// use archetype_numerics::{fft, ifft, Complex};
/// let x: Vec<Complex> = (0..8).map(|i| Complex::from_re(i as f64)).collect();
/// let back = ifft(&fft(&x));
/// for (a, b) in back.iter().zip(&x) {
///     assert!((*a - *b).abs() < 1e-12);
/// }
/// ```
pub fn fft(data: &[Complex]) -> Vec<Complex> {
    let mut out = data.to_vec();
    fft_in_place(&mut out, Direction::Forward);
    out
}

/// Inverse FFT, returning a new vector.
pub fn ifft(data: &[Complex]) -> Vec<Complex> {
    let mut out = data.to_vec();
    fft_in_place(&mut out, Direction::Inverse);
    out
}

/// Naive O(n²) DFT; the oracle the FFT is tested against.
pub fn dft_naive(data: &[Complex], dir: Direction) -> Vec<Complex> {
    let n = data.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        for (j, &x) in data.iter().enumerate() {
            let ang = sign * 2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
            *o += x * Complex::cis(ang);
        }
    }
    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for z in out.iter_mut() {
            *z = z.scale(inv);
        }
    }
    out
}

/// Modeled flop count of one radix-2 FFT of length `n`: the standard
/// `5 n log₂ n` real-flop estimate, used by the virtual-time figures.
pub fn fft_flops(n: usize) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    5.0 * n as f64 * (n as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    fn test_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Complex::new((0.3 * t).sin() + 0.1 * t, (0.7 * t).cos() - 0.05 * t)
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let x = test_signal(n);
            let fast = fft(&x);
            let slow = dft_naive(&x, Direction::Forward);
            assert!(max_err(&fast, &slow) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn inverse_round_trips() {
        for n in [1usize, 2, 16, 256, 1024] {
            let x = test_signal(n);
            let back = ifft(&fft(&x));
            assert!(max_err(&back, &x) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        let y = fft(&x);
        for z in &y {
            assert!((*z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|j| Complex::cis(2.0 * std::f64::consts::PI * (j * k0) as f64 / n as f64))
            .collect();
        let y = fft(&x);
        for (k, z) in y.iter().enumerate() {
            let expected = if k == k0 { n as f64 } else { 0.0 };
            assert!((z.abs() - expected).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 256;
        let x = test_signal(n);
        let y = fft(&x);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() < 1e-6 * ex.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 32;
        let x = test_signal(n);
        let y: Vec<Complex> = test_signal(n).iter().map(|z| z.conj()).collect();
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let lhs = fft(&sum);
        let fx = fft(&x);
        let fy = fft(&y);
        let rhs: Vec<Complex> = fx.iter().zip(&fy).map(|(a, b)| *a + *b).collect();
        assert!(max_err(&lhs, &rhs) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex::ZERO; 12];
        fft_in_place(&mut x, Direction::Forward);
    }

    #[test]
    fn flop_model_grows_superlinearly() {
        assert!(fft_flops(2048) > 2.0 * fft_flops(1024));
        assert_eq!(fft_flops(1), 1.0);
    }
}
