//! # archetype-numerics — numerical kernels for the archetype applications
//!
//! From-scratch numerical building blocks needed by the mesh-spectral
//! archetype applications of Massingill & Chandy (IPPS 1999):
//!
//! - [`complex`]: complex arithmetic (no external dependency),
//! - [`mod@fft`]: in-place iterative radix-2 Cooley–Tukey FFT with a naive-DFT
//!   oracle, used by the 2-D FFT and spectral-flow applications,
//! - [`stencil`]: finite-difference stencils (Jacobi/Poisson update,
//!   central differences of 2nd and 4th order, Lax–Friedrichs step).

pub mod complex;
pub mod fft;
pub mod stencil;

pub use complex::Complex;
pub use fft::{dft_naive, fft, fft_flops, fft_in_place, ifft, Direction};
