//! Validation of the archetype performance models (paper §1.1: archetypes
//! as a basis for performance models): closed-form predictions vs the
//! virtual-time simulator, for the Poisson stencil and one-deep mergesort.

use archetype_bench::{print_figure, write_figure_csv, Curve, SpeedupPoint};
use archetype_dc::mergesort::OneDeepMergesort;
use archetype_dc::perfmodel::predict_one_deep_mergesort;
use archetype_dc::skeleton::run_spmd as dc_spmd;
use archetype_mesh::apps::poisson::{poisson_spmd, sine_problem};
use archetype_mesh::perfmodel::predict_stencil_step;
use archetype_mp::{run_spmd, MachineModel, ProcessGrid2};

fn main() {
    let model = MachineModel::ibm_sp();

    // --- Poisson stencil ---------------------------------------------------
    let n = 256;
    let steps = 20;
    let spec = sine_problem(n, 0.0, steps);
    let ps = [1usize, 2, 4, 8, 9, 16, 25];
    let mut sim_curve = Vec::new();
    let mut pred_curve = Vec::new();
    for &p in &ps {
        let pg = ProcessGrid2::near_square(p);
        let sim = run_spmd(p, model, move |ctx| {
            poisson_spmd(ctx, &spec, pg);
        })
        .elapsed_virtual;
        let pred = steps as f64 * predict_stencil_step(&model, n, n, 8, pg, 8.0, 1, 1);
        // Report as "ratio to simulation" in the speedup column.
        sim_curve.push(SpeedupPoint::new(p, sim, sim));
        pred_curve.push(SpeedupPoint::new(p, pred, sim));
    }
    let curves = vec![
        Curve {
            label: "simulated (reference)".into(),
            points: sim_curve,
        },
        Curve {
            label: "predicted/simulated".into(),
            points: pred_curve,
        },
    ];
    print_figure(
        &format!(
            "Performance model: Poisson {n}x{n}, {steps} sweeps, {}",
            model.name
        ),
        &curves,
    );
    write_figure_csv("perfmodel_poisson", &curves);

    // --- One-deep mergesort --------------------------------------------------
    let nitems = 200_000;
    let data: Vec<i64> = (0..nitems as i64).map(|i| (i * 48271) % 99991).collect();
    let mut sim_curve = Vec::new();
    let mut pred_curve = Vec::new();
    for &p in &[2usize, 4, 8, 16, 32] {
        let blocks: Vec<Vec<i64>> = (0..p)
            .map(|r| {
                let (s, l) = archetype_mp::topology::block_range(nitems, p, r);
                data[s..s + l].to_vec()
            })
            .collect();
        let sim = run_spmd(p, model, |ctx| {
            let alg = OneDeepMergesort::<i64>::with_oversample(16);
            dc_spmd(&alg, ctx, blocks[ctx.rank()].clone());
        })
        .elapsed_virtual;
        let pred = predict_one_deep_mergesort(&model, nitems, p, 16);
        sim_curve.push(SpeedupPoint::new(p, sim, sim));
        pred_curve.push(SpeedupPoint::new(p, pred, sim));
    }
    let curves = vec![
        Curve {
            label: "simulated (reference)".into(),
            points: sim_curve,
        },
        Curve {
            label: "predicted/simulated".into(),
            points: pred_curve,
        },
    ];
    print_figure(
        &format!(
            "Performance model: one-deep mergesort, {nitems} items, {}",
            model.name
        ),
        &curves,
    );
    write_figure_csv("perfmodel_mergesort", &curves);
}
