//! Figures 19–20: sample output of the CFD codes — "density as a shock
//! interacts with a sinusoidal density gradient" (Fig. 19) and "density
//! and vorticity images … at late and early times" (Fig. 20).
//!
//! Runs the shock–interface problem on the SPMD solver and writes PGM
//! images + CSV dumps of the density and vorticity fields at an early and
//! a late time into `target/figures/`.

use archetype_bench::figures_dir;
use archetype_mesh::apps::cfd::{
    cfd_spmd, density_field, shock_sine_init, vorticity_field, CfdSpec,
};
use archetype_mesh::io::write_pgm;
use archetype_mp::{run_spmd, MachineModel, ProcessGrid2};

fn snapshot(spec: &CfdSpec, tag: &str) {
    let pg = ProcessGrid2::near_square(4);
    let spec = *spec;
    let out = run_spmd(4, MachineModel::ibm_sp(), move |ctx| {
        cfd_spmd(ctx, &spec, pg, |i, j| shock_sine_init(&spec, i, j))
    });
    let grid = out.results[0].grid.as_ref().expect("root gathers").clone();
    let time = out.results[0].time;
    let (dx, dy) = spec.dx();

    let rho = density_field(&grid);
    let vor = vorticity_field(&grid, spec.nx, spec.ny, dx, dy);

    let dir = figures_dir();
    write_pgm(
        &dir.join(format!("fig19_density_{tag}.pgm")),
        &rho,
        spec.nx,
        spec.ny,
    )
    .expect("write density PGM");
    write_pgm(
        &dir.join(format!("fig20_vorticity_{tag}.pgm")),
        &vor,
        spec.nx,
        spec.ny,
    )
    .expect("write vorticity PGM");
    println!(
        "{tag}: t = {time:.4}, density range [{:.3}, {:.3}], |vorticity| max {:.3}",
        rho.iter().copied().fold(f64::INFINITY, f64::min),
        rho.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        vor.iter().fold(0.0f64, |a, v| a.max(v.abs())),
    );
}

fn main() {
    let (nx, ny) = if archetype_bench::full_scale() {
        (800usize, 400usize)
    } else {
        (320, 160)
    };
    let early = CfdSpec {
        nx,
        ny,
        lx: 1.0,
        ly: 0.5,
        cfl: 0.4,
        steps: nx / 8,
    };
    let late = CfdSpec {
        steps: nx / 2,
        ..early
    };
    snapshot(&early, "early");
    snapshot(&late, "late");
    println!("PGM images written to {}", figures_dir().display());
}
