//! Figure 12: "Speedup of parallel 2-D FFT compared to sequential 2-D FFT
//! … FFT repeated 10 times on the IBM SP. Disappointing performance is a
//! result of too small a ratio of computation to communication."
//!
//! Default grid 256×256, repeated 10×, IBM-SP model, P up to 32 (pass
//! `--full` for 512×512). Expected shape: speedup well below perfect,
//! flattening in the single digits.

use archetype_bench::{print_figure, write_figure_csv, Curve, SpeedupPoint};
use archetype_mesh::apps::fft2d::{fft2d_seq_flops, fft2d_spmd};
use archetype_mp::{run_spmd, CostMeter, MachineModel};
use archetype_numerics::Complex;

fn main() {
    let n: usize = if archetype_bench::full_scale() {
        512
    } else {
        256
    };
    let reps = 10usize;
    let model = MachineModel::ibm_sp();
    let ps = [1usize, 2, 4, 8, 16, 24, 32];

    let mut seq = CostMeter::new(model);
    seq.charge_flops(fft2d_seq_flops(n, n, reps));
    let t_seq = seq.elapsed();

    let mut points = Vec::new();
    for &p in &ps {
        let t_par = run_spmd(p, model, move |ctx| {
            fft2d_spmd(ctx, n, n, reps, |r, c| {
                Complex::new(((r * 31 + c * 17) % 101) as f64 / 101.0, 0.0)
            });
        })
        .elapsed_virtual;
        points.push(SpeedupPoint::new(p, t_seq, t_par));
        eprintln!("P={p:>3} done");
    }

    let curves = vec![Curve {
        label: "2-D FFT".into(),
        points,
    }];
    print_figure(
        &format!(
            "Figure 12: 2-D FFT speedup, {n}x{n} grid, {reps} reps, {}",
            model.name
        ),
        &curves,
    );
    write_figure_csv("fig12_fft2d", &curves);
}
