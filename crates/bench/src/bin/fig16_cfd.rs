//! Figure 16: "Speedup of 2-D CFD code … on the Intel Delta" — the
//! compressible-flow production code, near-linear speedup to ~100
//! processors.
//!
//! Default grid 384×192, 30 steps (pass `--full` for 1024×512, 50 steps),
//! Intel-Delta model, near-square process grids up to P = 100.

use archetype_bench::{print_figure, write_figure_csv, Curve, SpeedupPoint};
use archetype_mesh::apps::cfd::{cfd_spmd, cfd_step_flops, shock_sine_init, CfdSpec};
use archetype_mp::{run_spmd, CostMeter, MachineModel, ProcessGrid2};

fn main() {
    let (nx, ny, steps) = if archetype_bench::full_scale() {
        (1024usize, 512usize, 50usize)
    } else {
        (384, 192, 30)
    };
    let model = MachineModel::intel_delta();
    let ps = [1usize, 4, 9, 16, 25, 36, 64, 100];

    let spec = CfdSpec {
        nx,
        ny,
        lx: 1.0,
        ly: 0.5,
        cfl: 0.4,
        steps,
    };

    let mut seq = CostMeter::new(model);
    seq.charge_flops(steps as f64 * cfd_step_flops(nx, ny));
    let t_seq = seq.elapsed();

    let mut points = Vec::new();
    for &p in &ps {
        let pg = ProcessGrid2::near_square(p);
        let t_par = run_spmd(p, model, move |ctx| {
            cfd_spmd(ctx, &spec, pg, |i, j| shock_sine_init(&spec, i, j));
        })
        .elapsed_virtual;
        points.push(SpeedupPoint::new(p, t_seq, t_par));
        eprintln!("P={p:>3} ({}x{}) done", pg.px, pg.py);
    }

    let curves = vec![Curve {
        label: "2-D CFD (compressible)".into(),
        points,
    }];
    print_figure(
        &format!(
            "Figure 16: CFD speedup, {nx}x{ny} grid, {steps} steps, {}",
            model.name
        ),
        &curves,
    );
    write_figure_csv("fig16_cfd", &curves);
}
