//! Figure 15: "Speedup of parallel Poisson solver compared to sequential
//! Poisson solver … 100 steps on the IBM SP."
//!
//! Default grid 512×512 (pass `--full` for 1024×1024), exactly 100 Jacobi
//! sweeps, IBM-SP model, near-square process grids up to P = 36.
//! Expected shape: close to linear — the five-point stencil's
//! computation-to-communication ratio is healthy at these sizes.

use archetype_bench::{print_figure, write_figure_csv, Curve, SpeedupPoint};
use archetype_mesh::apps::poisson::{poisson_spmd, poisson_sweep_flops, sine_problem};
use archetype_mp::{run_spmd, CostMeter, MachineModel, ProcessGrid2};

fn main() {
    let n: usize = if archetype_bench::full_scale() {
        1024
    } else {
        512
    };
    let steps = 100usize;
    let model = MachineModel::ibm_sp();
    let ps = [1usize, 2, 4, 8, 16, 25, 36];

    // Force exactly `steps` sweeps: zero tolerance, capped iterations.
    let spec = sine_problem(n, 0.0, steps);

    let mut seq = CostMeter::new(model);
    seq.charge_flops(steps as f64 * poisson_sweep_flops(n, n));
    let t_seq = seq.elapsed();

    let mut points = Vec::new();
    for &p in &ps {
        let pg = ProcessGrid2::near_square(p);
        let t_par = run_spmd(p, model, move |ctx| {
            poisson_spmd(ctx, &spec, pg);
        })
        .elapsed_virtual;
        points.push(SpeedupPoint::new(p, t_seq, t_par));
        eprintln!("P={p:>3} ({}x{}) done", pg.px, pg.py);
    }

    let curves = vec![Curve {
        label: "Poisson solver".into(),
        points,
    }];
    print_figure(
        &format!(
            "Figure 15: Poisson speedup, {n}x{n} grid, {steps} steps, {}",
            model.name
        ),
        &curves,
    );
    write_figure_csv("fig15_poisson", &curves);
}
