//! Composition scaling snapshot: runs the flagship forecast composite —
//! (farm sweep ∥ mesh Poisson) → recursive-DC sort → pipeline top-k —
//! across process counts under the virtual-time model and writes
//! `BENCH_compose.json` at the workspace root.
//!
//! All numbers are *virtual-time* measurements — deterministic by
//! construction, so this snapshot is stable across hosts and runs and a
//! regression in it means the composition schedule changed, not that the
//! machine was busy. Two fatal bars gate CI:
//!
//! 1. the composite's results must be bit-identical across process
//!    counts, machine models, and `Par` schedules;
//! 2. cost-proportional `Par` allocation must beat serializing the same
//!    branches on the full world by ≥ 1.5× at 8 ranks.
//!
//! Run with `cargo run --release -p archetype-bench --bin compose_scaling`.

use archetype_compose::{
    forecast_input, forecast_plan, run_plan_with, ComposeConfig, ForecastConfig, ParMode,
};
use archetype_mp::{run_spmd, MachineModel};

fn main() {
    let model = MachineModel::ibm_sp();
    let cfg = ForecastConfig::default();

    let run = |p: usize, model: MachineModel, mode: ParMode| {
        run_spmd(p, model, move |ctx| {
            run_plan_with(
                ctx,
                &forecast_plan(cfg),
                forecast_input(),
                ComposeConfig {
                    par: mode,
                    ..ComposeConfig::default()
                },
                None,
            )
        })
    };

    // --- Allocated schedule across process counts. ------------------------
    let mut times = Vec::new();
    let reference = run(1, model, ParMode::Allocate);
    let (ref_value, ref_stats) = &reference.results[0];
    times.push((1usize, reference.elapsed_virtual));
    for p in [2usize, 4, 8] {
        let out = run(p, model, ParMode::Allocate);
        assert_eq!(
            &out.results[0].0, ref_value,
            "composite result must be process-count invariant (p={p})"
        );
        assert_eq!(
            &out.results[0].1, ref_stats,
            "composite statistics must be process-count invariant (p={p})"
        );
        times.push((p, out.elapsed_virtual));
    }

    // --- Machine-model invariance of results and statistics. --------------
    let t3d = run(8, MachineModel::cray_t3d(), ParMode::Allocate);
    assert_eq!(
        &t3d.results[0].0, ref_value,
        "composite result must be machine-model invariant"
    );
    assert_eq!(&t3d.results[0].1, ref_stats, "statistics too");

    // --- The CI bar: allocation vs serializing the branches. --------------
    let alloc_8 = times.iter().find(|(p, _)| *p == 8).expect("ran at 8").1;
    let serial = run(8, model, ParMode::Serialize);
    assert_eq!(
        &serial.results[0].0, ref_value,
        "composite result must be schedule invariant"
    );
    let speedup_vs_serial = serial.elapsed_virtual / alloc_8;
    let speedup_vs_1 = times[0].1 / alloc_8;
    assert!(
        speedup_vs_serial >= 1.5,
        "cost-proportional Par allocation must be >= 1.5x faster than \
         serializing the branches on the full world at 8 ranks (got {speedup_vs_serial:.2}x)"
    );

    let fmt_times = |v: &[(usize, f64)]| {
        v.iter()
            .map(|(p, t)| format!("\"{p}\": {:.2}", t * 1e3))
            .collect::<Vec<_>>()
            .join(", ")
    };

    let json = format!(
        r#"{{
  "bench": "compose_scaling",
  "model": "{}",
  "forecast_composite": {{
    "config": "(sweep {} pts || poisson {}x{} @{} iters) -> sort -> top-k",
    "plan_atoms": {},
    "par_branches": {},
    "handoff_bytes": {},
    "virtual_ms_by_ranks": {{ {} }},
    "virtual_ms_serialized_8_ranks": {:.2},
    "speedup_8_ranks_vs_1": {speedup_vs_1:.2},
    "speedup_allocated_vs_serialized_8_ranks": {speedup_vs_serial:.2}
  }}
}}
"#,
        model.name,
        cfg.sweep_points,
        cfg.mesh_n,
        cfg.mesh_n,
        cfg.mesh_iters,
        ref_stats.atoms,
        ref_stats.branches,
        ref_stats.handoff_bytes,
        fmt_times(&times),
        serial.elapsed_virtual * 1e3,
    );
    std::fs::write("BENCH_compose.json", &json).expect("write BENCH_compose.json");
    print!("{json}");
    println!("wrote BENCH_compose.json");
}
