//! Figure 18: "Speedup of spectral code compared to 5-processor execution
//! … Because single-processor execution was not feasible due to memory
//! requirements, a minimum of 5 processors was used … Inefficiencies in
//! executing the code on the base number of processors (e.g. paging)
//! probably explain the better-than-ideal speedup for small numbers of
//! processors."
//!
//! Reproduced with the machine memory model: per-node memory capacity is
//! set so the P = 5 base configuration pages while P ≥ 10 fits, yielding
//! superlinear speedup at small multiples of the base, exactly the
//! paper's curve. Speedups are relative to the 5-processor run, plotted
//! against P/5 as in the paper.

use archetype_bench::{print_figure, write_figure_csv, Curve, SpeedupPoint};
use archetype_mesh::apps::spectral_flow::{swirl_spmd, working_set_bytes, SwirlSpec};
use archetype_mp::{run_spmd, MachineModel};

fn main() {
    let (nr, ntheta, steps) = if archetype_bench::full_scale() {
        (512usize, 512usize, 20usize)
    } else {
        (192, 256, 10)
    };
    let spec = SwirlSpec {
        nr,
        ntheta,
        rmax: 1.0,
        nu: 1e-3,
        dt: 1e-4,
        steps,
    };
    // Capacity between the P=8 and P=5 working sets: the base pages.
    let capacity = working_set_bytes(&spec, 8) * 1.05;
    let model = MachineModel::ibm_sp_with_memory(capacity, 1.0);
    let base_p = 5usize;
    let ps = [5usize, 10, 15, 20, 25, 30, 35, 40];

    let run_at = |p: usize| {
        run_spmd(p, model, move |ctx| {
            swirl_spmd(ctx, &spec);
        })
        .elapsed_virtual
    };

    let t_base = run_at(base_p);
    eprintln!("P={base_p:>3} (base) done");
    let mut points = Vec::new();
    for &p in &ps {
        let t = if p == base_p { t_base } else { run_at(p) };
        // Paper's y-axis: speedup relative to the 5-processor base, so the
        // "perfect" line is P/5. We report p/5 in the `p` column to match.
        points.push(SpeedupPoint::new(p / base_p, t_base, t));
        eprintln!("P={p:>3} done");
    }

    let curves = vec![Curve {
        label: "spectral (vs 5-proc base)".into(),
        points,
    }];
    print_figure(
        &format!(
            "Figure 18: spectral-code speedup vs {base_p}-processor base, {nr}x{ntheta} grid, {steps} steps, {} (finite memory)",
            model.name
        ),
        &curves,
    );
    write_figure_csv("fig18_spectral", &curves);
}
