//! Plan-service throughput snapshot: pushes a mixed multi-tenant batch
//! of ≥ 1000 plans through the persistent [`PlanService`] at 8 ranks
//! under the virtual-time model and writes `BENCH_serve.json` at the
//! workspace root.
//!
//! The batch rotates cheap single-atom plans (farm sweeps, mesh Poisson
//! solves, two-branch sort/digest composites) across five tenants, with
//! the mini forecast composite mixed in every eighth submission. All
//! headline numbers are *virtual-time* measurements — deterministic by
//! construction. Three fatal bars gate CI:
//!
//! 1. same-seed service runs must be bit-identical: outcomes, per-tenant
//!    stats, the latency digest, and the elapsed virtual clock;
//! 2. concurrent admission (packed waves on disjoint subgroups) must
//!    beat the serial one-plan-at-a-time schedule by ≥ 1.5× at 8 ranks,
//!    with identical outcomes and tenant stats;
//! 3. the real shared-memory backend must reproduce the virtual run's
//!    report exactly (only measured wall time may differ).
//!
//! `SERVE_BENCH_STRICT=1` additionally makes the absolute throughput and
//! p99-latency floors fatal (virtual-time numbers, so a miss means the
//! schedule regressed, not that the host was busy).
//!
//! Run with `cargo run --release -p archetype-bench --bin serve_scaling`.

use archetype_compose::{
    forecast_plan, ForecastConfig, Plan, PlanService, PoissonJob, ServeConfig, ServeOutcome,
    SortJob, SweepJob, TopKJob, Value,
};
use archetype_farm::apps::GridSweepFarm;
use archetype_mesh::apps::poisson::sine_problem;
use archetype_mp::{MachineModel, RunConfig};

/// Plans per batch (the ISSUE floor is 1000).
const PLANS: usize = 1200;
/// Tenants the batch rotates across.
const TENANTS: u32 = 5;
/// Seed of the deterministic plan mix.
const SEED: u64 = 0x5EED_5E4E;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn sweep_plan(points: u32) -> Plan {
    Plan::atom(SweepJob {
        farm: GridSweepFarm {
            lo: 0.0,
            hi: 2.0,
            points,
        },
    })
}

fn poisson_plan(n: usize, iters: usize) -> Plan {
    Plan::atom(PoissonJob {
        spec: sine_problem(n, 1e-14, iters),
    })
}

/// The deterministic mixed batch: cheap sweep/poisson singletons, a
/// two-branch sort/digest composite, and the mini forecast composite
/// every eighth submission.
fn mixed_plan(i: usize, rng: &mut u64) -> Plan {
    if i % 8 == 7 {
        return forecast_plan(ForecastConfig {
            sweep_points: 24,
            mesh_n: 12,
            mesh_iters: 40,
        });
    }
    match splitmix(rng) % 3 {
        0 => sweep_plan(16 + (splitmix(rng) % 5) as u32 * 8),
        1 => poisson_plan(
            8 + (splitmix(rng) % 4) as usize * 2,
            20 + (splitmix(rng) % 3) as usize * 20,
        ),
        _ => sweep_plan(12 + (splitmix(rng) % 3) as u32 * 12)
            .alongside(sweep_plan(20))
            .then(Plan::atom(SortJob::default()))
            .then(Plan::atom(TopKJob::default())),
    }
}

/// Queue the full deterministic batch into a fresh service.
fn fill(svc: &mut PlanService) {
    let mut rng = SEED;
    for i in 0..PLANS {
        let tenant = i as u32 % TENANTS;
        svc.submit(tenant, mixed_plan(i, &mut rng), Value::Unit)
            .expect("batch fits the default queue capacity");
    }
}

fn service(p: usize, max_concurrent: usize) -> PlanService {
    let mut svc = PlanService::new(
        p,
        ServeConfig {
            max_concurrent,
            ..ServeConfig::default()
        },
    );
    fill(&mut svc);
    svc
}

fn serve(p: usize, max_concurrent: usize, model: MachineModel, run: RunConfig) -> ServeOutcome {
    service(p, max_concurrent).serve_with(model, run)
}

fn main() {
    let model = MachineModel::ibm_sp();
    let virt = RunConfig::virtual_time();

    // --- The headline run: packed schedule, 8 ranks, virtual time. --------
    let packed = serve(8, 8, model, virt);
    assert_eq!(packed.report.outcomes.len(), PLANS);
    assert!(
        packed.report.outcomes.iter().all(|o| o.is_ok()),
        "the mixed batch is fault-free: every plan must complete"
    );
    assert_eq!(packed.report.tenants.len(), TENANTS as usize);

    // --- Bar 1: same-seed runs are bit-identical. -------------------------
    let rerun = serve(8, 8, model, virt);
    assert_eq!(
        rerun.report, packed.report,
        "same submissions, same seed: outcomes, tenant stats, and the \
         latency digest must be bit-identical"
    );
    assert_eq!(
        rerun.elapsed_virtual.to_bits(),
        packed.elapsed_virtual.to_bits(),
        "the virtual clock is part of the deterministic contract"
    );

    // --- Bar 2: concurrent admission beats serial by >= 1.5x. -------------
    let serial = serve(8, 1, model, virt);
    assert_eq!(
        serial.report.outcomes, packed.report.outcomes,
        "the schedule must not change results"
    );
    assert_eq!(
        serial.report.tenants, packed.report.tenants,
        "tenant stats are schedule-invariant"
    );
    assert_eq!(serial.report.waves, PLANS as u64);
    let speedup = serial.elapsed_virtual / packed.elapsed_virtual;
    assert!(
        speedup >= 1.5,
        "concurrent admission must beat serial one-plan-at-a-time by \
         >= 1.5x at 8 ranks (got {speedup:.2}x)"
    );

    // --- Bar 3: the real backend reproduces the report. -------------------
    let real = serve(8, 8, model, RunConfig::real());
    assert_eq!(
        real.report, packed.report,
        "the real shared-memory backend must reproduce the virtual run's \
         results, tenant stats, and latency digest"
    );

    // --- Scaling row: the same batch on 16 ranks. -------------------------
    let wide = serve(16, 8, model, virt);
    assert_eq!(
        wide.report.outcomes, packed.report.outcomes,
        "results are process-count invariant"
    );

    let pps = |out: &ServeOutcome| PLANS as f64 / out.elapsed_virtual;
    let p50_ms = packed.report.latency.percentile(0.5) * 1e3;
    let p99_ms = packed.report.latency.percentile(0.99) * 1e3;
    let wall_pps = PLANS as f64 / (real.wall_us as f64 / 1e6);

    // --- Optional strict bars: absolute virtual-time floors. --------------
    if std::env::var("SERVE_BENCH_STRICT").is_ok_and(|v| v == "1") {
        let v_pps = pps(&packed);
        assert!(
            v_pps >= 3000.0,
            "virtual throughput floor: {v_pps:.0} plans/s < 3000"
        );
        assert!(
            p99_ms <= 300.0,
            "virtual p99 completion-latency ceiling: {p99_ms:.1} ms > 300 ms"
        );
    }

    let cache = packed.cache;
    let json = format!(
        r#"{{
  "bench": "serve_scaling",
  "model": "{}",
  "plans": {PLANS},
  "tenants": {TENANTS},
  "waves_8_ranks": {},
  "virtual_s_8_ranks": {:.4},
  "plans_per_sec_virtual_8_ranks": {:.1},
  "latency_virtual_ms": {{ "p50": {p50_ms:.3}, "p99": {p99_ms:.3}, "mean": {:.3} }},
  "serial_virtual_s_8_ranks": {:.4},
  "concurrency_speedup_8_ranks": {speedup:.2},
  "virtual_s_16_ranks": {:.4},
  "plans_per_sec_virtual_16_ranks": {:.1},
  "cache": {{
    "shape_hits": {}, "shape_misses": {},
    "cost_hits": {}, "cost_misses": {},
    "alloc_hits": {}, "alloc_misses": {}
  }},
  "real_8_ranks": {{ "wall_us": {}, "plans_per_sec_wall": {wall_pps:.1}, "report_matches_virtual": true }}
}}
"#,
        model.name,
        packed.report.waves,
        packed.elapsed_virtual,
        pps(&packed),
        packed.report.latency.mean() * 1e3,
        serial.elapsed_virtual,
        wide.elapsed_virtual,
        pps(&wide),
        cache.shape_hits,
        cache.shape_misses,
        cache.cost_hits,
        cache.cost_misses,
        cache.alloc_hits,
        cache.alloc_misses,
        real.wall_us,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    print!("{json}");
    println!("wrote BENCH_serve.json");
}
