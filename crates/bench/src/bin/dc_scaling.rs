//! Recursive divide-and-conquer scaling snapshot: runs the recursive
//! mergesort, quicksort, and closest-pair applications on nested process
//! groups under the virtual-time model and writes `BENCH_dc.json` at the
//! workspace root.
//!
//! The headline numbers are *virtual-time* measurements — deterministic
//! by construction, so this snapshot is stable across hosts and runs; a
//! regression here means the archetype's communication schedule or cost
//! model changed, not that the machine was busy. The recursive mergesort
//! is additionally re-run on the real shared-memory backend to record
//! host-dependent `wall_us` columns next to the modeled `virtual_ms`
//! ones.
//!
//! Run with `cargo run --release -p archetype-bench --bin dc_scaling`.

use archetype_dc::perfmodel::{closest_recursion_policy, recursion_policy, sort_recursion_cutoff};
use archetype_dc::{
    run_spmd_recursive, sequential_closest, Point, RecursiveClosest, RecursiveMergesort,
    RecursiveQuicksort,
};
use archetype_mp::{run_spmd, run_spmd_real, MachineModel};

fn points(n: usize) -> Vec<Point> {
    let coords = archetype_bench::random_i64s(2 * n, 0x9017);
    coords
        .chunks_exact(2)
        .map(|c| {
            Point::new(
                c[0] as f64 / 100_000.0, // [-10_000, 10_000)
                c[1] as f64 / 100_000.0,
            )
        })
        .collect()
}

fn main() {
    let model = MachineModel::cray_t3d();
    let cutoff = sort_recursion_cutoff(&model, 8);
    let policy = recursion_policy(&model, 2, 8);

    // --- Recursive mergesort: 1..8 ranks, model-chosen cutoff. ------------
    let n = 1 << 20;
    let data = archetype_bench::random_i64s(n, 0x5eed);
    let mut expected = data.clone();
    expected.sort_unstable();
    let mut merge_times = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let d = data.clone();
        let out = run_spmd(p, model, move |ctx| {
            let local = (ctx.rank() == 0).then(|| d.clone());
            run_spmd_recursive(&RecursiveMergesort::<i64>::new(), ctx, local, &policy, None)
        });
        assert_eq!(
            out.results[0].as_ref().expect("root holds the result"),
            &expected,
            "recursive mergesort must sort at every process count"
        );
        merge_times.push((p, out.elapsed_virtual));
    }
    let t1 = merge_times[0].1;
    let merge_speedup_8 = t1 / merge_times.iter().find(|(p, _)| *p == 8).unwrap().1;

    // Same sort on the real shared-memory backend: measured wall_us
    // columns next to the modeled virtual_ms ones, with the output
    // required to stay identical.
    let mut merge_wall = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let d = data.clone();
        let out = run_spmd_real(p, model, move |ctx| {
            let local = (ctx.rank() == 0).then(|| d.clone());
            run_spmd_recursive(&RecursiveMergesort::<i64>::new(), ctx, local, &policy, None)
        });
        assert_eq!(
            out.results[0].as_ref().expect("root holds the result"),
            &expected,
            "real backend must sort identically"
        );
        merge_wall.push((p, out.wall_us));
    }

    // --- Recursive quicksort: 8 ranks vs 1. --------------------------------
    let qdata = archetype_bench::random_i64s(1 << 19, 0xfeed);
    let mut qexpected = qdata.clone();
    qexpected.sort_unstable();
    let quick_time = |p: usize| {
        let d = qdata.clone();
        let qe = qexpected.clone();
        let out = run_spmd(p, model, move |ctx| {
            let local = (ctx.rank() == 0).then(|| d.clone());
            run_spmd_recursive(&RecursiveQuicksort::<i64>::new(), ctx, local, &policy, None)
        });
        assert_eq!(out.results[0].as_ref().unwrap(), &qe, "quicksort p={p}");
        out.elapsed_virtual
    };
    let qt1 = quick_time(1);
    let qt8 = quick_time(8);

    // --- Recursive closest pair: 8 ranks vs 1. ------------------------------
    let pts = points(60_000);
    let cexpected = sequential_closest(&pts);
    let closest_policy = closest_recursion_policy(&model, 2);
    let closest_time = |p: usize| {
        let d = pts.clone();
        let out = run_spmd(p, model, move |ctx| {
            let local = (ctx.rank() == 0).then(|| d.clone());
            run_spmd_recursive(&RecursiveClosest::new(), ctx, local, &closest_policy, None)
        });
        let got = out.results[0].as_ref().unwrap().best;
        assert!(
            (got - cexpected).abs() < 1e-12,
            "closest p={p}: {got} vs {cexpected}"
        );
        out.elapsed_virtual
    };
    let ct1 = closest_time(1);
    let ct8 = closest_time(8);

    let fmt_times = |v: &[(usize, f64)]| {
        v.iter()
            .map(|(p, t)| format!("\"{p}\": {:.2}", t * 1e3))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let fmt_walls = |v: &[(usize, u64)]| {
        v.iter()
            .map(|(p, w)| format!("\"{p}\": {w}"))
            .collect::<Vec<_>>()
            .join(", ")
    };

    let json = format!(
        r#"{{
  "bench": "dc_scaling",
  "model": "{}",
  "cutoff_items_from_perfmodel": {cutoff},
  "recursive_mergesort": {{
    "config": "2^20 i64, branching 2, model-chosen cutoff",
    "virtual_ms_by_ranks": {{ {} }},
    "wall_us_by_ranks": {{ {} }},
    "speedup_8_ranks_vs_1": {merge_speedup_8:.2}
  }},
  "recursive_quicksort": {{
    "config": "2^19 i64, branching 2, model-chosen cutoff",
    "virtual_ms_1_rank": {:.2},
    "virtual_ms_8_ranks": {:.2},
    "speedup_8_ranks_vs_1": {:.2}
  }},
  "recursive_closest_pair": {{
    "config": "60k points, branching 2, model-chosen cutoff",
    "virtual_ms_1_rank": {:.2},
    "virtual_ms_8_ranks": {:.2},
    "speedup_8_ranks_vs_1": {:.2}
  }}
}}
"#,
        model.name,
        fmt_times(&merge_times),
        fmt_walls(&merge_wall),
        qt1 * 1e3,
        qt8 * 1e3,
        qt1 / qt8,
        ct1 * 1e3,
        ct8 * 1e3,
        ct1 / ct8,
    );

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dc.json");
    std::fs::write(&path, &json).expect("write BENCH_dc.json");
    print!("{json}");
    println!("wrote {}", path.display());

    // Virtual-time speedups are deterministic, so this bar is fatal
    // everywhere (mirroring the farm snapshot gate).
    assert!(
        merge_speedup_8 >= 3.0,
        "8-rank recursive mergesort must be >= 3x the 1-rank baseline (got {merge_speedup_8:.2}x)"
    );
}
