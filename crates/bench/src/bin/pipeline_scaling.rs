//! Pipeline scaling snapshot: runs the streaming image-filter chain and
//! the top-k/percentile aggregator across process counts under the
//! virtual-time model and writes `BENCH_pipeline.json` at the workspace
//! root.
//!
//! The headline numbers are *virtual-time* measurements — deterministic
//! by construction, so this snapshot is stable across hosts and runs and
//! a regression in it means the archetype's schedule changed, not that
//! the machine was busy. The ≥3× 8-rank floor on the image chain is the
//! fatal bar CI gates on. The image chain is additionally re-run on the
//! real shared-memory backend to record host-dependent `wall_us` columns
//! next to the modeled `virtual_ms` ones.
//!
//! Run with `cargo run --release -p archetype-bench --bin pipeline_scaling`.

use archetype_mp::{run_spmd, run_spmd_real, MachineModel};
use archetype_pipeline::apps::{ImageChain, TopKStream};
use archetype_pipeline::{run_pipeline, run_sequential, PipelineConfig};

fn main() {
    let model = MachineModel::ibm_sp();

    // --- Image-filter chain: 1..16 ranks. --------------------------------
    let chain = ImageChain::new(256, 192, 32, 24);
    let (reference, tiles) = run_sequential(&chain);
    let mut image_times = Vec::new();
    let mut image_replicas = Vec::new();
    for p in [1usize, 2, 4, 8, 16] {
        let c = chain.clone();
        let out = run_spmd(p, model, move |ctx| {
            run_pipeline(&c, ctx, PipelineConfig::default())
        });
        let (summary, stats) = &out.results[0];
        assert_eq!(
            *summary, reference,
            "pipeline must emit the identical summary at every process count"
        );
        assert_eq!(stats.items, tiles);
        image_times.push((p, out.elapsed_virtual));
        image_replicas.push((p, stats.replicas));
    }
    let t1 = image_times[0].1;
    let speedup_8 = t1 / image_times.iter().find(|(p, _)| *p == 8).unwrap().1;
    let speedup_16 = t1 / image_times.iter().find(|(p, _)| *p == 16).unwrap().1;

    // Same chain on the real shared-memory backend: measured wall_us
    // columns next to the modeled virtual_ms ones, with the summary
    // required to stay bit-identical.
    let mut image_wall = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let c = chain.clone();
        let out = run_spmd_real(p, model, move |ctx| {
            run_pipeline(&c, ctx, PipelineConfig::default())
        });
        assert_eq!(
            out.results[0].0, reference,
            "real backend must emit the identical summary"
        );
        image_wall.push((p, out.wall_us));
    }

    // --- Top-k / percentile aggregator. -----------------------------------
    let stream = TopKStream::new(192, 256, 32, 128, 3.0);
    let (digest_ref, _) = run_sequential(&stream);
    let run_at = |p: usize| {
        let s = stream.clone();
        run_spmd(p, model, move |ctx| {
            run_pipeline(&s, ctx, PipelineConfig::default())
        })
    };
    let k1 = run_at(1);
    let k8 = run_at(8);
    assert_eq!(
        k8.results[0].0, digest_ref,
        "digest must be process-count invariant"
    );
    let topk_speedup = k1.elapsed_virtual / k8.elapsed_virtual;
    let p50 = k8.results[0].0.percentile(0.5);
    let p99 = k8.results[0].0.percentile(0.99);

    let fmt_times = |v: &[(usize, f64)]| {
        v.iter()
            .map(|(p, t)| format!("\"{p}\": {:.2}", t * 1e3))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let fmt_counts = |v: &[(usize, u64)]| {
        v.iter()
            .map(|(p, n)| format!("\"{p}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ")
    };

    let json = format!(
        r#"{{
  "bench": "pipeline_scaling",
  "model": "{}",
  "image_chain": {{
    "config": "256x192, 32px tiles, 24 blur passes, blur->gradient->quantize",
    "virtual_ms_by_ranks": {{ {} }},
    "wall_us_by_ranks": {{ {} }},
    "transform_ranks_by_ranks": {{ {} }},
    "speedup_8_ranks_vs_1": {speedup_8:.2},
    "speedup_16_ranks_vs_1": {speedup_16:.2}
  }},
  "topk_aggregator": {{
    "config": "192 chunks x 256 samples, top-32, 128 buckets, trim 3.0",
    "virtual_ms_1_rank": {:.2},
    "virtual_ms_8_ranks": {:.2},
    "speedup_8_ranks_vs_1": {topk_speedup:.2},
    "p50_estimate": {p50:.3},
    "p99_estimate": {p99:.3}
  }}
}}
"#,
        model.name,
        fmt_times(&image_times),
        fmt_counts(&image_wall),
        fmt_counts(&image_replicas),
        k1.elapsed_virtual * 1e3,
        k8.elapsed_virtual * 1e3,
    );

    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json");
    std::fs::write(&path, &json).expect("write BENCH_pipeline.json");
    print!("{json}");
    println!("wrote {}", path.display());

    // Virtual-time speedups are deterministic, so this bar is fatal
    // everywhere — the CI scaling gate.
    assert!(
        speedup_8 >= 3.0,
        "8-rank image chain must be >= 3x the 1-rank baseline (got {speedup_8:.2}x)"
    );
}
