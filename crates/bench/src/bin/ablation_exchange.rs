//! Ablation: ghost-boundary exchange (paper Figure 7) vs the naive
//! alternative of re-replicating the whole grid with an all-gather every
//! step. Quantifies what the archetype's boundary-exchange communication
//! pattern buys for stencil codes.

use archetype_bench::{print_figure, write_figure_csv, Curve, SpeedupPoint};
use archetype_mesh::grid2::DistGrid2;
use archetype_mp::{run_spmd, MachineModel, ProcessGrid2};

const N: usize = 256;
const STEPS: usize = 20;

fn time_ghost_exchange(p: usize, model: MachineModel) -> f64 {
    let pg = ProcessGrid2::near_square(p);
    run_spmd(p, model, move |ctx| {
        let mut g = DistGrid2::from_global(ctx.rank(), pg, N, N, 1, 0.0, |i, j| (i + j) as f64);
        for _ in 0..STEPS {
            g.exchange_ghosts(ctx);
            ctx.charge_items(g.nx() * g.ny(), 6.0); // the stencil sweep
        }
    })
    .elapsed_virtual
}

fn time_full_broadcast(p: usize, model: MachineModel) -> f64 {
    let pg = ProcessGrid2::near_square(p);
    run_spmd(p, model, move |ctx| {
        let g = DistGrid2::from_global(ctx.rank(), pg, N, N, 1, 0.0, |i, j| (i + j) as f64);
        for _ in 0..STEPS {
            // Naive: everyone gets everyone's interior every step.
            let _all: Vec<Vec<f64>> = ctx.all_gather(g.block.interior());
            ctx.charge_items(g.nx() * g.ny(), 6.0);
        }
    })
    .elapsed_virtual
}

fn main() {
    let model = MachineModel::ibm_sp();
    let ps = [2usize, 4, 9, 16, 25, 36];
    let mut ghost = Vec::new();
    let mut bcast = Vec::new();
    for &p in &ps {
        let t_g = time_ghost_exchange(p, model);
        let t_b = time_full_broadcast(p, model);
        ghost.push(SpeedupPoint::new(p, t_b, t_g));
        bcast.push(SpeedupPoint::new(p, t_b, t_b));
    }
    let curves = vec![
        Curve {
            label: "ghost exchange (rel.)".into(),
            points: ghost,
        },
        Curve {
            label: "full all-gather (baseline)".into(),
            points: bcast,
        },
    ];
    print_figure(
        &format!(
            "Ablation: boundary refresh strategy, {N}x{N} grid, {STEPS} steps, {}",
            model.name
        ),
        &curves,
    );
    write_figure_csv("ablation_exchange", &curves);
}
