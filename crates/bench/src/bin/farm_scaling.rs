//! Task-farm scaling snapshot: runs the Mandelbrot tile farm, the
//! adaptive parameter sweep, and the farm-ported knapsack search across
//! process counts under the virtual-time model and writes
//! `BENCH_farm.json` at the workspace root.
//!
//! The headline numbers are *virtual-time* measurements — deterministic
//! by construction, so this snapshot is stable across hosts and runs and
//! a regression in it means the archetype's schedule changed, not that
//! the machine was busy. The Mandelbrot farm is additionally re-run on
//! the real shared-memory backend to record measured `wall_us` columns
//! next to the modeled `virtual_ms` ones; those are host-dependent, so
//! the ≥2× 8-rank wall-speedup floor is a warning by default and only
//! fatal under `REAL_SPEEDUP_STRICT` (the CI job that runs on a
//! multi-core runner sets it, mirroring `SUBSTRATE_BENCH_STRICT`).
//!
//! Run with `cargo run --release -p archetype-bench --bin farm_scaling`.

use archetype_bnb::{knapsack_dp, solve_farm, Knapsack};
use archetype_farm::apps::{MandelbrotFarm, SweepFarm};
use archetype_farm::{run_farm, FarmConfig};
use archetype_mp::{run_spmd, run_spmd_real, MachineModel};

fn main() {
    let model = MachineModel::ibm_sp();

    // --- Mandelbrot tile farm: 1..16 ranks. ------------------------------
    let mandel = MandelbrotFarm::seahorse(512, 384, 32, 3000);
    let mut mandel_times = Vec::new();
    let mut mandel_stolen = Vec::new();
    let mut checksum = 0u64;
    for p in [1usize, 2, 4, 8, 16] {
        let f = mandel.clone();
        let out = run_spmd(p, model, move |ctx| {
            run_farm(&f, ctx, FarmConfig::default())
        });
        let (render, stats) = &out.results[0];
        if p == 1 {
            checksum = render.checksum;
        }
        assert_eq!(
            render.checksum, checksum,
            "farm must render the identical image at every process count"
        );
        mandel_times.push((p, out.elapsed_virtual));
        mandel_stolen.push((p, stats.stolen));
    }
    let t1 = mandel_times[0].1;
    let speedup_8 = t1 / mandel_times.iter().find(|(p, _)| *p == 8).unwrap().1;
    let speedup_16 = t1 / mandel_times.iter().find(|(p, _)| *p == 16).unwrap().1;

    // Same farm on the real shared-memory backend: measured wall time
    // instead of the modeled clock. The render must stay bit-identical
    // to the virtual-backend one at every rank count.
    let mut mandel_wall = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let f = mandel.clone();
        let out = run_spmd_real(p, model, move |ctx| {
            run_farm(&f, ctx, FarmConfig::default())
        });
        assert_eq!(
            out.results[0].0.checksum, checksum,
            "real backend must render the identical image"
        );
        mandel_wall.push((p, out.wall_us));
    }
    let wall_1 = mandel_wall[0].1 as f64;
    let wall_8 = mandel_wall.iter().find(|(p, _)| *p == 8).unwrap().1 as f64;
    let real_wall_speedup_8 = wall_1 / wall_8;

    // --- Parameter sweep: hint-directed pruning. --------------------------
    let sweep = SweepFarm {
        lo: 0.0,
        hi: 3.0,
        seeds: 48,
        max_depth: 10,
    };
    let s1 = {
        let s = sweep.clone();
        run_spmd(1, model, move |ctx| {
            run_farm(&s, ctx, FarmConfig::default())
        })
    };
    let s8 = {
        let s = sweep.clone();
        run_spmd(8, model, move |ctx| {
            run_farm(&s, ctx, FarmConfig::default())
        })
    };
    assert_eq!(
        s1.results[0].0.best_score, s8.results[0].0.best_score,
        "admissible pruning: best score is process-count-invariant"
    );
    let sweep_speedup = s1.elapsed_virtual / s8.elapsed_virtual;
    let sweep_evals_8 = s8.results[0].0.evals;

    // --- Knapsack on the farm skeleton. -----------------------------------
    // A hard (subset-sum-style) instance: value = weight with all
    // weights even and an odd capacity, so no exact fill exists and the
    // fractional bound equals the capacity at every node — pruning never
    // fires and the search tree is genuinely large. (Random-density
    // instances prune to a few dozen nodes and would only measure
    // protocol overhead.)
    let mut s = 0xfeedu64;
    let items: Vec<(u64, u64)> = (0..20)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = ((s >> 33) % 30 + 1) * 2;
            (w, w)
        })
        .collect();
    let capacity = (items.iter().map(|(w, _)| w).sum::<u64>() / 2) | 1;
    let oracle = knapsack_dp(&items, capacity) as f64;
    let k1 = {
        let items = items.clone();
        run_spmd(1, model, move |ctx| {
            solve_farm(&Knapsack::new(&items, capacity), ctx, FarmConfig::default())
        })
    };
    let k8 = {
        let items = items.clone();
        run_spmd(8, model, move |ctx| {
            solve_farm(&Knapsack::new(&items, capacity), ctx, FarmConfig::default())
        })
    };
    assert_eq!(k1.results[0].0, oracle, "1-rank farm must find the optimum");
    assert_eq!(k8.results[0].0, oracle, "8-rank farm must find the optimum");
    let knap_speedup = k1.elapsed_virtual / k8.elapsed_virtual;
    let knap_expanded_8 = k8.results[0].1.expanded;

    let fmt_times = |v: &[(usize, f64)]| {
        v.iter()
            .map(|(p, t)| format!("\"{p}\": {:.2}", t * 1e3))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let fmt_counts = |v: &[(usize, u64)]| {
        v.iter()
            .map(|(p, n)| format!("\"{p}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ")
    };

    let json = format!(
        r#"{{
  "bench": "farm_scaling",
  "model": "{}",
  "mandelbrot": {{
    "config": "seahorse 512x384, 32px tiles, max_iter 3000",
    "virtual_ms_by_ranks": {{ {} }},
    "wall_us_by_ranks": {{ {} }},
    "tiles_stolen_by_ranks": {{ {} }},
    "speedup_8_ranks_vs_1": {speedup_8:.2},
    "speedup_16_ranks_vs_1": {speedup_16:.2},
    "real_wall_speedup_8_ranks_vs_1": {real_wall_speedup_8:.2}
  }},
  "param_sweep": {{
    "config": "48 seeds, depth 10, hint-pruned",
    "virtual_ms_1_rank": {:.2},
    "virtual_ms_8_ranks": {:.2},
    "speedup_8_ranks_vs_1": {sweep_speedup:.2},
    "evals_8_ranks": {sweep_evals_8}
  }},
  "knapsack_farm": {{
    "config": "subset-sum-hard, 20 items",
    "virtual_ms_1_rank": {:.2},
    "virtual_ms_8_ranks": {:.2},
    "speedup_8_ranks_vs_1": {knap_speedup:.2},
    "nodes_expanded_8_ranks": {knap_expanded_8}
  }}
}}
"#,
        model.name,
        fmt_times(&mandel_times),
        fmt_counts(&mandel_wall),
        fmt_counts(&mandel_stolen),
        s1.elapsed_virtual * 1e3,
        s8.elapsed_virtual * 1e3,
        k1.elapsed_virtual * 1e3,
        k8.elapsed_virtual * 1e3,
    );

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_farm.json");
    std::fs::write(&path, &json).expect("write BENCH_farm.json");
    print!("{json}");
    println!("wrote {}", path.display());

    // Virtual-time speedups are deterministic, so this bar is fatal
    // everywhere (unlike the wall-clock bars in substrate_overhead).
    assert!(
        speedup_8 >= 4.0,
        "8-rank Mandelbrot farm must be >= 4x the 1-rank baseline (got {speedup_8:.2}x)"
    );

    // Real wall-clock speedup depends on how many cores the host actually
    // has (a 1-core box *cannot* speed up), so the ≥2× floor is only
    // fatal when explicitly requested — the CI real-backend job sets
    // REAL_SPEEDUP_STRICT on a multi-core runner.
    let strict = std::env::var_os("REAL_SPEEDUP_STRICT").is_some();
    if real_wall_speedup_8 < 2.0 {
        let msg = format!(
            "8-rank Mandelbrot farm on the real backend should be >= 2x \
             the 1-rank wall time (got {real_wall_speedup_8:.2}x)"
        );
        assert!(!strict, "{msg}");
        eprintln!("WARNING: {msg}");
    }
}
