//! Substrate-overhead snapshot: measures the executor, latency, and
//! fan-out costs of the message-passing substrate and writes
//! `BENCH_substrate.json` at the workspace root, so the perf trajectory
//! of the communication hot path is tracked in-repo. The same dispatch,
//! ping-pong, and broadcast shapes are re-measured on the real
//! shared-memory backend and emitted as `wall_us` columns in a
//! `real_backend` section.
//!
//! Run with `cargo run --release -p archetype-bench --bin substrate_overhead`.

use std::time::Instant;

use archetype_mp::transport::{real_channel, spsc_channel};
use archetype_mp::{
    run_spmd, run_spmd_ft, run_spmd_real, run_spmd_unpooled, run_spmd_with, Ctx, FaultPlan,
    MachineModel, RunConfig,
};

/// Median-of-`reps` wall time of one `f()` call, in microseconds.
fn time_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One timed call, in microseconds.
fn time_once<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e6
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One round of paired-interleaved sampling: shared warmup over both
/// variants, then `pairs` back-to-back samples with the order flipped
/// every pair. Pushes the per-pair overhead ratios (in %) into
/// `ratios` and returns `(median base µs, median variant µs)`.
fn paired_samples(
    pairs: usize,
    mut base: impl FnMut(),
    mut variant: impl FnMut(),
    ratios: &mut Vec<f64>,
) -> (f64, f64) {
    for _ in 0..3 {
        base();
        variant();
    }
    let mut base_samples = Vec::with_capacity(pairs);
    let mut var_samples = Vec::with_capacity(pairs);
    for pair in 0..pairs {
        let (b, v) = if pair % 2 == 0 {
            let b = time_once(&mut base);
            let v = time_once(&mut variant);
            (b, v)
        } else {
            let v = time_once(&mut variant);
            let b = time_once(&mut base);
            (b, v)
        };
        base_samples.push(b);
        var_samples.push(v);
    }
    ratios.extend(
        base_samples
            .iter()
            .zip(&var_samples)
            .map(|(b, v)| (v / b - 1.0) * 100.0),
    );
    (median(&mut base_samples), median(&mut var_samples))
}

/// Paired-interleaved overhead measurement (the same discipline as the
/// fault-hook column below): the overhead is the median of per-pair
/// ratios, floored at 0 since the variant does at least as much work.
/// Returns `(median base µs, median variant µs, overhead %)`.
fn paired_overhead(
    pairs: usize,
    base: impl FnMut(),
    variant: impl FnMut(),
) -> (f64, f64, f64) {
    let mut ratios = Vec::with_capacity(pairs);
    let (b, v) = paired_samples(pairs, base, variant, &mut ratios);
    (b, v, median(&mut ratios).max(0.0))
}

/// The shared ping-pong body both latency variants run: `rounds`
/// round trips of a `bytes`-byte payload between two ranks.
fn ping_pong_body(ctx: &mut Ctx, bytes: usize, rounds: u64) {
    let partner = 1 - ctx.rank();
    for round in 0..rounds {
        if ctx.rank() == 0 {
            ctx.send(partner, round, vec![0u8; bytes]);
            let _: Vec<u8> = ctx.recv(partner, round);
        } else {
            let v: Vec<u8> = ctx.recv(partner, round);
            ctx.send(partner, round, v);
        }
    }
}

fn main() {
    let model = MachineModel::zero_comm();
    const NPROCS: usize = 16;

    // Executor dispatch: repeated trivial 16-rank invocations. The calls
    // are batched so per-call cost is measured above timer granularity.
    const CALLS: usize = 20;
    // Warm the worker pool and the network cache.
    for _ in 0..5 {
        run_spmd(NPROCS, model, |ctx| ctx.rank());
    }
    let pooled_us = time_us(9, || {
        for _ in 0..CALLS {
            run_spmd(NPROCS, model, |ctx| ctx.rank());
        }
    }) / CALLS as f64;
    let spawned_us = time_us(9, || {
        for _ in 0..CALLS {
            run_spmd_unpooled(NPROCS, model, |ctx| ctx.rank());
        }
    }) / CALLS as f64;
    let executor_speedup = spawned_us / pooled_us;

    // Point-to-point round-trip latency (100 round trips per run).
    let ping_pong_us = |bytes: usize| {
        time_us(9, || {
            run_spmd(2, model, move |ctx| ping_pong_body(ctx, bytes, 100));
        }) / 100.0
    };
    let pp4k = ping_pong_us(4096);

    // 8-byte ping-pong, plain vs with an inert fault plan installed: the
    // per-operation fault hooks (op counters, crash-site check, delay
    // early-out) on a plan that schedules nothing. This is the price
    // every fault-aware run pays even when chaos is disabled.
    //
    // Sampling the two variants in separate median blocks lets warmup
    // drift (pool/cache/allocator state migrating between blocks) bias
    // the ratio — that is exactly the bug that once produced a negative
    // "overhead" column. Instead: one shared warmup covering *both*
    // variants, then alternating paired samples with the order flipped
    // every pair, and the overhead reported as the median of per-pair
    // ratios so any residual drift hits both columns of a pair equally.
    const ROUNDS: u64 = 600;
    let run_plain = || {
        run_spmd(2, model, |ctx| ping_pong_body(ctx, 8, ROUNDS));
    };
    let run_ft = || {
        run_spmd_ft(2, model, FaultPlan::new(0), |ctx| {
            ping_pong_body(ctx, 8, ROUNDS)
        });
    };
    for _ in 0..3 {
        run_plain();
        run_ft();
    }
    const PAIRS: usize = 25;
    let mut plain_samples = Vec::with_capacity(PAIRS);
    let mut ft_samples = Vec::with_capacity(PAIRS);
    for pair in 0..PAIRS {
        let (plain, ft) = if pair % 2 == 0 {
            let p = time_once(run_plain);
            let f = time_once(run_ft);
            (p, f)
        } else {
            let f = time_once(run_ft);
            let p = time_once(run_plain);
            (p, f)
        };
        plain_samples.push(plain);
        ft_samples.push(ft);
    }
    let mut pair_overheads: Vec<f64> = plain_samples
        .iter()
        .zip(&ft_samples)
        .map(|(p, f)| (f / p - 1.0) * 100.0)
        .collect();
    // Idle-hook overhead is nonnegative by construction (the ft variant
    // does strictly more work), so a negative median is measurement
    // noise around a true cost below the timer's resolution — report
    // the floor rather than the noise sign.
    let ft_overhead_pct = median(&mut pair_overheads).max(0.0);
    let pp8 = median(&mut plain_samples) / ROUNDS as f64;
    let pp8_ft = median(&mut ft_samples) / ROUNDS as f64;

    // Tracing overhead, both switch positions, on the two hot shapes
    // (8-byte ping-pong and pooled trivial dispatch):
    //
    // * `trace_off`: the dormant per-operation `trace_hot` branch cannot
    //   be isolated in-binary (there is no hook-free build), so this
    //   column is an **A/A null pair** — `run_spmd` vs
    //   `run_spmd_with(RunConfig::virtual_time())`, two entry points
    //   that execute the identical untraced path. It bounds measurement
    //   noise plus any cost the tracing plumbing added to the default
    //   configuration; a real off-path regression additionally shows in
    //   the absolute `latency` / `executor` columns tracked in-repo.
    // * `trace_on`: the real price of recording — ring-buffer slot
    //   writes plus one wall-clock read per event — for runs that opt
    //   into `RunConfig::traced()`. Informational, not gated.
    // The null pair needs a tighter estimate than the real comparisons:
    // its true value is ~0, so the gate margin is pure noise floor.
    // Both shapes test the same hypothesis (config plumbing is free),
    // so their per-pair ratios are pooled into one median — taking the
    // max of two per-shape medians would double the false-positive rate
    // of the gate on a jittery container — and the sweep is repeated in
    // interleaved epochs so a transient load spike cannot dominate.
    const NULL_PAIRS: usize = 2 * PAIRS + 1;
    const NULL_EPOCHS: usize = 3;
    let off_config = RunConfig::virtual_time();
    let mut null_ratios = Vec::with_capacity(2 * NULL_EPOCHS * NULL_PAIRS);
    for _ in 0..NULL_EPOCHS {
        paired_samples(
            NULL_PAIRS,
            || {
                run_spmd(2, model, |ctx| ping_pong_body(ctx, 8, ROUNDS));
            },
            || {
                run_spmd_with(2, model, off_config, |ctx| ping_pong_body(ctx, 8, ROUNDS));
            },
            &mut null_ratios,
        );
        paired_samples(
            NULL_PAIRS,
            || {
                for _ in 0..CALLS {
                    run_spmd(NPROCS, model, |ctx| ctx.rank());
                }
            },
            || {
                for _ in 0..CALLS {
                    run_spmd_with(NPROCS, model, off_config, |ctx| ctx.rank());
                }
            },
            &mut null_ratios,
        );
    }
    let trace_off_overhead_pct = median(&mut null_ratios).max(0.0);

    // Traced dispatch uses a small ring so the column reflects recording
    // cost, not a 16-rank × default-capacity buffer allocation per
    // trivial call.
    let traced_pp = RunConfig::traced();
    let traced_disp = RunConfig::traced().with_trace_capacity(256);
    let (pp8_base, pp8_traced, trace_on_pp_pct) = paired_overhead(
        PAIRS,
        || {
            run_spmd(2, model, |ctx| ping_pong_body(ctx, 8, ROUNDS));
        },
        || {
            run_spmd_with(2, model, traced_pp, |ctx| ping_pong_body(ctx, 8, ROUNDS));
        },
    );
    let (_, _, trace_on_disp_pct) = paired_overhead(
        PAIRS,
        || {
            for _ in 0..CALLS {
                run_spmd(NPROCS, model, |ctx| ctx.rank());
            }
        },
        || {
            for _ in 0..CALLS {
                run_spmd_with(NPROCS, model, traced_disp, |ctx| ctx.rank());
            }
        },
    );
    let trace_on_overhead_pct = trace_on_pp_pct.max(trace_on_disp_pct);
    let pp8_traced_us = pp8_traced / ROUNDS as f64;
    let _ = pp8_base;

    // Fan-out: 1 MB broadcast across 16 ranks (shared payload path).
    let bcast_us = time_us(9, || {
        run_spmd(NPROCS, model, |ctx| {
            let v = (ctx.rank() == 0).then(|| vec![0u8; 1 << 20]);
            ctx.broadcast(0, v).len()
        });
    });
    let gather_us = time_us(9, || {
        run_spmd(NPROCS, model, |ctx| {
            let mine = vec![ctx.rank() as u8; 1 << 16];
            ctx.all_gather(mine).len()
        });
    });

    // The same three shapes on the real shared-memory backend (lock-free
    // MPSC channels instead of the mutex-based virtual-backend queues),
    // reported as measured wall_us columns next to the modeled ones.
    for _ in 0..5 {
        run_spmd_real(NPROCS, model, |ctx| ctx.rank());
    }
    let real_dispatch_us = time_us(9, || {
        for _ in 0..CALLS {
            run_spmd_real(NPROCS, model, |ctx| ctx.rank());
        }
    }) / CALLS as f64;
    let real_pp8 = time_us(9, || {
        run_spmd_real(2, model, |ctx| ping_pong_body(ctx, 8, 100));
    }) / 100.0;
    let real_bcast_us = time_us(9, || {
        run_spmd_real(NPROCS, model, |ctx| {
            let v = (ctx.rank() == 0).then(|| vec![0u8; 1 << 20]);
            ctx.broadcast(0, v).len()
        });
    });

    // Raw channel throughput at one-million-message volume, for both
    // queue flavors the real backend uses: the MPSC queue (many
    // producers racing the Vyukov publish protocol) and the SPSC fast
    // path that mesh links and pool worker channels ride (single
    // producer, node freelist in steady state). msgs/sec, median of 3.
    const TOTAL_MSGS: usize = 1_000_000;
    const PRODUCERS: usize = 4;
    let mpsc_msgs_per_sec = {
        let mut samples: Vec<f64> = (0..3)
            .map(|_| {
                let (tx, rx) = real_channel::<u64>();
                let t0 = Instant::now();
                let handles: Vec<_> = (0..PRODUCERS)
                    .map(|p| {
                        let tx = tx.clone();
                        std::thread::spawn(move || {
                            for i in 0..TOTAL_MSGS / PRODUCERS {
                                tx.send((p * TOTAL_MSGS + i) as u64).unwrap();
                            }
                        })
                    })
                    .collect();
                drop(tx);
                let mut received = 0usize;
                while rx.recv().is_ok() {
                    received += 1;
                }
                let elapsed = t0.elapsed().as_secs_f64();
                assert_eq!(received, TOTAL_MSGS);
                for h in handles {
                    h.join().unwrap();
                }
                TOTAL_MSGS as f64 / elapsed
            })
            .collect();
        median(&mut samples)
    };
    let spsc_msgs_per_sec = {
        let mut samples: Vec<f64> = (0..3)
            .map(|_| {
                let (tx, rx) = spsc_channel::<u64>();
                let t0 = Instant::now();
                let producer = std::thread::spawn(move || {
                    for i in 0..TOTAL_MSGS {
                        // SAFETY: this thread is the only pusher.
                        unsafe { tx.send(i as u64).unwrap() };
                    }
                });
                let mut received = 0usize;
                while rx.recv().is_ok() {
                    received += 1;
                }
                let elapsed = t0.elapsed().as_secs_f64();
                assert_eq!(received, TOTAL_MSGS);
                producer.join().unwrap();
                TOTAL_MSGS as f64 / elapsed
            })
            .collect();
        median(&mut samples)
    };

    let json = format!(
        r#"{{
  "bench": "substrate_overhead",
  "nprocs": {NPROCS},
  "executor": {{
    "repeated_run_spmd_pooled_us_per_call": {pooled_us:.2},
    "repeated_run_spmd_spawned_us_per_call": {spawned_us:.2},
    "pooled_speedup_vs_spawned": {executor_speedup:.2}
  }},
  "latency": {{
    "ping_pong_8b_us_per_roundtrip": {pp8:.3},
    "ping_pong_4kb_us_per_roundtrip": {pp4k:.3},
    "ping_pong_8b_fault_hooks_idle_us_per_roundtrip": {pp8_ft:.3},
    "fault_hooks_idle_overhead_pct": {ft_overhead_pct:.1}
  }},
  "tracing": {{
    "ping_pong_8b_traced_us_per_roundtrip": {pp8_traced_us:.3},
    "trace_off_overhead_pct": {trace_off_overhead_pct:.1},
    "trace_on_overhead_pct": {trace_on_overhead_pct:.1}
  }},
  "fanout": {{
    "broadcast_1mb_16_us_per_call": {bcast_us:.1},
    "all_gather_64kb_16_us_per_call": {gather_us:.1}
  }},
  "real_backend": {{
    "repeated_run_spmd_real_wall_us_per_call": {real_dispatch_us:.2},
    "ping_pong_8b_wall_us_per_roundtrip": {real_pp8:.3},
    "broadcast_1mb_16_wall_us_per_call": {real_bcast_us:.1}
  }},
  "throughput": {{
    "volume_msgs": {TOTAL_MSGS},
    "mpsc_4_producer_msgs_per_sec": {mpsc_msgs_per_sec:.0},
    "spsc_msgs_per_sec": {spsc_msgs_per_sec:.0}
  }}
}}
"#
    );

    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_substrate.json");
    std::fs::write(&path, &json).expect("write BENCH_substrate.json");
    print!("{json}");
    println!("wrote {}", path.display());

    // Wall-clock ratios are noisy on shared/oversubscribed runners, so
    // the >= 3x bar is only fatal when explicitly requested (local perf
    // validation); elsewhere — e.g. the CI smoke step — a miss is a
    // loud warning, not a red build.
    let strict = std::env::var_os("SUBSTRATE_BENCH_STRICT").is_some();
    if executor_speedup < 3.0 {
        let msg = format!(
            "pooled executor should be >= 3x faster than spawn-per-call \
             on repeated 16-rank invocations (got {executor_speedup:.2}x)"
        );
        assert!(!strict, "{msg}");
        eprintln!("WARNING: {msg}");
    }
    if ft_overhead_pct >= 2.0 {
        let msg = format!(
            "idle fault hooks should cost < 2% on the 8-byte ping-pong \
             (got {ft_overhead_pct:.1}%)"
        );
        assert!(!strict, "{msg}");
        eprintln!("WARNING: {msg}");
    }
    if trace_off_overhead_pct >= 2.0 {
        let msg = format!(
            "tracing-off must cost < 2% on the ping-pong / pooled-dispatch \
             null pair (got {trace_off_overhead_pct:.1}%)"
        );
        assert!(!strict, "{msg}");
        eprintln!("WARNING: {msg}");
    }
    // Throughput floors: set well below healthy numbers (observed
    // ~12M/s MPSC and ~2.5M/s SPSC even on a single-core runner, where
    // every queue handoff pays a context switch) so they only trip on a
    // real regression — e.g. the SPSC fast path silently falling back
    // to a lock on every send — not on runner jitter.
    const MPSC_FLOOR: f64 = 2.0e6;
    const SPSC_FLOOR: f64 = 0.5e6;
    if mpsc_msgs_per_sec < MPSC_FLOOR {
        let msg = format!(
            "MPSC throughput fell below {MPSC_FLOOR:.0} msgs/sec \
             (got {mpsc_msgs_per_sec:.0})"
        );
        assert!(!strict, "{msg}");
        eprintln!("WARNING: {msg}");
    }
    if spsc_msgs_per_sec < SPSC_FLOOR {
        let msg = format!(
            "SPSC throughput fell below {SPSC_FLOOR:.0} msgs/sec \
             (got {spsc_msgs_per_sec:.0})"
        );
        assert!(!strict, "{msg}");
        eprintln!("WARNING: {msg}");
    }
}
