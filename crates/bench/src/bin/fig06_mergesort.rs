//! Figure 6: "Speedups of traditional and one-deep mergesort compared to
//! sequential mergesort for 10,000,000 integers on the Intel Delta."
//!
//! Default runs 1,000,000 integers (pass `--full` for the paper's 10M);
//! processor counts 1..64 on the Intel-Delta machine model. The expected
//! shape: one-deep tracks perfect speedup at a substantial fraction;
//! traditional saturates early because the split inspects all input at the
//! root and the merge tree's final levels are sequential.

use archetype_bench::{
    print_figure, random_i64s, split_blocks, write_figure_csv, Curve, SpeedupPoint,
};
use archetype_dc::mergesort::OneDeepMergesort;
use archetype_dc::skeleton::run_spmd as dc_spmd;
use archetype_dc::traditional::{sort_flops, tree_mergesort_distributed_spmd};
use archetype_mp::{run_spmd, CostMeter, MachineModel};

fn main() {
    let n: usize = if archetype_bench::full_scale() {
        10_000_000
    } else {
        1_000_000
    };
    let model = MachineModel::intel_delta();
    let ps = [1usize, 2, 4, 8, 16, 32, 64];

    // Modeled sequential mergesort time on one Delta node.
    let mut seq = CostMeter::new(model);
    seq.charge_flops(sort_flops(n));
    let t_seq = seq.elapsed();

    let data = random_i64s(n, 0x5eed);

    let mut one_deep = Vec::new();
    let mut traditional = Vec::new();
    for &p in &ps {
        // One-deep: data pre-distributed in blocks (degenerate split).
        let blocks = split_blocks(&data, p);
        let t_od = run_spmd(p, model, |ctx| {
            let alg = OneDeepMergesort::<i64>::with_oversample(32);
            dc_spmd(&alg, ctx, blocks[ctx.rank()].clone());
        })
        .elapsed_virtual;
        one_deep.push(SpeedupPoint::new(p, t_seq, t_od));

        // Traditional: distributed input, local sorts, pairwise tree merge
        // (concurrency decays toward the root).
        let t_tr = run_spmd(p, model, |ctx| {
            tree_mergesort_distributed_spmd(ctx, blocks[ctx.rank()].clone());
        })
        .elapsed_virtual;
        traditional.push(SpeedupPoint::new(p, t_seq, t_tr));
        eprintln!("P={p:>3} done");
    }

    let curves = vec![
        Curve {
            label: "one-deep mergesort".into(),
            points: one_deep,
        },
        Curve {
            label: "traditional mergesort".into(),
            points: traditional,
        },
    ];
    print_figure(
        &format!("Figure 6: mergesort speedups, {n} integers, {}", model.name),
        &curves,
    );
    write_figure_csv("fig06_mergesort", &curves);
}
