//! Ablation: recursive-doubling all-reduce (paper Figure 8) vs the naive
//! gather-to-root + broadcast implementation, across process counts and
//! machine models. Shows why the archetype library defaults to recursive
//! doubling: O(log P) vs O(P) critical path.

use archetype_bench::{print_figure, write_figure_csv, Curve, SpeedupPoint};
use archetype_mp::{run_spmd, MachineModel};

fn time_reduce(p: usize, model: MachineModel, recursive_doubling: bool) -> f64 {
    // 100 back-to-back reductions of one f64, as in an iterative solver.
    run_spmd(p, model, move |ctx| {
        for i in 0..100 {
            let x = (ctx.rank() + i) as f64;
            if recursive_doubling {
                ctx.all_reduce(x, f64::max);
            } else {
                ctx.all_reduce_via_gather(x, f64::max);
            }
        }
    })
    .elapsed_virtual
}

fn main() {
    let ps = [2usize, 4, 8, 16, 32, 64];
    for model in [MachineModel::ibm_sp(), MachineModel::workstation_network()] {
        let mut rd = Vec::new();
        let mut gb = Vec::new();
        for &p in &ps {
            let t_rd = time_reduce(p, model, true);
            let t_gb = time_reduce(p, model, false);
            // Report as "speedup of recursive doubling over gather+bcast".
            rd.push(SpeedupPoint::new(p, t_gb, t_rd));
            gb.push(SpeedupPoint::new(p, t_gb, t_gb));
        }
        let curves = vec![
            Curve {
                label: "recursive doubling (rel.)".into(),
                points: rd,
            },
            Curve {
                label: "gather+broadcast (baseline)".into(),
                points: gb,
            },
        ];
        print_figure(
            &format!(
                "Ablation: all-reduce algorithm, 100 reductions, {}",
                model.name
            ),
            &curves,
        );
        write_figure_csv(
            &format!(
                "ablation_reduction_{}",
                model
                    .name
                    .split_whitespace()
                    .next()
                    .unwrap_or("m")
                    .to_lowercase()
            ),
            &curves,
        );
    }
}
