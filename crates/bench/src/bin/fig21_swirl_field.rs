//! Figure 21: sample output of the spectral code — "azimuthal velocity in
//! a swirling flow."
//!
//! Runs the axisymmetric swirl kernel on the SPMD solver and writes the
//! azimuthal-velocity field `u_θ(r, θ)` as a PGM image (r radial axis,
//! θ azimuthal axis) into `target/figures/`.

use archetype_bench::figures_dir;
use archetype_mesh::apps::spectral_flow::{azimuthal_velocity, swirl_spmd, SwirlSpec};
use archetype_mesh::io::write_pgm;
use archetype_mp::{run_spmd, MachineModel};

fn main() {
    let (nr, ntheta) = if archetype_bench::full_scale() {
        (256usize, 512usize)
    } else {
        (128, 256)
    };
    let spec = SwirlSpec {
        nr,
        ntheta,
        rmax: 1.0,
        nu: 5e-4,
        dt: 2e-4,
        steps: 400,
    };
    let out = run_spmd(4, MachineModel::ibm_sp(), move |ctx| swirl_spmd(ctx, &spec));
    let u = out.results[0].as_ref().expect("root gathers").clone();
    let v = azimuthal_velocity(&spec, &u);

    let dir = figures_dir();
    write_pgm(&dir.join("fig21_azimuthal_velocity.pgm"), &v, nr, ntheta).expect("write PGM");
    println!(
        "azimuthal velocity range [{:.3}, {:.3}]; image written to {}",
        v.iter().copied().fold(f64::INFINITY, f64::min),
        v.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        dir.display()
    );
}
