//! Ablation: block (`NPX × NPY`) vs strip (`1 × P`) data distribution for
//! the Poisson solver. The paper notes that "the choice of data
//! distribution may affect the resulting program's efficiency" while being
//! orthogonal to correctness; this quantifies it — near-square blocks
//! minimize the exchanged perimeter.

use archetype_bench::{print_figure, write_figure_csv, Curve, SpeedupPoint};
use archetype_mesh::apps::poisson::{poisson_spmd, poisson_sweep_flops, sine_problem};
use archetype_mp::{run_spmd, CostMeter, MachineModel, ProcessGrid2};

fn main() {
    let n = 256usize;
    let steps = 50usize;
    let model = MachineModel::ibm_sp();
    let spec = sine_problem(n, 0.0, steps);
    let ps = [4usize, 9, 16, 25, 36];

    let mut seq = CostMeter::new(model);
    seq.charge_flops(steps as f64 * poisson_sweep_flops(n, n));
    let t_seq = seq.elapsed();

    let mut block = Vec::new();
    let mut strip = Vec::new();
    for &p in &ps {
        let square = ProcessGrid2::near_square(p);
        let t_block = run_spmd(p, model, move |ctx| {
            poisson_spmd(ctx, &spec, square);
        })
        .elapsed_virtual;
        let strips = ProcessGrid2::new(1, p);
        let t_strip = run_spmd(p, model, move |ctx| {
            poisson_spmd(ctx, &spec, strips);
        })
        .elapsed_virtual;
        block.push(SpeedupPoint::new(p, t_seq, t_block));
        strip.push(SpeedupPoint::new(p, t_seq, t_strip));
    }
    let curves = vec![
        Curve {
            label: "block (near-square)".into(),
            points: block,
        },
        Curve {
            label: "strip (1 x P)".into(),
            points: strip,
        },
    ];
    print_figure(
        &format!(
            "Ablation: Poisson data distribution, {n}x{n} grid, {steps} steps, {}",
            model.name
        ),
        &curves,
    );
    write_figure_csv("ablation_distribution", &curves);
}
