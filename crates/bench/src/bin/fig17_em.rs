//! Figure 17: "Speedup of parallel electromagnetics code … on the IBM SP.
//! The decrease in performance for more than 16 processors results from
//! the ratio of computation to communication dropping too low for
//! efficiency."
//!
//! Default 32³ grid, 20 steps (pass `--full` for 64³, 100 steps), IBM-SP
//! model, P = 1..18. Expected shape: speedup rises, peaks around the
//! mid-teens, then flattens or declines.

use archetype_bench::{print_figure, write_figure_csv, Curve, SpeedupPoint};
use archetype_mesh::apps::em_fdtd::{em_spmd, em_step_flops, EmSpec};
use archetype_mp::{run_spmd, CostMeter, MachineModel, ProcessGrid3};

fn main() {
    let (n, steps) = if archetype_bench::full_scale() {
        (64usize, 100usize)
    } else {
        (32, 20)
    };
    let model = MachineModel::ibm_sp();
    let ps = [1usize, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 24, 27];

    let spec = EmSpec::new(n, steps);

    let mut seq = CostMeter::new(model);
    seq.charge_flops(steps as f64 * em_step_flops(n, spec.monitor));
    let t_seq = seq.elapsed();

    let mut points = Vec::new();
    for &p in &ps {
        let pg = ProcessGrid3::near_cubic(p);
        let t_par = run_spmd(p, model, move |ctx| {
            em_spmd(ctx, &spec, pg);
        })
        .elapsed_virtual;
        points.push(SpeedupPoint::new(p, t_seq, t_par));
        eprintln!("P={p:>3} ({}x{}x{}) done", pg.px, pg.py, pg.pz);
    }

    let curves = vec![Curve {
        label: "3-D FDTD electromagnetics".into(),
        points,
    }];
    print_figure(
        &format!(
            "Figure 17: EM speedup, {n}^3 grid, {steps} steps, {}",
            model.name
        ),
        &curves,
    );
    write_figure_csv("fig17_em", &curves);
}
