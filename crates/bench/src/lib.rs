//! # archetype-bench — figure-reproduction harness
//!
//! One binary per figure of the paper's evaluation (see DESIGN.md §4 and
//! EXPERIMENTS.md at the workspace root):
//!
//! | Binary | Paper figure |
//! |---|---|
//! | `fig06_mergesort` | Fig. 6 — traditional vs one-deep mergesort speedup |
//! | `fig12_fft2d` | Fig. 12 — parallel 2-D FFT speedup |
//! | `fig15_poisson` | Fig. 15 — parallel Poisson solver speedup |
//! | `fig16_cfd` | Fig. 16 — 2-D CFD code speedup |
//! | `fig17_em` | Fig. 17 — 3-D electromagnetics code speedup |
//! | `fig18_spectral` | Fig. 18 — spectral code speedup (relative to 5 procs) |
//! | `fig19_cfd_fields` | Figs. 19–20 — density/vorticity snapshots |
//! | `fig21_swirl_field` | Fig. 21 — azimuthal velocity snapshot |
//! | `ablation_reduction` | recursive doubling vs gather+broadcast |
//! | `ablation_exchange` | ghost exchange vs full-grid broadcast |
//! | `ablation_distribution` | block vs strip distribution for Poisson |
//!
//! All speedups are measured in **virtual time** on the machine models of
//! `archetype-mp` (Intel-Delta-like, IBM-SP-like), which is what makes
//! sweeps to 100 simulated processors deterministic on a small host; the
//! computations themselves are real (data is genuinely sorted/transformed).
//!
//! This module holds the shared harness: row/table types, console
//! rendering, CSV output under `target/figures/`, and workload generators.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One point of a speedup curve.
#[derive(Clone, Copy, Debug)]
pub struct SpeedupPoint {
    /// Simulated processor count.
    pub p: usize,
    /// Modeled sequential time (seconds, virtual).
    pub t_seq: f64,
    /// Modeled parallel time (seconds, virtual).
    pub t_par: f64,
    /// `t_seq / t_par`.
    pub speedup: f64,
}

impl SpeedupPoint {
    /// Build a point from the two times.
    pub fn new(p: usize, t_seq: f64, t_par: f64) -> Self {
        SpeedupPoint {
            p,
            t_seq,
            t_par,
            speedup: t_seq / t_par,
        }
    }
}

/// A named speedup curve (one line of a figure).
#[derive(Clone, Debug)]
pub struct Curve {
    /// Legend label (e.g. "one-deep mergesort").
    pub label: String,
    /// The points, ordered by processor count.
    pub points: Vec<SpeedupPoint>,
}

/// Render a figure (title + curves) as an aligned console table, with the
/// "perfect speedup" column the paper plots alongside every curve.
pub fn print_figure(title: &str, curves: &[Curve]) {
    println!("\n=== {title} ===");
    print!("{:>6} {:>9}", "P", "perfect");
    for c in curves {
        print!(" {:>24}", c.label);
    }
    println!();
    let nrows = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);
    for r in 0..nrows {
        let p = curves
            .iter()
            .find_map(|c| c.points.get(r).map(|pt| pt.p))
            .unwrap_or(0);
        print!("{p:>6} {p:>9}");
        for c in curves {
            match c.points.get(r) {
                Some(pt) => print!(" {:>24.2}", pt.speedup),
                None => print!(" {:>24}", "-"),
            }
        }
        println!();
    }
}

/// Directory figure CSVs are written to (`target/figures/`).
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Write curves as a CSV (`p,label,t_seq,t_par,speedup` rows).
pub fn write_figure_csv(name: &str, curves: &[Curve]) -> PathBuf {
    use std::io::Write as _;
    let path = figures_dir().join(format!("{name}.csv"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create CSV"));
    writeln!(f, "p,label,t_seq,t_par,speedup").unwrap();
    for c in curves {
        for pt in &c.points {
            writeln!(
                f,
                "{},{},{},{},{}",
                pt.p, c.label, pt.t_seq, pt.t_par, pt.speedup
            )
            .unwrap();
        }
    }
    println!("wrote {}", path.display());
    path
}

/// `true` when `--full` was passed: run at paper-scale sizes (slower).
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Deterministic vector of pseudo-random `i64`s.
pub fn random_i64s(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.gen_range(-1_000_000_000..1_000_000_000))
        .collect()
}

/// Split a vector into `p` near-equal contiguous blocks.
pub fn split_blocks<T: Clone>(data: &[T], p: usize) -> Vec<Vec<T>> {
    (0..p)
        .map(|r| {
            let (start, len) = archetype_mp::topology::block_range(data.len(), p, r);
            data[start..start + len].to_vec()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_point_divides() {
        let pt = SpeedupPoint::new(4, 8.0, 2.0);
        assert_eq!(pt.speedup, 4.0);
    }

    #[test]
    fn random_data_is_deterministic_per_seed() {
        assert_eq!(random_i64s(100, 7), random_i64s(100, 7));
        assert_ne!(random_i64s(100, 7), random_i64s(100, 8));
    }

    #[test]
    fn split_blocks_covers_input() {
        let data: Vec<i64> = (0..103).collect();
        let blocks = split_blocks(&data, 7);
        assert_eq!(blocks.len(), 7);
        let flat: Vec<i64> = blocks.into_iter().flatten().collect();
        assert_eq!(flat, data);
    }

    #[test]
    fn csv_written_to_figures_dir() {
        let curves = vec![Curve {
            label: "test".into(),
            points: vec![SpeedupPoint::new(1, 1.0, 1.0)],
        }];
        let path = write_figure_csv("unit_test_curve", &curves);
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with("p,label,"));
        assert!(text.contains("1,test,"));
    }
}
