//! Wall-clock benches of the pipeline archetype: skeleton overhead on a
//! trivial stream, and the two streaming applications at bench-sized
//! configurations. Virtual-time *scaling* is tracked separately by the
//! `pipeline_scaling` binary (`BENCH_pipeline.json`); these measure the
//! host cost of running the skeleton itself — the credit protocol, the
//! round-robin split/merge, and the in-order fold.

use criterion::{criterion_group, criterion_main, Criterion};

use archetype_mp::{run_spmd, MachineModel};
use archetype_pipeline::apps::{ImageChain, TopKStream};
use archetype_pipeline::{run_pipeline, Pipeline, PipelineConfig, Stage};

/// A stream of trivial items through trivial stages: measures pure
/// protocol overhead (credits, EOS, sequencing) rather than work.
struct Trivial(u64);
struct Inc;
impl Stage<u64> for Inc {
    fn transform(&self, _seq: u64, item: u64) -> u64 {
        item + 1
    }
}
impl Pipeline for Trivial {
    type Item = u64;
    type Out = u64;
    fn ingest(&self, seq: u64) -> Option<u64> {
        (seq < self.0).then_some(seq)
    }
    fn stages(&self) -> Vec<&dyn Stage<u64>> {
        vec![&Inc, &Inc, &Inc]
    }
    fn out_identity(&self) -> u64 {
        0
    }
    fn emit(&self, acc: u64, _seq: u64, item: u64) -> u64 {
        acc + item
    }
}

fn bench_skeleton(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_skeleton");
    g.sample_size(20);
    let model = MachineModel::zero_comm();
    g.bench_function("trivial_1k_items_8_ranks", |b| {
        b.iter(|| {
            run_spmd(8, model, |ctx| {
                run_pipeline(&Trivial(1000), ctx, PipelineConfig::default()).0
            })
        })
    });
    g.finish();
}

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_apps");
    g.sample_size(10);
    let model = MachineModel::ibm_sp();
    g.bench_function("image_chain_96x64_8_ranks", |b| {
        b.iter(|| {
            let chain = ImageChain::new(96, 64, 16, 8);
            run_spmd(8, model, move |ctx| {
                run_pipeline(&chain, ctx, PipelineConfig::default()).0
            })
        })
    });
    g.bench_function("topk_64_chunks_8_ranks", |b| {
        b.iter(|| {
            let stream = TopKStream::new(64, 128, 16, 64, 3.0);
            run_spmd(8, model, move |ctx| {
                run_pipeline(&stream, ctx, PipelineConfig::default()).0
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_skeleton, bench_apps);
criterion_main!(benches);
