//! Criterion wall-clock benches for the message-passing substrate itself:
//! collective operations over real threads (the virtual-time cost is
//! benchmarked separately by `ablation_reduction`).

use criterion::{criterion_group, criterion_main, Criterion};

use archetype_mp::{run_spmd, MachineModel};

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_p8");
    g.sample_size(20);
    let model = MachineModel::zero_comm();

    g.bench_function("barrier_x100", |b| {
        b.iter(|| {
            run_spmd(8, model, |ctx| {
                for _ in 0..100 {
                    ctx.barrier();
                }
            })
        })
    });
    g.bench_function("all_reduce_f64_x100", |b| {
        b.iter(|| {
            run_spmd(8, model, |ctx| {
                for _ in 0..100 {
                    ctx.all_reduce(ctx.rank() as f64, f64::max);
                }
            })
        })
    });
    g.bench_function("all_to_all_1kB_x10", |b| {
        b.iter(|| {
            run_spmd(8, model, |ctx| {
                for _ in 0..10 {
                    let items: Vec<Vec<u8>> = (0..8).map(|_| vec![0u8; 1024]).collect();
                    ctx.all_to_all(items);
                }
            })
        })
    });
    g.bench_function("broadcast_64kB_x10", |b| {
        b.iter(|| {
            run_spmd(8, model, |ctx| {
                for _ in 0..10 {
                    let v = (ctx.rank() == 0).then(|| vec![0u8; 65536]);
                    ctx.broadcast(0, v);
                }
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
