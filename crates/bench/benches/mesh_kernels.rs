//! Criterion wall-clock benches for the mesh-spectral kernels: version-1
//! shared-memory implementations in sequential vs rayon mode, plus the
//! 1-D FFT building block.

use criterion::{criterion_group, criterion_main, Criterion};

use archetype_core::ExecutionMode;
use archetype_mesh::apps::cfd::{cfd_shared, shock_sine_init, CfdSpec};
use archetype_mesh::apps::fft2d::fft2d_shared;
use archetype_mesh::apps::poisson::{poisson_shared, sine_problem};
use archetype_numerics::{fft_in_place, Complex, Direction};

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [1024usize, 4096] {
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.31).sin(), 0.0))
            .collect();
        g.bench_function(format!("fft1d_{n}"), |b| {
            b.iter(|| {
                let mut v = input.clone();
                fft_in_place(&mut v, Direction::Forward);
                v
            })
        });
    }
    let n = 128usize;
    let input: Vec<Complex> = (0..n * n)
        .map(|i| Complex::new((i as f64 * 0.13).cos(), 0.0))
        .collect();
    for mode in ExecutionMode::both() {
        g.bench_function(format!("fft2d_{n}x{n}_{mode}"), |b| {
            b.iter(|| {
                let mut v = input.clone();
                fft2d_shared(mode, &mut v, n, n);
                v
            })
        });
    }
    g.finish();
}

fn bench_poisson(c: &mut Criterion) {
    let mut g = c.benchmark_group("poisson_128_20sweeps");
    g.sample_size(20);
    let spec = sine_problem(128, 0.0, 20);
    for mode in ExecutionMode::both() {
        g.bench_function(format!("{mode}"), |b| {
            b.iter(|| poisson_shared(&spec, mode))
        });
    }
    g.finish();
}

fn bench_cfd(c: &mut Criterion) {
    let mut g = c.benchmark_group("cfd_128x64_10steps");
    g.sample_size(20);
    let spec = CfdSpec {
        nx: 128,
        ny: 64,
        lx: 1.0,
        ly: 0.5,
        cfl: 0.4,
        steps: 10,
    };
    for mode in ExecutionMode::both() {
        g.bench_function(format!("{mode}"), |b| {
            b.iter(|| cfd_shared(&spec, mode, |i, j| shock_sine_init(&spec, i, j)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fft, bench_poisson, bench_cfd);
criterion_main!(benches);
