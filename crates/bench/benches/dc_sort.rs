//! Criterion wall-clock benches for the one-deep divide-and-conquer
//! applications on real threads (complements the virtual-time figure
//! binaries): sequential mergesort vs one-deep (sequential and rayon
//! modes) vs std sort, plus quicksort and skyline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use archetype_core::ExecutionMode;
use archetype_dc::mergesort::{sequential_mergesort, OneDeepMergesort};
use archetype_dc::quicksort::OneDeepQuicksort;
use archetype_dc::skeleton::run_shared;
use archetype_dc::skyline::{sequential_skyline, OneDeepSkyline};
use archetype_dc::Building;

fn random_i64s(n: usize, seed: u64) -> Vec<i64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 16) as i64 % 1_000_000
        })
        .collect()
}

fn blocks(n: usize, p: usize) -> Vec<Vec<i64>> {
    let data = random_i64s(n, 42);
    data.chunks(n.div_ceil(p)).map(<[i64]>::to_vec).collect()
}

fn bench_sorts(c: &mut Criterion) {
    const N: usize = 200_000;
    const P: usize = 8;
    let mut g = c.benchmark_group("sort_200k");

    g.bench_function("sequential_mergesort", |b| {
        b.iter_batched(
            || random_i64s(N, 42),
            sequential_mergesort,
            BatchSize::SmallInput,
        )
    });
    g.bench_function("std_sort_unstable", |b| {
        b.iter_batched(
            || random_i64s(N, 42),
            |mut v| {
                v.sort_unstable();
                v
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("one_deep_mergesort_seq_mode", |b| {
        let alg = OneDeepMergesort::<i64>::new();
        b.iter_batched(
            || blocks(N, P),
            |inp| run_shared(&alg, inp, ExecutionMode::Sequential, None),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("one_deep_mergesort_rayon", |b| {
        let alg = OneDeepMergesort::<i64>::new();
        b.iter_batched(
            || blocks(N, P),
            |inp| run_shared(&alg, inp, ExecutionMode::Parallel, None),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("one_deep_quicksort_rayon", |b| {
        let alg = OneDeepQuicksort::<i64>::new();
        b.iter_batched(
            || blocks(N, P),
            |inp| run_shared(&alg, inp, ExecutionMode::Parallel, None),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_skyline(c: &mut Criterion) {
    const N: usize = 20_000;
    let buildings: Vec<Building> = (0..N)
        .map(|i| {
            let seed = i as f64;
            let left = (seed * 7.31) % 1000.0;
            Building::new(
                left,
                1.0 + (seed * 3.7) % 80.0,
                left + 1.0 + (seed * 1.9) % 20.0,
            )
        })
        .collect();
    let mut g = c.benchmark_group("skyline_20k");
    g.bench_function("sequential", |b| {
        b.iter(|| sequential_skyline(std::hint::black_box(&buildings)))
    });
    g.bench_function("one_deep_rayon_8", |b| {
        let inputs: Vec<Vec<Building>> =
            buildings.chunks(N / 8).map(<[Building]>::to_vec).collect();
        b.iter_batched(
            || inputs.clone(),
            |inp| run_shared(&OneDeepSkyline, inp, ExecutionMode::Parallel, None),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_sorts, bench_skyline);
criterion_main!(benches);
