//! Criterion wall-clock benches for the recursive divide-and-conquer
//! skeleton (complementing the virtual-time `dc_scaling` snapshot):
//! the shared-memory recursion in sequential and fork/join modes against
//! the sequential solve, plus the SPMD recursion on nested groups.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use archetype_bench::random_i64s;
use archetype_core::ExecutionMode;
use archetype_dc::perfmodel::recursion_policy;
use archetype_dc::{run_shared_recursive, run_spmd_recursive, CutoffPolicy, RecursiveMergesort};
use archetype_mp::{run_spmd, MachineModel};

fn bench_recursion(c: &mut Criterion) {
    const N: usize = 200_000;
    let alg = RecursiveMergesort::<i64>::new();
    let mut g = c.benchmark_group("dc_recursion_200k");

    g.bench_function("sequential_solve_depth_0", |b| {
        b.iter_batched(
            || random_i64s(N, 42),
            |v| {
                run_shared_recursive(
                    &alg,
                    v,
                    &CutoffPolicy::exact_depth(0, 2),
                    ExecutionMode::Sequential,
                    None,
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("shared_recursion_depth_3_seq_mode", |b| {
        b.iter_batched(
            || random_i64s(N, 42),
            |v| {
                run_shared_recursive(
                    &alg,
                    v,
                    &CutoffPolicy::exact_depth(3, 2),
                    ExecutionMode::Sequential,
                    None,
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("shared_recursion_depth_3_forkjoin", |b| {
        b.iter_batched(
            || random_i64s(N, 42),
            |v| {
                run_shared_recursive(
                    &alg,
                    v,
                    &CutoffPolicy::exact_depth(3, 2),
                    ExecutionMode::Parallel,
                    None,
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("spmd_recursion_8_ranks_nested_groups", |b| {
        let model = MachineModel::cray_t3d();
        let policy = recursion_policy(&model, 2, 8);
        b.iter_batched(
            || random_i64s(N, 42),
            |v| {
                run_spmd(8, model, move |ctx| {
                    let local = (ctx.rank() == 0).then(|| v.clone());
                    run_spmd_recursive(&RecursiveMergesort::<i64>::new(), ctx, local, &policy, None)
                })
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_recursion);
criterion_main!(benches);
