//! Wall-clock benches of the task-farm archetype: skeleton overhead on
//! a trivial farm, and the two irregular applications at a bench-sized
//! configuration. Virtual-time *scaling* is tracked separately by the
//! `farm_scaling` binary (`BENCH_farm.json`); these measure the host
//! cost of running the skeleton itself.

use criterion::{criterion_group, criterion_main, Criterion};

use archetype_bnb::{solve_farm, Knapsack};
use archetype_farm::apps::{MandelbrotFarm, SweepFarm};
use archetype_farm::{run_farm, Farm, FarmConfig, WorkScope};
use archetype_mp::{run_spmd, MachineModel};

/// A farm of trivial tasks: measures pure skeleton overhead (queueing,
/// steal exchanges, waves) rather than application work.
struct Trivial(u64);
impl Farm for Trivial {
    type Task = u64;
    type Out = u64;
    type Hint = ();
    fn seed(&self) -> Vec<u64> {
        (0..self.0).collect()
    }
    fn work(&self, task: u64, scope: &mut WorkScope<'_, Self>) {
        scope.emit(task);
    }
    fn out_identity(&self) -> u64 {
        0
    }
    fn reduce(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}

fn bench_skeleton(c: &mut Criterion) {
    let mut g = c.benchmark_group("farm_skeleton");
    g.sample_size(20);
    let model = MachineModel::zero_comm();
    g.bench_function("trivial_1k_tasks_8_ranks", |b| {
        b.iter(|| {
            run_spmd(8, model, |ctx| {
                run_farm(&Trivial(1000), ctx, FarmConfig::default()).0
            })
        })
    });
    g.finish();
}

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("farm_apps");
    g.sample_size(10);
    let model = MachineModel::ibm_sp();
    g.bench_function("mandelbrot_128x96_8_ranks", |b| {
        b.iter(|| {
            let farm = MandelbrotFarm::seahorse(128, 96, 16, 500);
            run_spmd(8, model, move |ctx| {
                run_farm(&farm, ctx, FarmConfig::default()).0
            })
        })
    });
    g.bench_function("sweep_d6_8_ranks", |b| {
        b.iter(|| {
            let farm = SweepFarm {
                lo: 0.0,
                hi: 3.0,
                seeds: 24,
                max_depth: 6,
            };
            run_spmd(8, model, move |ctx| {
                run_farm(&farm, ctx, FarmConfig::default()).0
            })
        })
    });
    g.bench_function("knapsack_16_items_8_ranks", |b| {
        b.iter(|| {
            run_spmd(8, model, |ctx| {
                let items: Vec<(u64, u64)> =
                    (0..16).map(|i| (i % 7 + 3, (i * 13) % 29 + 1)).collect();
                solve_farm(&Knapsack::new(&items, 60), ctx, FarmConfig::default()).0
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_skeleton, bench_apps);
criterion_main!(benches);
