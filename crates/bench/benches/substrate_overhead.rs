//! Wall-clock benches of the message-passing substrate's own overhead:
//! the costs the archetypes pay before any application work happens.
//!
//! * `run_spmd_16_pooled` vs `run_spmd_16_spawned` — repeated 16-rank
//!   invocations with a trivial body, isolating executor dispatch cost
//!   (persistent worker pool + recycled network vs thread-per-rank and a
//!   fresh n² channel mesh per call, the seed behaviour).
//! * `ping_pong_*` — point-to-point round-trip latency at small and
//!   medium payload sizes; the `_ft_idle` variant runs the same loop
//!   under `run_spmd_ft` with an inert fault plan, pricing the
//!   per-operation fault hooks when no faults are scheduled.
//! * `broadcast_1mb_16` — a 1 MB buffer fanned out to 16 ranks; with
//!   shared payloads every forwarding hop moves a refcount, not a copy.
//!
//! The `substrate_overhead` *binary* (same workload) emits the
//! `BENCH_substrate.json` snapshot tracked in the repository root.

use criterion::{criterion_group, criterion_main, Criterion};

use archetype_mp::{run_spmd, run_spmd_ft, run_spmd_unpooled, FaultPlan, MachineModel};

fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    g.sample_size(30);
    let model = MachineModel::zero_comm();
    g.bench_function("run_spmd_16_pooled", |b| {
        b.iter(|| run_spmd(16, model, |ctx| ctx.rank()))
    });
    g.bench_function("run_spmd_16_spawned", |b| {
        b.iter(|| run_spmd_unpooled(16, model, |ctx| ctx.rank()))
    });
    g.finish();
}

fn bench_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("latency");
    g.sample_size(20);
    let model = MachineModel::zero_comm();
    for (label, bytes) in [("ping_pong_8b_x100", 8usize), ("ping_pong_4kb_x100", 4096)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                run_spmd(2, model, |ctx| {
                    let partner = 1 - ctx.rank();
                    for round in 0..100u64 {
                        if ctx.rank() == 0 {
                            ctx.send(partner, round, vec![0u8; bytes]);
                            let _: Vec<u8> = ctx.recv(partner, round);
                        } else {
                            let v: Vec<u8> = ctx.recv(partner, round);
                            ctx.send(partner, round, v);
                        }
                    }
                })
            })
        });
    }
    g.bench_function("ping_pong_8b_ft_idle_x100", |b| {
        b.iter(|| {
            run_spmd_ft(2, model, FaultPlan::new(0), |ctx| {
                let partner = 1 - ctx.rank();
                for round in 0..100u64 {
                    if ctx.rank() == 0 {
                        ctx.send(partner, round, vec![0u8; 8]);
                        let _: Vec<u8> = ctx.recv(partner, round);
                    } else {
                        let v: Vec<u8> = ctx.recv(partner, round);
                        ctx.send(partner, round, v);
                    }
                }
            })
        })
    });
    g.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("fanout");
    g.sample_size(20);
    let model = MachineModel::zero_comm();
    g.bench_function("broadcast_1mb_16", |b| {
        b.iter(|| {
            run_spmd(16, model, |ctx| {
                let v = (ctx.rank() == 0).then(|| vec![0u8; 1 << 20]);
                ctx.broadcast(0, v).len()
            })
        })
    });
    g.bench_function("all_gather_64kb_16", |b| {
        b.iter(|| {
            run_spmd(16, model, |ctx| {
                let mine = vec![ctx.rank() as u8; 1 << 16];
                ctx.all_gather(mine).len()
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_executor, bench_latency, bench_broadcast);
criterion_main!(benches);
