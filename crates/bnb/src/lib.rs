//! # archetype-bnb — the branch-and-bound archetype
//!
//! The paper's future-work list (§7) calls for **nondeterministic
//! archetypes**: "some problems are better suited to nondeterministic
//! archetypes — for example branch and bound — so our library of
//! archetypes should include such archetypes as well." This crate is that
//! archetype: a maximization branch-and-bound skeleton whose *search
//! order* (and hence communication schedule and node count) is
//! nondeterministic under parallel execution, while the *result* — the
//! optimum — is deterministic, which is exactly the weaker guarantee the
//! paper contrasts with its deterministic archetypes.
//!
//! Three drivers execute one [`BranchAndBound`] problem description:
//!
//! - [`solve_sequential`]: best-first search with a priority queue — the
//!   reference oracle;
//! - [`solve_shared`]: shared-memory parallel search (rayon) with an
//!   atomically shared incumbent;
//! - [`solve_spmd`]: distributed search over the message-passing
//!   substrate — the frontier is statically seeded round-robin, each round
//!   every rank expands a batch from its local frontier, and a
//!   recursive-doubling all-reduce both shares the incumbent bound and
//!   decides global termination (the archetype's communication pattern:
//!   reduction doubles as termination detection);
//! - [`solve_farm`]: the same distributed search expressed as an
//!   instance of the general task-farm archetype (`archetype-farm`) —
//!   the priority queue, incumbent sharing, work distribution, and
//!   termination detection all come from the skeleton instead of being
//!   hand-rolled here. This is the preferred distributed driver.

pub mod farm;
pub mod knapsack;
pub mod skeleton;

pub use farm::{solve_farm, BnbFarm, BoundedNode};
pub use knapsack::{knapsack_dp, Knapsack};
pub use skeleton::{solve_sequential, solve_shared, solve_spmd, BnbStats, BranchAndBound};
