//! 0/1 knapsack as a branch-and-bound application.
//!
//! Nodes fix a prefix of include/exclude decisions; the admissible bound
//! is the classic fractional (linear-relaxation) bound on the remaining
//! items, which requires items sorted by value density — enforced by the
//! constructor so the bound is valid by construction.

use crate::skeleton::BranchAndBound;
use archetype_mp::Payload;

/// A knapsack instance with items pre-sorted by value/weight density.
#[derive(Clone, Debug)]
pub struct Knapsack {
    /// Item weights (density-sorted).
    pub weights: Vec<u64>,
    /// Item values (density-sorted, parallel to `weights`).
    pub values: Vec<u64>,
    /// Capacity.
    pub capacity: u64,
}

impl Knapsack {
    /// Build an instance; items are sorted by decreasing value density
    /// internally (required by the fractional bound).
    pub fn new(items: &[(u64, u64)], capacity: u64) -> Self {
        let mut idx: Vec<usize> = (0..items.len()).collect();
        idx.sort_by(|&a, &b| {
            let da = items[a].1 as f64 / items[a].0.max(1) as f64;
            let db = items[b].1 as f64 / items[b].0.max(1) as f64;
            db.partial_cmp(&da).expect("densities are finite")
        });
        Knapsack {
            weights: idx.iter().map(|&i| items[i].0).collect(),
            values: idx.iter().map(|&i| items[i].1).collect(),
            capacity,
        }
    }

    fn n(&self) -> usize {
        self.weights.len()
    }
}

/// A search node: decisions fixed for items `0..level`.
#[derive(Clone, Copy, Debug, Default)]
pub struct KnapNode {
    /// Next undecided item.
    pub level: usize,
    /// Weight used by the fixed prefix.
    pub weight: u64,
    /// Value collected by the fixed prefix.
    pub value: u64,
}

impl Payload for KnapNode {
    fn size_bytes(&self) -> usize {
        std::mem::size_of::<KnapNode>()
    }
}

impl BranchAndBound for Knapsack {
    type Node = KnapNode;

    fn root(&self) -> KnapNode {
        KnapNode::default()
    }

    fn branch(&self, node: &KnapNode) -> Vec<KnapNode> {
        let mut out = Vec::with_capacity(2);
        // Exclude item `level`.
        out.push(KnapNode {
            level: node.level + 1,
            ..*node
        });
        // Include it, if it fits.
        if node.weight + self.weights[node.level] <= self.capacity {
            out.push(KnapNode {
                level: node.level + 1,
                weight: node.weight + self.weights[node.level],
                value: node.value + self.values[node.level],
            });
        }
        out
    }

    fn bound(&self, node: &KnapNode) -> f64 {
        // Fractional relaxation: greedily take remaining (density-sorted)
        // items, splitting the first that doesn't fit.
        let mut room = self.capacity - node.weight;
        let mut bound = node.value as f64;
        for i in node.level..self.n() {
            if self.weights[i] <= room {
                room -= self.weights[i];
                bound += self.values[i] as f64;
            } else {
                bound += self.values[i] as f64 * room as f64 / self.weights[i] as f64;
                break;
            }
        }
        bound
    }

    fn value(&self, node: &KnapNode) -> Option<f64> {
        (node.level == self.n()).then_some(node.value as f64)
    }
}

/// Dynamic-programming oracle for tests: exact optimum in
/// `O(n · capacity)`.
pub fn knapsack_dp(items: &[(u64, u64)], capacity: u64) -> u64 {
    let cap = capacity as usize;
    let mut best = vec![0u64; cap + 1];
    for &(w, v) in items {
        let w = w as usize;
        for c in (w..=cap).rev() {
            best[c] = best[c].max(best[c - w] + v);
        }
    }
    best[cap]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::{solve_sequential, solve_shared, solve_spmd};
    use archetype_mp::{run_spmd, MachineModel};

    fn pseudo_random_items(n: usize, seed: u64) -> Vec<(u64, u64)> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let w = (s >> 33) % 50 + 1;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = (s >> 33) % 100 + 1;
                (w, v)
            })
            .collect()
    }

    #[test]
    fn matches_dp_on_small_instances() {
        for seed in 1..8u64 {
            let items = pseudo_random_items(16, seed);
            let cap = 120;
            let expected = knapsack_dp(&items, cap) as f64;
            let (got, _) = solve_sequential(&Knapsack::new(&items, cap));
            assert_eq!(got, expected, "seed={seed}");
        }
    }

    #[test]
    fn trivial_instances() {
        // Nothing fits.
        let (v, _) = solve_sequential(&Knapsack::new(&[(10, 100)], 5));
        assert_eq!(v, 0.0);
        // Everything fits.
        let (v, _) = solve_sequential(&Knapsack::new(&[(1, 3), (2, 4)], 10));
        assert_eq!(v, 7.0);
        // Zero items.
        let (v, _) = solve_sequential(&Knapsack::new(&[], 10));
        assert_eq!(v, 0.0);
    }

    #[test]
    fn shared_solver_matches_dp() {
        let items = pseudo_random_items(18, 42);
        let cap = 150;
        let expected = knapsack_dp(&items, cap) as f64;
        assert_eq!(solve_shared(&Knapsack::new(&items, cap)), expected);
    }

    #[test]
    fn spmd_solver_matches_dp_for_many_process_counts() {
        let items = pseudo_random_items(16, 7);
        let cap = 100;
        let expected = knapsack_dp(&items, cap) as f64;
        for p in [1usize, 2, 4, 6] {
            let items = items.clone();
            let out = run_spmd(p, MachineModel::ibm_sp(), move |ctx| {
                solve_spmd(&Knapsack::new(&items, cap), ctx, 16).0
            });
            assert!(out.results.iter().all(|&v| v == expected), "p={p}");
        }
    }

    #[test]
    fn bound_is_admissible_along_optimal_path() {
        // The fractional bound at the root must be >= the optimum.
        let items = pseudo_random_items(20, 3);
        let cap = 130;
        let problem = Knapsack::new(&items, cap);
        let opt = knapsack_dp(&items, cap) as f64;
        assert!(problem.bound(&problem.root()) >= opt);
    }

    #[test]
    fn pruning_reduces_work_relative_to_exhaustive() {
        let items = pseudo_random_items(18, 9);
        let problem = Knapsack::new(&items, 120);
        let (_, stats) = solve_sequential(&problem);
        let exhaustive = (1u64 << 18) - 1; // internal nodes of the full tree
        assert!(
            stats.expanded < exhaustive / 10,
            "bound should prune most of the tree: expanded {}",
            stats.expanded
        );
    }
}
