//! Branch-and-bound on the task-farm archetype.
//!
//! This is the port the archetype library exists for: the distributed
//! driver's hand-rolled work distribution (`solve_spmd`'s round-robin
//! seeding, batch expansion, and all-reduce termination) is replaced by
//! the general task-farm skeleton. The local `BinaryHeap` frontier
//! *becomes* the farm's priority queue (priority = node bound, so the
//! search stays best-first), the shared incumbent becomes the farm's
//! steering hint, bound-pruning of queued nodes becomes the farm's
//! `keep` test, and termination falls out of the skeleton's quiescence
//! wave instead of a bespoke reduction.
//!
//! The returned optimum is identical to every other driver's (the bound
//! is admissible, so pruning never loses the optimum), and — the farm
//! running in deterministic lockstep rounds — the node statistics are
//! bit-identical across repeated runs of the same configuration, a
//! stronger guarantee than `solve_shared`'s nondeterministic counts.

use archetype_farm::{run_farm, Farm, FarmConfig, FarmStats, WorkScope};
use archetype_mp::{impl_fixed_size, Ctx, Payload};

use crate::skeleton::{BnbStats, BranchAndBound};

impl_fixed_size!(BnbStats);

/// Modeled flop-equivalents for one bound evaluation on a popped node.
const BOUND_FLOPS: f64 = 50.0;
/// Modeled flop-equivalents for expanding a node into its children.
const EXPAND_FLOPS: f64 = 200.0;

/// Adapter presenting a [`BranchAndBound`] problem as a [`Farm`].
///
/// * task = search-tree node, with the node's admissible bound as its
///   queue priority (best-first);
/// * output = `(incumbent, stats)`, reduced by `(max, +)`;
/// * hint = the incumbent value, merged by `max` on every wave;
/// * `keep` = the bound test against the globally shared incumbent.
pub struct BnbFarm<'a, B>(pub &'a B);

/// A search node bundled with its admissible bound, computed exactly
/// once (at spawn time): the queue priority, the `keep` test, and the
/// in-`work` prune test all reuse the cached value instead of
/// re-evaluating an O(problem-size) bound on every queue operation.
pub struct BoundedNode<N> {
    /// Admissible upper bound on any completion of `node`.
    pub bound: f64,
    /// The underlying search-tree node.
    pub node: N,
}

impl<N: Payload> Payload for BoundedNode<N> {
    fn size_bytes(&self) -> usize {
        std::mem::size_of::<f64>() + self.node.size_bytes()
    }
}

impl<B> Farm for BnbFarm<'_, B>
where
    B: BranchAndBound,
    B::Node: Payload,
{
    type Task = BoundedNode<B::Node>;
    type Out = (f64, BnbStats);
    type Hint = f64;

    fn seed(&self) -> Vec<BoundedNode<B::Node>> {
        let root = self.0.root();
        vec![BoundedNode {
            bound: self.0.bound(&root),
            node: root,
        }]
    }

    fn work(&self, task: BoundedNode<B::Node>, scope: &mut WorkScope<'_, Self>) {
        let BoundedNode { bound, node } = task;
        // The effective incumbent: the last wave's global hint, possibly
        // improved by leaves this rank has found since.
        let incumbent = scope.hint().max(scope.acc().0);
        if bound <= incumbent {
            scope.emit((
                f64::NEG_INFINITY,
                BnbStats {
                    pruned: 1,
                    ..BnbStats::default()
                },
            ));
            return;
        }
        if let Some(v) = self.0.value(&node) {
            scope.emit((v, BnbStats::default()));
            return;
        }
        scope.charge_flops(EXPAND_FLOPS);
        let mut stats = BnbStats {
            expanded: 1,
            ..BnbStats::default()
        };
        for child in self.0.branch(&node) {
            let b = self.0.bound(&child);
            if b > incumbent {
                scope.spawn(BoundedNode {
                    bound: b,
                    node: child,
                });
            } else {
                stats.pruned += 1;
            }
        }
        scope.emit((f64::NEG_INFINITY, stats));
    }

    fn out_identity(&self) -> (f64, BnbStats) {
        (f64::NEG_INFINITY, BnbStats::default())
    }

    fn reduce(&self, a: (f64, BnbStats), b: (f64, BnbStats)) -> (f64, BnbStats) {
        (
            a.0.max(b.0),
            BnbStats {
                expanded: a.1.expanded + b.1.expanded,
                pruned: a.1.pruned + b.1.pruned,
            },
        )
    }

    fn task_flops(&self, _task: &BoundedNode<B::Node>) -> f64 {
        BOUND_FLOPS
    }

    fn priority(&self, task: &BoundedNode<B::Node>) -> f64 {
        task.bound
    }

    fn local_hint(&self, acc: &(f64, BnbStats)) -> f64 {
        acc.0
    }

    fn merge_hint(&self, a: f64, b: f64) -> f64 {
        a.max(b)
    }

    fn keep(&self, task: &BoundedNode<B::Node>, incumbent: &f64) -> bool {
        task.bound > *incumbent
    }
}

/// Distributed branch-and-bound on the task-farm skeleton. Must be
/// called collectively by every rank; every rank returns the same
/// optimum and the same (globally summed) statistics. Nodes dropped by
/// the farm's `keep` test count as pruned.
pub fn solve_farm<B>(problem: &B, ctx: &mut Ctx, config: FarmConfig) -> (f64, BnbStats, FarmStats)
where
    B: BranchAndBound,
    B::Node: Payload,
{
    let ((best, mut stats), farm_stats) = run_farm(&BnbFarm(problem), ctx, config);
    stats.pruned += farm_stats.dropped;
    (best, stats, farm_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knapsack::{knapsack_dp, Knapsack};
    use crate::skeleton::{solve_sequential, solve_spmd};
    use archetype_mp::{run_spmd, MachineModel};

    fn pseudo_random_items(n: usize, seed: u64) -> Vec<(u64, u64)> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let w = (s >> 33) % 50 + 1;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = (s >> 33) % 100 + 1;
                (w, v)
            })
            .collect()
    }

    #[test]
    fn farm_knapsack_matches_dp_for_many_process_counts() {
        let items = pseudo_random_items(16, 7);
        let cap = 100;
        let expected = knapsack_dp(&items, cap) as f64;
        for p in [1usize, 2, 4, 6, 8] {
            let items = items.clone();
            let out = run_spmd(p, MachineModel::ibm_sp(), move |ctx| {
                solve_farm(&Knapsack::new(&items, cap), ctx, FarmConfig::default()).0
            });
            assert!(out.results.iter().all(|&v| v == expected), "p={p}");
        }
    }

    #[test]
    fn farm_agrees_with_sequential_and_spmd_drivers_on_seed_instances() {
        for seed in [3u64, 7, 42] {
            let items = pseudo_random_items(14, seed);
            let cap = 90;
            let problem = Knapsack::new(&items, cap);
            let (seq, _) = solve_sequential(&problem);
            let items2 = items.clone();
            let out = run_spmd(4, MachineModel::ibm_sp(), move |ctx| {
                let problem = Knapsack::new(&items2, cap);
                let farm = solve_farm(&problem, ctx, FarmConfig::default()).0;
                let legacy = solve_spmd(&problem, ctx, 16).0;
                (farm, legacy)
            });
            for &(farm, legacy) in &out.results {
                assert_eq!(farm, seq, "seed={seed}");
                assert_eq!(legacy, seq, "seed={seed}");
            }
        }
    }

    #[test]
    fn farm_stats_are_bit_identical_across_runs() {
        let run = || {
            let items = pseudo_random_items(15, 11);
            run_spmd(6, MachineModel::intel_delta(), move |ctx| {
                solve_farm(&Knapsack::new(&items, 110), ctx, FarmConfig::default())
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.results, b.results);
        assert_eq!(a.rank_times, b.rank_times, "virtual clocks must agree");
        // Every rank reports the same global stats.
        let (best, stats, fstats) = a.results[0];
        assert!(a.results.iter().all(|&r| r == (best, stats, fstats)));
        assert!(stats.expanded > 0);
    }

    #[test]
    fn farm_search_stays_best_first_and_prunes() {
        // With an exact-at-leaf admissible bound, best-first order should
        // prune aggressively: far fewer expansions than the full tree.
        let items = pseudo_random_items(18, 9);
        let out = run_spmd(4, MachineModel::ibm_sp(), move |ctx| {
            solve_farm(&Knapsack::new(&items, 120), ctx, FarmConfig::default())
        });
        let (_, stats, _) = out.results[0];
        let exhaustive = (1u64 << 18) - 1;
        assert!(
            stats.expanded < exhaustive / 10,
            "expanded {}",
            stats.expanded
        );
    }

    #[test]
    fn empty_tree_yields_neg_infinity_on_the_farm() {
        struct Barren;
        impl BranchAndBound for Barren {
            type Node = u8;
            fn root(&self) -> u8 {
                0
            }
            fn branch(&self, _n: &u8) -> Vec<u8> {
                Vec::new()
            }
            fn bound(&self, _n: &u8) -> f64 {
                100.0
            }
            fn value(&self, _n: &u8) -> Option<f64> {
                None
            }
        }
        let out = run_spmd(2, MachineModel::ibm_sp(), |ctx| {
            solve_farm(&Barren, ctx, FarmConfig::default()).0
        });
        assert!(out.results.iter().all(|&v| v == f64::NEG_INFINITY));
    }
}
