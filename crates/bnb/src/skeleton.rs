//! The branch-and-bound skeleton and its three drivers.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use archetype_mp::{Ctx, Payload};

/// A maximization problem in branch-and-bound form.
///
/// `Node` is a partial solution; [`BranchAndBound::bound`] must be an
/// **admissible upper bound** (no descendant of the node can score higher),
/// which is what makes pruning safe and the optimum deterministic even
/// under nondeterministic search orders.
pub trait BranchAndBound: Sync {
    /// A partial solution / search-tree node.
    type Node: Clone + Send;

    /// The root of the search tree (the empty partial solution).
    fn root(&self) -> Self::Node;

    /// Expand a node into its children.
    fn branch(&self, node: &Self::Node) -> Vec<Self::Node>;

    /// Admissible upper bound on any completion of `node`.
    fn bound(&self, node: &Self::Node) -> f64;

    /// The node's own objective value if it is a complete solution
    /// (a leaf), else `None`.
    fn value(&self, node: &Self::Node) -> Option<f64>;
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BnbStats {
    /// Nodes expanded (calls to `branch`).
    pub expanded: u64,
    /// Nodes pruned by the bound test.
    pub pruned: u64,
}

struct Prioritized<N> {
    bound: f64,
    node: N,
}

impl<N> PartialEq for Prioritized<N> {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl<N> Eq for Prioritized<N> {}
impl<N> PartialOrd for Prioritized<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<N> Ord for Prioritized<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// Best-first sequential branch-and-bound. Returns the optimum value
/// (`f64::NEG_INFINITY` if the tree has no complete solution) and stats.
///
/// ```
/// use archetype_bnb::{solve_sequential, Knapsack};
/// let problem = Knapsack::new(&[(2, 3), (3, 4), (4, 5)], 5);
/// let (best, _stats) = solve_sequential(&problem);
/// assert_eq!(best, 7.0); // items (2,3) + (3,4)
/// ```
pub fn solve_sequential<B: BranchAndBound>(problem: &B) -> (f64, BnbStats) {
    let mut heap = BinaryHeap::new();
    let root = problem.root();
    heap.push(Prioritized {
        bound: problem.bound(&root),
        node: root,
    });
    let mut best = f64::NEG_INFINITY;
    let mut stats = BnbStats::default();

    while let Some(Prioritized { bound, node }) = heap.pop() {
        if bound <= best {
            stats.pruned += 1;
            continue;
        }
        if let Some(v) = problem.value(&node) {
            best = best.max(v);
            continue;
        }
        stats.expanded += 1;
        for child in problem.branch(&node) {
            let b = problem.bound(&child);
            if b > best {
                heap.push(Prioritized {
                    bound: b,
                    node: child,
                });
            } else {
                stats.pruned += 1;
            }
        }
    }
    (best, stats)
}

/// Shared-memory parallel branch-and-bound: depth-first exploration of
/// subtrees with `rayon::join`, sharing the incumbent through an atomic.
/// The exploration order — and therefore the node/prune counts — is
/// nondeterministic; the returned optimum is not.
pub fn solve_shared<B: BranchAndBound>(problem: &B) -> f64 {
    // f64 incumbent stored as ordered bits: works because all our scores
    // compare above NEG_INFINITY and we only move the value upward.
    let best = AtomicU64::new(f64::NEG_INFINITY.to_bits());

    fn load(best: &AtomicU64) -> f64 {
        f64::from_bits(best.load(AtomicOrdering::Relaxed))
    }
    fn raise(best: &AtomicU64, v: f64) {
        let mut cur = best.load(AtomicOrdering::Relaxed);
        while v > f64::from_bits(cur) {
            match best.compare_exchange_weak(
                cur,
                v.to_bits(),
                AtomicOrdering::Relaxed,
                AtomicOrdering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    fn explore<B: BranchAndBound>(problem: &B, node: B::Node, best: &AtomicU64, depth: usize) {
        if problem.bound(&node) <= load(best) {
            return;
        }
        if let Some(v) = problem.value(&node) {
            raise(best, v);
            return;
        }
        let children = problem.branch(&node);
        if depth < 6 {
            // Fork the subtree exploration; deeper levels go sequential to
            // bound task overhead.
            rayon::scope(|s| {
                for child in children {
                    s.spawn(move |_| explore(problem, child, best, depth + 1));
                }
            });
        } else {
            for child in children {
                explore(problem, child, best, depth + 1);
            }
        }
    }

    explore(problem, problem.root(), &best, 0);
    load(&best)
}

/// Distributed branch-and-bound over the message-passing substrate.
///
/// The first `seed_levels` of the tree are expanded redundantly on every
/// rank; frontier nodes are then taken round-robin by rank. Each round a
/// rank expands up to `batch` of its best local nodes, then an all-reduce
/// combines `(incumbent, remaining-frontier-size)` — sharing the bound
/// *and* detecting termination in one reduction. Every rank returns the
/// same optimum.
pub fn solve_spmd<B>(problem: &B, ctx: &mut Ctx, batch: usize) -> (f64, BnbStats)
where
    B: BranchAndBound,
    B::Node: Payload,
{
    let p = ctx.nprocs();
    let me = ctx.rank();

    // Seed: expand breadth-first (deterministically) until the frontier
    // can feed every rank, then deal nodes round-robin.
    let mut seed = vec![problem.root()];
    let mut best = f64::NEG_INFINITY;
    let mut stats = BnbStats::default();
    while !seed.is_empty() && seed.len() < 4 * p {
        let mut next = Vec::new();
        for node in seed.drain(..) {
            match problem.value(&node) {
                Some(v) => best = best.max(v),
                None => next.extend(problem.branch(&node)),
            }
        }
        seed = next;
    }
    ctx.charge_items(seed.len(), 50.0);

    let mut heap: BinaryHeap<Prioritized<B::Node>> = seed
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % p == me)
        .map(|(_, node)| Prioritized {
            bound: problem.bound(&node),
            node,
        })
        .collect();

    loop {
        // Expand a batch of the best local nodes.
        let mut expanded_this_round = 0usize;
        while expanded_this_round < batch {
            let Some(Prioritized { bound, node }) = heap.pop() else {
                break;
            };
            if bound <= best {
                stats.pruned += 1;
                continue; // pruning is free; keep draining
            }
            if let Some(v) = problem.value(&node) {
                best = best.max(v);
                continue;
            }
            stats.expanded += 1;
            expanded_this_round += 1;
            for child in problem.branch(&node) {
                let b = problem.bound(&child);
                if b > best {
                    heap.push(Prioritized {
                        bound: b,
                        node: child,
                    });
                } else {
                    stats.pruned += 1;
                }
            }
        }
        ctx.charge_items(expanded_this_round.max(1), 200.0);

        // Share the incumbent and detect termination in one reduction.
        let useful = heap.iter().filter(|pr| pr.bound > best).count() as f64;
        let (gbest, remaining) = ctx.all_reduce((best, useful), |a, b| (a.0.max(b.0), a.1 + b.1));
        best = gbest;
        if remaining == 0.0 {
            return (best, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archetype_mp::{run_spmd, MachineModel};

    /// A tiny explicit tree for exercising the skeleton: maximize the sum
    /// of digits chosen at each of `depth` levels from {0, 1, 2}, with the
    /// twist that the bound is exact-at-leaf and admissible above.
    struct DigitTree {
        depth: usize,
    }

    impl BranchAndBound for DigitTree {
        type Node = Vec<u8>;
        fn root(&self) -> Vec<u8> {
            Vec::new()
        }
        fn branch(&self, node: &Vec<u8>) -> Vec<Vec<u8>> {
            [0u8, 1, 2]
                .iter()
                .map(|&d| {
                    let mut c = node.clone();
                    c.push(d);
                    c
                })
                .collect()
        }
        fn bound(&self, node: &Vec<u8>) -> f64 {
            let sum: u64 = node.iter().map(|&d| d as u64).sum();
            (sum + 2 * (self.depth - node.len()) as u64) as f64
        }
        fn value(&self, node: &Vec<u8>) -> Option<f64> {
            (node.len() == self.depth).then(|| node.iter().map(|&d| d as f64).sum())
        }
    }

    #[test]
    fn sequential_finds_the_obvious_optimum() {
        let (best, stats) = solve_sequential(&DigitTree { depth: 5 });
        assert_eq!(best, 10.0); // all 2s
                                // Best-first with an exact bound walks straight to the optimum.
        assert!(stats.expanded <= 6, "expanded {}", stats.expanded);
    }

    #[test]
    fn shared_and_sequential_agree() {
        let p = DigitTree { depth: 7 };
        let (seq, _) = solve_sequential(&p);
        assert_eq!(solve_shared(&p), seq);
    }

    #[test]
    fn spmd_agrees_for_many_process_counts() {
        for procs in [1usize, 2, 3, 5, 8] {
            let out = run_spmd(procs, MachineModel::ibm_sp(), |ctx| {
                solve_spmd(&DigitTree { depth: 6 }, ctx, 8).0
            });
            assert!(out.results.iter().all(|&v| v == 12.0), "procs={procs}");
        }
    }

    #[test]
    fn empty_tree_yields_neg_infinity() {
        struct Barren;
        impl BranchAndBound for Barren {
            type Node = u8;
            fn root(&self) -> u8 {
                0
            }
            fn branch(&self, _n: &u8) -> Vec<u8> {
                Vec::new()
            }
            fn bound(&self, _n: &u8) -> f64 {
                100.0
            }
            fn value(&self, _n: &u8) -> Option<f64> {
                None
            }
        }
        let (best, _) = solve_sequential(&Barren);
        assert_eq!(best, f64::NEG_INFINITY);
    }
}
