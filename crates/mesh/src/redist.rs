//! Row/column distributions and grid redistribution.
//!
//! Row operations require data distributed by rows, column operations by
//! columns; composing them forces a **redistribution** (paper §3.3,
//! Figure 6's "redistribution rows to columns") — the mesh-spectral
//! archetype's analogue of a matrix transpose across processes,
//! implemented with an all-to-all exchange of sub-blocks.

use archetype_mp::topology::block_range;
use archetype_mp::{Ctx, FixedSize};

/// A matrix distributed by contiguous **rows**: this process owns rows
/// `row0 .. row0 + local_rows`, each of full width `ncols`, stored
/// row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct RowDist<T> {
    /// Global number of rows.
    pub nrows: usize,
    /// Global number of columns (all local).
    pub ncols: usize,
    /// First global row owned.
    pub row0: usize,
    /// Number of rows owned.
    pub local_rows: usize,
    /// Row-major `local_rows × ncols` storage.
    pub data: Vec<T>,
}

impl<T: FixedSize + Default> RowDist<T> {
    /// The row block owned by `rank` of `nprocs`, filled from a function of
    /// global `(row, col)`.
    pub fn from_global(
        rank: usize,
        nprocs: usize,
        nrows: usize,
        ncols: usize,
        f: impl Fn(usize, usize) -> T,
    ) -> Self {
        let (row0, local_rows) = block_range(nrows, nprocs, rank);
        let mut data = Vec::with_capacity(local_rows * ncols);
        for r in 0..local_rows {
            for c in 0..ncols {
                data.push(f(row0 + r, c));
            }
        }
        RowDist {
            nrows,
            ncols,
            row0,
            local_rows,
            data,
        }
    }

    /// Mutable view of local row `r` (0-based local index).
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        let s = r * self.ncols;
        &mut self.data[s..s + self.ncols]
    }

    /// Immutable view of local row `r`.
    pub fn row(&self, r: usize) -> &[T] {
        let s = r * self.ncols;
        &self.data[s..s + self.ncols]
    }

    /// Apply `f(global_row_index, row)` to every local row — the
    /// archetype's *row operation* (rows are independent by contract).
    pub fn for_each_row_mut(&mut self, mut f: impl FnMut(usize, &mut [T])) {
        let row0 = self.row0;
        let ncols = self.ncols;
        for r in 0..self.local_rows {
            let s = r * ncols;
            f(row0 + r, &mut self.data[s..s + ncols]);
        }
    }
}

/// A matrix distributed by contiguous **columns**: this process owns
/// columns `col0 .. col0 + local_cols`, each of full height `nrows`,
/// stored column-major (each local column contiguous).
#[derive(Clone, Debug, PartialEq)]
pub struct ColDist<T> {
    /// Global number of rows (all local).
    pub nrows: usize,
    /// Global number of columns.
    pub ncols: usize,
    /// First global column owned.
    pub col0: usize,
    /// Number of columns owned.
    pub local_cols: usize,
    /// Column-major `nrows × local_cols` storage.
    pub data: Vec<T>,
}

impl<T: FixedSize + Default> ColDist<T> {
    /// Mutable view of local column `c` (0-based local index).
    pub fn col_mut(&mut self, c: usize) -> &mut [T] {
        let s = c * self.nrows;
        &mut self.data[s..s + self.nrows]
    }

    /// Immutable view of local column `c`.
    pub fn col(&self, c: usize) -> &[T] {
        let s = c * self.nrows;
        &self.data[s..s + self.nrows]
    }

    /// Apply `f(global_col_index, column)` to every local column — the
    /// archetype's *column operation*.
    pub fn for_each_col_mut(&mut self, mut f: impl FnMut(usize, &mut [T])) {
        let col0 = self.col0;
        let nrows = self.nrows;
        for c in 0..self.local_cols {
            let s = c * nrows;
            f(col0 + c, &mut self.data[s..s + nrows]);
        }
    }
}

/// Redistribute a row-distributed matrix into a column-distributed one
/// (paper Figure 6). All ranks must call this; the sub-block destined for
/// each peer is packed, exchanged all-to-all, and reassembled.
pub fn rows_to_cols<T: FixedSize + Default>(ctx: &mut Ctx, rd: &RowDist<T>) -> ColDist<T> {
    let p = ctx.nprocs();
    let me = ctx.rank();
    // Piece for rank d: my rows × d's columns, packed row-major.
    let pieces: Vec<Vec<T>> = (0..p)
        .map(|d| {
            let (c0, cn) = block_range(rd.ncols, p, d);
            let mut buf = Vec::with_capacity(rd.local_rows * cn);
            for r in 0..rd.local_rows {
                let row = rd.row(r);
                buf.extend_from_slice(&row[c0..c0 + cn]);
            }
            buf
        })
        .collect();
    let received = ctx.all_to_all(pieces);

    let (col0, local_cols) = block_range(rd.ncols, p, me);
    let mut out = ColDist {
        nrows: rd.nrows,
        ncols: rd.ncols,
        col0,
        local_cols,
        data: vec![T::default(); rd.nrows * local_cols],
    };
    for (src, piece) in received.into_iter().enumerate() {
        let (r0, rn) = block_range(rd.nrows, p, src);
        debug_assert_eq!(piece.len(), rn * local_cols);
        for (idx, v) in piece.into_iter().enumerate() {
            let r = r0 + idx / local_cols;
            let c = idx % local_cols;
            out.data[c * rd.nrows + r] = v;
        }
    }
    out
}

/// Redistribute a column-distributed matrix back into a row-distributed
/// one — the inverse of [`rows_to_cols`].
pub fn cols_to_rows<T: FixedSize + Default>(ctx: &mut Ctx, cd: &ColDist<T>) -> RowDist<T> {
    let p = ctx.nprocs();
    let me = ctx.rank();
    // Piece for rank d: d's rows × my columns, packed column-major.
    let pieces: Vec<Vec<T>> = (0..p)
        .map(|d| {
            let (r0, rn) = block_range(cd.nrows, p, d);
            let mut buf = Vec::with_capacity(rn * cd.local_cols);
            for c in 0..cd.local_cols {
                let col = cd.col(c);
                buf.extend_from_slice(&col[r0..r0 + rn]);
            }
            buf
        })
        .collect();
    let received = ctx.all_to_all(pieces);

    let (row0, local_rows) = block_range(cd.nrows, p, me);
    let mut out = RowDist {
        nrows: cd.nrows,
        ncols: cd.ncols,
        row0,
        local_rows,
        data: vec![T::default(); local_rows * cd.ncols],
    };
    for (src, piece) in received.into_iter().enumerate() {
        let (c0, cn) = block_range(cd.ncols, p, src);
        debug_assert_eq!(piece.len(), local_rows * cn);
        for (idx, v) in piece.into_iter().enumerate() {
            let c = c0 + idx / local_rows;
            let r = idx % local_rows;
            out.data[r * cd.ncols + c] = v;
        }
    }
    out
}

/// Gather a row-distributed matrix to rank 0 as a full row-major matrix.
pub fn gather_rows<T: FixedSize + Default>(ctx: &mut Ctx, rd: &RowDist<T>) -> Option<Vec<T>> {
    let parts = ctx.gather(0, rd.data.clone());
    parts.map(|parts| {
        let mut out = Vec::with_capacity(rd.nrows * rd.ncols);
        for p in parts {
            out.extend(p);
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use archetype_mp::{run_spmd, MachineModel};

    fn val(r: usize, c: usize) -> f64 {
        (r * 1000 + c) as f64
    }

    #[test]
    fn row_views_are_consistent() {
        let rd = RowDist::from_global(0, 1, 3, 4, val);
        assert_eq!(rd.row(1), &[val(1, 0), val(1, 1), val(1, 2), val(1, 3)]);
        let mut rd = rd;
        rd.row_mut(2)[3] = -1.0;
        assert_eq!(rd.row(2)[3], -1.0);
    }

    #[test]
    fn for_each_row_reports_global_indices() {
        let rd = RowDist::from_global(1, 2, 6, 2, val);
        let mut seen = Vec::new();
        let mut rd = rd;
        rd.for_each_row_mut(|g, _row| seen.push(g));
        assert_eq!(seen, vec![3, 4, 5]);
    }

    #[test]
    fn rows_to_cols_transposes_ownership() {
        for p in [1usize, 2, 3, 5] {
            for (nr, nc) in [(8usize, 8usize), (7, 9), (5, 12)] {
                let out = run_spmd(p, MachineModel::ibm_sp(), move |ctx| {
                    let rd = RowDist::from_global(ctx.rank(), ctx.nprocs(), nr, nc, val);
                    let cd = rows_to_cols(ctx, &rd);
                    // Every local column must hold the full global column.
                    for c in 0..cd.local_cols {
                        let gcol = cd.col0 + c;
                        for r in 0..cd.nrows {
                            assert_eq!(cd.col(c)[r], val(r, gcol), "p={p} {nr}x{nc}");
                        }
                    }
                    cd.local_cols
                });
                let total: usize = out.results.iter().sum();
                assert_eq!(total, nc, "columns partitioned exactly");
            }
        }
    }

    #[test]
    fn round_trip_restores_row_distribution() {
        for p in [1usize, 2, 4, 6] {
            run_spmd(p, MachineModel::ibm_sp(), move |ctx| {
                let rd = RowDist::from_global(ctx.rank(), ctx.nprocs(), 10, 6, val);
                let cd = rows_to_cols(ctx, &rd);
                let back = cols_to_rows(ctx, &cd);
                assert_eq!(back, rd, "p={p}");
            });
        }
    }

    #[test]
    fn gather_rows_orders_by_rank() {
        let out = run_spmd(3, MachineModel::ibm_sp(), |ctx| {
            let rd = RowDist::from_global(ctx.rank(), 3, 7, 2, val);
            gather_rows(ctx, &rd)
        });
        let full = out.results[0].as_ref().expect("root");
        let expected: Vec<f64> = (0..7)
            .flat_map(|r| (0..2).map(move |c| val(r, c)))
            .collect();
        assert_eq!(full, &expected);
    }

    #[test]
    fn col_mutation_via_for_each_col() {
        run_spmd(2, MachineModel::ibm_sp(), |ctx| {
            let rd = RowDist::from_global(ctx.rank(), 2, 4, 4, val);
            let mut cd = rows_to_cols(ctx, &rd);
            cd.for_each_col_mut(|g, col| {
                for v in col.iter_mut() {
                    *v += g as f64 * 1e6;
                }
            });
            // Spot-check: column `col0` cell row 2.
            let g = cd.col0;
            assert_eq!(cd.col(0)[2], val(2, g) + g as f64 * 1e6);
        });
    }
}
