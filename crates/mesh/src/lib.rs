//! # archetype-mesh — the mesh-spectral archetype
//!
//! Implementation of §3 of Massingill & Chandy, "Parallel Program
//! Archetypes" (IPPS 1999): computations over N-dimensional grids built
//! from grid operations, row/column operations, reductions, and file I/O,
//! with the communication operations the archetype's dataflow requires —
//! boundary (ghost) exchange, grid redistribution, broadcast of globals,
//! and reductions.
//!
//! Substrate modules:
//! - [`block`]: local grid sections with ghost layers ([`block::Block2`],
//!   [`block::Block3`]);
//! - [`grid2`] / [`grid3`]: block-distributed grids with ghost exchange,
//!   global gather, and reductions;
//! - [`redist`]: row/column distributions and the rows↔columns
//!   redistribution (Figure 6 of the paper);
//! - [`globals`]: replicated global variables with enforced copy
//!   consistency (only reductions and broadcasts may write);
//! - [`io`]: grid file output (PGM field snapshots, CSV series).
//!
//! Applications (each in both "version 1" shared-memory and "version 2"
//! SPMD form, with equivalence tests):
//! - [`apps::fft2d`] — two-dimensional FFT (§3.5, Figures 10–12);
//! - [`apps::poisson`] — Jacobi Poisson solver (§3.6, Figures 13–15);
//! - [`apps::cfd`] — compressible-flow CFD kernel (§3.7.1, Figures 16, 19, 20);
//! - [`apps::em_fdtd`] — 3-D FDTD electromagnetics kernel (§3.7.2, Figure 17);
//! - [`apps::spectral_flow`] — axisymmetric spectral flow kernel (§3.7.3,
//!   Figures 18, 21);
//! - [`apps::airshed`] — advection–diffusion–photochemistry smog model
//!   (§3.7.4).

pub mod apps;
pub mod block;
pub mod globals;
pub mod grid2;
pub mod grid3;
pub mod io;
pub mod perfmodel;
pub mod redist;

pub use block::{Block2, Block3};
pub use globals::GlobalVar;
pub use grid2::DistGrid2;
pub use grid3::DistGrid3;
pub use redist::{cols_to_rows, gather_rows, rows_to_cols, ColDist, RowDist};
