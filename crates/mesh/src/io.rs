//! File input/output operations for grids (paper §3.1: "file input-output
//! operations which read or write values for a grid"; §3.2: "one
//! possibility is to operate on all data sequentially in a single
//! process").
//!
//! Output formats are deliberately simple and dependency-free: binary PGM
//! (P5) images for field snapshots — how this reproduction renders the
//! paper's Figures 19–21 — and CSV for numeric series.

use std::io::Write as _;
use std::path::Path;

/// Normalize a scalar field to 0..=255 and write it as a binary PGM image
/// (`nx` rows × `ny` columns, row-major).
pub fn write_pgm(path: &Path, data: &[f64], nx: usize, ny: usize) -> std::io::Result<()> {
    assert_eq!(data.len(), nx * ny, "field size must match dimensions");
    let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "P5")?;
    writeln!(f, "{ny} {nx}")?;
    writeln!(f, "255")?;
    let bytes: Vec<u8> = data
        .iter()
        .map(|v| (255.0 * (v - lo) / span).round().clamp(0.0, 255.0) as u8)
        .collect();
    f.write_all(&bytes)?;
    Ok(())
}

/// Write `(x, series₁, series₂, …)` rows as CSV with a header line.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<f64>]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(f, "{}", line.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_has_correct_header_and_size() {
        let dir = std::env::temp_dir().join("archetype_mesh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.pgm");
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        write_pgm(&p, &data, 3, 4).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        let text = String::from_utf8_lossy(&bytes[..12]);
        assert!(text.starts_with("P5\n4 3\n255\n"));
        assert_eq!(bytes.len(), 11 + 12);
        // Lowest value maps to 0, highest to 255.
        assert_eq!(bytes[11], 0);
        assert_eq!(*bytes.last().unwrap(), 255);
    }

    #[test]
    fn pgm_constant_field_does_not_divide_by_zero() {
        let dir = std::env::temp_dir().join("archetype_mesh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("c.pgm");
        write_pgm(&p, &[5.0; 6], 2, 3).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        assert!(bytes[11..].iter().all(|&b| b == 0));
    }

    #[test]
    fn csv_round_trip_text() {
        let dir = std::env::temp_dir().join("archetype_mesh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.csv");
        write_csv(&p, &["p", "speedup"], &[vec![1.0, 1.0], vec![2.0, 1.9]]).unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s, "p,speedup\n1,1\n2,1.9\n");
    }
}
