//! Replicated global variables with copy consistency.
//!
//! "Distributed memory introduces the additional requirement that each
//! process have a duplicate copy of any global variables with their values
//! kept synchronized — any change to such a variable must be duplicated in
//! each process before the value of the variable is used again" (paper
//! §3.2). [`GlobalVar`] enforces that discipline in the type system: the
//! value can only be *read*, or *replaced through operations that
//! re-establish consistency* (a reduction or a broadcast).

use archetype_mp::{Ctx, Payload};

/// A global variable replicated across all SPMD processes.
///
/// The only mutators are [`GlobalVar::reduce_from`] (every rank
/// contributes; the combined value is installed everywhere via recursive
/// doubling) and [`GlobalVar::broadcast_from`] (one rank's value is
/// installed everywhere) — exactly the two consistency-restoring
/// operations the archetype allows.
#[derive(Clone, Debug)]
pub struct GlobalVar<T> {
    value: T,
}

impl<T: Payload + Clone + Sync> GlobalVar<T> {
    /// Create with an initial value. The initializer must be the same
    /// expression on every rank (like the paper's replicated
    /// initialization); this is the caller's obligation.
    pub fn new(value: T) -> Self {
        GlobalVar { value }
    }

    /// Read the (consistent) value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Combine every rank's `local` with the associative `op` and install
    /// the result on all ranks. Returns the new value.
    pub fn reduce_from(&mut self, ctx: &mut Ctx, local: T, op: impl Fn(T, T) -> T) -> &T {
        self.value = ctx.all_reduce(local, op);
        &self.value
    }

    /// Install `value` from rank `root` on all ranks (pass `None` on other
    /// ranks). Returns the new value.
    pub fn broadcast_from(&mut self, ctx: &mut Ctx, root: usize, value: Option<T>) -> &T {
        self.value = ctx.broadcast(root, value);
        &self.value
    }

    /// Assert (by gathering to rank 0) that all copies are identical; for
    /// tests of the copy-consistency discipline. Returns true on rank 0,
    /// true trivially elsewhere.
    pub fn check_consistent(&self, ctx: &mut Ctx) -> bool
    where
        T: PartialEq,
    {
        match ctx.gather(0, self.value.clone()) {
            Some(copies) => copies.iter().all(|c| *c == self.value),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archetype_mp::{run_spmd, MachineModel};

    #[test]
    fn reduce_installs_same_value_everywhere() {
        let out = run_spmd(5, MachineModel::ibm_sp(), |ctx| {
            let mut dv = GlobalVar::new(0.0f64);
            dv.reduce_from(ctx, (ctx.rank() + 1) as f64, f64::max);
            assert!(dv.check_consistent(ctx));
            *dv.get()
        });
        assert!(out.results.iter().all(|&v| v == 5.0));
    }

    #[test]
    fn broadcast_installs_roots_value() {
        let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
            let mut gv = GlobalVar::new(0u64);
            let v = (ctx.rank() == 2).then_some(77u64);
            gv.broadcast_from(ctx, 2, v);
            *gv.get()
        });
        assert!(out.results.iter().all(|&v| v == 77));
    }

    #[test]
    fn convergence_loop_pattern_terminates_identically() {
        // The Poisson control-flow pattern: loop while diffmax > tol, with
        // diffmax a GlobalVar updated by reduction. All ranks must run the
        // same number of iterations.
        let out = run_spmd(3, MachineModel::ibm_sp(), |ctx| {
            let mut diffmax = GlobalVar::new(1.0f64);
            let mut iters = 0;
            while *diffmax.get() > 0.1 {
                let local = *diffmax.get() * (0.5 + 0.1 * ctx.rank() as f64);
                diffmax.reduce_from(ctx, local, f64::max);
                iters += 1;
            }
            iters
        });
        assert!(out.results.iter().all(|&i| i == out.results[0]));
        assert!(out.results[0] > 1);
    }
}
