//! Analytic performance model for mesh-spectral stencil computations.
//!
//! The archetype-based performance-model idea of the paper (§1.1, citing
//! the authors' technical report on mesh and mesh-spectral performance
//! analysis): because the archetype fixes the communication pattern, the
//! per-step time of a stencil application is a closed form in the machine
//! parameters — compute on the local block, a ghost exchange proportional
//! to the block perimeter, and optionally a logarithmic reduction. The
//! predictions are validated against the virtual-time simulator in tests,
//! and can answer distribution questions (block vs strip) without running
//! anything.

use archetype_mp::{MachineModel, ProcessGrid2};

/// Closed-form per-step time of a 2-D stencil computation on an
/// `nx × ny` grid of `elem_bytes`-sized cells over `pgrid`, doing
/// `flops_per_cell` work per cell, exchanging `ghost` boundary layers with
/// up to four neighbours, plus `reductions` all-reduces per step.
#[allow(clippy::too_many_arguments)]
pub fn predict_stencil_step(
    model: &MachineModel,
    nx: usize,
    ny: usize,
    elem_bytes: usize,
    pgrid: ProcessGrid2,
    flops_per_cell: f64,
    ghost: usize,
    reductions: usize,
) -> f64 {
    let local_x = (nx as f64 / pgrid.px as f64).ceil();
    let local_y = (ny as f64 / pgrid.py as f64).ceil();
    let per_msg = model.send_overhead + model.latency + model.recv_overhead;

    // Compute on the (largest) local block.
    let t_compute = local_x * local_y * flops_per_cell * model.flop_time;

    // Ghost exchange: an interior process posts all sends first, then
    // drains the receives, so the four transfers overlap — the critical
    // path is the per-side CPU overheads plus one latency plus the wire
    // time of the largest face.
    let north_south = if pgrid.px > 1 { 2.0 } else { 0.0 };
    let east_west = if pgrid.py > 1 { 2.0 } else { 0.0 };
    let n_sides = north_south + east_west;
    let wire_ns = ghost as f64 * local_y * elem_bytes as f64 * model.byte_time;
    let wire_ew = ghost as f64 * local_x * elem_bytes as f64 * model.byte_time;
    let max_wire = if north_south > 0.0 { wire_ns } else { 0.0 }.max(if east_west > 0.0 {
        wire_ew
    } else {
        0.0
    });
    let t_exchange = if n_sides > 0.0 {
        n_sides * (model.send_overhead + model.recv_overhead) + model.latency + max_wire
    } else {
        0.0
    };

    // Recursive-doubling all-reduce: each round is one overlapped
    // send+receive on the critical path; non-powers-of-two pay two extra
    // fold/unfold rounds (scalar payloads — wire time negligible).
    let p = pgrid.len();
    let t_reduce = if p > 1 {
        let mut rounds =
            (p.next_power_of_two().trailing_zeros() - u32::from(!p.is_power_of_two())) as f64;
        if !p.is_power_of_two() {
            rounds += 2.0;
        }
        reductions as f64 * rounds * per_msg
    } else {
        0.0
    };

    t_compute + t_exchange + t_reduce
}

/// Predicted speedup of a stencil run versus one process of the same
/// machine.
#[allow(clippy::too_many_arguments)]
pub fn predict_stencil_speedup(
    model: &MachineModel,
    nx: usize,
    ny: usize,
    elem_bytes: usize,
    pgrid: ProcessGrid2,
    flops_per_cell: f64,
    ghost: usize,
    reductions: usize,
) -> f64 {
    let t_seq = nx as f64 * ny as f64 * flops_per_cell * model.flop_time;
    t_seq
        / predict_stencil_step(
            model,
            nx,
            ny,
            elem_bytes,
            pgrid,
            flops_per_cell,
            ghost,
            reductions,
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::poisson::{poisson_spmd, sine_problem};
    use archetype_mp::{run_spmd, MachineModel};

    #[test]
    fn prediction_tracks_poisson_simulation_within_35_percent() {
        let n = 256;
        let steps = 20;
        let model = MachineModel::ibm_sp();
        let spec = sine_problem(n, 0.0, steps);
        for p in [4usize, 9, 16] {
            let pg = ProcessGrid2::near_square(p);
            let sim = run_spmd(p, model, move |ctx| {
                poisson_spmd(ctx, &spec, pg);
            })
            .elapsed_virtual;
            // The Poisson SPMD loop charges 8 flops/cell and performs one
            // ghost exchange + one max-reduction per sweep.
            let pred = steps as f64 * predict_stencil_step(&model, n, n, 8, pg, 8.0, 1, 1);
            let ratio = pred / sim;
            assert!(
                (0.65..=1.35).contains(&ratio),
                "p={p}: predicted {pred:.4}, simulated {sim:.4} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn model_prefers_blocks_over_strips() {
        // The ablation result, derived analytically: for a square grid the
        // near-square decomposition exchanges less than 1×P strips.
        let model = MachineModel::ibm_sp();
        for p in [16usize, 36, 64] {
            let block =
                predict_stencil_step(&model, 512, 512, 8, ProcessGrid2::near_square(p), 8.0, 1, 1);
            let strip =
                predict_stencil_step(&model, 512, 512, 8, ProcessGrid2::new(1, p), 8.0, 1, 1);
            assert!(block < strip, "p={p}: block {block} vs strip {strip}");
        }
    }

    #[test]
    fn speedup_declines_when_compute_shrinks() {
        // The Figure 12/17 mechanism in closed form: on a small grid the
        // marginal efficiency of extra processors collapses.
        let model = MachineModel::ibm_sp();
        let eff = |p: usize, n: usize| {
            predict_stencil_speedup(&model, n, n, 8, ProcessGrid2::near_square(p), 8.0, 1, 1)
                / p as f64
        };
        assert!(eff(64, 64) < 0.3, "tiny grid, many procs: {}", eff(64, 64));
        assert!(eff(4, 1024) > 0.8, "big grid, few procs: {}", eff(4, 1024));
    }

    #[test]
    fn single_process_has_no_communication_terms() {
        let model = MachineModel::ibm_sp();
        let t = predict_stencil_step(&model, 100, 100, 8, ProcessGrid2::new(1, 1), 5.0, 1, 0);
        assert!((t - 100.0 * 100.0 * 5.0 * model.flop_time).abs() < 1e-12);
    }
}
