//! Distributed 2-D grids with ghost-boundary exchange.
//!
//! A [`DistGrid2`] is one process's view of a global `NX × NY` grid
//! distributed in contiguous blocks over an `NPX × NPY` process grid
//! (paper §3.6.3). It pairs a [`Block2`] local section with the global
//! metadata needed to map local to global coordinates, exchange ghost
//! boundaries with the four neighbours (Figure 7), reduce over the whole
//! grid, and gather the global grid to one process for output.

use archetype_mp::topology::block_range;
use archetype_mp::{Ctx, FixedSize, ProcessGrid2};

use crate::block::Block2;

/// One process's block of a distributed 2-D grid.
#[derive(Clone, Debug)]
pub struct DistGrid2<T> {
    /// Global grid extent along `i`.
    pub global_nx: usize,
    /// Global grid extent along `j`.
    pub global_ny: usize,
    /// The process grid the data is distributed over.
    pub pgrid: ProcessGrid2,
    /// This process's rank.
    pub rank: usize,
    /// Global index of local interior cell `(0, 0)` along `i`.
    pub x0: usize,
    /// Global index of local interior cell `(0, 0)` along `j`.
    pub y0: usize,
    /// The local section (interior + ghosts).
    pub block: Block2<T>,
}

impl<T: FixedSize> DistGrid2<T> {
    /// Create the local block for `rank` of a `global_nx × global_ny` grid
    /// distributed over `pgrid`, with `g` ghost layers, filled with `fill`.
    pub fn new(
        rank: usize,
        pgrid: ProcessGrid2,
        global_nx: usize,
        global_ny: usize,
        g: usize,
        fill: T,
    ) -> Self {
        let (pi, pj) = pgrid.coords_of(rank);
        let (x0, nx) = block_range(global_nx, pgrid.px, pi);
        let (y0, ny) = block_range(global_ny, pgrid.py, pj);
        DistGrid2 {
            global_nx,
            global_ny,
            pgrid,
            rank,
            x0,
            y0,
            block: Block2::new(nx, ny, g, fill),
        }
    }

    /// Create and fill the interior from a function of *global* coordinates.
    pub fn from_global(
        rank: usize,
        pgrid: ProcessGrid2,
        global_nx: usize,
        global_ny: usize,
        g: usize,
        fill: T,
        f: impl Fn(usize, usize) -> T,
    ) -> Self {
        let mut grid = Self::new(rank, pgrid, global_nx, global_ny, g, fill);
        let (x0, y0) = (grid.x0, grid.y0);
        grid.block.fill_interior(|i, j| f(x0 + i, y0 + j));
        grid
    }

    /// Local interior extent along `i`.
    pub fn nx(&self) -> usize {
        self.block.nx
    }

    /// Local interior extent along `j`.
    pub fn ny(&self) -> usize {
        self.block.ny
    }

    /// True if local cell `(i, j)` lies on the *global* grid boundary.
    pub fn on_global_boundary(&self, i: usize, j: usize) -> bool {
        let gi = self.x0 + i;
        let gj = self.y0 + j;
        gi == 0 || gj == 0 || gi == self.global_nx - 1 || gj == self.global_ny - 1
    }

    /// Exchange ghost boundaries with the four neighbours (paper Figure 7).
    ///
    /// Sends the `g` interior layers adjacent to each side and receives the
    /// neighbour's into the ghost layers. Ghost cells on the global domain
    /// boundary are left untouched (applications impose their own boundary
    /// conditions there). Must be called by every rank of the process grid.
    pub fn exchange_ghosts(&mut self, ctx: &mut Ctx) {
        let tag = ctx.phase_tag();
        let g = self.block.g as isize;
        let (nx, ny) = (self.nx() as isize, self.ny() as isize);
        let north = self.pgrid.north(self.rank);
        let south = self.pgrid.south(self.rank);
        let west = self.pgrid.west(self.rank);
        let east = self.pgrid.east(self.rank);

        // Pack and send all four sides first (sends are buffered), then
        // receive — the standard deadlock-free exchange. North/south rows
        // hit `pack_into`'s contiguous memcpy path; west/east columns its
        // strided path.
        if let Some(nb) = north {
            let mut buf = Vec::with_capacity((g * ny) as usize);
            for l in 0..g {
                self.block.pack_into(l, 0, 0, 1, ny as usize, &mut buf);
            }
            ctx.send(nb, tag, buf);
        }
        if let Some(nb) = south {
            let mut buf = Vec::with_capacity((g * ny) as usize);
            for l in 0..g {
                self.block
                    .pack_into(nx - g + l, 0, 0, 1, ny as usize, &mut buf);
            }
            ctx.send(nb, tag | 1, buf);
        }
        if let Some(nb) = west {
            let mut buf = Vec::with_capacity((g * nx) as usize);
            for l in 0..g {
                self.block.pack_into(0, l, 1, 0, nx as usize, &mut buf);
            }
            ctx.send(nb, tag | 2, buf);
        }
        if let Some(nb) = east {
            let mut buf = Vec::with_capacity((g * nx) as usize);
            for l in 0..g {
                self.block
                    .pack_into(0, ny - g + l, 1, 0, nx as usize, &mut buf);
            }
            ctx.send(nb, tag | 3, buf);
        }

        // Receive: the neighbour's southern layers fill our northern ghosts
        // (their tag 1 arrives at us), and so on.
        if let Some(nb) = north {
            let buf: Vec<T> = ctx.recv(nb, tag | 1);
            for l in 0..g {
                let start = (l * ny) as usize;
                self.block
                    .unpack(-g + l, 0, 0, 1, &buf[start..start + ny as usize]);
            }
        }
        if let Some(nb) = south {
            let buf: Vec<T> = ctx.recv(nb, tag);
            for l in 0..g {
                let start = (l * ny) as usize;
                self.block
                    .unpack(nx + l, 0, 0, 1, &buf[start..start + ny as usize]);
            }
        }
        if let Some(nb) = west {
            let buf: Vec<T> = ctx.recv(nb, tag | 3);
            for l in 0..g {
                let start = (l * nx) as usize;
                self.block
                    .unpack(0, -g + l, 1, 0, &buf[start..start + nx as usize]);
            }
        }
        if let Some(nb) = east {
            let buf: Vec<T> = ctx.recv(nb, tag | 2);
            for l in 0..g {
                let start = (l * nx) as usize;
                self.block
                    .unpack(0, ny + l, 1, 0, &buf[start..start + nx as usize]);
            }
        }
    }

    /// Gather the global interior to rank 0, row-major `global_nx × global_ny`.
    /// Rank 0 returns `Some(grid)`, others `None`. Supports the archetype's
    /// sequential-in-one-process file I/O pattern.
    pub fn gather_global(&self, ctx: &mut Ctx) -> Option<Vec<T>>
    where
        T: Default,
    {
        let contributions = ctx.gather(0, self.block.interior());
        contributions.map(|parts| {
            let mut out = vec![T::default(); self.global_nx * self.global_ny];
            for (r, part) in parts.into_iter().enumerate() {
                let (pi, pj) = self.pgrid.coords_of(r);
                let (x0, nx) = block_range(self.global_nx, self.pgrid.px, pi);
                let (y0, ny) = block_range(self.global_ny, self.pgrid.py, pj);
                debug_assert_eq!(part.len(), nx * ny);
                for i in 0..nx {
                    for j in 0..ny {
                        out[(x0 + i) * self.global_ny + (y0 + j)] = part[i * ny + j];
                    }
                }
            }
            out
        })
    }
}

impl DistGrid2<f64> {
    /// Reduce `map(cell)` over the whole grid's interior with the
    /// associative `op`, returning the result on every rank (implemented
    /// with recursive doubling; the paper's reduction postcondition: "all
    /// processes have access to its result").
    pub fn all_reduce_interior(
        &self,
        ctx: &mut Ctx,
        map: impl Fn(f64) -> f64,
        op: impl Fn(f64, f64) -> f64,
        identity: f64,
    ) -> f64 {
        let local = self.block.fold_interior(identity, |acc, v| op(acc, map(v)));
        ctx.all_reduce(local, &op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archetype_mp::{run_spmd, MachineModel};

    #[test]
    fn block_layout_covers_global_grid_exactly() {
        let pg = ProcessGrid2::new(2, 3);
        let mut covered = vec![0u32; 7 * 11];
        for r in 0..pg.len() {
            let g = DistGrid2::new(r, pg, 7, 11, 1, 0.0f64);
            for i in 0..g.nx() {
                for j in 0..g.ny() {
                    covered[(g.x0 + i) * 11 + (g.y0 + j)] += 1;
                }
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "exact partition");
    }

    #[test]
    fn from_global_fills_with_global_coordinates() {
        let pg = ProcessGrid2::new(2, 2);
        let g = DistGrid2::from_global(3, pg, 8, 8, 1, 0.0, |i, j| (i * 100 + j) as f64);
        // Rank 3 is the (1,1) block: global offset (4,4).
        assert_eq!(g.x0, 4);
        assert_eq!(g.y0, 4);
        assert_eq!(g.block.at(0, 0), 404.0);
        assert_eq!(g.block.at(3, 3), 707.0);
    }

    #[test]
    fn ghost_exchange_delivers_neighbor_interiors() {
        let pg = ProcessGrid2::new(2, 2);
        let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
            let mut g =
                DistGrid2::from_global(ctx.rank(), pg, 8, 8, 1, -1.0, |i, j| (i * 10 + j) as f64);
            g.exchange_ghosts(ctx);
            g
        });
        // Rank 0 is block (0,0): its southern ghost row (i=4 in local
        // coords nx=4) must hold rank 2's first interior row (global i=4).
        let g0 = &out.results[0];
        for j in 0..4 {
            assert_eq!(g0.block.at(4, j as isize), (4 * 10 + j) as f64);
        }
        // Its eastern ghost column holds rank 1's first interior column.
        for i in 0..4 {
            assert_eq!(g0.block.at(i as isize, 4), (i * 10 + 4) as f64);
        }
        // Global-boundary ghosts are untouched.
        assert_eq!(g0.block.at(-1, 0), -1.0);
        assert_eq!(g0.block.at(0, -1), -1.0);
    }

    #[test]
    fn ghost_exchange_with_width_two() {
        let pg = ProcessGrid2::new(2, 1);
        let out = run_spmd(2, MachineModel::ibm_sp(), |ctx| {
            let mut g = DistGrid2::from_global(ctx.rank(), pg, 8, 4, 2, f64::NAN, |i, j| {
                (i * 100 + j) as f64
            });
            g.exchange_ghosts(ctx);
            g
        });
        let g0 = &out.results[0];
        // Rank 0's two southern ghost rows are rank 1's first two interior rows.
        for j in 0..4isize {
            assert_eq!(g0.block.at(4, j), (400 + j) as f64);
            assert_eq!(g0.block.at(5, j), (500 + j) as f64);
        }
        let g1 = &out.results[1];
        for j in 0..4isize {
            assert_eq!(g1.block.at(-2, j), (200 + j) as f64);
            assert_eq!(g1.block.at(-1, j), (300 + j) as f64);
        }
    }

    #[test]
    fn gather_global_reassembles_grid() {
        for (px, py) in [(1, 1), (2, 2), (3, 2)] {
            let pg = ProcessGrid2::new(px, py);
            let out = run_spmd(pg.len(), MachineModel::ibm_sp(), |ctx| {
                let g =
                    DistGrid2::from_global(ctx.rank(), pg, 9, 7, 1, 0.0, |i, j| (i * 7 + j) as f64);
                g.gather_global(ctx)
            });
            let global = out.results[0].as_ref().expect("rank 0 has the grid");
            let expected: Vec<f64> = (0..9 * 7).map(|k| k as f64).collect();
            assert_eq!(global, &expected, "{px}x{py}");
            for r in 1..pg.len() {
                assert!(out.results[r].is_none());
            }
        }
    }

    #[test]
    fn all_reduce_interior_computes_global_max() {
        let pg = ProcessGrid2::new(2, 2);
        let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
            let g = DistGrid2::from_global(ctx.rank(), pg, 6, 6, 1, 0.0, |i, j| (i * 6 + j) as f64);
            g.all_reduce_interior(ctx, |v| v, f64::max, f64::NEG_INFINITY)
        });
        for v in &out.results {
            assert_eq!(*v, 35.0);
        }
    }

    #[test]
    fn on_global_boundary_detection() {
        let pg = ProcessGrid2::new(2, 2);
        let g = DistGrid2::new(3, pg, 8, 8, 1, 0.0f64); // block (1,1)
        assert!(!g.on_global_boundary(0, 0)); // global (4,4)
        assert!(g.on_global_boundary(3, 0)); // global (7,4)
        assert!(g.on_global_boundary(0, 3)); // global (4,7)
    }
}
