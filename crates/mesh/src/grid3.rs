//! Distributed 3-D grids with ghost-boundary exchange — the substrate of
//! the electromagnetic scattering (FDTD) application, which the paper
//! bases on "the three-dimensional mesh archetype" (§3.7.2).

use archetype_mp::topology::block_range;
use archetype_mp::{Ctx, FixedSize, ProcessGrid3};

use crate::block::Block3;

/// One process's block of a distributed 3-D grid.
#[derive(Clone, Debug)]
pub struct DistGrid3<T> {
    /// Global extent along `i`.
    pub global_nx: usize,
    /// Global extent along `j`.
    pub global_ny: usize,
    /// Global extent along `k`.
    pub global_nz: usize,
    /// The process grid.
    pub pgrid: ProcessGrid3,
    /// This process's rank.
    pub rank: usize,
    /// Global index of local `(0,0,0)` along `i`.
    pub x0: usize,
    /// Global index of local `(0,0,0)` along `j`.
    pub y0: usize,
    /// Global index of local `(0,0,0)` along `k`.
    pub z0: usize,
    /// The local section (interior + ghosts).
    pub block: Block3<T>,
}

impl<T: FixedSize> DistGrid3<T> {
    /// Create the local block for `rank`, with `g` ghost layers.
    pub fn new(
        rank: usize,
        pgrid: ProcessGrid3,
        global_nx: usize,
        global_ny: usize,
        global_nz: usize,
        g: usize,
        fill: T,
    ) -> Self {
        let (pi, pj, pk) = pgrid.coords_of(rank);
        let (x0, nx) = block_range(global_nx, pgrid.px, pi);
        let (y0, ny) = block_range(global_ny, pgrid.py, pj);
        let (z0, nz) = block_range(global_nz, pgrid.pz, pk);
        DistGrid3 {
            global_nx,
            global_ny,
            global_nz,
            pgrid,
            rank,
            x0,
            y0,
            z0,
            block: Block3::new(nx, ny, nz, g, fill),
        }
    }

    /// Create and fill the interior from a function of global coordinates.
    #[allow(clippy::too_many_arguments)]
    pub fn from_global(
        rank: usize,
        pgrid: ProcessGrid3,
        global_nx: usize,
        global_ny: usize,
        global_nz: usize,
        g: usize,
        fill: T,
        f: impl Fn(usize, usize, usize) -> T,
    ) -> Self {
        let mut grid = Self::new(rank, pgrid, global_nx, global_ny, global_nz, g, fill);
        let (x0, y0, z0) = (grid.x0, grid.y0, grid.z0);
        for i in 0..grid.block.nx {
            for j in 0..grid.block.ny {
                for k in 0..grid.block.nz {
                    grid.block.set(
                        i as isize,
                        j as isize,
                        k as isize,
                        f(x0 + i, y0 + j, z0 + k),
                    );
                }
            }
        }
        grid
    }

    /// Local interior extents.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.block.nx, self.block.ny, self.block.nz)
    }

    /// Exchange one ghost layer on all six faces with the face neighbours.
    ///
    /// Only `g = 1` exchanges are implemented (sufficient for the Yee
    /// stencil); must be called by every rank.
    pub fn exchange_ghosts(&mut self, ctx: &mut Ctx) {
        assert_eq!(self.block.g, 1, "3-D exchange supports ghost width 1");
        let tag = ctx.phase_tag();
        let dims = [
            self.block.nx as isize,
            self.block.ny as isize,
            self.block.nz as isize,
        ];

        // Send the boundary plane toward each existing neighbour.
        #[allow(clippy::needless_range_loop)] // axis indexes dims
        for axis in 0..3usize {
            for dir_idx in [-1isize, 1] {
                if let Some(nb) = self.pgrid.neighbor(self.rank, axis, dir_idx) {
                    let plane = if dir_idx < 0 { 0 } else { dims[axis] - 1 };
                    let face = self.block.pack_face(axis, plane);
                    let code = (axis as u64) * 2 + u64::from(dir_idx > 0);
                    ctx.send(nb, tag | code, face);
                }
            }
        }
        // Receive each neighbour's opposite face into our ghost plane.
        #[allow(clippy::needless_range_loop)] // axis indexes dims
        for axis in 0..3usize {
            for dir_idx in [-1isize, 1] {
                if let Some(nb) = self.pgrid.neighbor(self.rank, axis, dir_idx) {
                    // Our -1 neighbour sent its +1 face (code axis*2+1).
                    let code = (axis as u64) * 2 + u64::from(dir_idx < 0);
                    let face: Vec<T> = ctx.recv(nb, tag | code);
                    let ghost_plane = if dir_idx < 0 { -1 } else { dims[axis] };
                    self.block.unpack_face(axis, ghost_plane, &face);
                }
            }
        }
    }
}

impl<T: FixedSize> DistGrid3<T> {
    /// Gather the global interior to rank 0, row-major
    /// `global_nx × global_ny × global_nz`. Rank 0 returns `Some`, others
    /// `None`.
    pub fn gather_global(&self, ctx: &mut Ctx) -> Option<Vec<T>>
    where
        T: Default,
    {
        let mut interior = Vec::with_capacity(self.block.nx * self.block.ny * self.block.nz);
        for i in 0..self.block.nx {
            for j in 0..self.block.ny {
                for k in 0..self.block.nz {
                    interior.push(self.block.at(i as isize, j as isize, k as isize));
                }
            }
        }
        let contributions = ctx.gather(0, interior);
        contributions.map(|parts| {
            let (gnx, gny, gnz) = (self.global_nx, self.global_ny, self.global_nz);
            let mut out = vec![T::default(); gnx * gny * gnz];
            for (r, part) in parts.into_iter().enumerate() {
                let (pi, pj, pk) = self.pgrid.coords_of(r);
                let (x0, nx) = block_range(gnx, self.pgrid.px, pi);
                let (y0, ny) = block_range(gny, self.pgrid.py, pj);
                let (z0, nz) = block_range(gnz, self.pgrid.pz, pk);
                debug_assert_eq!(part.len(), nx * ny * nz);
                let mut it = part.into_iter();
                for i in 0..nx {
                    for j in 0..ny {
                        for k in 0..nz {
                            out[((x0 + i) * gny + (y0 + j)) * gnz + (z0 + k)] =
                                it.next().expect("length checked");
                        }
                    }
                }
            }
            out
        })
    }
}

impl DistGrid3<f64> {
    /// Reduce `map(cell)` over the global interior with associative `op`;
    /// result available on every rank.
    pub fn all_reduce_interior(
        &self,
        ctx: &mut Ctx,
        map: impl Fn(f64) -> f64,
        op: impl Fn(f64, f64) -> f64,
        identity: f64,
    ) -> f64 {
        let local = self.block.fold_interior(identity, |acc, v| op(acc, map(v)));
        ctx.all_reduce(local, &op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archetype_mp::{run_spmd, MachineModel};

    #[test]
    fn blocks_partition_the_global_volume() {
        let pg = ProcessGrid3::new(2, 2, 2);
        let mut covered = vec![0u32; 6 * 6 * 6];
        for r in 0..8 {
            let g = DistGrid3::new(r, pg, 6, 6, 6, 1, 0.0f64);
            let (nx, ny, nz) = g.dims();
            for i in 0..nx {
                for j in 0..ny {
                    for k in 0..nz {
                        covered[((g.x0 + i) * 6 + (g.y0 + j)) * 6 + (g.z0 + k)] += 1;
                    }
                }
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn ghost_exchange_all_axes() {
        let pg = ProcessGrid3::new(2, 2, 2);
        let out = run_spmd(8, MachineModel::ibm_sp(), |ctx| {
            let mut g = DistGrid3::from_global(ctx.rank(), pg, 4, 4, 4, 1, -1.0, |i, j, k| {
                (i * 100 + j * 10 + k) as f64
            });
            g.exchange_ghosts(ctx);
            g
        });
        // Rank 0 owns the (0,0,0) octant (local 2x2x2). Its +i ghost plane
        // must be rank 4's i=2 plane (global i=2).
        let g0 = &out.results[0];
        for j in 0..2isize {
            for k in 0..2isize {
                assert_eq!(g0.block.at(2, j, k), (200 + j * 10 + k) as f64);
                assert_eq!(g0.block.at(j, 2, k), (j * 100 + 20 + k) as f64);
                assert_eq!(g0.block.at(j, k, 2), (j * 100 + k * 10 + 2) as f64);
            }
        }
        // Domain-boundary ghosts untouched.
        assert_eq!(g0.block.at(-1, 0, 0), -1.0);
    }

    #[test]
    fn all_reduce_interior_sums_global_volume() {
        let pg = ProcessGrid3::new(2, 1, 2);
        let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
            let g = DistGrid3::from_global(ctx.rank(), pg, 4, 3, 4, 1, 0.0, |_, _, _| 1.0);
            g.all_reduce_interior(ctx, |v| v, |a, b| a + b, 0.0)
        });
        for v in &out.results {
            assert_eq!(*v, 48.0);
        }
    }

    #[test]
    fn uneven_extents_are_blocked_correctly() {
        let pg = ProcessGrid3::new(3, 1, 1);
        let sizes: Vec<usize> = (0..3)
            .map(|r| DistGrid3::new(r, pg, 7, 2, 2, 1, 0u8).dims().0)
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 7);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }
}
