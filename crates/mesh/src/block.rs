//! Local grid sections with ghost boundaries.
//!
//! Each process of a mesh-spectral computation owns a contiguous *local
//! section* of the global grid, "surrounded by a ghost boundary containing
//! shadow copies of boundary values from neighboring processes" (paper
//! §3.3, Figure 7). [`Block2`] and [`Block3`] are those sections: dense
//! row-major storage with `g` ghost layers on every side, indexed in
//! interior coordinates so `(-1, j)` addresses the first western ghost cell.

/// A 2-D local section: `nx × ny` interior cells plus `g` ghost layers.
///
/// Indexing is by interior coordinates: valid indices run from `-g` to
/// `nx-1+g` (resp. `ny-1+g`). Storage is row-major with `i` the slow axis.
#[derive(Clone, Debug, PartialEq)]
pub struct Block2<T> {
    /// Interior extent along `i`.
    pub nx: usize,
    /// Interior extent along `j`.
    pub ny: usize,
    /// Ghost width.
    pub g: usize,
    data: Vec<T>,
}

impl<T: Copy> Block2<T> {
    /// A block filled with `fill`.
    pub fn new(nx: usize, ny: usize, g: usize, fill: T) -> Self {
        Block2 {
            nx,
            ny,
            g,
            data: vec![fill; (nx + 2 * g) * (ny + 2 * g)],
        }
    }

    #[inline]
    fn offset(&self, i: isize, j: isize) -> usize {
        let g = self.g as isize;
        debug_assert!(
            i >= -g && i < self.nx as isize + g && j >= -g && j < self.ny as isize + g,
            "index ({i},{j}) out of range for {}x{} block with ghost {}",
            self.nx,
            self.ny,
            self.g
        );
        ((i + g) as usize) * (self.ny + 2 * self.g) + (j + g) as usize
    }

    /// Read the cell at interior coordinates `(i, j)`; ghosts included.
    #[inline]
    pub fn at(&self, i: isize, j: isize) -> T {
        self.data[self.offset(i, j)]
    }

    /// Write the cell at interior coordinates `(i, j)`; ghosts included.
    #[inline]
    pub fn set(&mut self, i: isize, j: isize, v: T) {
        let o = self.offset(i, j);
        self.data[o] = v;
    }

    /// Copy out a strip of `len` cells starting at `(i0, j0)` and advancing
    /// by `(di, dj)` per cell — used to pack ghost-exchange messages.
    ///
    /// Row strips (`di == 0, dj == 1`) are a single `memcpy` of the
    /// underlying storage; column strips (`di == 1, dj == 0`) walk the row
    /// stride directly. Other step patterns fall back to per-cell `at`.
    pub fn pack(&self, i0: isize, j0: isize, di: isize, dj: isize, len: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(len);
        self.pack_into(i0, j0, di, dj, len, &mut out);
        out
    }

    /// [`Block2::pack`] appending into an existing buffer, so multi-layer
    /// ghost exchanges can assemble one message without intermediate
    /// allocations.
    pub fn pack_into(
        &self,
        i0: isize,
        j0: isize,
        di: isize,
        dj: isize,
        len: usize,
        out: &mut Vec<T>,
    ) {
        if len == 0 {
            return;
        }
        if di == 0 && dj == 1 {
            // Row strip: contiguous in storage.
            let start = self.offset(i0, j0);
            let _ = self.offset(i0, j0 + len as isize - 1); // bounds check end
            out.extend_from_slice(&self.data[start..start + len]);
        } else if di == 1 && dj == 0 {
            // Column strip: fixed stride of one row.
            let stride = self.ny + 2 * self.g;
            let start = self.offset(i0, j0);
            let _ = self.offset(i0 + len as isize - 1, j0);
            out.extend((0..len).map(|k| self.data[start + k * stride]));
        } else {
            out.extend((0..len as isize).map(|k| self.at(i0 + k * di, j0 + k * dj)));
        }
    }

    /// Write a strip of cells starting at `(i0, j0)` advancing by
    /// `(di, dj)` — the inverse of [`Block2::pack`], with the same
    /// contiguous (`memcpy`) and strided fast paths.
    pub fn unpack(&mut self, i0: isize, j0: isize, di: isize, dj: isize, vals: &[T]) {
        let len = vals.len();
        if len == 0 {
            return;
        }
        if di == 0 && dj == 1 {
            let start = self.offset(i0, j0);
            let _ = self.offset(i0, j0 + len as isize - 1);
            self.data[start..start + len].copy_from_slice(vals);
        } else if di == 1 && dj == 0 {
            let stride = self.ny + 2 * self.g;
            let start = self.offset(i0, j0);
            let _ = self.offset(i0 + len as isize - 1, j0);
            for (k, v) in vals.iter().enumerate() {
                self.data[start + k * stride] = *v;
            }
        } else {
            for (k, v) in vals.iter().enumerate() {
                self.set(i0 + k as isize * di, j0 + k as isize * dj, *v);
            }
        }
    }

    /// The interior as a fresh row-major vector (ghosts stripped).
    pub fn interior(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.nx * self.ny);
        for i in 0..self.nx as isize {
            for j in 0..self.ny as isize {
                out.push(self.at(i, j));
            }
        }
        out
    }

    /// Fill the interior from a function of interior coordinates.
    pub fn fill_interior(&mut self, f: impl Fn(usize, usize) -> T) {
        for i in 0..self.nx {
            for j in 0..self.ny {
                self.set(i as isize, j as isize, f(i, j));
            }
        }
    }

    /// Fold `f` over interior cells.
    pub fn fold_interior<A>(&self, init: A, mut f: impl FnMut(A, T) -> A) -> A {
        let mut acc = init;
        for i in 0..self.nx as isize {
            for j in 0..self.ny as isize {
                acc = f(acc, self.at(i, j));
            }
        }
        acc
    }
}

/// A 3-D local section: `nx × ny × nz` interior cells plus `g` ghost
/// layers; indexing follows [`Block2`] conventions with `i` slowest.
#[derive(Clone, Debug, PartialEq)]
pub struct Block3<T> {
    /// Interior extent along `i`.
    pub nx: usize,
    /// Interior extent along `j`.
    pub ny: usize,
    /// Interior extent along `k`.
    pub nz: usize,
    /// Ghost width.
    pub g: usize,
    data: Vec<T>,
}

impl<T: Copy> Block3<T> {
    /// A block filled with `fill`.
    pub fn new(nx: usize, ny: usize, nz: usize, g: usize, fill: T) -> Self {
        Block3 {
            nx,
            ny,
            nz,
            g,
            data: vec![fill; (nx + 2 * g) * (ny + 2 * g) * (nz + 2 * g)],
        }
    }

    #[inline]
    fn offset(&self, i: isize, j: isize, k: isize) -> usize {
        let g = self.g as isize;
        debug_assert!(
            i >= -g
                && i < self.nx as isize + g
                && j >= -g
                && j < self.ny as isize + g
                && k >= -g
                && k < self.nz as isize + g,
            "index ({i},{j},{k}) out of range"
        );
        (((i + g) as usize) * (self.ny + 2 * self.g) + (j + g) as usize) * (self.nz + 2 * self.g)
            + (k + g) as usize
    }

    /// Read the cell at `(i, j, k)`; ghosts included.
    #[inline]
    pub fn at(&self, i: isize, j: isize, k: isize) -> T {
        self.data[self.offset(i, j, k)]
    }

    /// Write the cell at `(i, j, k)`; ghosts included.
    #[inline]
    pub fn set(&mut self, i: isize, j: isize, k: isize, v: T) {
        let o = self.offset(i, j, k);
        self.data[o] = v;
    }

    /// Pack one ghost-exchange face: the plane `axis = plane_idx`
    /// (interior coordinate), covering the interior extents of the other
    /// two axes. Returns values in row-major order of the remaining axes.
    ///
    /// Faces normal to axis 0 or 1 vary `k` fastest, so each row of the
    /// face is one contiguous `memcpy` of `nz` cells; faces normal to
    /// axis 2 gather with a fixed stride of one `k`-row.
    pub fn pack_face(&self, axis: usize, plane_idx: isize) -> Vec<T> {
        let kstride = self.nz + 2 * self.g;
        match axis {
            0 => {
                let mut out = Vec::with_capacity(self.ny * self.nz);
                for u in 0..self.ny as isize {
                    let start = self.offset(plane_idx, u, 0);
                    out.extend_from_slice(&self.data[start..start + self.nz]);
                }
                out
            }
            1 => {
                let mut out = Vec::with_capacity(self.nx * self.nz);
                for u in 0..self.nx as isize {
                    let start = self.offset(u, plane_idx, 0);
                    out.extend_from_slice(&self.data[start..start + self.nz]);
                }
                out
            }
            _ => {
                let mut out = Vec::with_capacity(self.nx * self.ny);
                for u in 0..self.nx as isize {
                    let start = self.offset(u, 0, plane_idx);
                    out.extend((0..self.ny).map(|v| self.data[start + v * kstride]));
                }
                out
            }
        }
    }

    /// Unpack one ghost-exchange face; inverse of [`Block3::pack_face`],
    /// with the same contiguous (`memcpy`) and strided fast paths.
    pub fn unpack_face(&mut self, axis: usize, plane_idx: isize, vals: &[T]) {
        let kstride = self.nz + 2 * self.g;
        match axis {
            0 => {
                debug_assert_eq!(vals.len(), self.ny * self.nz);
                for (u, row) in vals.chunks_exact(self.nz).enumerate() {
                    let start = self.offset(plane_idx, u as isize, 0);
                    self.data[start..start + self.nz].copy_from_slice(row);
                }
            }
            1 => {
                debug_assert_eq!(vals.len(), self.nx * self.nz);
                for (u, row) in vals.chunks_exact(self.nz).enumerate() {
                    let start = self.offset(u as isize, plane_idx, 0);
                    self.data[start..start + self.nz].copy_from_slice(row);
                }
            }
            _ => {
                debug_assert_eq!(vals.len(), self.nx * self.ny);
                for (u, row) in vals.chunks_exact(self.ny).enumerate() {
                    let start = self.offset(u as isize, 0, plane_idx);
                    for (v, val) in row.iter().enumerate() {
                        self.data[start + v * kstride] = *val;
                    }
                }
            }
        }
    }

    /// Fold `f` over interior cells.
    pub fn fold_interior<A>(&self, init: A, mut f: impl FnMut(A, T) -> A) -> A {
        let mut acc = init;
        for i in 0..self.nx as isize {
            for j in 0..self.ny as isize {
                for k in 0..self.nz as isize {
                    acc = f(acc, self.at(i, j, k));
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block2_interior_and_ghost_indexing() {
        let mut b = Block2::new(3, 4, 1, 0i32);
        b.set(0, 0, 5);
        b.set(2, 3, 7);
        b.set(-1, -1, 9); // corner ghost
        b.set(3, 4, 11); // opposite corner ghost
        assert_eq!(b.at(0, 0), 5);
        assert_eq!(b.at(2, 3), 7);
        assert_eq!(b.at(-1, -1), 9);
        assert_eq!(b.at(3, 4), 11);
        assert_eq!(b.at(1, 1), 0);
    }

    #[test]
    fn block2_pack_unpack_roundtrip() {
        let mut b = Block2::new(4, 5, 1, 0.0f64);
        b.fill_interior(|i, j| (i * 10 + j) as f64);
        // Pack the eastmost interior column (j = ny-1).
        let strip = b.pack(0, 4, 1, 0, 4);
        assert_eq!(strip, vec![4.0, 14.0, 24.0, 34.0]);
        // Unpack it into the western ghost column of another block.
        let mut c = Block2::new(4, 5, 1, 0.0f64);
        c.unpack(0, -1, 1, 0, &strip);
        assert_eq!(c.at(2, -1), 24.0);
    }

    #[test]
    fn block2_interior_strips_ghosts() {
        let mut b = Block2::new(2, 2, 2, -1i64);
        b.fill_interior(|i, j| (i * 2 + j) as i64);
        assert_eq!(b.interior(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn block2_fold_sums_interior_only() {
        let mut b = Block2::new(3, 3, 1, 100.0f64);
        b.fill_interior(|_, _| 1.0);
        let sum = b.fold_interior(0.0, |a, v| a + v);
        assert_eq!(sum, 9.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn block2_out_of_range_panics_in_debug() {
        let b = Block2::new(2, 2, 1, 0u8);
        b.at(4, 0);
    }

    #[test]
    fn block3_face_roundtrip() {
        let mut b = Block3::new(2, 3, 4, 1, 0i32);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    b.set(i, j, k, (i * 100 + j * 10 + k) as i32);
                }
            }
        }
        // Top face along axis 0 (i = nx-1 = 1).
        let face = b.pack_face(0, 1);
        assert_eq!(face.len(), 12);
        assert_eq!(face[0], 100);
        assert_eq!(face[11], 123);
        // Receive into the ghost plane i = -1 of another block.
        let mut c = Block3::new(2, 3, 4, 1, 0i32);
        c.unpack_face(0, -1, &face);
        assert_eq!(c.at(-1, 2, 3), 123);
    }

    #[test]
    fn block3_fold_counts_interior() {
        let b = Block3::new(3, 4, 5, 1, 1u64);
        let count = b.fold_interior(0u64, |a, v| a + v);
        assert_eq!(count, 60);
    }

    #[test]
    fn block3_axis1_and_axis2_faces() {
        let mut b = Block3::new(2, 2, 2, 1, 0i32);
        b.set(0, 1, 0, 7);
        let f1 = b.pack_face(1, 1); // plane j=1: (i,k) row-major
        assert_eq!(f1, vec![7, 0, 0, 0]);
        b.set(1, 0, 1, 9);
        let f2 = b.pack_face(2, 1); // plane k=1: (i,j) row-major
        assert_eq!(f2, vec![0, 0, 9, 0]);
    }
}
