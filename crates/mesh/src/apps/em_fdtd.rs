//! Electromagnetic scattering by 3-D FDTD (paper §3.7.2, Figure 17).
//!
//! The paper's code "performs numerical simulation of electromagnetic
//! scattering … using a finite difference time domain technique … based on
//! the three-dimensional mesh archetype". This kernel implements the Yee
//! FDTD scheme in normalized units (`c = 1`, `dx = 1`) on a cubic grid
//! with PEC-like boundaries (tangential E held at zero), a sinusoidal
//! point source, and the archetype's operations: interleaved ghost
//! exchanges of the E and H fields and an energy reduction.
//!
//! Figure 17's finding — performance *decreases* beyond ~16 processors
//! because the computation-to-communication ratio drops — is reproduced by
//! the virtual-time sweep in `archetype-bench`.

use archetype_core::ExecutionMode;
use archetype_mp::{Ctx, ProcessGrid3};

use crate::grid3::DistGrid3;

/// Simulation parameters.
#[derive(Clone, Copy)]
pub struct EmSpec {
    /// Grid extent per axis (cubic `n × n × n`).
    pub n: usize,
    /// Time steps.
    pub steps: usize,
    /// Time step (stability requires `dt ≤ 1/√3` in normalized units).
    pub dt: f64,
    /// Source angular frequency.
    pub omega: f64,
    /// Monitor the field energy with a global reduction every step, as
    /// scattering codes do for observables. This is the archetype's
    /// reduction operation; its O(log P) critical path is part of what
    /// makes Figure 17's efficiency drop at high processor counts.
    pub monitor: bool,
}

impl EmSpec {
    /// A stable default: `dt = 0.5`, source period 20 steps, monitoring on.
    pub fn new(n: usize, steps: usize) -> Self {
        EmSpec {
            n,
            steps,
            dt: 0.5,
            omega: 2.0 * std::f64::consts::PI / 10.0,
            monitor: true,
        }
    }
}

/// The six Yee field components on the full (undistributed) grid —
/// version 1's state.
#[derive(Clone, Debug, PartialEq)]
pub struct YeeFields {
    /// Grid extent per axis.
    pub n: usize,
    /// Electric field components, row-major `n³`.
    pub ex: Vec<f64>,
    /// See [`YeeFields::ex`].
    pub ey: Vec<f64>,
    /// See [`YeeFields::ex`].
    pub ez: Vec<f64>,
    /// Magnetic field components, row-major `n³`.
    pub hx: Vec<f64>,
    /// See [`YeeFields::hx`].
    pub hy: Vec<f64>,
    /// See [`YeeFields::hx`].
    pub hz: Vec<f64>,
}

impl YeeFields {
    fn zeros(n: usize) -> Self {
        let z = vec![0.0; n * n * n];
        YeeFields {
            n,
            ex: z.clone(),
            ey: z.clone(),
            ez: z.clone(),
            hx: z.clone(),
            hy: z.clone(),
            hz: z,
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.n + j) * self.n + k
    }

    /// Total field energy `Σ (E² + H²)`.
    pub fn energy(&self) -> f64 {
        let sq = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
        sq(&self.ex) + sq(&self.ey) + sq(&self.ez) + sq(&self.hx) + sq(&self.hy) + sq(&self.hz)
    }
}

/// Version 1: full-grid Yee stepping. `mode` is accepted for interface
/// symmetry; the loops are written identically to the SPMD version so the
/// two agree bitwise (the sweep is cheap enough sequentially for tests).
pub fn em_shared(spec: &EmSpec, _mode: ExecutionMode) -> YeeFields {
    let n = spec.n;
    let mut f = YeeFields::zeros(n);
    let dt = spec.dt;
    let src = (n / 2, n / 2, n / 2);

    let at = |v: &[f64], n: usize, i: isize, j: isize, k: isize| -> f64 {
        if i < 0 || j < 0 || k < 0 || i >= n as isize || j >= n as isize || k >= n as isize {
            0.0 // fields vanish outside (PEC box)
        } else {
            v[((i as usize) * n + j as usize) * n + k as usize]
        }
    };

    for step in 0..spec.steps {
        // H update (needs E at +1 offsets).
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let (ii, jj, kk) = (i as isize, j as isize, k as isize);
                    let id = f.idx(i, j, k);
                    f.hx[id] += dt
                        * ((at(&f.ey, n, ii, jj, kk + 1) - f.ey[id])
                            - (at(&f.ez, n, ii, jj + 1, kk) - f.ez[id]));
                    f.hy[id] += dt
                        * ((at(&f.ez, n, ii + 1, jj, kk) - f.ez[id])
                            - (at(&f.ex, n, ii, jj, kk + 1) - f.ex[id]));
                    f.hz[id] += dt
                        * ((at(&f.ex, n, ii, jj + 1, kk) - f.ex[id])
                            - (at(&f.ey, n, ii + 1, jj, kk) - f.ey[id]));
                }
            }
        }
        // E update (needs H at −1 offsets); tangential E on the global
        // boundary is held at zero (PEC).
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                for k in 1..n - 1 {
                    let (ii, jj, kk) = (i as isize, j as isize, k as isize);
                    let id = f.idx(i, j, k);
                    f.ex[id] += dt
                        * ((f.hz[id] - at(&f.hz, n, ii, jj - 1, kk))
                            - (f.hy[id] - at(&f.hy, n, ii, jj, kk - 1)));
                    f.ey[id] += dt
                        * ((f.hx[id] - at(&f.hx, n, ii, jj, kk - 1))
                            - (f.hz[id] - at(&f.hz, n, ii - 1, jj, kk)));
                    f.ez[id] += dt
                        * ((f.hy[id] - at(&f.hy, n, ii - 1, jj, kk))
                            - (f.hx[id] - at(&f.hx, n, ii, jj - 1, kk)));
                }
            }
        }
        // Soft source.
        let sid = f.idx(src.0, src.1, src.2);
        f.ez[sid] += (spec.omega * (step as f64 + 1.0) * dt).sin();
    }
    f
}

/// Version 2 result: the gathered fields on rank 0 (interior energies are
/// reduced on all ranks during the run).
#[derive(Clone, Debug)]
pub struct EmResult {
    /// Gathered `ez` field (row-major `n³`); `None` off-root.
    pub ez: Option<Vec<f64>>,
    /// Final total energy (consistent on every rank).
    pub energy: f64,
}

/// Version 2: SPMD Yee stepping over a 3-D block distribution.
///
/// Per step: exchange E ghosts, update H; exchange H ghosts, update E;
/// inject the source on the owning rank. Fields agree bitwise with
/// [`em_shared`].
pub fn em_spmd(ctx: &mut Ctx, spec: &EmSpec, pgrid: ProcessGrid3) -> EmResult {
    assert_eq!(pgrid.len(), ctx.nprocs());
    let n = spec.n;
    let dt = spec.dt;
    let rank = ctx.rank();
    let mk = || DistGrid3::new(rank, pgrid, n, n, n, 1, 0.0f64);
    let (mut ex, mut ey, mut ez) = (mk(), mk(), mk());
    let (mut hx, mut hy, mut hz) = (mk(), mk(), mk());
    let (nx, ny, nz) = ex.dims();
    let src = (n / 2, n / 2, n / 2);

    for step in 0..spec.steps {
        // E ghosts for the +1 reads of the H update.
        ex.exchange_ghosts(ctx);
        ey.exchange_ghosts(ctx);
        ez.exchange_ghosts(ctx);
        for i in 0..nx as isize {
            for j in 0..ny as isize {
                for k in 0..nz as isize {
                    let hx_v = hx.block.at(i, j, k)
                        + dt * ((ey.block.at(i, j, k + 1) - ey.block.at(i, j, k))
                            - (ez.block.at(i, j + 1, k) - ez.block.at(i, j, k)));
                    let hy_v = hy.block.at(i, j, k)
                        + dt * ((ez.block.at(i + 1, j, k) - ez.block.at(i, j, k))
                            - (ex.block.at(i, j, k + 1) - ex.block.at(i, j, k)));
                    let hz_v = hz.block.at(i, j, k)
                        + dt * ((ex.block.at(i, j + 1, k) - ex.block.at(i, j, k))
                            - (ey.block.at(i + 1, j, k) - ey.block.at(i, j, k)));
                    hx.block.set(i, j, k, hx_v);
                    hy.block.set(i, j, k, hy_v);
                    hz.block.set(i, j, k, hz_v);
                }
            }
        }
        ctx.charge_items(nx * ny * nz, 18.0);

        // H ghosts for the −1 reads of the E update.
        hx.exchange_ghosts(ctx);
        hy.exchange_ghosts(ctx);
        hz.exchange_ghosts(ctx);
        for i in 0..nx {
            for j in 0..ny {
                for k in 0..nz {
                    // Skip the global boundary (PEC).
                    let (gi, gj, gk) = (ex.x0 + i, ex.y0 + j, ex.z0 + k);
                    if gi == 0 || gj == 0 || gk == 0 || gi == n - 1 || gj == n - 1 || gk == n - 1 {
                        continue;
                    }
                    let (ii, jj, kk) = (i as isize, j as isize, k as isize);
                    let ex_v = ex.block.at(ii, jj, kk)
                        + dt * ((hz.block.at(ii, jj, kk) - hz.block.at(ii, jj - 1, kk))
                            - (hy.block.at(ii, jj, kk) - hy.block.at(ii, jj, kk - 1)));
                    let ey_v = ey.block.at(ii, jj, kk)
                        + dt * ((hx.block.at(ii, jj, kk) - hx.block.at(ii, jj, kk - 1))
                            - (hz.block.at(ii, jj, kk) - hz.block.at(ii - 1, jj, kk)));
                    let ez_v = ez.block.at(ii, jj, kk)
                        + dt * ((hy.block.at(ii, jj, kk) - hy.block.at(ii - 1, jj, kk))
                            - (hx.block.at(ii, jj, kk) - hx.block.at(ii, jj - 1, kk)));
                    ex.block.set(ii, jj, kk, ex_v);
                    ey.block.set(ii, jj, kk, ey_v);
                    ez.block.set(ii, jj, kk, ez_v);
                }
            }
        }
        ctx.charge_items(nx * ny * nz, 18.0);

        // Observable monitoring: a per-step energy reduction.
        if spec.monitor {
            let sum_sq = |g: &DistGrid3<f64>| g.block.fold_interior(0.0, |a, v| a + v * v);
            let local =
                sum_sq(&ex) + sum_sq(&ey) + sum_sq(&ez) + sum_sq(&hx) + sum_sq(&hy) + sum_sq(&hz);
            ctx.charge_items(nx * ny * nz, 12.0);
            let _ = ctx.all_reduce(local, |a, b| a + b);
        }

        // Source term on the owning rank.
        if src.0 >= ez.x0
            && src.0 < ez.x0 + nx
            && src.1 >= ez.y0
            && src.1 < ez.y0 + ny
            && src.2 >= ez.z0
            && src.2 < ez.z0 + nz
        {
            let (li, lj, lk) = (
                (src.0 - ez.x0) as isize,
                (src.1 - ez.y0) as isize,
                (src.2 - ez.z0) as isize,
            );
            let v = ez.block.at(li, lj, lk) + (spec.omega * (step as f64 + 1.0) * dt).sin();
            ez.block.set(li, lj, lk, v);
        }
    }

    // Energy reduction (all ranks hold the result).
    let sum_sq = |g: &DistGrid3<f64>| g.block.fold_interior(0.0, |a, v| a + v * v);
    let local = sum_sq(&ex) + sum_sq(&ey) + sum_sq(&ez) + sum_sq(&hx) + sum_sq(&hy) + sum_sq(&hz);
    let energy = ctx.all_reduce(local, |a, b| a + b);

    // Gather ez for field comparison/output.
    let gathered = ez.gather_global(ctx);
    EmResult {
        ez: gathered,
        energy,
    }
}

/// Modeled sequential flop cost per FDTD step (field updates plus, when
/// `monitor` is set, the energy-observable sweep).
pub fn em_step_flops(n: usize, monitor: bool) -> f64 {
    let per_cell = if monitor { 48.0 } else { 36.0 };
    per_cell * (n * n * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use archetype_mp::{run_spmd, MachineModel};

    #[test]
    fn fields_stay_zero_without_source_energy() {
        // With no initial fields, all energy comes from the source.
        let spec = EmSpec {
            n: 8,
            steps: 0,
            dt: 0.5,
            omega: 1.0,
            monitor: false,
        };
        let f = em_shared(&spec, ExecutionMode::Sequential);
        assert_eq!(f.energy(), 0.0);
    }

    #[test]
    fn source_radiates_energy_outward() {
        let spec = EmSpec::new(12, 20);
        let f = em_shared(&spec, ExecutionMode::Sequential);
        assert!(f.energy() > 0.0);
        // A cell away from the source should have been reached.
        let c = 12 / 2;
        let probe = f.ez[f.idx(c + 3, c, c)];
        assert!(
            probe.abs() > 0.0,
            "wave should reach 3 cells away in 20 steps"
        );
    }

    #[test]
    fn simulation_is_stable_at_cfl_half() {
        let spec = EmSpec::new(10, 200);
        let f = em_shared(&spec, ExecutionMode::Sequential);
        assert!(
            f.energy().is_finite() && f.energy() < 1e6,
            "energy {} must stay bounded",
            f.energy()
        );
    }

    #[test]
    fn spmd_matches_shared_bitwise() {
        let spec = EmSpec::new(8, 6);
        let reference = em_shared(&spec, ExecutionMode::Sequential);
        for pg in [
            ProcessGrid3::new(1, 1, 1),
            ProcessGrid3::new(2, 1, 1),
            ProcessGrid3::new(2, 2, 1),
            ProcessGrid3::new(2, 2, 2),
        ] {
            let out = run_spmd(pg.len(), MachineModel::ibm_sp(), move |ctx| {
                em_spmd(ctx, &spec, pg)
            });
            let ez = out.results[0].ez.as_ref().expect("root gathers ez");
            assert_eq!(ez, &reference.ez, "pgrid {pg:?}");
            // Energy agrees to rounding (summation order differs).
            let e = out.results[0].energy;
            assert!((e - reference.energy()).abs() <= 1e-9 * reference.energy().max(1.0));
        }
    }

    #[test]
    fn energy_is_consistent_across_ranks() {
        let spec = EmSpec::new(8, 4);
        let pg = ProcessGrid3::new(2, 2, 1);
        let out = run_spmd(4, MachineModel::ibm_sp(), move |ctx| {
            em_spmd(ctx, &spec, pg).energy
        });
        assert!(out.results.iter().all(|&e| e == out.results[0]));
    }

    #[test]
    fn gather_global_reassembles_3d_grid() {
        let pg = ProcessGrid3::new(2, 1, 2);
        let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
            let g =
                crate::grid3::DistGrid3::from_global(ctx.rank(), pg, 4, 3, 4, 1, 0.0, |i, j, k| {
                    (i * 100 + j * 10 + k) as f64
                });
            g.gather_global(ctx)
        });
        let full = out.results[0].as_ref().unwrap();
        for i in 0..4 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(full[(i * 3 + j) * 4 + k], (i * 100 + j * 10 + k) as f64);
                }
            }
        }
    }
}
