//! Poisson solver by Jacobi iteration (paper §3.6, Figures 13–15).
//!
//! Solve `∇²u = f` on the unit square with Dirichlet boundary `u = g`,
//! discretized on an `NX × NY` grid, iterating
//! `u'ᵢⱼ = ¼ (h²·fᵢⱼ + u_W + u_E + u_S + u_N)` until the global maximum
//! change `diffmax` falls below a tolerance — `diffmax` being the paper's
//! worked example of a **global variable** computed by reduction and used
//! in control flow.
//!
//! - [`poisson_shared`] is version 1 (Figure 13): `forall` grid ops plus a
//!   max-reduction, runnable sequentially or with rayon;
//! - [`poisson_spmd`] is version 2 (Figure 14): block-distributed grids
//!   with ghost exchange before each grid op and a recursive-doubling
//!   max-reduction maintaining `diffmax`'s copy consistency.
//!
//! Because every update reads the same operands in the same order and the
//! max-reduction is exact, the two versions agree **bitwise** and iterate
//! the same number of times — the semantics-preservation property.

use archetype_core::{parfor_map, parfor_reduce, ExecutionMode, PhaseKind, PhaseTrace};
use archetype_mp::{Ctx, ProcessGrid2};
use archetype_numerics::stencil::jacobi_update;

use crate::globals::GlobalVar;
use crate::grid2::DistGrid2;

/// Problem specification: `∇²u = f` on `[0,1]²`, `u = g` on the boundary.
#[derive(Clone, Copy)]
pub struct PoissonSpec {
    /// Grid extent along x (including boundary points).
    pub nx: usize,
    /// Grid extent along y (including boundary points).
    pub ny: usize,
    /// Convergence tolerance on the max update.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Right-hand side `f(x, y)`.
    pub f: fn(f64, f64) -> f64,
    /// Boundary values `g(x, y)`.
    pub g: fn(f64, f64) -> f64,
}

impl PoissonSpec {
    /// Grid spacing (taken from the x extent; use square-ish grids).
    pub fn h(&self) -> f64 {
        1.0 / (self.nx.max(2) - 1) as f64
    }

    /// Coordinates of grid point `(i, j)`.
    pub fn xy(&self, i: usize, j: usize) -> (f64, f64) {
        (i as f64 * self.h(), j as f64 * self.h())
    }

    /// Initial value at `(i, j)`: `g` on the boundary, zero inside.
    pub fn initial(&self, i: usize, j: usize) -> f64 {
        if i == 0 || j == 0 || i == self.nx - 1 || j == self.ny - 1 {
            let (x, y) = self.xy(i, j);
            (self.g)(x, y)
        } else {
            0.0
        }
    }
}

/// Result of a Poisson solve.
#[derive(Clone, Debug)]
pub struct PoissonResult {
    /// The solution grid (row-major `nx × ny`); `None` on non-root SPMD ranks.
    pub grid: Option<Vec<f64>>,
    /// Iterations executed.
    pub iters: usize,
    /// Final `diffmax`.
    pub diffmax: f64,
}

/// Version 1: shared-memory Jacobi iteration (Figure 13).
pub fn poisson_shared(spec: &PoissonSpec, mode: ExecutionMode) -> PoissonResult {
    let (nx, ny) = (spec.nx, spec.ny);
    let h2 = spec.h() * spec.h();
    let mut uk: Vec<f64> = (0..nx * ny).map(|k| spec.initial(k / ny, k % ny)).collect();
    let fgrid: Vec<f64> = (0..nx * ny)
        .map(|k| {
            let (x, y) = spec.xy(k / ny, k % ny);
            (spec.f)(x, y)
        })
        .collect();

    let mut iters = 0;
    let mut diffmax = spec.tolerance + 1.0;
    while diffmax > spec.tolerance && iters < spec.max_iters {
        // Grid op: compute new interior values (disjoint from inputs).
        let ukp: Vec<f64> = {
            let uk = &uk;
            let fgrid = &fgrid;
            parfor_map(mode, nx * ny, |k| {
                let (i, j) = (k / ny, k % ny);
                if i == 0 || j == 0 || i == nx - 1 || j == ny - 1 {
                    uk[k]
                } else {
                    jacobi_update(h2 * fgrid[k], uk[k - ny], uk[k + ny], uk[k - 1], uk[k + 1])
                }
            })
        };
        // Reduction: diffmax = max |ukp - uk| (exact associative max).
        diffmax = {
            let uk = &uk;
            let ukp = &ukp;
            parfor_reduce(
                mode,
                nx * ny,
                f64::NEG_INFINITY,
                |k| (ukp[k] - uk[k]).abs(),
                f64::max,
            )
        };
        uk = ukp;
        iters += 1;
    }
    PoissonResult {
        grid: Some(uk),
        iters,
        diffmax,
    }
}

/// Version 2: SPMD Jacobi iteration over an `NPX × NPY` block distribution
/// (Figure 14). Returns the gathered solution on rank 0.
pub fn poisson_spmd(ctx: &mut Ctx, spec: &PoissonSpec, pgrid: ProcessGrid2) -> PoissonResult {
    poisson_spmd_traced(ctx, spec, pgrid, None)
}

/// [`poisson_spmd`] with phase tracing: rank 0 records the mesh-spectral
/// phase sequence — distribute (Io), then per iteration the
/// archetype-inserted ghost exchange (Communication), the Jacobi sweep
/// (GridOp), and the `diffmax` reduction, then the gather (Io) — so
/// tests can grammar-check the archetype's pattern.
pub fn poisson_spmd_traced(
    ctx: &mut Ctx,
    spec: &PoissonSpec,
    pgrid: ProcessGrid2,
    trace: Option<&PhaseTrace>,
) -> PoissonResult {
    assert_eq!(
        pgrid.len(),
        ctx.nprocs(),
        "process grid must match run size"
    );
    let h2 = spec.h() * spec.h();
    let rank = ctx.rank();
    let record = |ctx: &mut Ctx, kind: PhaseKind, label: &str| {
        // Every rank stamps the phase into the substrate trace; the
        // legacy PhaseTrace summary stays rank-0-only.
        ctx.trace_phase(kind.name(), label);
        if ctx.rank() == 0 {
            if let Some(t) = trace {
                t.record(kind, label);
            }
        }
    };

    record(ctx, PhaseKind::Io, "block-distribute rhs and initial grid");
    let mut uk = DistGrid2::from_global(rank, pgrid, spec.nx, spec.ny, 1, 0.0, |i, j| {
        spec.initial(i, j)
    });
    let fgrid = DistGrid2::from_global(rank, pgrid, spec.nx, spec.ny, 1, 0.0, |i, j| {
        let (x, y) = spec.xy(i, j);
        (spec.f)(x, y)
    });

    let (nx, ny) = (uk.nx(), uk.ny());
    let mut diffmax = GlobalVar::new(spec.tolerance + 1.0);
    let mut iters = 0;

    while *diffmax.get() > spec.tolerance && iters < spec.max_iters {
        // Satisfy the grid-op precondition: refresh the ghost boundary.
        record(ctx, PhaseKind::Communication, "ghost boundary exchange");
        uk.exchange_ghosts(ctx);
        record(ctx, PhaseKind::GridOp, "Jacobi sweep");
        // Grid op on the intersection of the local section and the global
        // interior; 6 flops per point in the model.
        let mut ukp = uk.clone();
        let mut local_diffmax = f64::NEG_INFINITY;
        for i in 0..nx {
            for j in 0..ny {
                if uk.on_global_boundary(i, j) {
                    continue;
                }
                let (li, lj) = (i as isize, j as isize);
                let new = jacobi_update(
                    h2 * fgrid.block.at(li, lj),
                    uk.block.at(li - 1, lj),
                    uk.block.at(li + 1, lj),
                    uk.block.at(li, lj - 1),
                    uk.block.at(li, lj + 1),
                );
                local_diffmax = local_diffmax.max((new - uk.block.at(li, lj)).abs());
                ukp.block.set(li, lj, new);
            }
        }
        ctx.charge_items(nx * ny, 8.0);
        // Also fold in unchanged points for exact agreement with version 1
        // (boundary points contribute |uk - uk| = 0, a no-op unless the
        // grid has no interior).
        if local_diffmax == f64::NEG_INFINITY {
            local_diffmax = 0.0;
        }
        // Reduction re-establishes copy consistency of diffmax.
        record(ctx, PhaseKind::Reduction, "global max of local diffmax");
        diffmax.reduce_from(ctx, local_diffmax, f64::max);
        uk = ukp;
        iters += 1;
    }

    record(ctx, PhaseKind::Io, "gather solution to rank 0");
    let grid = uk.gather_global(ctx);
    PoissonResult {
        grid,
        iters,
        diffmax: *diffmax.get(),
    }
}

/// Modeled flop cost of one sequential Jacobi sweep.
pub fn poisson_sweep_flops(nx: usize, ny: usize) -> f64 {
    8.0 * (nx * ny) as f64
}

/// Machine-independent estimate of the total work of solving `spec`:
/// one sweep's flops times the iteration budget. An upper bound when the
/// tolerance converges early; exact when `max_iters` is the binding
/// limit (the usual case for the fixed-budget solves used in composed
/// plans, where a composition allocator prices this branch against its
/// siblings).
///
/// ```
/// use archetype_mesh::apps::poisson::{poisson_estimate_flops, sine_problem};
/// let spec = sine_problem(16, 1e-12, 100);
/// assert_eq!(poisson_estimate_flops(&spec), 100.0 * 8.0 * 256.0);
/// ```
pub fn poisson_estimate_flops(spec: &PoissonSpec) -> f64 {
    spec.max_iters as f64 * poisson_sweep_flops(spec.nx, spec.ny)
}

/// A standard test problem with a known smooth solution:
/// `u(x,y) = sin(πx)·sin(πy)`, so `f = −2π²·sin(πx)·sin(πy)` — note the
/// discrete operator converges to the PDE solution as `h → 0`.
pub fn sine_problem(n: usize, tolerance: f64, max_iters: usize) -> PoissonSpec {
    fn f(x: f64, y: f64) -> f64 {
        -2.0 * std::f64::consts::PI
            * std::f64::consts::PI
            * (std::f64::consts::PI * x).sin()
            * (std::f64::consts::PI * y).sin()
    }
    fn g(_x: f64, _y: f64) -> f64 {
        0.0
    }
    PoissonSpec {
        nx: n,
        ny: n,
        tolerance,
        max_iters,
        f,
        g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archetype_mp::{run_spmd, MachineModel};

    #[test]
    fn converges_to_analytic_solution() {
        let spec = sine_problem(33, 1e-9, 20_000);
        let res = poisson_shared(&spec, ExecutionMode::Sequential);
        let grid = res.grid.unwrap();
        let mut max_err = 0.0f64;
        for i in 0..33 {
            for j in 0..33 {
                let (x, y) = spec.xy(i, j);
                // ∇²(sin πx · sin πy) = −2π² sin πx · sin πy = f, so the
                // exact solution is u = sin πx · sin πy.
                let exact = (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin();
                max_err = max_err.max((grid[i * 33 + j] - exact).abs());
            }
        }
        assert!(max_err < 5e-3, "discretization error bound: {max_err}");
        assert!(res.iters < 20_000, "must converge before the cap");
    }

    #[test]
    fn version1_modes_agree_bitwise() {
        let spec = sine_problem(17, 1e-6, 2_000);
        let a = poisson_shared(&spec, ExecutionMode::Sequential);
        let b = poisson_shared(&spec, ExecutionMode::Parallel);
        assert_eq!(a.iters, b.iters);
        assert_eq!(a.grid, b.grid, "grid ops are deterministic");
    }

    #[test]
    fn version2_agrees_bitwise_with_version1() {
        let spec = sine_problem(20, 1e-5, 3_000);
        let reference = poisson_shared(&spec, ExecutionMode::Sequential);
        for (px, py) in [(1, 1), (2, 2), (1, 3), (3, 2)] {
            let pg = ProcessGrid2::new(px, py);
            let out = run_spmd(pg.len(), MachineModel::ibm_sp(), move |ctx| {
                poisson_spmd(ctx, &spec, pg)
            });
            let root = &out.results[0];
            assert_eq!(
                root.iters, reference.iters,
                "{px}x{py}: same iteration count"
            );
            assert_eq!(
                root.grid.as_ref().unwrap(),
                reference.grid.as_ref().unwrap(),
                "{px}x{py}: bitwise-equal solution"
            );
            // Every rank agrees on the final diffmax (copy consistency).
            for r in &out.results {
                assert_eq!(r.diffmax, reference.diffmax);
            }
        }
    }

    #[test]
    fn residual_shrinks_monotonically_at_the_tail() {
        // Jacobi on the model problem contracts; diffmax after more
        // iterations must not be larger.
        let mut spec = sine_problem(17, 0.0, 50);
        let r50 = poisson_shared(&spec, ExecutionMode::Sequential);
        spec.max_iters = 200;
        let r200 = poisson_shared(&spec, ExecutionMode::Sequential);
        assert!(r200.diffmax <= r50.diffmax);
    }

    #[test]
    fn boundary_values_are_held_fixed() {
        fn g(x: f64, y: f64) -> f64 {
            1.0 + x + 2.0 * y
        }
        fn f(_: f64, _: f64) -> f64 {
            0.0
        }
        let spec = PoissonSpec {
            nx: 9,
            ny: 9,
            tolerance: 1e-12,
            max_iters: 5_000,
            f,
            g,
        };
        let res = poisson_shared(&spec, ExecutionMode::Sequential);
        let grid = res.grid.unwrap();
        for k in 0..9 {
            let (x, y) = spec.xy(0, k);
            assert_eq!(grid[k], g(x, y));
            let (x, y) = spec.xy(8, k);
            assert_eq!(grid[8 * 9 + k], g(x, y));
        }
        // Harmonic with linear boundary data: u = g everywhere.
        let (x, y) = spec.xy(4, 4);
        assert!((grid[4 * 9 + 4] - g(x, y)).abs() < 1e-6);
    }

    #[test]
    fn spmd_iteration_count_is_rank_independent() {
        let spec = sine_problem(16, 1e-4, 1_000);
        let pg = ProcessGrid2::new(2, 2);
        let out = run_spmd(4, MachineModel::ibm_sp(), move |ctx| {
            poisson_spmd(ctx, &spec, pg).iters
        });
        assert!(out.results.iter().all(|&i| i == out.results[0]));
    }
}
