//! Airshed photochemical smog model (paper §3.7.4).
//!
//! The paper's CIT airshed code "models smog in the Los Angeles basin" and
//! is "conceptually based on the mesh-spectral archetype". This kernel
//! keeps the archetype-relevant structure of such a model: a 2-D grid of
//! species concentrations transported by a wind field (upwind advection +
//! diffusion, a ghost-exchange grid op), stiff-ish local photochemistry
//! integrated cell-by-cell (a pure grid op), point emissions, and
//! reductions (peak ozone) feeding global diagnostics.
//!
//! Chemistry: the classic NO/NO₂/O₃ photo-stationary cycle
//!
//! ```text
//! NO₂ + hν → NO + O₃        (rate j)
//! NO + O₃ → NO₂             (rate k)
//! ```

use archetype_core::{parfor_map, parfor_reduce, ExecutionMode};
use archetype_mp::{Ctx, ProcessGrid2};

use crate::grid2::DistGrid2;

/// Species concentrations per cell: `[NO, NO₂, O₃]`.
pub type Conc = [f64; 3];

/// Model parameters.
#[derive(Clone, Copy)]
pub struct AirshedSpec {
    /// Grid cells along x.
    pub nx: usize,
    /// Grid cells along y.
    pub ny: usize,
    /// Wind velocity (cells/time, constant; `|u|·dt ≤ 1` for stability).
    pub wind: (f64, f64),
    /// Diffusion coefficient (cell units).
    pub diffusion: f64,
    /// Photolysis rate `j` (NO₂ → NO + O₃).
    pub j_rate: f64,
    /// Titration rate `k` (NO + O₃ → NO₂).
    pub k_rate: f64,
    /// Time step.
    pub dt: f64,
    /// Number of steps.
    pub steps: usize,
    /// Emission source: cell and NO emission rate.
    pub source: (usize, usize, f64),
}

/// One forward-Euler chemistry update of a single cell.
#[inline]
pub fn chemistry_step(c: Conc, j: f64, k: f64, dt: f64) -> Conc {
    let photolysis = j * c[1];
    let titration = k * c[0] * c[2];
    [
        c[0] + dt * (photolysis - titration),
        c[1] + dt * (titration - photolysis),
        c[2] + dt * (photolysis - titration),
    ]
}

/// First-order upwind advection + diffusion update of one cell from its
/// four neighbours (`w`/`e` along x, `s`/`n` along y).
#[inline]
#[allow(clippy::too_many_arguments)] // a stencil: cell, 4 neighbours, 3 params
pub fn transport_update(
    c: Conc,
    w: Conc,
    e: Conc,
    s: Conc,
    n: Conc,
    wind: (f64, f64),
    d: f64,
    dt: f64,
) -> Conc {
    let mut out = [0.0; 3];
    for sp in 0..3 {
        let adv_x = if wind.0 >= 0.0 {
            wind.0 * (c[sp] - w[sp])
        } else {
            wind.0 * (e[sp] - c[sp])
        };
        let adv_y = if wind.1 >= 0.0 {
            wind.1 * (c[sp] - s[sp])
        } else {
            wind.1 * (n[sp] - c[sp])
        };
        let diff = d * (w[sp] + e[sp] + s[sp] + n[sp] - 4.0 * c[sp]);
        out[sp] = c[sp] + dt * (-adv_x - adv_y + diff);
    }
    out
}

/// Background initial condition: clean air with a little NO₂ and O₃.
pub fn background() -> Conc {
    [0.01, 0.05, 0.03]
}

/// Result of an airshed run.
#[derive(Clone, Debug)]
pub struct AirshedResult {
    /// Final concentration grid (row-major), `None` off-root in SPMD runs.
    pub grid: Option<Vec<Conc>>,
    /// Peak O₃ concentration over the run (sampled each step).
    pub peak_o3: f64,
}

/// Version 1: shared-memory stepping.
pub fn airshed_shared(spec: &AirshedSpec, mode: ExecutionMode) -> AirshedResult {
    let (nx, ny) = (spec.nx, spec.ny);
    let mut c: Vec<Conc> = vec![background(); nx * ny];
    let mut peak = 0.0f64;

    for _ in 0..spec.steps {
        // Grid op: transport (boundary cells held fixed — clean inflow).
        let cn: Vec<Conc> = {
            let c = &c;
            parfor_map(mode, nx * ny, |k| {
                let (i, j) = (k / ny, k % ny);
                if i == 0 || j == 0 || i == nx - 1 || j == ny - 1 {
                    c[k]
                } else {
                    transport_update(
                        c[k],
                        c[k - ny],
                        c[k + ny],
                        c[k - 1],
                        c[k + 1],
                        spec.wind,
                        spec.diffusion,
                        spec.dt,
                    )
                }
            })
        };
        // Grid op: chemistry + emissions (pointwise).
        let src_k = spec.source.0 * ny + spec.source.1;
        let mut cn: Vec<Conc> = {
            let cn = &cn;
            parfor_map(mode, nx * ny, |k| {
                chemistry_step(cn[k], spec.j_rate, spec.k_rate, spec.dt)
            })
        };
        cn[src_k][0] += spec.dt * spec.source.2;
        c = cn;
        // Reduction: peak ozone.
        let o3max = {
            let c = &c;
            parfor_reduce(mode, nx * ny, 0.0f64, |k| c[k][2], f64::max)
        };
        peak = peak.max(o3max);
    }
    AirshedResult {
        grid: Some(c),
        peak_o3: peak,
    }
}

/// Version 2: SPMD stepping over a block distribution; bitwise-agrees with
/// version 1. Returns the gathered grid on rank 0; `peak_o3` is consistent
/// on every rank.
pub fn airshed_spmd(ctx: &mut Ctx, spec: &AirshedSpec, pgrid: ProcessGrid2) -> AirshedResult {
    assert_eq!(pgrid.len(), ctx.nprocs());
    let mut c = DistGrid2::from_global(
        ctx.rank(),
        pgrid,
        spec.nx,
        spec.ny,
        1,
        background(),
        |_, _| background(),
    );
    let (nx, ny) = (c.nx(), c.ny());
    let mut peak = 0.0f64;

    for _ in 0..spec.steps {
        c.exchange_ghosts(ctx);
        let mut cn = c.clone();
        for i in 0..nx {
            for j in 0..ny {
                if c.on_global_boundary(i, j) {
                    continue;
                }
                let (li, lj) = (i as isize, j as isize);
                cn.block.set(
                    li,
                    lj,
                    transport_update(
                        c.block.at(li, lj),
                        c.block.at(li - 1, lj),
                        c.block.at(li + 1, lj),
                        c.block.at(li, lj - 1),
                        c.block.at(li, lj + 1),
                        spec.wind,
                        spec.diffusion,
                        spec.dt,
                    ),
                );
            }
        }
        // Chemistry everywhere (pointwise, matches version 1's full sweep).
        for i in 0..nx as isize {
            for j in 0..ny as isize {
                let v = chemistry_step(cn.block.at(i, j), spec.j_rate, spec.k_rate, spec.dt);
                cn.block.set(i, j, v);
            }
        }
        // Emissions on the owning rank.
        let (si, sj, rate) = spec.source;
        if si >= cn.x0 && si < cn.x0 + nx && sj >= cn.y0 && sj < cn.y0 + ny {
            let (li, lj) = ((si - cn.x0) as isize, (sj - cn.y0) as isize);
            let mut v = cn.block.at(li, lj);
            v[0] += spec.dt * rate;
            cn.block.set(li, lj, v);
        }
        ctx.charge_items(nx * ny, 30.0);
        c = cn;
        // Reduction: global peak ozone this step.
        let local = c.block.fold_interior(0.0f64, |a, v| a.max(v[2]));
        let o3max = ctx.all_reduce(local, f64::max);
        peak = peak.max(o3max);
    }

    let grid = c.gather_global(ctx);
    AirshedResult {
        grid,
        peak_o3: peak,
    }
}

/// Total amount of a species over a grid.
pub fn total_species(grid: &[Conc], species: usize) -> f64 {
    grid.iter().map(|c| c[species]).sum()
}

/// Modeled sequential flop cost per step.
pub fn airshed_step_flops(nx: usize, ny: usize) -> f64 {
    30.0 * (nx * ny) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use archetype_mp::{run_spmd, MachineModel};

    fn small_spec(steps: usize) -> AirshedSpec {
        AirshedSpec {
            nx: 20,
            ny: 16,
            wind: (0.4, 0.1),
            diffusion: 0.05,
            j_rate: 0.3,
            k_rate: 2.0,
            dt: 0.2,
            steps,
            source: (5, 8, 0.5),
        }
    }

    #[test]
    fn chemistry_conserves_nox_and_approaches_photostationary_state() {
        // NOx = NO + NO2 is invariant; the O3/NO/NO2 ratio approaches
        // j/k = [NO][O3]/[NO2].
        let (j, k, dt) = (0.3, 2.0, 0.05);
        let mut c = [0.2, 0.3, 0.1];
        let nox0 = c[0] + c[1];
        for _ in 0..10_000 {
            c = chemistry_step(c, j, k, dt);
        }
        assert!((c[0] + c[1] - nox0).abs() < 1e-9, "NOx conserved");
        let ratio = c[0] * c[2] / c[1];
        assert!(
            (ratio - j / k).abs() < 1e-6,
            "photostationary ratio {ratio} vs {}",
            j / k
        );
    }

    #[test]
    fn chemistry_keeps_concentrations_non_negative() {
        let mut c = [0.0, 0.5, 0.0];
        for _ in 0..1000 {
            c = chemistry_step(c, 0.3, 2.0, 0.1);
            assert!(c.iter().all(|&v| v >= 0.0), "{c:?}");
        }
    }

    #[test]
    fn transport_preserves_uniform_fields() {
        let u = background();
        let next = transport_update(u, u, u, u, u, (0.5, -0.3), 0.1, 0.2);
        for sp in 0..3 {
            assert!((next[sp] - u[sp]).abs() < 1e-15);
        }
    }

    #[test]
    fn plume_advects_downwind() {
        let spec = small_spec(60);
        let res = airshed_shared(&spec, ExecutionMode::Sequential);
        let grid = res.grid.unwrap();
        let (si, sj, _) = spec.source;
        // NO concentration downwind (larger i and j) of the source should
        // exceed the upwind side.
        let down = grid[(si + 5) * spec.ny + sj + 1][0];
        let up = grid[(si - 4) * spec.ny + sj - 2][0];
        assert!(down > up, "downwind NO {down} should exceed upwind {up}");
    }

    #[test]
    fn emissions_raise_peak_ozone() {
        let mut quiet = small_spec(80);
        quiet.source.2 = 0.0;
        let base = airshed_shared(&quiet, ExecutionMode::Sequential);
        let polluted = airshed_shared(&small_spec(80), ExecutionMode::Sequential);
        assert!(
            polluted.peak_o3 >= base.peak_o3,
            "{} should be at least the clean-run peak {}",
            polluted.peak_o3,
            base.peak_o3
        );
    }

    #[test]
    fn version1_modes_agree_bitwise() {
        let spec = small_spec(20);
        let a = airshed_shared(&spec, ExecutionMode::Sequential);
        let b = airshed_shared(&spec, ExecutionMode::Parallel);
        assert_eq!(a.grid, b.grid);
        assert_eq!(a.peak_o3, b.peak_o3);
    }

    #[test]
    fn version2_agrees_bitwise_with_version1() {
        let spec = small_spec(12);
        let reference = airshed_shared(&spec, ExecutionMode::Sequential);
        for (px, py) in [(1, 1), (2, 2), (4, 1), (2, 3)] {
            let pg = ProcessGrid2::new(px, py);
            let out = run_spmd(pg.len(), MachineModel::ibm_sp(), move |ctx| {
                airshed_spmd(ctx, &spec, pg)
            });
            let root = &out.results[0];
            assert_eq!(
                root.grid.as_ref().unwrap(),
                reference.grid.as_ref().unwrap(),
                "{px}x{py}"
            );
            for r in &out.results {
                assert_eq!(r.peak_o3, reference.peak_o3, "peak O3 consistent");
            }
        }
    }
}
