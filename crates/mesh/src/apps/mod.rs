//! Applications of the mesh-spectral archetype (paper §3.5–§3.7).

pub mod airshed;
pub mod cfd;
pub mod em_fdtd;
pub mod fft2d;
pub mod poisson;
pub mod spectral_flow;
