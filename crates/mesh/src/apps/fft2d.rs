//! Two-dimensional FFT (paper §3.5, Figures 10–12).
//!
//! "Perform a one-dimensional FFT on each row … and then a one-dimensional
//! FFT on each column of the resulting array." The row operation requires
//! row distribution, the column operation column distribution, so the SPMD
//! version inserts a redistribution between them (and a second one after,
//! "for the sake of tidiness", restoring the original distribution) —
//! exactly the pseudocode of Figure 11.
//!
//! Two versions, per the archetype method:
//! - [`fft2d_shared`] — version 1, a `forall` over rows then columns,
//!   executable sequentially or with rayon, identical results;
//! - [`fft2d_spmd`] — version 2, an SPMD process over [`RowDist`] blocks
//!   with all-to-all redistribution, costed on the virtual clock.

use archetype_core::ExecutionMode;
use archetype_mp::Ctx;
use archetype_numerics::{fft_flops, fft_in_place, Complex, Direction};

use crate::redist::{cols_to_rows, gather_rows, rows_to_cols, RowDist};

/// Version 1: in-place 2-D FFT of a row-major `nx × ny` matrix.
/// Both dimensions must be powers of two.
pub fn fft2d_shared(mode: ExecutionMode, data: &mut [Complex], nx: usize, ny: usize) {
    assert_eq!(data.len(), nx * ny);
    // Row FFTs: rows are contiguous, operate on disjoint chunks.
    {
        // Split into rows without aliasing: forall over row indices with
        // raw chunk access via chunks_mut is the natural expression.
        archetype_core::parfor_chunks(mode, data, ny, |_r, row| {
            fft_in_place(row, Direction::Forward);
        });
    }
    // Column FFTs: gather each column into a scratch vector.
    // (Columns are strided; the shared-memory version pays a transpose-free
    // copy per column, mirroring `colfft` on a column slice.)
    let cols: Vec<Vec<Complex>> = {
        let data = &*data;
        archetype_core::parfor_map(mode, ny, |c| {
            let mut col: Vec<Complex> = (0..nx).map(|r| data[r * ny + c]).collect();
            fft_in_place(&mut col, Direction::Forward);
            col
        })
    };
    for (c, col) in cols.into_iter().enumerate() {
        for (r, v) in col.into_iter().enumerate() {
            data[r * ny + c] = v;
        }
    }
}

/// Version 2: SPMD 2-D FFT over row blocks. `init(r, c)` supplies the
/// global matrix; `reps` repeats the whole transform (the paper's Figure 12
/// benchmark repeats the FFT to lengthen the run). Returns this rank's
/// final row block, in the original row distribution.
pub fn fft2d_spmd(
    ctx: &mut Ctx,
    nx: usize,
    ny: usize,
    reps: usize,
    init: impl Fn(usize, usize) -> Complex,
) -> RowDist<Complex> {
    let mut rd = RowDist::from_global(ctx.rank(), ctx.nprocs(), nx, ny, init);
    for _ in 0..reps {
        // Row FFTs (precondition: distributed by rows).
        ctx.charge_flops(rd.local_rows as f64 * fft_flops(ny));
        rd.for_each_row_mut(|_r, row| fft_in_place(row, Direction::Forward));
        // Redistribute rows -> columns.
        let mut cd = rows_to_cols(ctx, &rd);
        // Column FFTs (precondition: distributed by columns).
        ctx.charge_flops(cd.local_cols as f64 * fft_flops(nx));
        cd.for_each_col_mut(|_c, col| fft_in_place(col, Direction::Forward));
        // Redistribute back to restore the original distribution.
        rd = cols_to_rows(ctx, &cd);
    }
    rd
}

/// Gather an SPMD result to rank 0 for comparison/output.
pub fn gather_fft2d(ctx: &mut Ctx, rd: &RowDist<Complex>) -> Option<Vec<Complex>> {
    gather_rows(ctx, rd)
}

/// Modeled sequential cost of `reps` 2-D FFTs on an `nx × ny` grid.
pub fn fft2d_seq_flops(nx: usize, ny: usize, reps: usize) -> f64 {
    reps as f64 * (nx as f64 * fft_flops(ny) + ny as f64 * fft_flops(nx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use archetype_mp::{run_spmd, MachineModel};
    use archetype_numerics::dft_naive;

    fn test_matrix(nx: usize, ny: usize) -> Vec<Complex> {
        (0..nx * ny)
            .map(|k| {
                let t = k as f64;
                Complex::new((0.13 * t).sin(), (0.29 * t).cos() * 0.5)
            })
            .collect()
    }

    /// Reference 2-D DFT via the naive 1-D oracle.
    fn dft2d_naive(data: &[Complex], nx: usize, ny: usize) -> Vec<Complex> {
        let mut out = data.to_vec();
        for r in 0..nx {
            let row: Vec<Complex> = out[r * ny..(r + 1) * ny].to_vec();
            out[r * ny..(r + 1) * ny].copy_from_slice(&dft_naive(&row, Direction::Forward));
        }
        let mut final_ = out.clone();
        for c in 0..ny {
            let col: Vec<Complex> = (0..nx).map(|r| out[r * ny + c]).collect();
            let f = dft_naive(&col, Direction::Forward);
            for r in 0..nx {
                final_[r * ny + c] = f[r];
            }
        }
        final_
    }

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn shared_matches_naive_dft2d() {
        let (nx, ny) = (16, 8);
        let input = test_matrix(nx, ny);
        let expected = dft2d_naive(&input, nx, ny);
        for mode in ExecutionMode::both() {
            let mut data = input.clone();
            fft2d_shared(mode, &mut data, nx, ny);
            assert!(max_err(&data, &expected) < 1e-9, "{mode}");
        }
    }

    #[test]
    fn shared_modes_agree_exactly() {
        let (nx, ny) = (32, 16);
        let mut a = test_matrix(nx, ny);
        let mut b = a.clone();
        fft2d_shared(ExecutionMode::Sequential, &mut a, nx, ny);
        fft2d_shared(ExecutionMode::Parallel, &mut b, nx, ny);
        assert_eq!(a, b, "version 1 must be mode-independent bit for bit");
    }

    #[test]
    fn spmd_matches_shared_for_many_process_counts() {
        let (nx, ny) = (16, 32);
        let input = test_matrix(nx, ny);
        let mut expected = input.clone();
        fft2d_shared(ExecutionMode::Sequential, &mut expected, nx, ny);
        for p in [1usize, 2, 4, 5, 8] {
            let input = input.clone();
            let out = run_spmd(p, MachineModel::ibm_sp(), move |ctx| {
                let rd = fft2d_spmd(ctx, nx, ny, 1, |r, c| input[r * ny + c]);
                gather_fft2d(ctx, &rd)
            });
            let got = out.results[0].as_ref().expect("rank 0 gathers");
            assert_eq!(got, &expected, "p={p}: SPMD must equal version 1 exactly");
        }
    }

    #[test]
    fn repeated_transforms_compose() {
        // reps=2 must equal applying the transform twice.
        let (nx, ny) = (8, 8);
        let input = test_matrix(nx, ny);
        let mut twice = input.clone();
        fft2d_shared(ExecutionMode::Sequential, &mut twice, nx, ny);
        fft2d_shared(ExecutionMode::Sequential, &mut twice, nx, ny);
        let input2 = input.clone();
        let out = run_spmd(2, MachineModel::ibm_sp(), move |ctx| {
            let rd = fft2d_spmd(ctx, nx, ny, 2, |r, c| input2[r * ny + c]);
            gather_fft2d(ctx, &rd)
        });
        assert_eq!(out.results[0].as_ref().unwrap(), &twice);
    }

    #[test]
    fn fft2d_has_low_compute_to_comm_ratio() {
        // The paper's Figure 12 finding: "disappointing performance is a
        // result of too small a ratio of computation to communication."
        // At P=16 on an SP-like machine the comm fraction should dominate.
        let (nx, ny) = (64, 64);
        let out = run_spmd(16, MachineModel::ibm_sp(), move |ctx| {
            fft2d_spmd(ctx, nx, ny, 1, |r, c| {
                Complex::new((r * ny + c) as f64, 0.0)
            });
        });
        assert!(
            out.stats.comm_fraction() > 0.5,
            "comm fraction {} should exceed 0.5",
            out.stats.comm_fraction()
        );
    }

    #[test]
    fn seq_flops_model_counts_both_passes() {
        let f = fft2d_seq_flops(64, 64, 1);
        assert!((f - 2.0 * 64.0 * fft_flops(64)).abs() < 1e-9);
        assert_eq!(fft2d_seq_flops(64, 64, 3), 3.0 * f);
    }
}
