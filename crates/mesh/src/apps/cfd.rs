//! Compressible-flow CFD kernel (paper §3.7.1, Figures 16, 19, 20).
//!
//! The paper's two production codes "simulate high Mach number
//! compressible flow … based on the two-dimensional mesh archetype". This
//! kernel reproduces their archetype structure — grid ops with ghost
//! exchange, a global wave-speed reduction per step for the CFL time step,
//! and field snapshots for output — on a reduced but genuine physics
//! problem: the 2-D compressible Euler equations advanced with the
//! Lax–Friedrichs scheme, initialized with a Mach-2 shock running into a
//! sinusoidally perturbed density field (the setup drawn in Figure 19).
//!
//! Conserved state per cell: `[ρ, ρu, ρv, E]`, ideal gas with γ = 1.4.

use archetype_core::{parfor_map, parfor_reduce, ExecutionMode};
use archetype_mp::{Ctx, ProcessGrid2};

use crate::globals::GlobalVar;
use crate::grid2::DistGrid2;

/// Conserved variables `[ρ, ρu, ρv, E]`.
pub type Cell = [f64; 4];

/// Ratio of specific heats.
pub const GAMMA: f64 = 1.4;

/// Pressure from the conserved state.
#[inline]
pub fn pressure(u: &Cell) -> f64 {
    (GAMMA - 1.0) * (u[3] - 0.5 * (u[1] * u[1] + u[2] * u[2]) / u[0])
}

/// Acoustic + advective wave speed `|v| + c`.
#[inline]
pub fn wave_speed(u: &Cell) -> f64 {
    let speed = (u[1] * u[1] + u[2] * u[2]).sqrt() / u[0];
    let c = (GAMMA * pressure(u) / u[0]).max(0.0).sqrt();
    speed + c
}

/// x-direction flux.
#[inline]
pub fn flux_x(u: &Cell) -> Cell {
    let p = pressure(u);
    let vx = u[1] / u[0];
    [u[1], u[1] * vx + p, u[2] * vx, (u[3] + p) * vx]
}

/// y-direction flux.
#[inline]
pub fn flux_y(u: &Cell) -> Cell {
    let p = pressure(u);
    let vy = u[2] / u[0];
    [u[2], u[1] * vy, u[2] * vy + p, (u[3] + p) * vy]
}

/// One 2-D Lax–Friedrichs update from the four neighbours.
#[inline]
pub fn lxf_update(w: &Cell, e: &Cell, s: &Cell, n: &Cell, lx: f64, ly: f64) -> Cell {
    let fw = flux_x(w);
    let fe = flux_x(e);
    let gs = flux_y(s);
    let gn = flux_y(n);
    let mut out = [0.0; 4];
    for c in 0..4 {
        out[c] = 0.25 * (w[c] + e[c] + s[c] + n[c])
            - 0.5 * lx * (fe[c] - fw[c])
            - 0.5 * ly * (gn[c] - gs[c]);
    }
    out
}

/// Problem specification.
#[derive(Clone, Copy)]
pub struct CfdSpec {
    /// Grid cells along x.
    pub nx: usize,
    /// Grid cells along y.
    pub ny: usize,
    /// Domain length along x.
    pub lx: f64,
    /// Domain length along y.
    pub ly: f64,
    /// CFL number (≤ 1 for Lax–Friedrichs stability).
    pub cfl: f64,
    /// Number of time steps.
    pub steps: usize,
}

impl CfdSpec {
    /// Cell sizes.
    pub fn dx(&self) -> (f64, f64) {
        (self.lx / self.nx as f64, self.ly / self.ny as f64)
    }
}

/// Initial condition for the Figure 19 setup: a Mach-2 shock at
/// `x = 0.2·lx` moving right into gas at rest whose density carries a
/// sinusoidal perturbation along y.
pub fn shock_sine_init(spec: &CfdSpec, i: usize, j: usize) -> Cell {
    let (dx, dy) = spec.dx();
    let x = (i as f64 + 0.5) * dx;
    let y = (j as f64 + 0.5) * dy;
    if x < 0.2 * spec.lx {
        // Post-shock state of a Mach-2 shock into (ρ=1, p=1, u=0), γ=1.4.
        let rho = 2.666_666_666_666_667;
        let p = 4.5;
        let u = 1.479_019_945_774_904; // shock-frame algebra, γ=1.4
        prim_to_cons(rho, u, 0.0, p)
    } else {
        let rho = 1.0 + 0.3 * (8.0 * std::f64::consts::PI * y / spec.ly).sin();
        prim_to_cons(rho, 0.0, 0.0, 1.0)
    }
}

/// Conserved state from primitive variables `(ρ, u, v, p)`.
pub fn prim_to_cons(rho: f64, u: f64, v: f64, p: f64) -> Cell {
    [
        rho,
        rho * u,
        rho * v,
        p / (GAMMA - 1.0) + 0.5 * rho * (u * u + v * v),
    ]
}

/// Result of a CFD run.
#[derive(Clone, Debug)]
pub struct CfdResult {
    /// Final conserved-state grid (row-major), `None` on non-root ranks.
    pub grid: Option<Vec<Cell>>,
    /// Physical time reached.
    pub time: f64,
}

/// Version 1: shared-memory solver (grid ops + wave-speed reduction).
pub fn cfd_shared(
    spec: &CfdSpec,
    mode: ExecutionMode,
    init: impl Fn(usize, usize) -> Cell + Sync,
) -> CfdResult {
    let (nx, ny) = (spec.nx, spec.ny);
    let (dx, dy) = spec.dx();
    let mut u: Vec<Cell> = (0..nx * ny).map(|k| init(k / ny, k % ny)).collect();
    let mut time = 0.0;

    for _ in 0..spec.steps {
        // Reduction: global maximum wave speed (exact max => deterministic).
        let smax = {
            let u = &u;
            parfor_reduce(mode, nx * ny, 0.0f64, |k| wave_speed(&u[k]), f64::max)
        };
        let dt = spec.cfl * dx.min(dy) / smax;
        let (lx, ly) = (dt / dx, dt / dy);
        // Grid op: Lax–Friedrichs update of the interior.
        let un: Vec<Cell> = {
            let u = &u;
            parfor_map(mode, nx * ny, |k| {
                let (i, j) = (k / ny, k % ny);
                if i == 0 || j == 0 || i == nx - 1 || j == ny - 1 {
                    u[k] // fixed boundary state
                } else {
                    lxf_update(&u[k - ny], &u[k + ny], &u[k - 1], &u[k + 1], lx, ly)
                }
            })
        };
        u = un;
        time += dt;
    }
    CfdResult {
        grid: Some(u),
        time,
    }
}

/// Version 2: SPMD solver over a block distribution with ghost exchange
/// and a recursive-doubling wave-speed reduction per step. Bitwise-agrees
/// with version 1. Returns the gathered grid on rank 0.
pub fn cfd_spmd(
    ctx: &mut Ctx,
    spec: &CfdSpec,
    pgrid: ProcessGrid2,
    init: impl Fn(usize, usize) -> Cell,
) -> CfdResult {
    assert_eq!(pgrid.len(), ctx.nprocs());
    let (dx, dy) = spec.dx();
    let mut u = DistGrid2::from_global(ctx.rank(), pgrid, spec.nx, spec.ny, 1, [0.0; 4], init);
    let (nx, ny) = (u.nx(), u.ny());
    let mut time = GlobalVar::new(0.0f64);

    for _ in 0..spec.steps {
        // Wave-speed reduction for the CFL time step.
        let local_smax = u.block.fold_interior(0.0f64, |a, c| a.max(wave_speed(&c)));
        ctx.charge_items(nx * ny, 12.0);
        let smax = ctx.all_reduce(local_smax, f64::max);
        let dt = spec.cfl * dx.min(dy) / smax;
        let (lxc, lyc) = (dt / dx, dt / dy);

        // Ghost exchange before the stencil grid op.
        u.exchange_ghosts(ctx);
        let mut un = u.clone();
        for i in 0..nx {
            for j in 0..ny {
                if u.on_global_boundary(i, j) {
                    continue;
                }
                let (li, lj) = (i as isize, j as isize);
                let new = lxf_update(
                    &u.block.at(li - 1, lj),
                    &u.block.at(li + 1, lj),
                    &u.block.at(li, lj - 1),
                    &u.block.at(li, lj + 1),
                    lxc,
                    lyc,
                );
                un.block.set(li, lj, new);
            }
        }
        ctx.charge_items(nx * ny, 60.0);
        u = un;
        // Keep `time` copy-consistent the archetype way (all ranks compute
        // the same dt, but route it through the reduction discipline).
        let t = *time.get() + dt;
        time.broadcast_from(ctx, 0, (ctx.rank() == 0).then_some(t));
    }

    let grid = u.gather_global(ctx);
    CfdResult {
        grid,
        time: *time.get(),
    }
}

/// Density field extracted from a conserved-state grid.
pub fn density_field(grid: &[Cell]) -> Vec<f64> {
    grid.iter().map(|c| c[0]).collect()
}

/// Vorticity `ω = ∂v/∂x − ∂u/∂y` by central differences on the gathered
/// grid (one-sided at the boundary omitted: boundary cells report 0).
pub fn vorticity_field(grid: &[Cell], nx: usize, ny: usize, dx: f64, dy: f64) -> Vec<f64> {
    let vel = |k: usize| (grid[k][1] / grid[k][0], grid[k][2] / grid[k][0]);
    let mut out = vec![0.0; nx * ny];
    for i in 1..nx - 1 {
        for j in 1..ny - 1 {
            let k = i * ny + j;
            let (_, v_e) = vel(k + ny);
            let (_, v_w) = vel(k - ny);
            let (u_n, _) = vel(k + 1);
            let (u_s, _) = vel(k - 1);
            out[k] = (v_e - v_w) / (2.0 * dx) - (u_n - u_s) / (2.0 * dy);
        }
    }
    out
}

/// Modeled sequential flop cost per step (reduction sweep + update sweep).
pub fn cfd_step_flops(nx: usize, ny: usize) -> f64 {
    (12.0 + 60.0) * (nx * ny) as f64
}

/// Total mass (ρ summed over cells) — conserved by the interior update.
pub fn total_mass(grid: &[Cell]) -> f64 {
    grid.iter().map(|c| c[0]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use archetype_mp::{run_spmd, MachineModel};

    fn small_spec(steps: usize) -> CfdSpec {
        CfdSpec {
            nx: 24,
            ny: 12,
            lx: 1.0,
            ly: 0.5,
            cfl: 0.4,
            steps,
        }
    }

    #[test]
    fn primitive_conversion_round_trips() {
        let c = prim_to_cons(1.4, 0.3, -0.2, 2.0);
        assert!((c[0] - 1.4).abs() < 1e-12);
        assert!((pressure(&c) - 2.0).abs() < 1e-12);
        assert!((c[1] / c[0] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn uniform_state_is_a_fixed_point() {
        let spec = small_spec(5);
        let res = cfd_shared(&spec, ExecutionMode::Sequential, |_, _| {
            prim_to_cons(1.0, 0.1, 0.0, 1.0)
        });
        let grid = res.grid.unwrap();
        let reference = prim_to_cons(1.0, 0.1, 0.0, 1.0);
        for c in &grid {
            for k in 0..4 {
                assert!((c[k] - reference[k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shock_advances_rightward() {
        let spec = CfdSpec {
            nx: 100,
            ny: 8,
            lx: 1.0,
            ly: 0.1,
            cfl: 0.4,
            steps: 60,
        };
        let res = cfd_shared(&spec, ExecutionMode::Sequential, |i, j| {
            shock_sine_init(&spec, i, j)
        });
        let grid = res.grid.unwrap();
        // Density at 26% of the domain should have risen well above the
        // pre-shock value: the (Lax-Friedrichs-smeared) shock has passed.
        let k = (26 * spec.ny) + spec.ny / 2;
        assert!(
            grid[k][0] > 1.4,
            "density {} at x=0.26 should show the shock",
            grid[k][0]
        );
        assert!(res.time > 0.0);
    }

    #[test]
    fn version1_modes_agree_bitwise() {
        let spec = small_spec(10);
        let a = cfd_shared(&spec, ExecutionMode::Sequential, |i, j| {
            shock_sine_init(&spec, i, j)
        });
        let b = cfd_shared(&spec, ExecutionMode::Parallel, |i, j| {
            shock_sine_init(&spec, i, j)
        });
        assert_eq!(a.grid, b.grid);
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn version2_agrees_bitwise_with_version1() {
        let spec = small_spec(8);
        let reference = cfd_shared(&spec, ExecutionMode::Sequential, |i, j| {
            shock_sine_init(&spec, i, j)
        });
        for (px, py) in [(1, 1), (2, 2), (3, 1), (2, 3)] {
            let pg = ProcessGrid2::new(px, py);
            let out = run_spmd(pg.len(), MachineModel::ibm_sp(), move |ctx| {
                cfd_spmd(ctx, &spec, pg, |i, j| shock_sine_init(&spec, i, j))
            });
            let root = &out.results[0];
            assert_eq!(
                root.grid.as_ref().unwrap(),
                reference.grid.as_ref().unwrap(),
                "{px}x{py}"
            );
            assert_eq!(root.time, reference.time);
        }
    }

    #[test]
    fn pressure_and_density_stay_positive() {
        let spec = small_spec(40);
        let res = cfd_shared(&spec, ExecutionMode::Parallel, |i, j| {
            shock_sine_init(&spec, i, j)
        });
        for c in res.grid.unwrap().iter() {
            assert!(c[0] > 0.0, "density must stay positive");
            assert!(pressure(c) > 0.0, "pressure must stay positive");
        }
    }

    #[test]
    fn vorticity_of_uniform_flow_is_zero() {
        let grid: Vec<Cell> = (0..10 * 10)
            .map(|_| prim_to_cons(1.0, 0.5, 0.2, 1.0))
            .collect();
        let w = vorticity_field(&grid, 10, 10, 0.1, 0.1);
        assert!(w.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn shock_interface_interaction_creates_vorticity() {
        // The physics of Figures 19/20: a shock crossing a density gradient
        // deposits vorticity (baroclinic generation).
        let spec = CfdSpec {
            nx: 80,
            ny: 40,
            lx: 1.0,
            ly: 0.5,
            cfl: 0.4,
            steps: 50,
        };
        let res = cfd_shared(&spec, ExecutionMode::Parallel, |i, j| {
            shock_sine_init(&spec, i, j)
        });
        let grid = res.grid.unwrap();
        let (dx, dy) = spec.dx();
        let w = vorticity_field(&grid, spec.nx, spec.ny, dx, dy);
        let max_w = w.iter().fold(0.0f64, |a, v| a.max(v.abs()));
        assert!(max_w > 1e-3, "vorticity {max_w} should be generated");
    }
}
