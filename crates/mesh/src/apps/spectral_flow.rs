//! Axisymmetric swirling-flow spectral kernel (paper §3.7.3, Figures 18
//! and 21).
//!
//! The paper's code solves the incompressible Euler equations with
//! axisymmetry using "a Fourier spectral method in the periodic direction
//! and a fourth-order finite difference method in the radial direction",
//! on the two-dimensional spectral archetype. This kernel keeps exactly
//! that numerical structure on a reduced model problem: a passive swirl
//! perturbation `u(r, θ)` transported by a radius-dependent angular
//! velocity `Ω(r)` and diffused radially,
//!
//! ```text
//! ∂u/∂t = −Ω(r) ∂u/∂θ  +  ν ∂²u/∂r²
//! ```
//!
//! with the θ-derivative computed **spectrally** (FFT per radial line) and
//! the r-derivative with a **fourth-order five-point stencil** (hence a
//! ghost width of two). The radial lines are distributed in blocks over
//! the processes; the θ direction is kept local — the spectral archetype's
//! row distribution — so each step needs only a radial ghost exchange.
//!
//! Figure 18's *superlinear* small-P speedups came from paging at the base
//! configuration; the bench reproduces this with the machine memory model
//! via [`working_set_bytes`].

use archetype_core::ExecutionMode;
use archetype_mp::{Ctx, ProcessGrid2};
use archetype_numerics::{fft_flops, fft_in_place, Complex, Direction};

use crate::grid2::DistGrid2;

/// Simulation parameters.
#[derive(Clone, Copy)]
pub struct SwirlSpec {
    /// Radial grid lines.
    pub nr: usize,
    /// Azimuthal points per line (power of two).
    pub ntheta: usize,
    /// Outer radius (domain is `r ∈ [0, rmax]`, θ ∈ `[0, 2π)`).
    pub rmax: f64,
    /// Kinematic viscosity.
    pub nu: f64,
    /// Time step.
    pub dt: f64,
    /// Number of steps.
    pub steps: usize,
}

impl SwirlSpec {
    /// Radial grid spacing.
    pub fn dr(&self) -> f64 {
        self.rmax / (self.nr - 1) as f64
    }

    /// Radius of line `i`.
    pub fn r(&self, i: usize) -> f64 {
        i as f64 * self.dr()
    }

    /// The swirl profile `Ω(r)`: solid-body rotation decaying outward.
    pub fn omega(&self, r: f64) -> f64 {
        let s = r / self.rmax;
        1.0 - s * s
    }
}

/// Initial perturbation: a smooth azimuthal wave localized mid-radius.
pub fn swirl_init(spec: &SwirlSpec, i: usize, j: usize) -> f64 {
    let r = spec.r(i);
    let theta = 2.0 * std::f64::consts::PI * j as f64 / spec.ntheta as f64;
    let band = (-(((r / spec.rmax) - 0.5) / 0.15).powi(2)).exp();
    band * (3.0 * theta).sin()
}

/// Spectral ∂/∂θ of one periodic line (length must be a power of two).
/// Returns the derivative with the same length.
pub fn dtheta_spectral(row: &[f64]) -> Vec<f64> {
    let n = row.len();
    let mut buf: Vec<Complex> = row.iter().map(|&v| Complex::from_re(v)).collect();
    fft_in_place(&mut buf, Direction::Forward);
    for (k, z) in buf.iter_mut().enumerate() {
        // Wavenumber with negative frequencies in the upper half; the
        // Nyquist bin's derivative is zero for real signals.
        let kk = if k < n / 2 {
            k as f64
        } else if k == n / 2 {
            0.0
        } else {
            k as f64 - n as f64
        };
        *z *= Complex::new(0.0, kk);
    }
    fft_in_place(&mut buf, Direction::Inverse);
    buf.into_iter().map(|z| z.re).collect()
}

/// Fourth-order second derivative stencil `(−f₋₂ + 16f₋₁ − 30f₀ + 16f₊₁ − f₊₂)/(12h²)`.
#[inline]
fn d2_4th(fm2: f64, fm1: f64, f0: f64, fp1: f64, fp2: f64, h: f64) -> f64 {
    (-fm2 + 16.0 * fm1 - 30.0 * f0 + 16.0 * fp1 - fp2) / (12.0 * h * h)
}

/// Version 1: full-grid stepping (row-major `nr × ntheta`).
pub fn swirl_shared(spec: &SwirlSpec, _mode: ExecutionMode) -> Vec<f64> {
    let (nr, nt) = (spec.nr, spec.ntheta);
    let dr = spec.dr();
    let mut u: Vec<f64> = (0..nr * nt)
        .map(|k| swirl_init(spec, k / nt, k % nt))
        .collect();

    for _ in 0..spec.steps {
        let mut un = u.clone();
        // Row op: spectral θ-derivative per radial line.
        let dudth: Vec<Vec<f64>> = (0..nr)
            .map(|i| dtheta_spectral(&u[i * nt..(i + 1) * nt]))
            .collect();
        // Grid op: advance the interior (radial lines 2..nr−2 use the full
        // five-point stencil; lines 0, 1, nr−2, nr−1 are held fixed, the
        // outer two acting as boundary conditions).
        #[allow(clippy::needless_range_loop)] // i/j index multiple grids
        for i in 2..nr - 2 {
            let r = spec.r(i);
            let om = spec.omega(r);
            for j in 0..nt {
                let k = i * nt + j;
                let diff = d2_4th(u[k - 2 * nt], u[k - nt], u[k], u[k + nt], u[k + 2 * nt], dr);
                un[k] = u[k] + spec.dt * (-om * dudth[i][j] + spec.nu * diff);
            }
        }
        u = un;
    }
    u
}

/// Per-process working set in bytes for `nr/p` radial lines: the field,
/// its next-step copy, and FFT scratch.
pub fn working_set_bytes(spec: &SwirlSpec, p: usize) -> f64 {
    let local_rows = spec.nr.div_ceil(p);
    // u + un + complex scratch (16 bytes/point) ≈ 4 doubles/point.
    4.0 * 8.0 * (local_rows * spec.ntheta) as f64
}

/// Version 2: SPMD stepping over radial blocks (process grid `p × 1`)
/// with ghost width 2 and a radial ghost exchange per step. Returns the
/// gathered field on rank 0. Declares its working set so machine models
/// with finite memory reproduce Figure 18's paging regime.
pub fn swirl_spmd(ctx: &mut Ctx, spec: &SwirlSpec) -> Option<Vec<f64>> {
    let p = ctx.nprocs();
    let pgrid = ProcessGrid2::new(p, 1);
    let (nr, nt) = (spec.nr, spec.ntheta);
    let dr = spec.dr();
    ctx.set_working_set(working_set_bytes(spec, p));

    let mut u = DistGrid2::from_global(ctx.rank(), pgrid, nr, nt, 2, 0.0, |i, j| {
        swirl_init(spec, i, j)
    });
    let local_rows = u.nx();

    for _ in 0..spec.steps {
        u.exchange_ghosts(ctx);
        let mut un = u.clone();
        // Row op: spectral derivative of each local radial line.
        let mut dudth: Vec<Vec<f64>> = Vec::with_capacity(local_rows);
        for li in 0..local_rows {
            let row: Vec<f64> = (0..nt)
                .map(|j| u.block.at(li as isize, j as isize))
                .collect();
            dudth.push(dtheta_spectral(&row));
        }
        ctx.charge_flops(local_rows as f64 * 2.0 * fft_flops(nt));
        // Grid op: advance global-interior lines.
        #[allow(clippy::needless_range_loop)] // li indexes grid and dudth
        for li in 0..local_rows {
            let gi = u.x0 + li;
            if gi < 2 || gi >= nr - 2 {
                continue;
            }
            let r = spec.r(gi);
            let om = spec.omega(r);
            let i = li as isize;
            for j in 0..nt as isize {
                let diff = d2_4th(
                    u.block.at(i - 2, j),
                    u.block.at(i - 1, j),
                    u.block.at(i, j),
                    u.block.at(i + 1, j),
                    u.block.at(i + 2, j),
                    dr,
                );
                let jn = j as usize;
                un.block.set(
                    i,
                    j,
                    u.block.at(i, j) + spec.dt * (-om * dudth[li][jn] + spec.nu * diff),
                );
            }
        }
        ctx.charge_items(local_rows * nt, 12.0);
        u = un;
    }
    u.gather_global(ctx)
}

/// The total azimuthal velocity field `u_θ(r, θ) = Ω(r)·r + u'` rendered
/// for Figure 21 from the evolved perturbation.
pub fn azimuthal_velocity(spec: &SwirlSpec, u: &[f64]) -> Vec<f64> {
    let nt = spec.ntheta;
    u.iter()
        .enumerate()
        .map(|(k, v)| {
            let r = spec.r(k / nt);
            spec.omega(r) * r + v
        })
        .collect()
}

/// Modeled sequential flop cost per step.
pub fn swirl_step_flops(spec: &SwirlSpec) -> f64 {
    spec.nr as f64 * 2.0 * fft_flops(spec.ntheta) + 12.0 * (spec.nr * spec.ntheta) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use archetype_mp::{run_spmd, MachineModel};

    fn small_spec(steps: usize) -> SwirlSpec {
        SwirlSpec {
            nr: 24,
            ntheta: 32,
            rmax: 1.0,
            nu: 1e-3,
            dt: 5e-4,
            steps,
        }
    }

    #[test]
    fn spectral_derivative_of_sine_is_cosine() {
        let n = 64;
        let row: Vec<f64> = (0..n)
            .map(|j| (2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64).sin())
            .collect();
        let d = dtheta_spectral(&row);
        #[allow(clippy::needless_range_loop)] // j is also the angle index
        for j in 0..n {
            let theta = 2.0 * std::f64::consts::PI * j as f64 / n as f64;
            let exact = 3.0 * (3.0 * theta).cos();
            assert!((d[j] - exact).abs() < 1e-9, "j={j}: {} vs {exact}", d[j]);
        }
    }

    #[test]
    fn spectral_derivative_of_constant_is_zero() {
        let d = dtheta_spectral(&[2.5; 16]);
        assert!(d.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn pure_advection_preserves_amplitude() {
        // With ν = 0 the perturbation is only rotated, so its max stays put
        // (up to time discretization error).
        let mut spec = small_spec(50);
        spec.nu = 0.0;
        let u = swirl_shared(&spec, ExecutionMode::Sequential);
        let mx = u.iter().fold(0.0f64, |a, v| a.max(v.abs()));
        assert!((mx - 1.0).abs() < 0.05, "max {mx} should stay near 1");
    }

    #[test]
    fn diffusion_damps_the_field() {
        let mut spec = small_spec(100);
        spec.nu = 5e-2;
        let u0: Vec<f64> = (0..spec.nr * spec.ntheta)
            .map(|k| swirl_init(&spec, k / spec.ntheta, k % spec.ntheta))
            .collect();
        let e0: f64 = u0.iter().map(|v| v * v).sum();
        let u = swirl_shared(&spec, ExecutionMode::Sequential);
        let e1: f64 = u.iter().map(|v| v * v).sum();
        assert!(e1 < e0, "viscosity must dissipate energy: {e1} !< {e0}");
    }

    #[test]
    fn spmd_matches_shared_bitwise() {
        let spec = small_spec(10);
        let reference = swirl_shared(&spec, ExecutionMode::Sequential);
        for p in [1usize, 2, 3, 4] {
            let out = run_spmd(p, MachineModel::ibm_sp(), move |ctx| swirl_spmd(ctx, &spec));
            let got = out.results[0].as_ref().expect("rank 0 gathers");
            assert_eq!(got, &reference, "p={p}");
        }
    }

    #[test]
    fn azimuthal_velocity_adds_base_swirl() {
        let spec = small_spec(0);
        let u = vec![0.0; spec.nr * spec.ntheta];
        let v = azimuthal_velocity(&spec, &u);
        // At r = rmax/2 the base swirl is Ω(r)·r = (1−0.25)·0.5 = 0.375.
        let i = (spec.nr - 1) / 2;
        let r = spec.r(i);
        let expected = spec.omega(r) * r;
        assert!((v[i * spec.ntheta] - expected).abs() < 1e-12);
    }

    #[test]
    fn working_set_shrinks_with_process_count() {
        let spec = small_spec(1);
        assert!(working_set_bytes(&spec, 1) > working_set_bytes(&spec, 4));
        assert!(working_set_bytes(&spec, 4) >= working_set_bytes(&spec, 8));
    }

    #[test]
    fn memory_pressure_produces_superlinear_speedup() {
        // Figure 18's effect: if one process's working set exceeds memory,
        // P processes can be more than P times faster.
        let spec = SwirlSpec {
            nr: 64,
            ntheta: 64,
            rmax: 1.0,
            nu: 1e-3,
            dt: 1e-4,
            steps: 3,
        };
        let capacity = working_set_bytes(&spec, 4) * 1.2; // 4 procs fit, 1 doesn't
        let model = MachineModel::ibm_sp_with_memory(capacity, 4.0);
        let t1 = run_spmd(1, model, move |ctx| {
            swirl_spmd(ctx, &spec);
        })
        .elapsed_virtual;
        let t4 = run_spmd(4, model, move |ctx| {
            swirl_spmd(ctx, &spec);
        })
        .elapsed_virtual;
        let speedup = t1 / t4;
        assert!(
            speedup > 4.0,
            "speedup {speedup} should be superlinear under paging"
        );
    }
}
