//! Event tracing: per-rank ring-buffer recorders, Chrome-trace export,
//! and virtual-time critical-path analysis.
//!
//! Tracing is enabled per run via [`crate::RunConfig::traced`]; the
//! result surfaces as [`crate::SpmdResult`]`::trace`. Design constraints
//! (they must not undo the allocation-free hot path):
//!
//! * **One branch when off.** Every hook in [`crate::Ctx`] is gated by a
//!   precomputed `trace_hot: bool` — exactly the `fault_hot` pattern —
//!   so untraced runs pay a single predictable branch per operation.
//! * **No allocation or locking when on.** Each rank owns a
//!   [`TraceRecorder`] whose event buffer is preallocated at install
//!   time; recording is a bounds-checked store into that buffer (a ring:
//!   when full, the oldest events are overwritten and counted in
//!   [`RankTrace::dropped`]). Events are fixed-size [`Copy`] values —
//!   labels are inlined, never heap strings — and the recorder is
//!   thread-private, so there is no lock anywhere on the path.
//! * **No observer effect.** Hooks read the clock and counters; they
//!   never touch them, never add virtual time, and never change what
//!   goes on the wire. `tests/prop_trace.rs` holds traced runs
//!   bit-identical to untraced ones across backends and archetypes.
//!
//! Every event carries both timestamps: the rank's **virtual time** (the
//! modeled quantity all analysis uses) and a **wall-clock** offset in
//! nanoseconds from the run's dispatch instant (diagnostic only — it is
//! the one field that legitimately differs between repeated runs, which
//! is why [`RankTrace::logical_events`] zeroes it for comparisons).
//!
//! Offline, send and receive events pair up *without any wire-level
//! bookkeeping*: the mailbox matches FIFO per `(sender, scope, tag)`, so
//! zipping the k-th recorded send against the k-th recorded receive of
//! the same key reproduces the exact matching the run performed. That
//! pairing drives both the Perfetto flow arrows of
//! [`RunTrace::chrome_json`] and the dependency DAG walked by
//! [`RunTrace::critical_path`].

use std::collections::HashMap;
use std::time::Instant;

/// Maximum bytes of a [`Label`]; longer strings are truncated at a char
/// boundary. 23 bytes + length byte keep the whole label in 24 bytes.
pub const LABEL_BYTES: usize = 23;

/// A short, fixed-capacity, inline string: the allocation-free label
/// attached to phase events. Built from `&str` by truncation.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label {
    len: u8,
    bytes: [u8; LABEL_BYTES],
}

impl Label {
    /// Empty label.
    pub const fn empty() -> Self {
        Label {
            len: 0,
            bytes: [0; LABEL_BYTES],
        }
    }

    /// The label's text.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).expect("label built from &str")
    }

    /// True when the label holds no text.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        let mut end = s.len().min(LABEL_BYTES);
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut bytes = [0u8; LABEL_BYTES];
        bytes[..end].copy_from_slice(&s.as_bytes()[..end]);
        Label {
            len: end as u8,
            bytes,
        }
    }
}

impl std::fmt::Debug for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One typed trace event. Fixed-size and [`Copy`] so recording is a
/// plain store; ranks in `to`/`from` are **world** ranks (scoped sends
/// are translated through the peer table before recording), which is
/// what lets per-rank streams pair up globally.
///
/// All `vt` fields are virtual seconds; `wall_ns` is nanoseconds since
/// the run's dispatch instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A point-to-point send (including those issued by collectives).
    /// `vt` is the sender's clock after the send-overhead charge;
    /// `arrival_vt` is the stamped arrival time at the destination.
    Send {
        /// Destination world rank.
        to: u32,
        /// Scope id the message was sent in.
        scope: u64,
        /// Message tag.
        tag: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Sender's virtual time after the send completed.
        vt: f64,
        /// Virtual arrival time stamped on the packet.
        arrival_vt: f64,
        /// Wall-clock offset (ns since dispatch).
        wall_ns: u64,
    },
    /// A matched receive. The window `vt_posted..vt` is the receive's
    /// whole cost: waiting until `arrival_vt` (if the message arrives
    /// "in the future"), then the receive overhead.
    Recv {
        /// Source world rank.
        from: u32,
        /// Scope id the receive matched in.
        scope: u64,
        /// Message tag.
        tag: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Receiver's virtual time when the receive was posted.
        vt_posted: f64,
        /// Virtual arrival time carried by the matched packet.
        arrival_vt: f64,
        /// Receiver's virtual time after the receive completed.
        vt: f64,
        /// Wall-clock offset (ns since dispatch).
        wall_ns: u64,
    },
    /// Entry into a collective operation (the sends/receives it issues
    /// follow as their own events).
    Collective {
        /// Collective name (`"barrier"`, `"all_reduce"`, …).
        name: &'static str,
        /// Virtual time at entry.
        vt: f64,
        /// Wall-clock offset (ns since dispatch).
        wall_ns: u64,
    },
    /// Entry into an archetype protocol phase (the unified form of the
    /// per-archetype `PhaseTrace` recording).
    Phase {
        /// Phase kind name (`"work"`, `"transform"`, …) — the archetype
        /// layer's `PhaseKind::name()`.
        kind: &'static str,
        /// Free-form label (stage name, batch id, …), truncated to
        /// [`LABEL_BYTES`].
        label: Label,
        /// Virtual time at phase entry.
        vt: f64,
        /// Wall-clock offset (ns since dispatch).
        wall_ns: u64,
    },
    /// The rank's body started executing on a pool worker (or dedicated
    /// thread); always the first event of a traced rank.
    PoolDispatch {
        /// Virtual time at dispatch (0.0 unless the recorder was
        /// installed mid-run).
        vt: f64,
        /// Wall-clock offset (ns since dispatch).
        wall_ns: u64,
    },
    /// The plan service started executing a wave of admitted plans.
    WaveStart {
        /// Wave index within the serve call.
        wave: u32,
        /// Number of plans in the wave.
        plans: u32,
        /// Virtual time at wave start.
        vt: f64,
        /// Wall-clock offset (ns since dispatch).
        wall_ns: u64,
    },
}

impl TraceEvent {
    /// The event's virtual timestamp (receives report their completion
    /// time).
    pub fn vt(&self) -> f64 {
        match *self {
            TraceEvent::Send { vt, .. }
            | TraceEvent::Recv { vt, .. }
            | TraceEvent::Collective { vt, .. }
            | TraceEvent::Phase { vt, .. }
            | TraceEvent::PoolDispatch { vt, .. }
            | TraceEvent::WaveStart { vt, .. } => vt,
        }
    }

    /// The same event with its wall-clock offset zeroed: the *logical*
    /// event, equal across repeated same-seed runs.
    pub fn logical(mut self) -> Self {
        match &mut self {
            TraceEvent::Send { wall_ns, .. }
            | TraceEvent::Recv { wall_ns, .. }
            | TraceEvent::Collective { wall_ns, .. }
            | TraceEvent::Phase { wall_ns, .. }
            | TraceEvent::PoolDispatch { wall_ns, .. }
            | TraceEvent::WaveStart { wall_ns, .. } => *wall_ns = 0,
        }
        self
    }
}

/// Per-rank event recorder: a preallocated ring buffer plus the run's
/// shared wall-clock anchor. Owned by exactly one rank's [`crate::Ctx`];
/// recording is lock-free and allocation-free (module docs).
pub struct TraceRecorder {
    /// Recorded events. Until the ring wraps this is in recording order;
    /// afterwards `head` marks the oldest slot.
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Next slot to overwrite once `events.len() == capacity`.
    head: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
    /// The run's dispatch instant — one anchor shared by every rank, so
    /// wall offsets are comparable across tracks.
    epoch: Instant,
}

impl TraceRecorder {
    /// A recorder holding at most `capacity` events (oldest dropped
    /// beyond that), timestamping against `epoch`.
    pub fn new(capacity: usize, epoch: Instant) -> Self {
        let capacity = capacity.max(1);
        TraceRecorder {
            events: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
            epoch,
        }
    }

    /// Nanoseconds since the run's dispatch instant.
    #[inline]
    pub fn wall_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Append an event (overwriting the oldest if the ring is full).
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Dismantle into the rank's finished trace, rotating the ring so
    /// events come out oldest-first.
    pub fn into_rank_trace(mut self, rank: usize) -> RankTrace {
        self.events.rotate_left(self.head);
        RankTrace {
            rank,
            events: self.events,
            dropped: self.dropped,
        }
    }
}

/// One rank's finished event stream, oldest event first.
#[derive(Debug)]
pub struct RankTrace {
    /// World rank that recorded these events.
    pub rank: usize,
    /// Events in recording order (virtual time is nondecreasing).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wrap-around (0 when the buffer sufficed;
    /// raise [`crate::RunConfig`]`::trace_capacity` otherwise).
    pub dropped: u64,
}

impl RankTrace {
    /// The events with wall-clock offsets zeroed — the deterministic
    /// stream that repeated same-seed runs reproduce bit-identically.
    pub fn logical_events(&self) -> Vec<TraceEvent> {
        self.events.iter().map(|e| e.logical()).collect()
    }
}

/// A whole run's trace: one [`RankTrace`] per world rank plus the final
/// clocks the exporters need to close trailing spans.
#[derive(Debug)]
pub struct RunTrace {
    /// Per-rank event streams, indexed by world rank.
    pub ranks: Vec<RankTrace>,
    /// Final virtual clock of each rank.
    pub rank_times: Vec<f64>,
    /// Elapsed virtual time of the run (max over `rank_times`).
    pub elapsed_virtual: f64,
}

/// Key under which sends and receives pair: the mailbox matches FIFO per
/// `(sender, receiver, scope, tag)`, so recorded order within a key is
/// the matching order.
type FlowKey = (u32, u32, u64, u64);

impl RunTrace {
    /// Total events recorded across all ranks.
    pub fn total_events(&self) -> usize {
        self.ranks.iter().map(|r| r.events.len()).sum()
    }

    /// Total events lost to ring wrap-around across all ranks.
    pub fn total_dropped(&self) -> u64 {
        self.ranks.iter().map(|r| r.dropped).sum()
    }

    /// Pair every receive with the send that produced its message:
    /// returns `(recv_rank, recv_event_idx) -> (send_rank, send_event_idx)`.
    /// Pairing is exact for complete streams; ring-dropped events leave
    /// the affected receives unpaired (consumers degrade gracefully).
    fn pair_messages(&self) -> HashMap<(usize, usize), (usize, usize)> {
        let mut sends: HashMap<FlowKey, Vec<(usize, usize)>> = HashMap::new();
        let mut recvs: HashMap<FlowKey, Vec<(usize, usize)>> = HashMap::new();
        for rt in &self.ranks {
            for (i, e) in rt.events.iter().enumerate() {
                match *e {
                    TraceEvent::Send { to, scope, tag, .. } => sends
                        .entry((rt.rank as u32, to, scope, tag))
                        .or_default()
                        .push((rt.rank, i)),
                    TraceEvent::Recv {
                        from, scope, tag, ..
                    } => recvs
                        .entry((from, rt.rank as u32, scope, tag))
                        .or_default()
                        .push((rt.rank, i)),
                    _ => {}
                }
            }
        }
        let mut pairs = HashMap::new();
        for (key, rlist) in recvs {
            if let Some(slist) = sends.get(&key) {
                for (r, s) in rlist.iter().zip(slist) {
                    pairs.insert(*r, *s);
                }
            }
        }
        pairs
    }

    /// Export the run as Chrome Trace Event JSON, loadable in Perfetto
    /// (`ui.perfetto.dev`) or `chrome://tracing`.
    ///
    /// Each rank becomes one process (`pid = rank`) with two tracks:
    /// `phases` (tid 0 — archetype phase spans, pool dispatch, wave
    /// starts) and `comm` (tid 1 — receive-wait slices, send slices,
    /// collective markers). Every paired message contributes a
    /// `"s"`/`"f"` flow event pair, drawn by Perfetto as an arrow from
    /// the send slice to the end of the matching receive slice.
    /// Timestamps are virtual microseconds (`vt × 1e6`); wall-clock
    /// offsets ride along in each event's `args.wall_ns`.
    pub fn chrome_json(&self) -> String {
        let pairs = self.pair_messages();
        // Flow ids must be stable per pair: number them in (rank, idx)
        // order of the receive side.
        let mut flow_ids: HashMap<(usize, usize), u64> = HashMap::new();
        {
            let mut keys: Vec<_> = pairs.keys().copied().collect();
            keys.sort_unstable();
            for (n, k) in keys.into_iter().enumerate() {
                flow_ids.insert(k, n as u64);
            }
        }
        // Reverse index: (send_rank, send_idx) -> flow id.
        let send_flow: HashMap<(usize, usize), u64> = pairs
            .iter()
            .map(|(r, s)| (*s, flow_ids[r]))
            .collect();

        let us = |vt: f64| vt * 1.0e6;
        let mut out = String::with_capacity(256 + self.total_events() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, line: String| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(&line);
        };

        for rt in &self.ranks {
            let pid = rt.rank;
            let end_vt = self.rank_times.get(pid).copied().unwrap_or(0.0);
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"rank {pid}\"}}}}"
                ),
            );
            for (tid, tname) in [(0, "phases"), (1, "comm")] {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                         \"args\":{{\"name\":\"{tname}\"}}}}"
                    ),
                );
            }

            // Phase spans close at the next phase entry (or run end).
            let phase_starts: Vec<(usize, f64)> = rt
                .events
                .iter()
                .enumerate()
                .filter_map(|(i, e)| match e {
                    TraceEvent::Phase { vt, .. } => Some((i, *vt)),
                    _ => None,
                })
                .collect();

            // Emit per track in vt order. Events are recorded in clock
            // order, so a single pass per track is already monotone.
            let mut next_phase = 0usize;
            for (i, e) in rt.events.iter().enumerate() {
                match *e {
                    TraceEvent::Phase {
                        kind,
                        label,
                        vt,
                        wall_ns,
                    } => {
                        next_phase += 1;
                        let end = phase_starts
                            .get(next_phase)
                            .map(|&(_, v)| v)
                            .unwrap_or(end_vt)
                            .max(vt);
                        let name = if label.is_empty() {
                            kind.to_string()
                        } else {
                            format!("{kind}:{}", json_escape(label.as_str()))
                        };
                        push(
                            &mut out,
                            &mut first,
                            format!(
                                "{{\"name\":\"{name}\",\"cat\":\"phase\",\"ph\":\"X\",\
                                 \"ts\":{:.3},\"dur\":{:.3},\"pid\":{pid},\"tid\":0,\
                                 \"args\":{{\"wall_ns\":{wall_ns}}}}}",
                                us(vt),
                                us(end - vt),
                            ),
                        );
                    }
                    TraceEvent::PoolDispatch { vt, wall_ns } => push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"pool_dispatch\",\"cat\":\"runner\",\"ph\":\"i\",\
                             \"s\":\"t\",\"ts\":{:.3},\"pid\":{pid},\"tid\":0,\
                             \"args\":{{\"wall_ns\":{wall_ns}}}}}",
                            us(vt),
                        ),
                    ),
                    TraceEvent::WaveStart {
                        wave,
                        plans,
                        vt,
                        wall_ns,
                    } => push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"wave {wave}\",\"cat\":\"serve\",\"ph\":\"i\",\
                             \"s\":\"t\",\"ts\":{:.3},\"pid\":{pid},\"tid\":0,\
                             \"args\":{{\"plans\":{plans},\"wall_ns\":{wall_ns}}}}}",
                            us(vt),
                        ),
                    ),
                    TraceEvent::Collective { name, vt, wall_ns } => push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"{name}\",\"cat\":\"collective\",\"ph\":\"i\",\
                             \"s\":\"t\",\"ts\":{:.3},\"pid\":{pid},\"tid\":1,\
                             \"args\":{{\"wall_ns\":{wall_ns}}}}}",
                            us(vt),
                        ),
                    ),
                    TraceEvent::Send {
                        to,
                        scope,
                        tag,
                        bytes,
                        vt,
                        arrival_vt,
                        wall_ns,
                    } => {
                        push(
                            &mut out,
                            &mut first,
                            format!(
                                "{{\"name\":\"send\\u2192{to}\",\"cat\":\"msg\",\"ph\":\"X\",\
                                 \"ts\":{:.3},\"dur\":0.2,\"pid\":{pid},\"tid\":1,\
                                 \"args\":{{\"scope\":{scope},\"tag\":{tag},\"bytes\":{bytes},\
                                 \"arrival_vt\":{arrival_vt},\"wall_ns\":{wall_ns}}}}}",
                                us(vt),
                            ),
                        );
                        if let Some(id) = send_flow.get(&(pid, i)) {
                            push(
                                &mut out,
                                &mut first,
                                format!(
                                    "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"s\",\
                                     \"id\":{id},\"ts\":{:.3},\"pid\":{pid},\"tid\":1}}",
                                    us(vt),
                                ),
                            );
                        }
                    }
                    TraceEvent::Recv {
                        from,
                        scope,
                        tag,
                        bytes,
                        vt_posted,
                        arrival_vt,
                        vt,
                        wall_ns,
                    } => {
                        push(
                            &mut out,
                            &mut first,
                            format!(
                                "{{\"name\":\"recv\\u2190{from}\",\"cat\":\"msg\",\"ph\":\"X\",\
                                 \"ts\":{:.3},\"dur\":{:.3},\"pid\":{pid},\"tid\":1,\
                                 \"args\":{{\"scope\":{scope},\"tag\":{tag},\"bytes\":{bytes},\
                                 \"arrival_vt\":{arrival_vt},\"wall_ns\":{wall_ns}}}}}",
                                us(vt_posted),
                                us(vt - vt_posted),
                            ),
                        );
                        if let Some(id) = flow_ids.get(&(pid, i)) {
                            push(
                                &mut out,
                                &mut first,
                                format!(
                                    "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"f\",\
                                     \"bp\":\"e\",\"id\":{id},\"ts\":{:.3},\
                                     \"pid\":{pid},\"tid\":1}}",
                                    us(vt),
                                ),
                            );
                        }
                    }
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Walk the send/receive dependency DAG backwards from the rank that
    /// finished last and report the virtual-time critical path: which
    /// phases the path's local segments ran under, and which
    /// sender→receiver edges it blocked on.
    ///
    /// The path's total equals [`RunTrace::elapsed_virtual`] by
    /// construction (it ends at the max clock), so it is always ≥ the
    /// max per-rank compute time — the [`crate::RunStats`] lower bound
    /// it is validated against.
    pub fn critical_path(&self, top_k: usize) -> CriticalPathReport {
        let pairs = self.pair_messages();
        let end_rank = (0..self.rank_times.len())
            .max_by(|&a, &b| {
                self.rank_times[a]
                    .partial_cmp(&self.rank_times[b])
                    .expect("clocks are never NaN")
            })
            .unwrap_or(0);

        let mut by_phase: HashMap<String, f64> = HashMap::new();
        let mut by_edge: HashMap<(usize, usize), f64> = HashMap::new();
        let mut wait_vt = 0.0f64;
        let mut hops = 0usize;

        // Attribute local interval [a, b] on `rank` to the phases active
        // over it (the phase entered latest before each point).
        let attribute_local = |by_phase: &mut HashMap<String, f64>, rank: usize, a: f64, b: f64| {
            if b <= a {
                return;
            }
            let events = &self.ranks[rank].events;
            // Phase entries at or before b, newest first.
            let mut cursor = b;
            let mut entries: Vec<(f64, String)> = events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Phase {
                        kind, label, vt, ..
                    } if *vt < b => Some((
                        *vt,
                        if label.is_empty() {
                            (*kind).to_string()
                        } else {
                            format!("{kind}:{}", label.as_str())
                        },
                    )),
                    _ => None,
                })
                .collect();
            entries.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("clocks are never NaN"));
            while let Some((vt, name)) = entries.pop() {
                if cursor <= a {
                    break;
                }
                let lo = vt.max(a);
                if lo < cursor {
                    *by_phase.entry(name).or_default() += cursor - lo;
                    cursor = lo;
                }
            }
            if cursor > a {
                *by_phase.entry("(untracked)".to_string()).or_default() += cursor - a;
            }
        };

        let mut rank = end_rank;
        let mut t = self.rank_times.get(end_rank).copied().unwrap_or(0.0);
        // Each hop consumes at least one receive event, so the total
        // event count bounds the walk even on degenerate clocks.
        let max_hops = self.total_events() + 1;
        loop {
            // Latest blocking receive at or before t on this rank.
            let blocking = self.ranks[rank]
                .events
                .iter()
                .enumerate()
                .rev()
                .find_map(|(i, e)| match *e {
                    TraceEvent::Recv {
                        from,
                        vt_posted,
                        arrival_vt,
                        vt,
                        ..
                    } if vt <= t && arrival_vt > vt_posted => {
                        Some((i, from as usize, vt_posted, arrival_vt))
                    }
                    _ => None,
                });
            match blocking {
                None => {
                    attribute_local(&mut by_phase, rank, 0.0, t);
                    break;
                }
                Some((idx, from, vt_posted, arrival_vt)) => {
                    // Local work after the message landed (includes the
                    // receive overhead — substrate cost on this rank).
                    attribute_local(&mut by_phase, rank, arrival_vt, t);
                    hops += 1;
                    match pairs.get(&(rank, idx)) {
                        Some(&(srank, sidx)) => {
                            // The edge's path contribution is the
                            // message *transit* (send → arrival). The
                            // receiver may have stalled far longer
                            // (since `vt_posted`), but that stall
                            // overlaps the sender's concurrent work —
                            // charging it would double-count and is how
                            // "blocked" time once exceeded the total.
                            let svt = self.ranks[srank].events[sidx].vt();
                            let wait = (arrival_vt - svt).max(0.0);
                            wait_vt += wait;
                            *by_edge.entry((from, rank)).or_default() += wait;
                            rank = srank;
                            t = svt;
                        }
                        None => {
                            // Pair lost to ring wrap: the sender's
                            // timeline is gone, so fall back to the
                            // receiver's stall and stay on this rank.
                            let wait = arrival_vt - vt_posted;
                            wait_vt += wait;
                            *by_edge.entry((from, rank)).or_default() += wait;
                            attribute_local(&mut by_phase, rank, 0.0, vt_posted);
                            break;
                        }
                    }
                    if hops >= max_hops {
                        break;
                    }
                }
            }
        }

        let total_vt = self.rank_times.get(end_rank).copied().unwrap_or(0.0);
        let mut top_phases: Vec<(String, f64)> = by_phase.into_iter().collect();
        top_phases.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("never NaN").then(a.0.cmp(&b.0)));
        top_phases.truncate(top_k);
        let mut top_edges: Vec<(usize, usize, f64)> =
            by_edge.into_iter().map(|((f, t), w)| (f, t, w)).collect();
        top_edges.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("never NaN")
                .then((a.0, a.1).cmp(&(b.0, b.1)))
        });
        top_edges.truncate(top_k);

        CriticalPathReport {
            total_vt,
            wait_vt,
            local_vt: total_vt - wait_vt,
            end_rank,
            hops,
            top_phases,
            top_edges,
        }
    }
}

/// Minimal JSON string escaping for labels (phase labels are the only
/// free-form text that reaches the exporter).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// What [`RunTrace::critical_path`] found: the virtual-time path ending
/// at the slowest rank, decomposed into local work (attributed to
/// phases) and message transit (attributed to edges).
#[derive(Clone, Debug)]
pub struct CriticalPathReport {
    /// Length of the path = the run's elapsed virtual time.
    pub total_vt: f64,
    /// Virtual time the path spent in flight on messages (send →
    /// arrival transit of each crossed edge; a receiver's longer stall
    /// overlaps its sender's concurrent work and is deliberately not
    /// counted — it would double-count path time).
    pub wait_vt: f64,
    /// Virtual time the path spent in local work (`total - wait`).
    pub local_vt: f64,
    /// The rank whose final clock ends the path.
    pub end_rank: usize,
    /// Number of cross-rank hops (blocking receives) on the path.
    pub hops: usize,
    /// Top-k phases by local virtual time on the path, descending.
    pub top_phases: Vec<(String, f64)>,
    /// Top-k `(sender, receiver, wait_vt)` edges by wait time, descending.
    pub top_edges: Vec<(usize, usize, f64)>,
}

impl std::fmt::Display for CriticalPathReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "critical path: {:.6}s virtual (local {:.6}s, in flight {:.6}s), \
             {} hop(s), ends at rank {}",
            self.total_vt, self.local_vt, self.wait_vt, self.hops, self.end_rank
        )?;
        writeln!(f, "  top phases on the path:")?;
        for (name, vt) in &self.top_phases {
            writeln!(f, "    {vt:>12.6}s  {name}")?;
        }
        writeln!(f, "  top blocking edges:")?;
        for (from, to, vt) in &self.top_edges {
            writeln!(f, "    {vt:>12.6}s  rank {from} \u{2192} rank {to}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anchor() -> Instant {
        Instant::now()
    }

    #[test]
    fn labels_truncate_at_char_boundaries() {
        let l = Label::from("short");
        assert_eq!(l.as_str(), "short");
        let long = "x".repeat(40);
        assert_eq!(Label::from(long.as_str()).as_str(), &long[..LABEL_BYTES]);
        // Multi-byte char straddling the cut must be dropped whole.
        let tricky = format!("{}é", "a".repeat(LABEL_BYTES - 1));
        let t = Label::from(tricky.as_str());
        assert_eq!(t.as_str(), &"a".repeat(LABEL_BYTES - 1));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = TraceRecorder::new(3, anchor());
        for i in 0..5u64 {
            r.record(TraceEvent::Collective {
                name: "barrier",
                vt: i as f64,
                wall_ns: i,
            });
        }
        let t = r.into_rank_trace(0);
        assert_eq!(t.dropped, 2);
        let vts: Vec<f64> = t.events.iter().map(TraceEvent::vt).collect();
        assert_eq!(vts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn logical_events_zero_wall_only() {
        let e = TraceEvent::Send {
            to: 1,
            scope: 0,
            tag: 7,
            bytes: 64,
            vt: 1.5,
            arrival_vt: 1.6,
            wall_ns: 12345,
        };
        match e.logical() {
            TraceEvent::Send {
                wall_ns, vt, tag, ..
            } => {
                assert_eq!(wall_ns, 0);
                assert_eq!(vt, 1.5);
                assert_eq!(tag, 7);
            }
            _ => unreachable!(),
        }
    }

    /// Hand-built two-rank trace: rank 0 computes then sends; rank 1
    /// blocks on the receive. The critical path must cross the edge.
    fn two_rank_trace() -> RunTrace {
        let send = TraceEvent::Send {
            to: 1,
            scope: 0,
            tag: 9,
            bytes: 8,
            vt: 5.0,
            arrival_vt: 6.0,
            wall_ns: 1,
        };
        let recv = TraceEvent::Recv {
            from: 0,
            scope: 0,
            tag: 9,
            bytes: 8,
            vt_posted: 1.0,
            arrival_vt: 6.0,
            vt: 6.5,
            wall_ns: 2,
        };
        let phase0 = TraceEvent::Phase {
            kind: "work",
            label: Label::from("producer"),
            vt: 0.0,
            wall_ns: 0,
        };
        RunTrace {
            ranks: vec![
                RankTrace {
                    rank: 0,
                    events: vec![phase0, send],
                    dropped: 0,
                },
                RankTrace {
                    rank: 1,
                    events: vec![recv],
                    dropped: 0,
                },
            ],
            rank_times: vec![5.0, 7.0],
            elapsed_virtual: 7.0,
        }
    }

    #[test]
    fn critical_path_crosses_the_blocking_edge() {
        let trace = two_rank_trace();
        let report = trace.critical_path(5);
        assert_eq!(report.end_rank, 1);
        assert!((report.total_vt - 7.0).abs() < 1e-12);
        assert_eq!(report.hops, 1);
        // The edge costs the message transit (send at 5.0, arrival at
        // 6.0) — not the receiver's stall since 1.0, which overlaps the
        // producer's concurrent work.
        assert!((report.wait_vt - 1.0).abs() < 1e-12);
        assert!((report.local_vt - 6.0).abs() < 1e-12);
        // Edge 0→1 dominates the waits.
        assert_eq!(report.top_edges[0].0, 0);
        assert_eq!(report.top_edges[0].1, 1);
        // The producer's phase appears in the local attribution.
        assert!(report
            .top_phases
            .iter()
            .any(|(name, _)| name == "work:producer"));
        // Never below the max per-rank "compute" (here: everything).
        assert!(report.total_vt >= trace.elapsed_virtual - 1e-12);
    }

    #[test]
    fn chrome_json_has_tracks_and_matched_flows() {
        let trace = two_rank_trace();
        let json = trace.chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("rank 0"));
        assert!(json.contains("rank 1"));
        let starts = json.matches("\"ph\":\"s\"").count();
        let finishes = json.matches("\"ph\":\"f\"").count();
        assert_eq!(starts, 1, "one matched pair -> one flow start");
        assert_eq!(starts, finishes, "flow starts and finishes must pair");
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
