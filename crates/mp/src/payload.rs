//! Message payload typing, size accounting, and shared (zero-copy)
//! payload handles.
//!
//! The virtual-time model charges per byte transferred, so every message
//! payload must report its size on the wire. [`Payload`] is the trait the
//! communicator requires; [`FixedSize`] is a marker for plain-old-data types
//! whose wire size equals `size_of::<T>()`, with blanket [`Payload`]
//! implementations for `T`, `Vec<T>` and `Box<[T]>`.
//!
//! [`Shared`] is an `Arc`-backed payload handle used by the fan-out
//! collectives: forwarding a `Shared` along a broadcast tree or an
//! all-gather ring clones a reference count, not the data, so the wire
//! *cost* of every hop is still charged by the virtual-time model while
//! the host does O(1) deep copies per rank instead of O(log n) or O(n).
//!
//! Application crates implement [`FixedSize`] for their own POD structs with
//! the [`impl_fixed_size!`](crate::impl_fixed_size) macro.

use std::sync::Arc;

/// Marker for plain-old-data message elements: `Copy` types with no heap
/// indirection, whose transmitted size is exactly `size_of::<Self>()`.
///
/// # Safety-adjacent contract
/// This is not `unsafe`, but implementations must be honest about size:
/// the cost model (not memory safety) depends on it.
pub trait FixedSize: Copy + Send + 'static {}

/// Implements [`FixedSize`] for one or more POD types.
///
/// ```
/// use archetype_mp::impl_fixed_size;
///
/// #[derive(Clone, Copy)]
/// struct Building { left: f64, height: f64, right: f64 }
/// impl_fixed_size!(Building);
/// ```
#[macro_export]
macro_rules! impl_fixed_size {
    ($($t:ty),* $(,)?) => {
        $(impl $crate::payload::FixedSize for $t {})*
    };
}

impl_fixed_size!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl<T: FixedSize, const N: usize> FixedSize for [T; N] {}
impl<A: FixedSize, B: FixedSize> FixedSize for (A, B) {}
impl<A: FixedSize, B: FixedSize, C: FixedSize> FixedSize for (A, B, C) {}
impl<A: FixedSize, B: FixedSize, C: FixedSize, D: FixedSize> FixedSize for (A, B, C, D) {}

/// A value that can travel in a message: sendable across threads and able to
/// report its wire size in bytes for the cost model.
pub trait Payload: Send + 'static {
    /// Number of bytes this value occupies on the (simulated) wire.
    fn size_bytes(&self) -> usize;
}

impl<T: FixedSize> Payload for T {
    fn size_bytes(&self) -> usize {
        std::mem::size_of::<T>()
    }
}

impl<T: FixedSize> Payload for Vec<T> {
    fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl<T: FixedSize> Payload for Box<[T]> {
    fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl Payload for String {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

/// Nested vectors (e.g. one block per destination) transmit the sum of
/// their parts; the per-message latency is charged once by the send itself.
impl<T: FixedSize> Payload for Vec<Vec<T>> {
    fn size_bytes(&self) -> usize {
        self.iter()
            .map(|v| v.len() * std::mem::size_of::<T>())
            .sum()
    }
}

/// A reference-counted payload handle.
///
/// `Shared<T>` wraps its value in an [`Arc`] so a message can be fanned
/// out to many destinations — or forwarded hop by hop through a
/// collective — without deep-copying the value. Cloning a `Shared` is a
/// refcount increment; the underlying `T` is deep-copied at most once per
/// rank, and only when [`Shared::into_inner`] finds other live handles.
///
/// The virtual-time cost model is unaffected: every send of a `Shared`
/// still charges the full wire size of the payload, exactly as the
/// simulated network would. Only *host* copy work is elided.
///
/// ```
/// use archetype_mp::{run_spmd, MachineModel, Shared};
///
/// // A large buffer broadcast as a handle: no per-hop deep copies.
/// let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
///     let v = (ctx.rank() == 0).then(|| Shared::new(vec![9u8; 1 << 16]));
///     let shared = ctx.broadcast_shared(0, v);
///     shared.get().len()
/// });
/// assert!(out.results.iter().all(|&n| n == 1 << 16));
/// ```
#[derive(Debug)]
pub struct Shared<T: ?Sized>(Arc<T>);

impl<T> Shared<T> {
    /// Wrap `value` without copying it.
    pub fn new(value: T) -> Self {
        Shared(Arc::new(value))
    }

    /// Borrow the wrapped value.
    pub fn get(&self) -> &T {
        &self.0
    }

    /// Recover an owned `T`: moves out when this is the last handle,
    /// otherwise performs the (single) deep copy.
    pub fn into_inner(self) -> T
    where
        T: Clone,
    {
        Arc::try_unwrap(self.0).unwrap_or_else(|arc| (*arc).clone())
    }

    pub(crate) fn from_arc(arc: Arc<T>) -> Self {
        Shared(arc)
    }

    pub(crate) fn as_arc(&self) -> &Arc<T> {
        &self.0
    }
}

impl<T: ?Sized> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

impl<T: ?Sized> std::ops::Deref for Shared<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: PartialEq> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        *self.0 == *other.0
    }
}

impl<T: Payload + Sync> Payload for Shared<T> {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_match_size_of() {
        assert_eq!(Payload::size_bytes(&0u64), 8);
        assert_eq!(Payload::size_bytes(&0f32), 4);
        assert_eq!(Payload::size_bytes(&(1u32, 2u32)), 8);
    }

    #[test]
    fn vec_size_is_len_times_elem() {
        let v = vec![0f64; 100];
        assert_eq!(v.size_bytes(), 800);
        let empty: Vec<i32> = Vec::new();
        assert_eq!(empty.size_bytes(), 0);
    }

    #[test]
    fn nested_vec_sums_parts() {
        let v = vec![vec![0u8; 3], vec![0u8; 5]];
        assert_eq!(v.size_bytes(), 8);
    }

    #[test]
    fn custom_pod_struct_via_macro() {
        #[derive(Clone, Copy)]
        struct P {
            _x: f64,
            _y: f64,
        }
        impl_fixed_size!(P);
        let v = vec![P { _x: 0.0, _y: 0.0 }; 4];
        assert_eq!(v.size_bytes(), 4 * std::mem::size_of::<P>());
    }

    #[test]
    fn string_size_is_byte_length() {
        assert_eq!(Payload::size_bytes(&String::from("abcd")), 4);
    }

    #[test]
    fn shared_reports_inner_wire_size() {
        let s = Shared::new(vec![0u32; 16]);
        assert_eq!(s.size_bytes(), 64);
        assert_eq!(s.clone().size_bytes(), 64);
    }

    #[test]
    fn shared_into_inner_moves_when_unique() {
        let s = Shared::new(vec![1i64, 2, 3]);
        assert_eq!(s.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_into_inner_copies_when_aliased() {
        let a = Shared::new(vec![7u8; 4]);
        let b = a.clone();
        assert_eq!(a.into_inner(), vec![7; 4]);
        assert_eq!(*b.get(), vec![7; 4]);
    }
}
