//! Message payload typing, size accounting, and shared (zero-copy)
//! payload handles.
//!
//! The virtual-time model charges per byte transferred, so every message
//! payload must report its size on the wire. [`Payload`] is the trait the
//! communicator requires; [`FixedSize`] is a marker for plain-old-data types
//! whose wire size equals `size_of::<T>()`, with blanket [`Payload`]
//! implementations for `T`, `Vec<T>` and `Box<[T]>`.
//!
//! [`Shared`] is an `Arc`-backed payload handle used by the fan-out
//! collectives: forwarding a `Shared` along a broadcast tree or an
//! all-gather ring clones a reference count, not the data, so the wire
//! *cost* of every hop is still charged by the virtual-time model while
//! the host does O(1) deep copies per rank instead of O(log n) or O(n).
//!
//! Application crates implement [`FixedSize`] for their own POD structs with
//! the [`impl_fixed_size!`](crate::impl_fixed_size) macro.

use std::alloc::{dealloc, Layout};
use std::collections::HashMap;
use std::ptr;
use std::sync::Arc;

/// Marker for plain-old-data message elements: `Copy` types with no heap
/// indirection, whose transmitted size is exactly `size_of::<Self>()`.
///
/// # Safety-adjacent contract
/// This is not `unsafe`, but implementations must be honest about size:
/// the cost model (not memory safety) depends on it.
pub trait FixedSize: Copy + Send + 'static {}

/// Implements [`FixedSize`] for one or more POD types.
///
/// ```
/// use archetype_mp::impl_fixed_size;
///
/// #[derive(Clone, Copy)]
/// struct Building { left: f64, height: f64, right: f64 }
/// impl_fixed_size!(Building);
/// ```
#[macro_export]
macro_rules! impl_fixed_size {
    ($($t:ty),* $(,)?) => {
        $(impl $crate::payload::FixedSize for $t {})*
    };
}

impl_fixed_size!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl<T: FixedSize, const N: usize> FixedSize for [T; N] {}
impl<A: FixedSize, B: FixedSize> FixedSize for (A, B) {}
impl<A: FixedSize, B: FixedSize, C: FixedSize> FixedSize for (A, B, C) {}
impl<A: FixedSize, B: FixedSize, C: FixedSize, D: FixedSize> FixedSize for (A, B, C, D) {}

/// A value that can travel in a message: sendable across threads and able to
/// report its wire size in bytes for the cost model.
pub trait Payload: Send + 'static {
    /// Number of bytes this value occupies on the (simulated) wire.
    fn size_bytes(&self) -> usize;
}

impl<T: FixedSize> Payload for T {
    fn size_bytes(&self) -> usize {
        std::mem::size_of::<T>()
    }
}

impl<T: FixedSize> Payload for Vec<T> {
    fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl<T: FixedSize> Payload for Box<[T]> {
    fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl Payload for String {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

/// Nested vectors (e.g. one block per destination) transmit the sum of
/// their parts; the per-message latency is charged once by the send itself.
impl<T: FixedSize> Payload for Vec<Vec<T>> {
    fn size_bytes(&self) -> usize {
        self.iter()
            .map(|v| v.len() * std::mem::size_of::<T>())
            .sum()
    }
}

/// A reference-counted payload handle.
///
/// `Shared<T>` wraps its value in an [`Arc`] so a message can be fanned
/// out to many destinations — or forwarded hop by hop through a
/// collective — without deep-copying the value. Cloning a `Shared` is a
/// refcount increment; the underlying `T` is deep-copied at most once per
/// rank, and only when [`Shared::into_inner`] finds other live handles.
///
/// The virtual-time cost model is unaffected: every send of a `Shared`
/// still charges the full wire size of the payload, exactly as the
/// simulated network would. Only *host* copy work is elided.
///
/// ```
/// use archetype_mp::{run_spmd, MachineModel, Shared};
///
/// // A large buffer broadcast as a handle: no per-hop deep copies.
/// let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
///     let v = (ctx.rank() == 0).then(|| Shared::new(vec![9u8; 1 << 16]));
///     let shared = ctx.broadcast_shared(0, v);
///     shared.get().len()
/// });
/// assert!(out.results.iter().all(|&n| n == 1 << 16));
/// ```
#[derive(Debug)]
pub struct Shared<T: ?Sized>(Arc<T>);

impl<T> Shared<T> {
    /// Wrap `value` without copying it.
    pub fn new(value: T) -> Self {
        Shared(Arc::new(value))
    }

    /// Borrow the wrapped value.
    pub fn get(&self) -> &T {
        &self.0
    }

    /// Recover an owned `T`: moves out when this is the last handle,
    /// otherwise performs the (single) deep copy.
    pub fn into_inner(self) -> T
    where
        T: Clone,
    {
        Arc::try_unwrap(self.0).unwrap_or_else(|arc| (*arc).clone())
    }

    pub(crate) fn from_arc(arc: Arc<T>) -> Self {
        Shared(arc)
    }

    pub(crate) fn as_arc(&self) -> &Arc<T> {
        &self.0
    }
}

impl<T: ?Sized> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

impl<T: ?Sized> std::ops::Deref for Shared<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: PartialEq> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        *self.0 == *other.0
    }
}

impl<T: Payload + Sync> Payload for Shared<T> {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes()
    }
}

/// Most bytes one arena retains across all size classes; reclaims past
/// the cap free the block instead. 1 MiB per rank bounds what an idle
/// cached network pins while covering the archetypes' payload mix.
const ARENA_MAX_HELD_BYTES: usize = 1 << 20;

/// Most free blocks retained per (size, align) class.
const ARENA_MAX_BLOCKS_PER_CLASS: usize = 128;

/// Per-rank recycling arena for the substrate's per-message payload box
/// (`PacketBody::Owned(Box<dyn Any>)`).
///
/// Each rank owns one arena, threaded through [`crate::Ctx`] and parked
/// in the `(nprocs, Backend)` network-recycle cache between runs.
/// `Ctx::send` allocates the payload box from the *sender's* arena;
/// `Ctx::recv` moves the value out and returns the emptied block to the
/// *receiver's* arena. Blocks therefore migrate between ranks with the
/// traffic — which is exactly right: under bidirectional steady-state
/// traffic every rank's freelist is replenished by what it receives, and
/// a one-directional stream is bounded by the receiver's retention caps.
///
/// # Ownership and soundness rules
/// * Freelists are keyed by the **exact** `(size, align)` pair of the
///   allocation, so a recycled block is only ever reused for a type with
///   the identical [`Layout`] — `Box::from_raw` on such a block is sound
///   because the global allocator only cares that pointer and layout
///   match the original allocation.
/// * Zero-sized types bypass the arena entirely (`Box::new` on a ZST
///   does not allocate).
/// * A block enters the freelist only *after* its value has been moved
///   out (`ptr::read`), so the arena never owns live values — dropping
///   the arena deallocates raw memory, never runs payload destructors.
/// * The arena is deliberately **not** `Sync`: it is owned by one rank
///   at a time and handed between threads (run → cache → next run) by
///   value, so no operation ever synchronizes.
pub(crate) struct PayloadArena {
    /// Free blocks, keyed by exact (size, align).
    classes: HashMap<(usize, usize), Vec<*mut u8>>,
    /// Total bytes across all retained blocks.
    held_bytes: usize,
}

// SAFETY: the raw pointers are uniquely-owned free blocks (no aliasing,
// no live values); moving them to another thread is moving ownership of
// plain memory.
unsafe impl Send for PayloadArena {}

impl PayloadArena {
    /// An empty arena (no blocks retained).
    pub(crate) fn new() -> Self {
        PayloadArena {
            classes: HashMap::new(),
            held_bytes: 0,
        }
    }

    /// Box `value`, reusing a recycled block of the identical layout
    /// when one is available.
    pub(crate) fn alloc_box<T: Send + 'static>(&mut self, value: T) -> Box<T> {
        let layout = Layout::new::<T>();
        if layout.size() == 0 {
            return Box::new(value);
        }
        if let Some(block) = self
            .classes
            .get_mut(&(layout.size(), layout.align()))
            .and_then(Vec::pop)
        {
            self.held_bytes -= layout.size();
            let p = block as *mut T;
            // SAFETY: `block` was allocated by the global allocator with
            // exactly this layout (class key), is unaliased, and holds
            // no live value; writing then re-boxing transfers ownership
            // back to `Box`.
            unsafe {
                ptr::write(p, value);
                return Box::from_raw(p);
            }
        }
        Box::new(value)
    }

    /// Move the value out of `boxed` and retain its block for reuse
    /// (or free it when past the retention caps).
    pub(crate) fn reclaim<T>(&mut self, boxed: Box<T>) -> T {
        let layout = Layout::new::<T>();
        if layout.size() == 0 {
            return *boxed;
        }
        let p = Box::into_raw(boxed);
        // SAFETY: `p` came from `Box::into_raw`, so it is valid for
        // reads of `T` and we own the allocation; after this read the
        // block holds no live value.
        let value = unsafe { ptr::read(p) };
        let class = self
            .classes
            .entry((layout.size(), layout.align()))
            .or_default();
        if class.len() >= ARENA_MAX_BLOCKS_PER_CLASS
            || self.held_bytes + layout.size() > ARENA_MAX_HELD_BYTES
        {
            // SAFETY: allocated by the global allocator with `layout`.
            unsafe { dealloc(p.cast(), layout) };
        } else {
            self.held_bytes += layout.size();
            class.push(p.cast());
        }
        value
    }

    /// Bytes currently retained (tests/diagnostics).
    #[cfg(test)]
    fn held_bytes(&self) -> usize {
        self.held_bytes
    }
}

impl Drop for PayloadArena {
    fn drop(&mut self) {
        for (&(size, align), blocks) in &self.classes {
            let layout =
                Layout::from_size_align(size, align).expect("class keys come from valid layouts");
            for &p in blocks {
                // SAFETY: every retained block was allocated by the
                // global allocator with this class's layout and holds no
                // live value (see `reclaim`).
                unsafe { dealloc(p, layout) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_match_size_of() {
        assert_eq!(Payload::size_bytes(&0u64), 8);
        assert_eq!(Payload::size_bytes(&0f32), 4);
        assert_eq!(Payload::size_bytes(&(1u32, 2u32)), 8);
    }

    #[test]
    fn vec_size_is_len_times_elem() {
        let v = vec![0f64; 100];
        assert_eq!(v.size_bytes(), 800);
        let empty: Vec<i32> = Vec::new();
        assert_eq!(empty.size_bytes(), 0);
    }

    #[test]
    fn nested_vec_sums_parts() {
        let v = vec![vec![0u8; 3], vec![0u8; 5]];
        assert_eq!(v.size_bytes(), 8);
    }

    #[test]
    fn custom_pod_struct_via_macro() {
        #[derive(Clone, Copy)]
        struct P {
            _x: f64,
            _y: f64,
        }
        impl_fixed_size!(P);
        let v = vec![P { _x: 0.0, _y: 0.0 }; 4];
        assert_eq!(v.size_bytes(), 4 * std::mem::size_of::<P>());
    }

    #[test]
    fn string_size_is_byte_length() {
        assert_eq!(Payload::size_bytes(&String::from("abcd")), 4);
    }

    #[test]
    fn shared_reports_inner_wire_size() {
        let s = Shared::new(vec![0u32; 16]);
        assert_eq!(s.size_bytes(), 64);
        assert_eq!(s.clone().size_bytes(), 64);
    }

    #[test]
    fn shared_into_inner_moves_when_unique() {
        let s = Shared::new(vec![1i64, 2, 3]);
        assert_eq!(s.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_into_inner_copies_when_aliased() {
        let a = Shared::new(vec![7u8; 4]);
        let b = a.clone();
        assert_eq!(a.into_inner(), vec![7; 4]);
        assert_eq!(*b.get(), vec![7; 4]);
    }

    #[test]
    fn arena_reuses_blocks_of_identical_layout() {
        let mut arena = PayloadArena::new();
        let b = arena.alloc_box(41u64);
        let addr = &*b as *const u64 as usize;
        assert_eq!(arena.reclaim(b), 41);
        assert_eq!(arena.held_bytes(), 8);
        // Same layout → the recycled block comes straight back.
        let b2 = arena.alloc_box(42u64);
        assert_eq!(&*b2 as *const u64 as usize, addr);
        assert_eq!(*b2, 42);
        assert_eq!(arena.held_bytes(), 0);
        // A different layout must NOT reuse it.
        assert_eq!(arena.reclaim(b2), 42);
        let b3 = arena.alloc_box([0u8; 3]);
        assert_ne!(&*b3 as *const [u8; 3] as usize, addr);
    }

    #[test]
    fn arena_moves_values_intact_and_runs_no_destructors() {
        let probe = Arc::new(0u8);
        let mut arena = PayloadArena::new();
        let boxed = arena.alloc_box(vec![Arc::clone(&probe); 3]);
        let back = arena.reclaim(boxed);
        assert_eq!(back.len(), 3);
        assert_eq!(Arc::strong_count(&probe), 4, "no clone was dropped");
        drop(back);
        drop(arena); // frees raw blocks only; the probe is untouched
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    #[test]
    fn arena_bypasses_zero_sized_types() {
        let mut arena = PayloadArena::new();
        let b = arena.alloc_box(());
        arena.reclaim(b);
        assert_eq!(arena.held_bytes(), 0);
    }

    #[test]
    fn arena_retention_is_capped() {
        let mut arena = PayloadArena::new();
        // Per-class block cap.
        let boxes: Vec<_> = (0..2 * ARENA_MAX_BLOCKS_PER_CLASS)
            .map(|i| arena.alloc_box(i as u64))
            .collect();
        for b in boxes {
            arena.reclaim(b);
        }
        assert_eq!(arena.held_bytes(), 8 * ARENA_MAX_BLOCKS_PER_CLASS);
        // Global byte cap: big blocks stop being retained past 1 MiB.
        let big: Vec<_> = (0..20).map(|_| arena.alloc_box([0u64; 1 << 14])).collect();
        for b in big {
            arena.reclaim(b);
        }
        assert!(arena.held_bytes() <= ARENA_MAX_HELD_BYTES);
    }
}
