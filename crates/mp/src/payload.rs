//! Message payload typing and size accounting.
//!
//! The virtual-time model charges per byte transferred, so every message
//! payload must report its size on the wire. [`Payload`] is the trait the
//! communicator requires; [`FixedSize`] is a marker for plain-old-data types
//! whose wire size equals `size_of::<T>()`, with blanket [`Payload`]
//! implementations for `T`, `Vec<T>` and `Box<[T]>`.
//!
//! Application crates implement [`FixedSize`] for their own POD structs with
//! the [`impl_fixed_size!`](crate::impl_fixed_size) macro.

/// Marker for plain-old-data message elements: `Copy` types with no heap
/// indirection, whose transmitted size is exactly `size_of::<Self>()`.
///
/// # Safety-adjacent contract
/// This is not `unsafe`, but implementations must be honest about size:
/// the cost model (not memory safety) depends on it.
pub trait FixedSize: Copy + Send + 'static {}

/// Implements [`FixedSize`] for one or more POD types.
///
/// ```
/// use archetype_mp::impl_fixed_size;
///
/// #[derive(Clone, Copy)]
/// struct Building { left: f64, height: f64, right: f64 }
/// impl_fixed_size!(Building);
/// ```
#[macro_export]
macro_rules! impl_fixed_size {
    ($($t:ty),* $(,)?) => {
        $(impl $crate::payload::FixedSize for $t {})*
    };
}

impl_fixed_size!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, ()
);

impl<T: FixedSize, const N: usize> FixedSize for [T; N] {}
impl<A: FixedSize, B: FixedSize> FixedSize for (A, B) {}
impl<A: FixedSize, B: FixedSize, C: FixedSize> FixedSize for (A, B, C) {}
impl<A: FixedSize, B: FixedSize, C: FixedSize, D: FixedSize> FixedSize for (A, B, C, D) {}

/// A value that can travel in a message: sendable across threads and able to
/// report its wire size in bytes for the cost model.
pub trait Payload: Send + 'static {
    /// Number of bytes this value occupies on the (simulated) wire.
    fn size_bytes(&self) -> usize;
}

impl<T: FixedSize> Payload for T {
    fn size_bytes(&self) -> usize {
        std::mem::size_of::<T>()
    }
}

impl<T: FixedSize> Payload for Vec<T> {
    fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl<T: FixedSize> Payload for Box<[T]> {
    fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl Payload for String {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

/// Nested vectors (e.g. one block per destination) transmit the sum of
/// their parts; the per-message latency is charged once by the send itself.
impl<T: FixedSize> Payload for Vec<Vec<T>> {
    fn size_bytes(&self) -> usize {
        self.iter().map(|v| v.len() * std::mem::size_of::<T>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_match_size_of() {
        assert_eq!(Payload::size_bytes(&0u64), 8);
        assert_eq!(Payload::size_bytes(&0f32), 4);
        assert_eq!(Payload::size_bytes(&(1u32, 2u32)), 8);
    }

    #[test]
    fn vec_size_is_len_times_elem() {
        let v = vec![0f64; 100];
        assert_eq!(v.size_bytes(), 800);
        let empty: Vec<i32> = Vec::new();
        assert_eq!(empty.size_bytes(), 0);
    }

    #[test]
    fn nested_vec_sums_parts() {
        let v = vec![vec![0u8; 3], vec![0u8; 5]];
        assert_eq!(v.size_bytes(), 8);
    }

    #[test]
    fn custom_pod_struct_via_macro() {
        #[derive(Clone, Copy)]
        struct P {
            _x: f64,
            _y: f64,
        }
        impl_fixed_size!(P);
        let v = vec![P { _x: 0.0, _y: 0.0 }; 4];
        assert_eq!(v.size_bytes(), 4 * std::mem::size_of::<P>());
    }

    #[test]
    fn string_size_is_byte_length() {
        assert_eq!(Payload::size_bytes(&String::from("abcd")), 4);
    }
}
