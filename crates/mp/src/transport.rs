//! Pluggable transport behind the SPMD network: the backend seam.
//!
//! Every `run_spmd` call selects a [`Backend`] (via
//! [`crate::runner::RunConfig`]); the choice decides which channel
//! implementation carries [`Packet`]s between ranks:
//!
//! * [`Backend::Virtual`] — the deterministic virtual-time oracle. Ranks
//!   are real threads, but the channels are the vendored `crossbeam`
//!   stand-in (a `Mutex<VecDeque>` + `Condvar` queue) and the *reported*
//!   numbers are model-driven virtual time. This is the backend every
//!   existing caller gets by default; nothing about it changed.
//! * [`Backend::Real`] — real shared-memory execution for wall-clock
//!   measurement. Every mesh link of an SPMD network has a *statically
//!   single sender* (the `(src, dst)` channel is only ever pushed by
//!   rank `src`'s thread), so real-backend links ride the in-repo
//!   **lock-free SPSC queue** ([`spsc_channel`]): a one-store publish, a
//!   consumer pop that never takes a lock while messages are available,
//!   a per-link node freelist that makes steady-state traffic
//!   allocation-free, and a condvar slow path only for parking on an
//!   empty queue. The multi-producer generalization ([`real_channel`],
//!   a Vyukov-style MPSC queue) remains for genuinely multi-producer
//!   uses and as the throughput-bench comparison point.
//!
//! What is *shared* between the backends: the mailbox matching rules
//! ((sender, scope, tag) addressing, per-sender FIFO), the collectives,
//! scoped contexts, the leak check, network recycling, and — crucially —
//! the machine-model clock. The real backend still maintains the virtual
//! clock exactly as the oracle does, so every model-driven control
//! decision (farm batch sizing, DC cutoffs, pipeline stage fusion)
//! coincides across backends and results are bit-identical by
//! construction; only the headline *measurement* differs (modeled
//! `elapsed_virtual` vs measured `wall_us`).
//!
//! # The parked-flag (Dekker) sleep/wake protocol
//!
//! Both real queues park their single consumer with the same flag
//! protocol, so a blocking receive never takes the sleep lock while
//! messages are available and a producer never takes it unless a
//! consumer is (or is about to be) parked:
//!
//! * **Consumer** (inside `RealQueue::recv` / `SpscQueue::recv`):
//!   lock `sleep` → set `parked` → `fence(SeqCst)` → *final empty
//!   check* → wait on the condvar (releasing `sleep`).
//! * **Producer** (push): publish the message → `fence(SeqCst)` → read
//!   `parked` → if set, acquire `sleep` and `notify_one`.
//!
//! The two `SeqCst` fences order the flag against the queue contents:
//! either the producer's publish happens-before the consumer's final
//! empty check (the consumer sees the message and never waits), or the
//! consumer's `parked` store happens-before the producer's flag read
//! (the producer sees the flag and notifies). Acquiring `sleep` before
//! notifying closes the remaining window — the consumer holds `sleep`
//! from before its `parked` store until the `wait` call atomically
//! releases it, so a producer that saw the flag cannot notify *between*
//! the final check and the wait.
//!
//! The **disconnect path** (last sender handle dropping) wakes the
//! consumer the same way but *unconditionally*: it decrements `senders`
//! with `AcqRel`, then acquires `sleep` and notifies without consulting
//! `parked`. Consulting the flag would be an optimization only; taking
//! the lock unconditionally keeps the teardown path trivially correct —
//! the consumer's `senders == 0` re-check runs under the same lock, so
//! the wakeup cannot be lost no matter where the consumer is between
//! parking and waiting. Both wake paths use `notify_one`: the queues are
//! strictly single-consumer, so at most one thread ever waits on the
//! condvar and `notify_all` was pure overhead.

use std::cell::UnsafeCell;
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use crate::packet::Packet;

/// Which transport (and which headline timing) a `run_spmd` call uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Deterministic virtual-time execution: the correctness oracle.
    /// Reported times come from the [`crate::MachineModel`].
    #[default]
    Virtual,
    /// Real shared-memory execution on lock-free channels, for measured
    /// wall-clock numbers. Results are bit-identical to [`Backend::Virtual`].
    Real,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Virtual => "virtual",
            Backend::Real => "real",
        })
    }
}

/// Error returned by a receive on an empty channel whose senders have
/// all disconnected (the transport-level death signal).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disconnected;

/// Error returned by [`PacketSender::send`] when the destination rank's
/// mailbox has been torn down; carries the undelivered packet.
pub struct SendError(pub Packet);

impl std::fmt::Debug for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SendError")
            .field("from", &self.0.from)
            .field("scope", &self.0.scope)
            .field("tag", &self.0.tag)
            .field("bytes", &self.0.bytes)
            .finish_non_exhaustive()
    }
}

/// Publication fence for a batched fan-out: after a series of
/// `send_publish` calls, one `SeqCst` fence orders *all* the published
/// messages against the subsequent per-queue `parked` reads (see
/// [`PacketSender::wake`]), so a fan-out of k sends pays one fence
/// instead of k.
pub(crate) fn publish_fence() {
    fence(Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Lock-free MPSC queue (multi-producer links; throughput baseline).
// ---------------------------------------------------------------------------

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    value: Option<T>,
}

impl<T> Node<T> {
    fn boxed(value: Option<T>) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value,
        }))
    }
}

/// Vyukov-style intrusive MPSC queue with blocking receive.
///
/// Producers publish with one `swap` + one `store` (wait-free); the
/// single consumer pops without any lock while messages are available.
/// The `sleep`/`wake` pair is used *only* to park the consumer on an
/// empty queue — producers touch the mutex only when they observe a
/// parked consumer (see the module-level protocol description), so the
/// message hot path never contends on a lock (unlike the vendored
/// crossbeam stand-in, which locks on every send and receive).
///
/// Nodes are heap-allocated per push: with *multiple* producers a node
/// freelist would need a multi-popper lock-free stack (ABA-prone without
/// tagged pointers), so recycling lives in the single-producer queue
/// ([`SpscQueue`]) that the mesh links actually use.
struct RealQueue<T> {
    /// Most recently pushed node; producers swap themselves in here.
    head: AtomicPtr<Node<T>>,
    /// Oldest node (a consumed stub); owned by the single consumer.
    tail: UnsafeCell<*mut Node<T>>,
    /// Messages currently queued (exact once the queue is quiescent).
    len: AtomicUsize,
    /// Live `RealSender` handles; 0 means disconnected.
    senders: AtomicUsize,
    /// Cleared when the receiver drops, so sends can fail fast.
    receiver_alive: AtomicBool,
    /// Set (under `sleep`) while the consumer is parked.
    parked: AtomicBool,
    sleep: Mutex<()>,
    wake: Condvar,
}

// SAFETY: the queue hands each `T` from exactly one producer to the
// single consumer; all shared pointers are managed through atomics, and
// `tail` is only touched by the consumer (or by `Drop`, which has
// exclusive access).
unsafe impl<T: Send> Send for RealQueue<T> {}
unsafe impl<T: Send> Sync for RealQueue<T> {}

impl<T> RealQueue<T> {
    fn new() -> Self {
        RealQueue {
            head: AtomicPtr::new(Node::boxed(None)),
            tail: UnsafeCell::new(ptr::null_mut()),
            len: AtomicUsize::new(0),
            senders: AtomicUsize::new(1),
            receiver_alive: AtomicBool::new(true),
            parked: AtomicBool::new(false),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    /// Producer side: wait-free publish, then wake a parked consumer.
    fn push(&self, value: T) {
        let node = Node::boxed(Some(value));
        let prev = self.head.swap(node, Ordering::AcqRel);
        // SAFETY: `prev` is a live node — nodes are only freed by the
        // consumer *after* their successor link is published, and the
        // previous head has no successor until this store.
        unsafe { (*prev).next.store(node, Ordering::Release) };
        self.len.fetch_add(1, Ordering::Release);
        // Producer half of the parked-flag protocol (module docs):
        // publish, fence, read the flag, notify under the sleep lock.
        fence(Ordering::SeqCst);
        if self.parked.load(Ordering::Relaxed) {
            drop(self.sleep.lock().unwrap_or_else(PoisonError::into_inner));
            self.wake.notify_one();
        }
    }

    /// Consumer side: pop the oldest message, or `None` when empty.
    ///
    /// # Safety
    /// Must only be called by the single consumer (or with otherwise
    /// exclusive access to `tail`).
    unsafe fn try_pop(&self) -> Option<T> {
        let tail = *self.tail.get();
        let mut next = (*tail).next.load(Ordering::Acquire);
        if next.is_null() {
            if self.head.load(Ordering::Acquire) == tail {
                return None; // truly empty
            }
            // A producer swapped `head` but hasn't linked `next` yet;
            // the link is one store away, so spin (yielding, for
            // single-core hosts where the producer needs the CPU).
            let mut spins = 0u32;
            loop {
                next = (*tail).next.load(Ordering::Acquire);
                if !next.is_null() {
                    break;
                }
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        let value = (*next).value.take().expect("pushed node carries a value");
        *self.tail.get() = next;
        drop(Box::from_raw(tail));
        self.len.fetch_sub(1, Ordering::Release);
        Some(value)
    }

    /// Consumer side: block until a message arrives or every sender is
    /// gone.
    ///
    /// # Safety
    /// Single-consumer, as for [`RealQueue::try_pop`].
    unsafe fn recv(&self) -> Result<T, Disconnected> {
        // Fast path: no lock while messages are available.
        if let Some(v) = self.try_pop() {
            return Ok(v);
        }
        loop {
            // Consumer half of the parked-flag protocol (module docs):
            // lock, set the flag, fence, final empty check, then wait.
            let guard = self.sleep.lock().unwrap_or_else(PoisonError::into_inner);
            self.parked.store(true, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            if let Some(v) = self.try_pop() {
                self.parked.store(false, Ordering::Relaxed);
                return Ok(v);
            }
            if self.senders.load(Ordering::SeqCst) == 0 {
                self.parked.store(false, Ordering::Relaxed);
                // The last sender's teardown happens-before the counter
                // hitting zero, so one final drain decides conclusively.
                return self.try_pop().ok_or(Disconnected);
            }
            // The timeout is belt-and-braces only — the flag protocol
            // above already rules out lost wakeups.
            let (g, _) = self
                .wake
                .wait_timeout(guard, Duration::from_millis(5))
                .unwrap_or_else(PoisonError::into_inner);
            drop(g);
            self.parked.store(false, Ordering::Relaxed);
        }
    }

    /// Initialize `tail` from `head` once, before the first pop. Called
    /// by the factory functions (the stub is created before any handle
    /// exists, so a plain load is exact).
    fn init_tail(&self) {
        let stub = self.head.load(Ordering::Relaxed);
        unsafe { *self.tail.get() = stub };
    }
}

impl<T> Drop for RealQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: free every remaining node, including the stub.
        let mut p = *self.tail.get_mut();
        while !p.is_null() {
            // SAFETY: nodes between tail and head are live and owned by
            // the queue once no handles remain.
            let node = unsafe { Box::from_raw(p) };
            p = node.next.load(Ordering::Relaxed);
        }
    }
}

/// Producer handle of the real backend's lock-free MPSC channel.
/// Cloneable (multi-producer).
pub struct RealSender<T> {
    queue: Arc<RealQueue<T>>,
}

impl<T> RealSender<T> {
    /// Enqueue `value`; hands it back when the receiver has dropped.
    pub fn send(&self, value: T) -> Result<(), T> {
        if !self.queue.receiver_alive.load(Ordering::Acquire) {
            return Err(value);
        }
        self.queue.push(value);
        Ok(())
    }
}

impl<T> Clone for RealSender<T> {
    fn clone(&self) -> Self {
        self.queue.senders.fetch_add(1, Ordering::Relaxed);
        RealSender {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Drop for RealSender<T> {
    fn drop(&mut self) {
        if self.queue.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake the receiver unconditionally (see
            // the module-level disconnect-path discussion — acquiring
            // the sleep lock is what makes the wakeup race-free).
            drop(
                self.queue
                    .sleep
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            );
            self.queue.wake.notify_one();
        }
    }
}

/// Consumer handle of the real backend's lock-free MPSC channel
/// (single-consumer: not cloneable).
pub struct RealReceiver<T> {
    queue: Arc<RealQueue<T>>,
}

impl<T> RealReceiver<T> {
    /// Blocking receive; fails once the queue is empty and every sender
    /// has dropped.
    pub fn recv(&self) -> Result<T, Disconnected> {
        // SAFETY: `RealReceiver` is not Clone, so this is the single
        // consumer.
        unsafe { self.queue.recv() }
    }

    /// Messages currently queued (exact when the queue is quiescent).
    pub fn len(&self) -> usize {
        self.queue.len.load(Ordering::Acquire)
    }

    /// True when no message is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for RealReceiver<T> {
    fn drop(&mut self) {
        self.queue.receiver_alive.store(false, Ordering::Release);
    }
}

/// Create a real-backend (lock-free MPSC) channel.
pub fn real_channel<T>() -> (RealSender<T>, RealReceiver<T>) {
    let queue = Arc::new(RealQueue::new());
    queue.init_tail();
    (
        RealSender {
            queue: Arc::clone(&queue),
        },
        RealReceiver { queue },
    )
}

// ---------------------------------------------------------------------------
// Lock-free SPSC queue with node recycling (the mesh-link fast path).
// ---------------------------------------------------------------------------

/// Consumed nodes retained per queue for reuse; beyond this they are
/// freed. 256 nodes cover every in-flight window the archetypes produce
/// (pipeline credit windows, collective fan-outs) while bounding what an
/// idle cached network pins.
const SPSC_FREELIST_CAP: usize = 256;

/// Intrusive single-producer single-consumer queue with a node freelist.
///
/// The single producer publishes with *one* release store (no swap, and
/// no unlinked window for the consumer to spin on); consumed nodes are
/// recycled through a Treiber stack pushed by the consumer and popped
/// only by the producer, so steady-state traffic allocates nothing. The
/// single-popper discipline is what makes the bare Treiber stack sound:
/// a loaded freelist head can only be unlinked by the one popper, so its
/// `next` pointer is stable until the popper's CAS and the classic ABA
/// hazard (head reappearing with a different successor) cannot occur.
///
/// Parking/wakeup and disconnect use the same Dekker parked-flag
/// protocol as [`RealQueue`] (see the module docs).
struct SpscQueue<T> {
    /// Most recently pushed node; owned by the single producer.
    head: UnsafeCell<*mut Node<T>>,
    /// Oldest node (a consumed stub); owned by the single consumer.
    tail: UnsafeCell<*mut Node<T>>,
    /// Recycled nodes: pushed by the consumer, popped by the producer.
    free: AtomicPtr<Node<T>>,
    /// Approximate freelist occupancy bounding retained nodes.
    free_len: AtomicUsize,
    /// Messages currently queued. Shared with the sibling links of one
    /// mailbox when built via [`packet_channel_with`], so a mailbox's
    /// leak check is one load instead of n.
    len: Arc<AtomicUsize>,
    /// Live `SpscSender` handles; 0 means disconnected. (Handles may be
    /// cloned — scoped contexts need that — as long as pushes stay
    /// serialized; see [`SpscSender::send`].)
    senders: AtomicUsize,
    /// Cleared when the receiver drops, so sends can fail fast.
    receiver_alive: AtomicBool,
    /// Set (under `sleep`) while the consumer is parked.
    parked: AtomicBool,
    sleep: Mutex<()>,
    wake: Condvar,
    /// Debug-only concurrent-push detector for the single-producer
    /// contract (release builds pay nothing).
    #[cfg(debug_assertions)]
    pushing: AtomicBool,
}

// SAFETY: values cross from the single producer to the single consumer;
// `head` is only touched by the producer, `tail` only by the consumer,
// the freelist is managed through atomics with one pusher and one
// popper, and `Drop` has exclusive access.
unsafe impl<T: Send> Send for SpscQueue<T> {}
unsafe impl<T: Send> Sync for SpscQueue<T> {}

impl<T> SpscQueue<T> {
    fn new(len: Arc<AtomicUsize>) -> Self {
        let stub = Node::boxed(None);
        SpscQueue {
            head: UnsafeCell::new(stub),
            tail: UnsafeCell::new(stub),
            free: AtomicPtr::new(ptr::null_mut()),
            free_len: AtomicUsize::new(0),
            len,
            senders: AtomicUsize::new(1),
            receiver_alive: AtomicBool::new(true),
            parked: AtomicBool::new(false),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            #[cfg(debug_assertions)]
            pushing: AtomicBool::new(false),
        }
    }

    /// Pop a recycled node, or `None` when the freelist is empty.
    ///
    /// # Safety
    /// Must only be called by the single producer (single-popper
    /// discipline — see the type docs).
    unsafe fn pop_free(&self) -> Option<*mut Node<T>> {
        loop {
            let cur = self.free.load(Ordering::Acquire);
            if cur.is_null() {
                return None;
            }
            // `cur` cannot be unlinked by anyone else (we are the only
            // popper), so reading its successor is race-free; the CAS
            // fails only when the consumer pushed more nodes on top.
            let next = (*cur).next.load(Ordering::Relaxed);
            if self
                .free
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.free_len.fetch_sub(1, Ordering::Relaxed);
                return Some(cur);
            }
        }
    }

    /// Park a consumed node for reuse (or free it past the cap).
    ///
    /// # Safety
    /// Must only be called by the single consumer, with `node` unlinked
    /// from the queue chain.
    unsafe fn recycle(&self, node: *mut Node<T>) {
        if self.free_len.load(Ordering::Relaxed) >= SPSC_FREELIST_CAP {
            drop(Box::from_raw(node));
            return;
        }
        self.free_len.fetch_add(1, Ordering::Relaxed);
        loop {
            let cur = self.free.load(Ordering::Relaxed);
            (*node).next.store(cur, Ordering::Relaxed);
            // Release so the producer's Acquire pop observes our writes
            // to the node (the `value.take()` that emptied it).
            if self
                .free
                .compare_exchange_weak(cur, node, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Producer side, publish only: enqueue without the fence/wake step.
    /// The caller must follow up with [`publish_fence`] and
    /// [`SpscQueue::wake_if_parked`] (or use [`SpscQueue::push`]) before
    /// blocking on anything, or the consumer may sleep on a full queue
    /// until its belt-and-braces timeout.
    ///
    /// # Safety
    /// Must only be called by the single producer; concurrent pushes are
    /// undefined behaviour (debug builds detect and panic).
    unsafe fn publish(&self, value: T) {
        #[cfg(debug_assertions)]
        assert!(
            !self.pushing.swap(true, Ordering::Acquire),
            "concurrent push on an SPSC queue (single-producer contract violated)"
        );
        let node = self.pop_free().unwrap_or_else(|| Node::boxed(None));
        (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
        (*node).value = Some(value);
        let head = *self.head.get();
        // The one-store publish: linking the new node makes it visible
        // to the consumer together with its value (Release).
        (*head).next.store(node, Ordering::Release);
        *self.head.get() = node;
        self.len.fetch_add(1, Ordering::Release);
        #[cfg(debug_assertions)]
        self.pushing.store(false, Ordering::Release);
    }

    /// Producer half of the parked-flag wake check (module docs). Must
    /// run after a `SeqCst` fence that follows the publish.
    fn wake_if_parked(&self) {
        if self.parked.load(Ordering::Relaxed) {
            drop(self.sleep.lock().unwrap_or_else(PoisonError::into_inner));
            self.wake.notify_one();
        }
    }

    /// Producer side: publish + fence + wake, the full send.
    ///
    /// # Safety
    /// Single-producer, as for [`SpscQueue::publish`].
    unsafe fn push(&self, value: T) {
        self.publish(value);
        fence(Ordering::SeqCst);
        self.wake_if_parked();
    }

    /// Consumer side: pop the oldest message, or `None` when empty.
    ///
    /// # Safety
    /// Must only be called by the single consumer.
    unsafe fn try_pop(&self) -> Option<T> {
        let tail = *self.tail.get();
        let next = (*tail).next.load(Ordering::Acquire);
        if next.is_null() {
            // Unlike the MPSC queue there is no unlinked window: the
            // producer's single release store publishes node and link
            // together, so a null `next` means truly empty.
            return None;
        }
        let value = (*next).value.take().expect("pushed node carries a value");
        *self.tail.get() = next;
        self.recycle(tail);
        self.len.fetch_sub(1, Ordering::Release);
        Some(value)
    }

    /// Consumer side: block until a message arrives or every sender is
    /// gone. Same protocol as [`RealQueue::recv`].
    ///
    /// # Safety
    /// Single-consumer.
    unsafe fn recv(&self) -> Result<T, Disconnected> {
        if let Some(v) = self.try_pop() {
            return Ok(v);
        }
        loop {
            let guard = self.sleep.lock().unwrap_or_else(PoisonError::into_inner);
            self.parked.store(true, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            if let Some(v) = self.try_pop() {
                self.parked.store(false, Ordering::Relaxed);
                return Ok(v);
            }
            if self.senders.load(Ordering::SeqCst) == 0 {
                self.parked.store(false, Ordering::Relaxed);
                return self.try_pop().ok_or(Disconnected);
            }
            let (g, _) = self
                .wake
                .wait_timeout(guard, Duration::from_millis(5))
                .unwrap_or_else(PoisonError::into_inner);
            drop(g);
            self.parked.store(false, Ordering::Relaxed);
        }
    }
}

impl<T> Drop for SpscQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: free the live chain (tail..head, including
        // the stub) and the freelist. The two chains are disjoint — a
        // node is recycled only after being unlinked from the queue.
        let mut p = *self.tail.get_mut();
        while !p.is_null() {
            let node = unsafe { Box::from_raw(p) };
            p = node.next.load(Ordering::Relaxed);
        }
        let mut f = *self.free.get_mut();
        while !f.is_null() {
            let node = unsafe { Box::from_raw(f) };
            f = node.next.load(Ordering::Relaxed);
        }
    }
}

/// Producer handle of the lock-free SPSC channel.
///
/// Handles are cloneable so that scoped contexts can hold extra views of
/// a link, but the queue remains **single-producer**: all sends across
/// all clones must be externally serialized (see [`SpscSender::send`]).
/// In this crate that invariant is structural — each mesh link's send
/// side is owned by exactly one rank's thread, and pool worker handles
/// are handed between dispatchers through mutexes.
pub struct SpscSender<T> {
    queue: Arc<SpscQueue<T>>,
}

impl<T> SpscSender<T> {
    /// Enqueue `value`; hands it back when the receiver has dropped.
    ///
    /// # Safety
    /// Sends on this channel (across *all* clones of the handle) must
    /// never run concurrently: the caller guarantees a happens-before
    /// edge between any two sends. Debug builds detect violations and
    /// panic.
    pub unsafe fn send(&self, value: T) -> Result<(), T> {
        if !self.queue.receiver_alive.load(Ordering::Acquire) {
            return Err(value);
        }
        self.queue.push(value);
        Ok(())
    }

    /// Enqueue without the fence/wake step — the batched-fan-out fast
    /// path. After a series of `send_publish` calls the producer must
    /// run [`publish_fence`] once and then [`SpscSender::wake`] on each
    /// touched channel before blocking on anything.
    ///
    /// # Safety
    /// As for [`SpscSender::send`].
    pub(crate) unsafe fn send_publish(&self, value: T) -> Result<(), T> {
        if !self.queue.receiver_alive.load(Ordering::Acquire) {
            return Err(value);
        }
        self.queue.publish(value);
        Ok(())
    }

    /// The wake half of a batched fan-out; must run after
    /// [`publish_fence`].
    pub(crate) fn wake(&self) {
        self.queue.wake_if_parked();
    }
}

impl<T> Clone for SpscSender<T> {
    fn clone(&self) -> Self {
        self.queue.senders.fetch_add(1, Ordering::Relaxed);
        SpscSender {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        if self.queue.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Unconditional-lock disconnect wake (module docs).
            drop(
                self.queue
                    .sleep
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            );
            self.queue.wake.notify_one();
        }
    }
}

/// Consumer handle of the lock-free SPSC channel (single-consumer: not
/// cloneable).
pub struct SpscReceiver<T> {
    queue: Arc<SpscQueue<T>>,
}

impl<T> SpscReceiver<T> {
    /// Blocking receive; fails once the queue is empty and every sender
    /// has dropped.
    pub fn recv(&self) -> Result<T, Disconnected> {
        // SAFETY: `SpscReceiver` is not Clone, so this is the single
        // consumer.
        unsafe { self.queue.recv() }
    }

    /// Non-blocking receive: `Ok(Some(v))` on a message, `Ok(None)` on a
    /// (currently) empty queue with live senders, `Err` once the queue is
    /// drained and every sender has dropped. Lets a consumer park itself
    /// on an *external* condvar (the worker pool's shared roster) instead
    /// of this queue's private one.
    pub(crate) fn try_recv(&self) -> Result<Option<T>, Disconnected> {
        // SAFETY: `SpscReceiver` is not Clone, so this is the single
        // consumer.
        unsafe {
            if let Some(v) = self.queue.try_pop() {
                return Ok(Some(v));
            }
            if self.queue.senders.load(Ordering::SeqCst) == 0 {
                // Teardown happens-before the counter hitting zero, so
                // one final drain decides conclusively (as in `recv`).
                return self
                    .queue
                    .try_pop()
                    .map_or(Err(Disconnected), |v| Ok(Some(v)));
            }
            Ok(None)
        }
    }

    /// Messages currently queued. Exact at quiescence for a channel from
    /// [`spsc_channel`]; for mesh links built with a shared counter (see
    /// [`packet_channel_with`]) this counts in-flight messages across
    /// *all* links sharing the counter.
    pub fn len(&self) -> usize {
        self.queue.len.load(Ordering::Acquire)
    }

    /// True when no message is currently queued (same caveat as
    /// [`SpscReceiver::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Nodes currently parked on the freelist (tests/diagnostics).
    #[cfg(test)]
    fn recycled_nodes(&self) -> usize {
        self.queue.free_len.load(Ordering::Relaxed)
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        self.queue.receiver_alive.store(false, Ordering::Release);
    }
}

/// Create a lock-free SPSC channel with a private length counter.
pub fn spsc_channel<T>() -> (SpscSender<T>, SpscReceiver<T>) {
    spsc_channel_with(Arc::new(AtomicUsize::new(0)))
}

/// Create a lock-free SPSC channel whose length counter is the given
/// (possibly shared) cell — the mailbox leak-check fast path.
fn spsc_channel_with<T>(len: Arc<AtomicUsize>) -> (SpscSender<T>, SpscReceiver<T>) {
    let queue = Arc::new(SpscQueue::new(len));
    (
        SpscSender {
            queue: Arc::clone(&queue),
        },
        SpscReceiver { queue },
    )
}

// ---------------------------------------------------------------------------
// Unified packet channel: the seam the mailbox and Ctx are written against.
// ---------------------------------------------------------------------------

/// Send side of one (source, destination) link, backend-selected.
///
/// Mesh links are statically single-sender — channel `(src, dst)` is
/// pushed only by rank `src`'s thread (clones made by
/// [`crate::Ctx::scoped`] stay on that thread, and recycled networks are
/// handed between runs through the cache mutex) — which is the invariant
/// that lets the real backend ride the SPSC fast path safely.
pub enum PacketSender {
    /// Virtual-time oracle link (vendored crossbeam channel) plus the
    /// mailbox's shared in-flight counter.
    Virtual(crossbeam::channel::Sender<Packet>, Arc<AtomicUsize>),
    /// Real-backend link: the lock-free single-sender queue.
    Real(SpscSender<Packet>),
}

impl PacketSender {
    /// Put a packet on the wire; hands it back when the destination
    /// rank's mailbox has been torn down (the rank terminated).
    pub fn send(&self, packet: Packet) -> Result<(), SendError> {
        match self {
            PacketSender::Virtual(tx, inflight) => {
                tx.send(packet).map_err(|e| SendError(e.0))?;
                inflight.fetch_add(1, Ordering::Release);
                Ok(())
            }
            // SAFETY: mesh links are statically single-sender (type
            // docs); all sends on this link happen on one thread or are
            // ordered by the network hand-off mutexes.
            PacketSender::Real(tx) => unsafe { tx.send(packet).map_err(SendError) },
        }
    }

    /// Publish without the per-message fence/wake — the batched fan-out
    /// fast path. The caller must run [`publish_fence`] once after its
    /// last publish and then [`PacketSender::wake`] on every destination
    /// before blocking on anything. On the virtual backend this is a
    /// plain send (the mutex-based channel has no separate wake step).
    pub(crate) fn send_publish(&self, packet: Packet) -> Result<(), SendError> {
        match self {
            PacketSender::Virtual(..) => self.send(packet),
            // SAFETY: as for `send`.
            PacketSender::Real(tx) => unsafe { tx.send_publish(packet).map_err(SendError) },
        }
    }

    /// The wake half of a batched fan-out; a no-op on the virtual
    /// backend. Must run after [`publish_fence`].
    pub(crate) fn wake(&self) {
        match self {
            PacketSender::Virtual(..) => {}
            PacketSender::Real(tx) => tx.wake(),
        }
    }

    /// Which backend this link belongs to.
    pub fn backend(&self) -> Backend {
        match self {
            PacketSender::Virtual(..) => Backend::Virtual,
            PacketSender::Real(_) => Backend::Real,
        }
    }
}

impl Clone for PacketSender {
    fn clone(&self) -> Self {
        match self {
            PacketSender::Virtual(tx, inflight) => {
                PacketSender::Virtual(tx.clone(), Arc::clone(inflight))
            }
            PacketSender::Real(tx) => PacketSender::Real(tx.clone()),
        }
    }
}

/// Receive side of one (source, destination) link, backend-selected.
pub enum PacketReceiver {
    /// Virtual-time oracle link (vendored crossbeam channel) plus the
    /// mailbox's shared in-flight counter.
    Virtual(crossbeam::channel::Receiver<Packet>, Arc<AtomicUsize>),
    /// Real-backend link (lock-free SPSC queue).
    Real(SpscReceiver<Packet>),
}

impl PacketReceiver {
    /// Blocking receive of the next packet on this link; fails once the
    /// link is empty and the sending rank has dropped its send side.
    pub fn recv(&self) -> Result<Packet, Disconnected> {
        match self {
            PacketReceiver::Virtual(rx, inflight) => {
                let pkt = rx.recv().map_err(|_| Disconnected)?;
                inflight.fetch_sub(1, Ordering::Release);
                Ok(pkt)
            }
            PacketReceiver::Real(rx) => rx.recv(),
        }
    }

    /// Packets currently in flight. For a link from [`packet_channel`]
    /// this is the link's own queue length; for mesh links built with a
    /// shared counter ([`packet_channel_with`]) it counts across all of
    /// the owning mailbox's links — which is exactly what the O(1)
    /// post-run leak check needs.
    pub fn len(&self) -> usize {
        match self {
            PacketReceiver::Virtual(_, inflight) => inflight.load(Ordering::Acquire),
            PacketReceiver::Real(rx) => rx.len(),
        }
    }

    /// True when no packet is currently in flight (same caveat as
    /// [`PacketReceiver::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Create one directed link of the network on the given backend, with a
/// private in-flight counter.
pub fn packet_channel(backend: Backend) -> (PacketSender, PacketReceiver) {
    packet_channel_with(backend, Arc::new(AtomicUsize::new(0)))
}

/// Create one directed link whose in-flight counter is the given cell.
/// [`crate::mailbox::build_network`] shares one cell across all links of
/// a destination's mailbox, making the post-run leak check a single load
/// per mailbox instead of n per-channel length reads.
pub fn packet_channel_with(
    backend: Backend,
    inflight: Arc<AtomicUsize>,
) -> (PacketSender, PacketReceiver) {
    match backend {
        Backend::Virtual => {
            let (tx, rx) = crossbeam::channel::unbounded();
            (
                PacketSender::Virtual(tx, Arc::clone(&inflight)),
                PacketReceiver::Virtual(rx, inflight),
            )
        }
        Backend::Real => {
            let (tx, rx) = spsc_channel_with(inflight);
            (PacketSender::Real(tx), PacketReceiver::Real(rx))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shrink an iteration count under Miri (interpreted execution is
    /// orders of magnitude slower); every code path is still covered.
    fn scaled(n: u64) -> u64 {
        if cfg!(miri) {
            (n / 100).max(4)
        } else {
            n
        }
    }

    #[test]
    fn real_channel_fifo_single_producer() {
        let (tx, rx) = real_channel();
        for i in 0..100u64 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 100);
        for i in 0..100u64 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn real_channel_disconnects_after_drain() {
        let (tx, rx) = real_channel();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(Disconnected));
    }

    #[test]
    fn real_channel_send_fails_after_receiver_drop() {
        let (tx, rx) = real_channel();
        drop(rx);
        assert_eq!(tx.send(1u8), Err(1u8));
    }

    #[test]
    fn real_channel_blocking_recv_wakes_on_send() {
        let (tx, rx) = real_channel();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        tx.send(42u64).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn real_channel_blocking_recv_wakes_on_last_sender_drop() {
        let (tx, rx) = real_channel::<u8>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        std::thread::sleep(Duration::from_millis(20));
        drop(tx2); // only the *last* drop may disconnect
        assert_eq!(h.join().unwrap(), Err(Disconnected));
    }

    #[test]
    fn real_channel_multi_producer_per_sender_fifo() {
        // 4 producers × 500 messages, tagged by producer; the consumer
        // must observe each producer's stream in order even under real
        // contention.
        const PRODUCERS: u64 = 4;
        let per = scaled(500);
        let (tx, rx) = real_channel();
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        tx.send((p, i)).unwrap();
                        if i % 64 == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        drop(tx);
        let mut next = [0u64; PRODUCERS as usize];
        let mut total = 0u64;
        while let Ok((p, i)) = rx.recv() {
            assert_eq!(i, next[p as usize], "producer {p} reordered");
            next[p as usize] += 1;
            total += 1;
        }
        assert_eq!(total, PRODUCERS * per);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn real_channel_drops_undelivered_payloads() {
        // Nodes left in the queue when the handles drop must free their
        // payloads (no leak): observe via Arc strong counts.
        let payload = Arc::new(5u64);
        let (tx, rx) = real_channel();
        tx.send(Arc::clone(&payload)).unwrap();
        tx.send(Arc::clone(&payload)).unwrap();
        assert_eq!(Arc::strong_count(&payload), 3);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn spsc_channel_fifo_and_disconnect() {
        let (tx, rx) = spsc_channel();
        for i in 0..100u64 {
            unsafe { tx.send(i).unwrap() };
        }
        assert_eq!(rx.len(), 100);
        for i in 0..100u64 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert!(rx.is_empty());
        drop(tx);
        assert_eq!(rx.recv(), Err(Disconnected));
    }

    #[test]
    fn spsc_send_fails_after_receiver_drop() {
        let (tx, rx) = spsc_channel();
        drop(rx);
        assert_eq!(unsafe { tx.send(1u8) }, Err(1u8));
    }

    #[test]
    fn spsc_recycles_nodes_in_steady_state() {
        let (tx, rx) = spsc_channel();
        // Prime: one send/recv parks the consumed stub on the freelist.
        unsafe { tx.send(0u64).unwrap() };
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recycled_nodes(), 1);
        // Steady-state ping-pong shape: every push reuses the node the
        // previous pop recycled, so the freelist never grows past the
        // in-flight window.
        for i in 1..scaled(10_000) {
            unsafe { tx.send(i).unwrap() };
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.recycled_nodes(), 1);
        // Bursts park as many nodes as were simultaneously in flight...
        for i in 0..64u64 {
            unsafe { tx.send(i).unwrap() };
        }
        for _ in 0..64u64 {
            rx.recv().unwrap();
        }
        assert_eq!(rx.recycled_nodes(), 64);
        // ...and the cap bounds retention for oversized bursts.
        for i in 0..2 * SPSC_FREELIST_CAP as u64 {
            unsafe { tx.send(i).unwrap() };
        }
        for _ in 0..2 * SPSC_FREELIST_CAP as u64 {
            rx.recv().unwrap();
        }
        assert!(rx.recycled_nodes() <= SPSC_FREELIST_CAP);
    }

    #[test]
    fn spsc_blocking_recv_wakes_on_send() {
        let (tx, rx) = spsc_channel();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        unsafe { tx.send(42u64).unwrap() };
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn spsc_threaded_stream_is_fifo_with_recycling() {
        let (tx, rx) = spsc_channel();
        let count = scaled(50_000);
        let h = std::thread::spawn(move || {
            for i in 0..count {
                unsafe { tx.send(i).unwrap() };
                if i % 1024 == 0 {
                    std::thread::yield_now();
                }
            }
        });
        for i in 0..count {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.recv(), Err(Disconnected));
        h.join().unwrap();
    }

    #[test]
    fn spsc_drops_undelivered_payloads_and_recycled_nodes() {
        let payload = Arc::new(5u64);
        let (tx, rx) = spsc_channel();
        // Exercise the freelist before leaving values in flight, so Drop
        // must free both chains.
        unsafe { tx.send(Arc::clone(&payload)).unwrap() };
        rx.recv().unwrap();
        unsafe { tx.send(Arc::clone(&payload)).unwrap() };
        unsafe { tx.send(Arc::clone(&payload)).unwrap() };
        assert_eq!(Arc::strong_count(&payload), 3);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    /// Regression test for sleep/wake races around the last-sender drop:
    /// a consumer parking on an emptying queue must always observe the
    /// disconnect, no matter how the drop interleaves with its
    /// park/fence/check sequence. Before the protocol was documented and
    /// audited this was the path a lost wakeup would deadlock (modulo
    /// the belt-and-braces timeout).
    #[test]
    fn last_sender_drop_races_with_parking_consumer() {
        for round in 0..scaled(200) {
            let (tx, rx) = spsc_channel::<u64>();
            let msgs = round % 4; // vary how much drain precedes the park
            let consumer = std::thread::spawn(move || {
                let mut got = 0u64;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            });
            for i in 0..msgs {
                unsafe { tx.send(i).unwrap() };
            }
            if round % 2 == 0 {
                std::thread::yield_now();
            }
            drop(tx);
            assert_eq!(consumer.join().unwrap(), msgs);
        }
        // Same race on the MPSC queue's disconnect path.
        for round in 0..scaled(200) {
            let (tx, rx) = real_channel::<u64>();
            let msgs = round % 4;
            let consumer = std::thread::spawn(move || {
                let mut got = 0u64;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            });
            for i in 0..msgs {
                tx.send(i).unwrap();
            }
            if round % 2 == 0 {
                std::thread::yield_now();
            }
            drop(tx);
            assert_eq!(consumer.join().unwrap(), msgs);
        }
    }

    #[test]
    fn packet_channel_selects_backend() {
        let (tx, rx) = packet_channel(Backend::Real);
        assert_eq!(tx.backend(), Backend::Real);
        assert!(rx.is_empty());
        let (tx, _rx) = packet_channel(Backend::Virtual);
        assert_eq!(tx.backend(), Backend::Virtual);
    }

    #[test]
    fn packet_channels_share_an_inflight_cell() {
        for backend in [Backend::Virtual, Backend::Real] {
            let cell = Arc::new(AtomicUsize::new(0));
            let (tx_a, rx_a) = packet_channel_with(backend, Arc::clone(&cell));
            let (tx_b, rx_b) = packet_channel_with(backend, Arc::clone(&cell));
            let pkt = |tag: u64| Packet {
                from: 0,
                scope: 0,
                tag,
                bytes: 0,
                arrival_time: 0.0,
                body: crate::packet::PacketBody::Owned(Box::new(0u8)),
            };
            tx_a.send(pkt(1)).unwrap();
            tx_b.send(pkt(2)).unwrap();
            assert_eq!(cell.load(Ordering::Acquire), 2, "{backend}");
            rx_a.recv().unwrap();
            assert_eq!(cell.load(Ordering::Acquire), 1, "{backend}");
            rx_b.recv().unwrap();
            assert_eq!(cell.load(Ordering::Acquire), 0, "{backend}");
        }
    }

    #[test]
    fn publish_then_wake_delivers_to_parked_consumer() {
        // The batched fan-out path: publish (no wake), fence, wake. The
        // parked consumer must observe the message promptly through the
        // explicit wake, not just the fallback timeout.
        let (tx, rx) = packet_channel(Backend::Real);
        let h = std::thread::spawn(move || rx.recv().unwrap().tag);
        std::thread::sleep(Duration::from_millis(20));
        tx.send_publish(Packet {
            from: 0,
            scope: 0,
            tag: 9,
            bytes: 0,
            arrival_time: 0.0,
            body: crate::packet::PacketBody::Owned(Box::new(0u8)),
        })
        .unwrap();
        publish_fence();
        tx.wake();
        assert_eq!(h.join().unwrap(), 9);
    }
}
