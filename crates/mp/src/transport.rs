//! Pluggable transport behind the SPMD network: the backend seam.
//!
//! Every `run_spmd` call selects a [`Backend`] (via
//! [`crate::runner::RunConfig`]); the choice decides which channel
//! implementation carries [`Packet`]s between ranks:
//!
//! * [`Backend::Virtual`] — the deterministic virtual-time oracle. Ranks
//!   are real threads, but the channels are the vendored `crossbeam`
//!   stand-in (a `Mutex<VecDeque>` + `Condvar` queue) and the *reported*
//!   numbers are model-driven virtual time. This is the backend every
//!   existing caller gets by default; nothing about it changed.
//! * [`Backend::Real`] — real shared-memory execution for wall-clock
//!   measurement: an in-repo **lock-free MPSC queue** (Vyukov-style
//!   intrusive linked list; atomic swap on the producer side, a
//!   single-consumer pop that never takes a lock while messages are
//!   available, and a condvar slow path only for blocking on an empty
//!   queue) moves the same payloads between the same pooled worker
//!   threads, and the runner reports measured wall-clock `wall_us` next
//!   to the model numbers.
//!
//! What is *shared* between the backends: the mailbox matching rules
//! ((sender, scope, tag) addressing, per-sender FIFO), the collectives,
//! scoped contexts, the leak check, network recycling, and — crucially —
//! the machine-model clock. The real backend still maintains the virtual
//! clock exactly as the oracle does, so every model-driven control
//! decision (farm batch sizing, DC cutoffs, pipeline stage fusion)
//! coincides across backends and results are bit-identical by
//! construction; only the headline *measurement* differs (modeled
//! `elapsed_virtual` vs measured `wall_us`).

use std::cell::UnsafeCell;
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use crate::packet::Packet;

/// Which transport (and which headline timing) a `run_spmd` call uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Deterministic virtual-time execution: the correctness oracle.
    /// Reported times come from the [`crate::MachineModel`].
    #[default]
    Virtual,
    /// Real shared-memory execution on lock-free channels, for measured
    /// wall-clock numbers. Results are bit-identical to [`Backend::Virtual`].
    Real,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Virtual => "virtual",
            Backend::Real => "real",
        })
    }
}

/// Error returned by a receive on an empty channel whose senders have
/// all disconnected (the transport-level death signal).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disconnected;

/// Error returned by [`PacketSender::send`] when the destination rank's
/// mailbox has been torn down; carries the undelivered packet.
pub struct SendError(pub Packet);

impl std::fmt::Debug for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SendError")
            .field("from", &self.0.from)
            .field("scope", &self.0.scope)
            .field("tag", &self.0.tag)
            .field("bytes", &self.0.bytes)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Lock-free MPSC queue (the real backend's channel).
// ---------------------------------------------------------------------------

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    value: Option<T>,
}

/// Vyukov-style intrusive MPSC queue with blocking receive.
///
/// Producers publish with one `swap` + one `store` (wait-free); the
/// single consumer pops without any lock while messages are available.
/// The `sleep`/`wake` pair is used *only* to park the consumer on an
/// empty queue — producers touch the mutex only when they observe a
/// parked consumer, so the message hot path never contends on a lock
/// (unlike the vendored crossbeam stand-in, which locks on every send
/// and receive).
struct RealQueue<T> {
    /// Most recently pushed node; producers swap themselves in here.
    head: AtomicPtr<Node<T>>,
    /// Oldest node (a consumed stub); owned by the single consumer.
    tail: UnsafeCell<*mut Node<T>>,
    /// Messages currently queued (exact once the queue is quiescent).
    len: AtomicUsize,
    /// Live `RealSender` handles; 0 means disconnected.
    senders: AtomicUsize,
    /// Cleared when the receiver drops, so sends can fail fast.
    receiver_alive: AtomicBool,
    /// Set (under `sleep`) while the consumer is parked.
    parked: AtomicBool,
    sleep: Mutex<()>,
    wake: Condvar,
}

// SAFETY: the queue hands each `T` from exactly one producer to the
// single consumer; all shared pointers are managed through atomics, and
// `tail` is only touched by the consumer (or by `Drop`, which has
// exclusive access).
unsafe impl<T: Send> Send for RealQueue<T> {}
unsafe impl<T: Send> Sync for RealQueue<T> {}

impl<T> RealQueue<T> {
    fn new() -> Self {
        let stub = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: None,
        }));
        RealQueue {
            head: AtomicPtr::new(stub),
            tail: UnsafeCell::new(stub),
            len: AtomicUsize::new(0),
            senders: AtomicUsize::new(1),
            receiver_alive: AtomicBool::new(true),
            parked: AtomicBool::new(false),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    /// Producer side: wait-free publish, then wake a parked consumer.
    fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: Some(value),
        }));
        let prev = self.head.swap(node, Ordering::AcqRel);
        // SAFETY: `prev` is a live node — nodes are only freed by the
        // consumer *after* their successor link is published, and the
        // previous head has no successor until this store.
        unsafe { (*prev).next.store(node, Ordering::Release) };
        self.len.fetch_add(1, Ordering::Release);
        // Dekker-style flag protocol with the consumer: it sets `parked`
        // before its final empty-check, we fence after publishing before
        // reading the flag — so either we see the flag (and notify under
        // the lock) or it sees our message.
        fence(Ordering::SeqCst);
        if self.parked.load(Ordering::Relaxed) {
            drop(self.sleep.lock().unwrap_or_else(PoisonError::into_inner));
            self.wake.notify_all();
        }
    }

    /// Consumer side: pop the oldest message, or `None` when empty.
    ///
    /// # Safety
    /// Must only be called by the single consumer (or with otherwise
    /// exclusive access to `tail`).
    unsafe fn try_pop(&self) -> Option<T> {
        let tail = *self.tail.get();
        let mut next = (*tail).next.load(Ordering::Acquire);
        if next.is_null() {
            if self.head.load(Ordering::Acquire) == tail {
                return None; // truly empty
            }
            // A producer swapped `head` but hasn't linked `next` yet;
            // the link is one store away, so spin (yielding, for
            // single-core hosts where the producer needs the CPU).
            let mut spins = 0u32;
            loop {
                next = (*tail).next.load(Ordering::Acquire);
                if !next.is_null() {
                    break;
                }
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        let value = (*next).value.take().expect("pushed node carries a value");
        *self.tail.get() = next;
        drop(Box::from_raw(tail));
        self.len.fetch_sub(1, Ordering::Release);
        Some(value)
    }

    /// Consumer side: block until a message arrives or every sender is
    /// gone.
    ///
    /// # Safety
    /// Single-consumer, as for [`RealQueue::try_pop`].
    unsafe fn recv(&self) -> Result<T, Disconnected> {
        // Fast path: no lock while messages are available.
        if let Some(v) = self.try_pop() {
            return Ok(v);
        }
        loop {
            let guard = self.sleep.lock().unwrap_or_else(PoisonError::into_inner);
            self.parked.store(true, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            if let Some(v) = self.try_pop() {
                self.parked.store(false, Ordering::Relaxed);
                return Ok(v);
            }
            if self.senders.load(Ordering::SeqCst) == 0 {
                self.parked.store(false, Ordering::Relaxed);
                // The last sender's teardown happens-before the counter
                // hitting zero, so one final drain decides conclusively.
                return self.try_pop().ok_or(Disconnected);
            }
            // The timeout is belt-and-braces only — the flag protocol
            // above already rules out lost wakeups.
            let (g, _) = self
                .wake
                .wait_timeout(guard, Duration::from_millis(5))
                .unwrap_or_else(PoisonError::into_inner);
            drop(g);
            self.parked.store(false, Ordering::Relaxed);
        }
    }
}

impl<T> Drop for RealQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: free every remaining node, including the stub.
        let mut p = *self.tail.get_mut();
        while !p.is_null() {
            // SAFETY: nodes between tail and head are live and owned by
            // the queue once no handles remain.
            let node = unsafe { Box::from_raw(p) };
            p = node.next.load(Ordering::Relaxed);
        }
    }
}

/// Producer handle of the real backend's lock-free channel. Cloneable
/// (multi-producer).
pub struct RealSender<T> {
    queue: Arc<RealQueue<T>>,
}

impl<T> RealSender<T> {
    /// Enqueue `value`; hands it back when the receiver has dropped.
    pub fn send(&self, value: T) -> Result<(), T> {
        if !self.queue.receiver_alive.load(Ordering::Acquire) {
            return Err(value);
        }
        self.queue.push(value);
        Ok(())
    }
}

impl<T> Clone for RealSender<T> {
    fn clone(&self) -> Self {
        self.queue.senders.fetch_add(1, Ordering::Relaxed);
        RealSender {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Drop for RealSender<T> {
    fn drop(&mut self) {
        if self.queue.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake a receiver blocked on the empty
            // queue so it can observe the disconnection.
            drop(
                self.queue
                    .sleep
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            );
            self.queue.wake.notify_all();
        }
    }
}

/// Consumer handle of the real backend's lock-free channel
/// (single-consumer: not cloneable).
pub struct RealReceiver<T> {
    queue: Arc<RealQueue<T>>,
}

impl<T> RealReceiver<T> {
    /// Blocking receive; fails once the queue is empty and every sender
    /// has dropped.
    pub fn recv(&self) -> Result<T, Disconnected> {
        // SAFETY: `RealReceiver` is not Clone, so this is the single
        // consumer.
        unsafe { self.queue.recv() }
    }

    /// Messages currently queued (exact when the queue is quiescent).
    pub fn len(&self) -> usize {
        self.queue.len.load(Ordering::Acquire)
    }

    /// True when no message is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for RealReceiver<T> {
    fn drop(&mut self) {
        self.queue.receiver_alive.store(false, Ordering::Release);
    }
}

/// Create a real-backend (lock-free MPSC) channel.
pub fn real_channel<T>() -> (RealSender<T>, RealReceiver<T>) {
    let queue = Arc::new(RealQueue::new());
    (
        RealSender {
            queue: Arc::clone(&queue),
        },
        RealReceiver { queue },
    )
}

// ---------------------------------------------------------------------------
// Unified packet channel: the seam the mailbox and Ctx are written against.
// ---------------------------------------------------------------------------

/// Send side of one (source, destination) link, backend-selected.
pub enum PacketSender {
    /// Virtual-time oracle link (vendored crossbeam channel).
    Virtual(crossbeam::channel::Sender<Packet>),
    /// Real-backend link (in-repo lock-free MPSC queue).
    Real(RealSender<Packet>),
}

impl PacketSender {
    /// Put a packet on the wire; hands it back when the destination
    /// rank's mailbox has been torn down (the rank terminated).
    pub fn send(&self, packet: Packet) -> Result<(), SendError> {
        match self {
            PacketSender::Virtual(tx) => tx.send(packet).map_err(|e| SendError(e.0)),
            PacketSender::Real(tx) => tx.send(packet).map_err(SendError),
        }
    }

    /// Which backend this link belongs to.
    pub fn backend(&self) -> Backend {
        match self {
            PacketSender::Virtual(_) => Backend::Virtual,
            PacketSender::Real(_) => Backend::Real,
        }
    }
}

impl Clone for PacketSender {
    fn clone(&self) -> Self {
        match self {
            PacketSender::Virtual(tx) => PacketSender::Virtual(tx.clone()),
            PacketSender::Real(tx) => PacketSender::Real(tx.clone()),
        }
    }
}

/// Receive side of one (source, destination) link, backend-selected.
pub enum PacketReceiver {
    /// Virtual-time oracle link (vendored crossbeam channel).
    Virtual(crossbeam::channel::Receiver<Packet>),
    /// Real-backend link (in-repo lock-free MPSC queue).
    Real(RealReceiver<Packet>),
}

impl PacketReceiver {
    /// Blocking receive of the next packet on this link; fails once the
    /// link is empty and the sending rank has dropped its send side.
    pub fn recv(&self) -> Result<Packet, Disconnected> {
        match self {
            PacketReceiver::Virtual(rx) => rx.recv().map_err(|_| Disconnected),
            PacketReceiver::Real(rx) => rx.recv(),
        }
    }

    /// Packets currently queued on this link (exact at quiescence; used
    /// by the post-run leak check).
    pub fn len(&self) -> usize {
        match self {
            PacketReceiver::Virtual(rx) => rx.len(),
            PacketReceiver::Real(rx) => rx.len(),
        }
    }

    /// True when no packet is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Create one directed link of the network on the given backend.
pub fn packet_channel(backend: Backend) -> (PacketSender, PacketReceiver) {
    match backend {
        Backend::Virtual => {
            let (tx, rx) = crossbeam::channel::unbounded();
            (PacketSender::Virtual(tx), PacketReceiver::Virtual(rx))
        }
        Backend::Real => {
            let (tx, rx) = real_channel();
            (PacketSender::Real(tx), PacketReceiver::Real(rx))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_channel_fifo_single_producer() {
        let (tx, rx) = real_channel();
        for i in 0..100u64 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 100);
        for i in 0..100u64 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn real_channel_disconnects_after_drain() {
        let (tx, rx) = real_channel();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(Disconnected));
    }

    #[test]
    fn real_channel_send_fails_after_receiver_drop() {
        let (tx, rx) = real_channel();
        drop(rx);
        assert_eq!(tx.send(1u8), Err(1u8));
    }

    #[test]
    fn real_channel_blocking_recv_wakes_on_send() {
        let (tx, rx) = real_channel();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        tx.send(42u64).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn real_channel_blocking_recv_wakes_on_last_sender_drop() {
        let (tx, rx) = real_channel::<u8>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        std::thread::sleep(Duration::from_millis(20));
        drop(tx2); // only the *last* drop may disconnect
        assert_eq!(h.join().unwrap(), Err(Disconnected));
    }

    #[test]
    fn real_channel_multi_producer_per_sender_fifo() {
        // 4 producers × 500 messages, tagged by producer; the consumer
        // must observe each producer's stream in order even under real
        // contention.
        const PRODUCERS: u64 = 4;
        const PER: u64 = 500;
        let (tx, rx) = real_channel();
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..PER {
                        tx.send((p, i)).unwrap();
                        if i % 64 == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        drop(tx);
        let mut next = [0u64; PRODUCERS as usize];
        let mut total = 0u64;
        while let Ok((p, i)) = rx.recv() {
            assert_eq!(i, next[p as usize], "producer {p} reordered");
            next[p as usize] += 1;
            total += 1;
        }
        assert_eq!(total, PRODUCERS * PER);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn real_channel_drops_undelivered_payloads() {
        // Nodes left in the queue when the handles drop must free their
        // payloads (no leak): observe via Arc strong counts.
        let payload = Arc::new(5u64);
        let (tx, rx) = real_channel();
        tx.send(Arc::clone(&payload)).unwrap();
        tx.send(Arc::clone(&payload)).unwrap();
        assert_eq!(Arc::strong_count(&payload), 3);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn packet_channel_selects_backend() {
        let (tx, rx) = packet_channel(Backend::Real);
        assert_eq!(tx.backend(), Backend::Real);
        assert!(rx.is_empty());
        let (tx, _rx) = packet_channel(Backend::Virtual);
        assert_eq!(tx.backend(), Backend::Virtual);
    }
}
