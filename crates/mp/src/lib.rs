//! # archetype-mp — message-passing substrate for parallel program archetypes
//!
//! This crate is the distributed-memory substrate on which the archetype
//! skeletons of Massingill & Chandy ("Parallel Program Archetypes", IPPS
//! 1999) are built. The paper's measurements used NX on the Intel Delta and
//! MPI / Fortran M on the IBM SP; this crate provides the same programming
//! model — SPMD processes, blocking matched point-to-point messages, and the
//! collective operations the paper's communication patterns require
//! (broadcast, gather, all-gather, scatter, all-to-all, reduce, and
//! all-reduce via recursive doubling, plus a dissemination barrier).
//!
//! ## Virtual time
//!
//! Because the original hardware (mesh-connected multicomputers with tens of
//! processors) is not available, every simulated process additionally keeps a
//! **virtual clock** driven by a [`MachineModel`] — a LogGP-style cost model
//! with per-flop compute time, per-message latency and overhead, and
//! per-byte transfer time. Sends stamp messages with an arrival time
//! (`sender_time + overhead + latency + bytes × byte_time`); receives advance
//! the receiver's clock to at least the arrival time. The elapsed virtual
//! time of an SPMD run is the maximum final clock over all ranks, which lets
//! us regenerate the paper's speedup curves for up to ~100 simulated
//! processors, deterministically, on a small host.
//!
//! Real wall-clock execution is unaffected: the processes are genuine OS
//! threads exchanging messages through channels, so the same code can be
//! benchmarked for real with Criterion (see `archetype-bench`).
//!
//! ## Backends: modeled vs measured
//!
//! The transport underneath [`Ctx`] is pluggable ([`transport`]): the
//! deterministic virtual-time backend above is the default, and
//! [`run_spmd_with`] / [`run_spmd_real`] run the *same unmodified body*
//! on a real shared-memory backend — in-repo lock-free MPSC channels,
//! actual payload movement, real thread parallelism — reporting measured
//! wall-clock time in [`runner::SpmdResult::wall_us`]. Results, per-rank
//! clocks, and statistics are bit-identical across backends (enforced by
//! `tests/backend_equivalence.rs`); only the headline number differs:
//! `elapsed_virtual` is modeled, `wall_us` is measured.
//!
//! ## Substrate hot path
//!
//! [`run_spmd`] executes ranks on a **persistent worker pool**
//! ([`pool`]) and recycles the channel network of cleanly finished runs,
//! so repeated invocations cost a dispatch, not `n` thread spawns plus
//! `n²` channel constructions ([`run_spmd_unpooled`] keeps the
//! spawn-per-call path as a baseline). Fan-out collectives (`broadcast`,
//! `all_gather`) forward [`Shared`] refcounted payloads instead of
//! deep-copying per hop; the `*_shared` variants expose those handles
//! directly for zero-copy pipelines. Neither changes virtual-time
//! semantics: clocks are driven solely by the machine model, so runs
//! stay deterministic.
//!
//! ## Quick example
//!
//! ```
//! use archetype_mp::{run_spmd, MachineModel};
//!
//! // Each of 4 ranks contributes rank+1; recursive doubling sums them.
//! let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
//!     ctx.all_reduce(ctx.rank() as i64 + 1, |a, b| a + b)
//! });
//! assert!(out.results.iter().all(|&s| s == 10));
//! assert!(out.elapsed_virtual > 0.0);
//! ```

#![deny(missing_docs)]

pub mod collectives;
pub mod costmeter;
pub mod ctx;
pub mod fault;
pub mod group;
pub mod mailbox;
pub mod model;
pub mod packet;
pub mod payload;
pub mod pool;
pub mod runner;
pub mod stats;
pub mod tags;
pub mod topology;
pub mod trace;
pub mod transport;

pub use costmeter::CostMeter;
pub use ctx::{Ctx, Tag};
pub use fault::{CrashSite, CrashSpec, FaultPlan, InjectedCrash, RankDead};
pub use group::Group;
pub use model::{MachineModel, MemoryModel};
pub use payload::{FixedSize, Payload, Shared};
pub use runner::{
    run_spmd, run_spmd_ft, run_spmd_ft_with, run_spmd_quiet, run_spmd_real, run_spmd_unpooled,
    run_spmd_with, try_run_spmd, try_run_spmd_with, FtSpmdResult, RankFailure, RunConfig,
    SpmdError, SpmdResult,
};
pub use stats::{RankStats, RunStats};
pub use tags::{compose_tag, farm_tag, ft_tag, pipe_tag, ComposeTag, FarmTag, FtTag, PipeTag};
pub use trace::{CriticalPathReport, Label, RankTrace, RunTrace, TraceEvent, TraceRecorder};
pub use topology::{ProcessGrid2, ProcessGrid3};
pub use transport::Backend;
