//! Collective operations over the whole SPMD process set.
//!
//! These are the communication patterns the paper derives from the
//! archetypes' dataflow (§2.3 and §3.3): broadcast, gather (and
//! gather+broadcast), all-to-all for data redistribution, and reductions —
//! with **recursive doubling** (the paper's Figure 8) as the default
//! all-reduce algorithm. A gather-then-broadcast all-reduce is also
//! provided for the ablation benchmarks.
//!
//! Every collective must be called by *all* ranks, in the same order, like
//! MPI collectives; tags are namespaced by a per-rank sequence counter so
//! back-to-back collectives cannot interfere.

use crate::ctx::Ctx;
use crate::payload::{Payload, Shared};

impl Ctx {
    /// Dissemination barrier: ⌈log₂ n⌉ rounds of shifted exchanges.
    /// After it returns, every rank's virtual clock is at least the
    /// maximum clock any rank had when entering the barrier.
    pub fn barrier(&mut self) {
        self.trace_collective("barrier");
        let n = self.nprocs();
        let base = self.next_collective_tag();
        let rank = self.rank();
        let mut k = 1usize;
        let mut step = 0u64;
        while k < n {
            let to = (rank + k) % n;
            let from = (rank + n - k) % n;
            self.send(to, base | step, ());
            let () = self.recv(from, base | step);
            k <<= 1;
            step += 1;
        }
    }

    /// Binomial-tree broadcast from `root`. On the root, `value` must be
    /// `Some`; on other ranks it is ignored and may be `None`. Returns the
    /// broadcast value on every rank.
    ///
    /// The payload travels the tree as a [`Shared`] handle: every forward
    /// clones a refcount, not the data, so each rank performs at most one
    /// deep copy (to materialize its owned return value) instead of one
    /// per child. Use [`Ctx::broadcast_shared`] to keep the handle and
    /// skip even that copy.
    pub fn broadcast<T: Payload + Clone + Sync>(&mut self, root: usize, value: Option<T>) -> T {
        self.broadcast_shared(root, value.map(Shared::new))
            .into_inner()
    }

    /// [`Ctx::broadcast`] without materializing an owned value: returns
    /// the reference-counted payload handle directly, so a fan-out of any
    /// size performs zero deep copies on every rank.
    pub fn broadcast_shared<T: Payload + Sync>(
        &mut self,
        root: usize,
        value: Option<Shared<T>>,
    ) -> Shared<T> {
        self.trace_collective("broadcast");
        let n = self.nprocs();
        let base = self.next_collective_tag();
        let rank = self.rank();
        let relative = (rank + n - root) % n;

        let mut val = if relative == 0 {
            Some(value.expect("broadcast root must supply a value"))
        } else {
            None
        };

        // Receive phase: find the bit at which our binomial-tree parent
        // addresses us.
        let mut mask = 1usize;
        while mask < n {
            if relative & mask != 0 {
                let src = (relative - mask + root) % n;
                val = Some(self.recv_shared(src, base));
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children below the bit where we received.
        // This is a pure fan-out (no receives interleave with it), so the
        // sends publish quietly and one finish_fanout pays a single
        // publication fence plus one wake check per child, instead of a
        // full fence/wake handshake per message. Clock and stats
        // accounting are identical to plain sends, keeping results
        // bit-identical.
        mask >>= 1;
        let v = val.expect("broadcast value must be set by receive phase");
        let mut children = Vec::new();
        while mask > 0 {
            if relative + mask < n {
                let dst = (relative + mask + root) % n;
                self.send_shared_quiet(dst, base, &v);
                children.push(dst);
            }
            mask >>= 1;
        }
        self.finish_fanout(children.into_iter());
        v
    }

    /// Linear gather to `root`: returns `Some(values)` on the root with
    /// `values[r]` the contribution of rank `r`, `None` elsewhere.
    pub fn gather<T: Payload>(&mut self, root: usize, value: T) -> Option<Vec<T>> {
        self.trace_collective("gather");
        let n = self.nprocs();
        let base = self.next_collective_tag();
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
            out[root] = Some(value);
            #[allow(clippy::needless_range_loop)] // r is also the source rank
            for r in 0..n {
                if r != root {
                    out[r] = Some(self.recv(r, base));
                }
            }
            Some(out.into_iter().map(|v| v.expect("all gathered")).collect())
        } else {
            self.send(root, base, value);
            None
        }
    }

    /// Ring all-gather: after `n − 1` shift steps every rank holds the
    /// contribution of every rank, indexed by rank.
    ///
    /// Blocks travel the ring as [`Shared`] handles — each hop forwards a
    /// refcount instead of deep-copying the block — so the substrate adds
    /// no copies beyond the unavoidable one-per-rank materialization of
    /// the owned return value. Use [`Ctx::all_gather_shared`] to keep the
    /// handles and skip materialization entirely.
    pub fn all_gather<T: Payload + Clone + Sync>(&mut self, value: T) -> Vec<T> {
        self.all_gather_shared(Shared::new(value))
            .into_iter()
            .map(Shared::into_inner)
            .collect()
    }

    /// [`Ctx::all_gather`] without materializing owned blocks: every rank
    /// receives refcounted handles onto the single allocation each rank
    /// contributed, for zero deep copies anywhere in the ring.
    pub fn all_gather_shared<T: Payload + Sync>(&mut self, value: Shared<T>) -> Vec<Shared<T>> {
        self.trace_collective("all_gather");
        let n = self.nprocs();
        let base = self.next_collective_tag();
        let rank = self.rank();
        let mut out: Vec<Option<Shared<T>>> = (0..n).map(|_| None).collect();
        out[rank] = Some(value);
        let right = (rank + 1) % n;
        let left = (rank + n - 1) % n;
        for step in 0..n.saturating_sub(1) {
            // Pass along the block that is `step` hops behind us in the ring.
            let send_idx = (rank + n - step) % n;
            let recv_idx = (rank + n - step - 1) % n;
            let outgoing = out[send_idx].as_ref().expect("block must be present");
            self.send_shared(right, base | step as u64, outgoing);
            out[recv_idx] = Some(self.recv_shared(left, base | step as u64));
        }
        out.into_iter()
            .map(|v| v.expect("ring completed"))
            .collect()
    }

    /// Linear scatter from `root`: the root supplies one value per rank
    /// (`values[r]` goes to rank `r`); every rank returns its own piece.
    pub fn scatter<T: Payload>(&mut self, root: usize, values: Option<Vec<T>>) -> T {
        self.trace_collective("scatter");
        let n = self.nprocs();
        let base = self.next_collective_tag();
        if self.rank() == root {
            let values = values.expect("scatter root must supply values");
            assert_eq!(values.len(), n, "scatter needs one value per rank");
            // Pure fan-out: quiet sends + one batched wake round (see
            // broadcast_shared's send phase).
            let mut own = None;
            for (r, v) in values.into_iter().enumerate() {
                if r == root {
                    own = Some(v);
                } else {
                    self.send_quiet(r, base, v);
                }
            }
            self.finish_fanout((0..n).filter(|&r| r != root));
            own.expect("root keeps its own piece")
        } else {
            self.recv(root, base)
        }
    }

    /// Personalized all-to-all exchange: `items[d]` is delivered to rank
    /// `d`; the return value's slot `s` holds what rank `s` sent here.
    /// This is the communication pattern of the one-deep archetype's
    /// split/merge redistribution and of the mesh archetype's grid
    /// redistribution.
    pub fn all_to_all<T: Payload>(&mut self, items: Vec<T>) -> Vec<T> {
        self.trace_collective("all_to_all");
        let n = self.nprocs();
        assert_eq!(items.len(), n, "all_to_all needs one item per rank");
        let base = self.next_collective_tag();
        let rank = self.rank();
        let mut inbox: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut outbox: Vec<Option<T>> = items.into_iter().map(Some).collect();
        inbox[rank] = outbox[rank].take();
        for offset in 1..n {
            let dst = (rank + offset) % n;
            let src = (rank + n - offset) % n;
            let outgoing = outbox[dst].take().expect("one item per destination");
            self.send(dst, base | offset as u64, outgoing);
            inbox[src] = Some(self.recv(src, base | offset as u64));
        }
        inbox
            .into_iter()
            .map(|v| v.expect("exchange completed"))
            .collect()
    }

    /// Binomial-tree reduction to `root` with operator `op`.
    /// `op` must be associative (and is applied in deterministic order).
    /// Returns `Some(result)` on root, `None` elsewhere.
    pub fn reduce<T, F>(&mut self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Payload,
        F: Fn(T, T) -> T,
    {
        self.trace_collective("reduce");
        let n = self.nprocs();
        let base = self.next_collective_tag();
        let rank = self.rank();
        let relative = (rank + n - root) % n;
        let mut acc = value;
        let mut mask = 1usize;
        while mask < n {
            if relative & mask == 0 {
                let peer = relative | mask;
                if peer < n {
                    let src = (peer + root) % n;
                    let other: T = self.recv(src, base);
                    acc = op(acc, other);
                }
            } else {
                let dst = (relative - mask + root) % n;
                self.send(dst, base, acc);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// All-reduce by **recursive doubling** (paper Figure 8), the
    /// archetype library's default reduction: after ⌈log₂ n⌉ exchange
    /// rounds every rank holds the reduction of all contributions.
    ///
    /// Handles non-power-of-two `n` with the standard pre/post folding of
    /// the `n − 2^⌊log₂ n⌋` extra ranks.
    ///
    /// ```
    /// use archetype_mp::{run_spmd, MachineModel};
    ///
    /// // Every rank learns the maximum rank number.
    /// let out = run_spmd(5, MachineModel::ibm_sp(), |ctx| {
    ///     ctx.all_reduce(ctx.rank() as u64, u64::max)
    /// });
    /// assert_eq!(out.results, vec![4, 4, 4, 4, 4]);
    /// ```
    pub fn all_reduce<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Payload + Clone,
        F: Fn(T, T) -> T,
    {
        self.trace_collective("all_reduce");
        let n = self.nprocs();
        let base = self.next_collective_tag();
        let rank = self.rank();
        let pof2 = if n.is_power_of_two() {
            n
        } else {
            n.next_power_of_two() / 2
        };
        let rem = n - pof2;

        let mut acc = value;

        // Fold the first `rem` even-position extras onto their odd partners
        // so exactly `pof2` ranks remain.
        let my_idx: Option<usize> = if rank < 2 * rem {
            if rank.is_multiple_of(2) {
                self.send(rank + 1, base | 0xFF00, acc.clone());
                None
            } else {
                let other: T = self.recv(rank - 1, base | 0xFF00);
                acc = op(other, acc);
                Some(rank / 2)
            }
        } else {
            Some(rank - rem)
        };

        if let Some(idx) = my_idx {
            // Recursive doubling among the `pof2` participants.
            let to_rank = |i: usize| if i < rem { 2 * i + 1 } else { i + rem };
            let mut mask = 1usize;
            let mut step = 0u64;
            while mask < pof2 {
                let peer = to_rank(idx ^ mask);
                self.send(peer, base | step, acc.clone());
                let other: T = self.recv(peer, base | step);
                // Apply in index order for determinism regardless of side.
                acc = if idx & mask == 0 {
                    op(acc, other)
                } else {
                    op(other, acc)
                };
                mask <<= 1;
                step += 1;
            }
            // Send the final value back to the folded partner.
            if rank < 2 * rem {
                self.send(rank - 1, base | 0xFF01, acc.clone());
            }
        } else {
            acc = self.recv(rank + 1, base | 0xFF01);
        }
        acc
    }

    /// All-reduce implemented as gather-to-root + sequential fold +
    /// broadcast. Provided as the baseline for the ablation bench
    /// comparing against recursive doubling.
    pub fn all_reduce_via_gather<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Payload + Clone + Sync,
        F: Fn(T, T) -> T,
    {
        self.trace_collective("all_reduce_via_gather");
        let gathered = self.gather(0, value);
        let folded = gathered.map(|vs| {
            let mut it = vs.into_iter();
            let first = it.next().expect("n >= 1");
            it.fold(first, &op)
        });
        self.broadcast(0, folded)
    }
}

#[cfg(test)]
mod tests {
    use crate::model::MachineModel;
    use crate::runner::run_spmd_quiet;

    /// Exercise every collective for a spread of process counts including
    /// non-powers-of-two, which stress the remainder handling.
    const SIZES: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 13, 16];

    #[test]
    fn barrier_synchronizes_clocks() {
        for &n in SIZES {
            let out = run_spmd_quiet(n, MachineModel::zero_comm(), |ctx| {
                // Rank r computes for r seconds, then all must observe >= n-1.
                ctx.charge_seconds(ctx.rank() as f64);
                ctx.barrier();
                ctx.now()
            });
            let max_entry = (n - 1) as f64;
            for t in &out.results {
                assert!(*t >= max_entry, "n={n}: clock {t} < {max_entry}");
            }
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for &n in SIZES {
            for root in 0..n {
                let out = run_spmd_quiet(n, MachineModel::ibm_sp(), move |ctx| {
                    let v = if ctx.rank() == root {
                        Some(vec![root as i64, 42])
                    } else {
                        None
                    };
                    ctx.broadcast(root, v)
                });
                for r in &out.results {
                    assert_eq!(*r, vec![root as i64, 42], "n={n} root={root}");
                }
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        for &n in SIZES {
            let out = run_spmd_quiet(n, MachineModel::ibm_sp(), |ctx| {
                ctx.gather(0, ctx.rank() as u64 * 10)
            });
            let expected: Vec<u64> = (0..n as u64).map(|r| r * 10).collect();
            assert_eq!(out.results[0], Some(expected));
            for r in 1..n {
                assert_eq!(out.results[r], None);
            }
        }
    }

    #[test]
    fn all_gather_gives_everyone_everything() {
        for &n in SIZES {
            let out = run_spmd_quiet(n, MachineModel::ibm_sp(), |ctx| {
                ctx.all_gather(vec![ctx.rank() as i32; 2])
            });
            let expected: Vec<Vec<i32>> = (0..n as i32).map(|r| vec![r; 2]).collect();
            for r in &out.results {
                assert_eq!(*r, expected);
            }
        }
    }

    #[test]
    fn scatter_delivers_one_piece_each() {
        for &n in SIZES {
            let out = run_spmd_quiet(n, MachineModel::ibm_sp(), |ctx| {
                let values = if ctx.rank() == 0 {
                    Some((0..ctx.nprocs() as i64).map(|i| i * i).collect())
                } else {
                    None
                };
                ctx.scatter(0, values)
            });
            for (r, v) in out.results.iter().enumerate() {
                assert_eq!(*v, (r * r) as i64);
            }
        }
    }

    #[test]
    fn all_to_all_transposes() {
        for &n in SIZES {
            let out = run_spmd_quiet(n, MachineModel::ibm_sp(), |ctx| {
                // items[d] = (my_rank, d)
                let items: Vec<(u64, u64)> = (0..ctx.nprocs() as u64)
                    .map(|d| (ctx.rank() as u64, d))
                    .collect();
                ctx.all_to_all(items)
            });
            for (me, got) in out.results.iter().enumerate() {
                for (s, &(from, to)) in got.iter().enumerate() {
                    assert_eq!(from, s as u64, "slot s holds rank s's item");
                    assert_eq!(to, me as u64, "and it was addressed to me");
                }
            }
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for &n in SIZES {
            for root in 0..n {
                let out = run_spmd_quiet(n, MachineModel::ibm_sp(), move |ctx| {
                    ctx.reduce(root, (ctx.rank() + 1) as u64, |a, b| a + b)
                });
                let expected = (n * (n + 1) / 2) as u64;
                for (r, v) in out.results.iter().enumerate() {
                    if r == root {
                        assert_eq!(*v, Some(expected), "n={n} root={root}");
                    } else {
                        assert_eq!(*v, None);
                    }
                }
            }
        }
    }

    #[test]
    fn all_reduce_recursive_doubling_matches_sum() {
        for &n in SIZES {
            let out = run_spmd_quiet(n, MachineModel::ibm_sp(), |ctx| {
                ctx.all_reduce((ctx.rank() + 1) as u64, |a, b| a + b)
            });
            let expected = (n * (n + 1) / 2) as u64;
            for v in &out.results {
                assert_eq!(*v, expected, "n={n}");
            }
        }
    }

    #[test]
    fn all_reduce_max_and_min() {
        for &n in SIZES {
            let out = run_spmd_quiet(n, MachineModel::ibm_sp(), |ctx| {
                let x = ctx.rank() as f64;
                let mx = ctx.all_reduce(x, f64::max);
                let mn = ctx.all_reduce(x, f64::min);
                (mx, mn)
            });
            for &(mx, mn) in &out.results {
                assert_eq!(mx, (n - 1) as f64);
                assert_eq!(mn, 0.0);
            }
        }
    }

    #[test]
    fn all_reduce_via_gather_agrees_with_recursive_doubling() {
        for &n in SIZES {
            let out = run_spmd_quiet(n, MachineModel::ibm_sp(), |ctx| {
                let a = ctx.all_reduce(ctx.rank() as i64 + 1, |x, y| x + y);
                let b = ctx.all_reduce_via_gather(ctx.rank() as i64 + 1, |x, y| x + y);
                (a, b)
            });
            for &(a, b) in &out.results {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn recursive_doubling_is_cheaper_than_gather_broadcast_at_scale() {
        // The paper's motivation for recursive doubling: log vs linear cost.
        let n = 16;
        let t_rd = run_spmd_quiet(n, MachineModel::workstation_network(), |ctx| {
            ctx.all_reduce(1.0f64, |a, b| a + b);
        })
        .elapsed_virtual;
        let t_gb = run_spmd_quiet(n, MachineModel::workstation_network(), |ctx| {
            ctx.all_reduce_via_gather(1.0f64, |a, b| a + b);
        })
        .elapsed_virtual;
        assert!(
            t_rd < t_gb,
            "recursive doubling ({t_rd}) should beat gather+broadcast ({t_gb})"
        );
    }

    #[test]
    fn collectives_back_to_back_do_not_interfere() {
        let out = run_spmd_quiet(4, MachineModel::ibm_sp(), |ctx| {
            let a = ctx.all_reduce(1u64, |x, y| x + y);
            let b = ctx.all_reduce(2u64, |x, y| x + y);
            let c = ctx.broadcast(0, Some(ctx.rank() as u64)).min(99);
            ctx.barrier();
            (a, b, c)
        });
        for &(a, b, c) in &out.results {
            assert_eq!((a, b, c), (4, 8, 0));
        }
    }
}
