//! Reserved tag namespaces for archetype-level protocols.
//!
//! The substrate's [`Tag`] space is partitioned so that user messages,
//! collectives, group collectives, and archetype protocols can never
//! collide:
//!
//! | bits            | owner                                     |
//! |-----------------|-------------------------------------------|
//! | `1 << 63`       | world collectives ([`crate::collectives`])|
//! | `1 << 62`       | group collectives ([`crate::Group`])      |
//! | `1 << 61`       | farm protocol (this module)               |
//! | `1 << 60` alone | pipeline protocol (this module)           |
//! | `1 << 59` alone | composition handoff (this module)         |
//! | `1 << 58` alone | fault-tolerance protocol (this module)    |
//! | rest            | free for application point-to-point use   |
//!
//! (A farm tag may have bits 59–60 set *inside* its kind field, but
//! always together with bit 61, and a pipeline tag may set bit 59 inside
//! its kind field but always together with bit 60 — so the pipeline
//! namespace — bit 60 with bits 61–63 clear — and the composition
//! namespace — bit 59 with bits 60–63 clear — never collide with either.
//! Composition and fault-tolerance tags keep their kind fields below bit
//! 58, so the FT namespace — bit 58 with bits 59–63 clear — is likewise
//! disjoint from everything above it.)
//!
//! The farm namespace carries the task-farm archetype's message
//! kinds, each versioned by the farm's round number so that back-to-back
//! rounds — and even two farms run one after the other in the same SPMD
//! body, provided they execute in lockstep — cannot confuse each other's
//! traffic.
//!
//! The pipeline namespace carries the pipeline archetype's stream. Its
//! tags are versioned by *edge* (the producer level in the stage graph)
//! rather than by round: all traffic on one edge flows between fixed
//! (sender, receiver) pairs, and the substrate's per-(sender, tag) FIFO
//! rule keeps consecutive pipelines in the same SPMD body ordered —
//! every rank fully drains its role in one pipeline before touching the
//! next, so a lagging consumer matches the earlier pipeline's messages
//! first.

use crate::ctx::Tag;

/// Base bit of the farm protocol's tag namespace.
pub const FARM_TAG_BASE: u64 = 1 << 61;

/// The message kinds of the task-farm protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FarmTag {
    /// A load report asking the partner for surplus work.
    StealRequest,
    /// The (possibly empty) batch of tasks answering a steal request.
    StealReply,
    /// The termination/steering wave token passed along the rank ring
    /// (the verdict travels back on the collective broadcast tree).
    Wave,
}

impl FarmTag {
    const fn code(self) -> u64 {
        match self {
            FarmTag::StealRequest => 0,
            FarmTag::StealReply => 1,
            FarmTag::Wave => 2,
        }
    }
}

/// The tag for farm message kind `kind` in round `round`.
///
/// Rounds are folded into the 59 bits below the kind field; a farm would
/// need ~10¹⁷ rounds to wrap, at which point messages from round `r` and
/// round `r + 2⁵⁹` could alias — far beyond any simulated run.
///
/// ```
/// use archetype_mp::tags::{farm_tag, FarmTag, FARM_TAG_BASE};
/// let t = farm_tag(FarmTag::StealRequest, 7);
/// assert_ne!(t, farm_tag(FarmTag::StealReply, 7)); // kinds are disjoint
/// assert_ne!(t, farm_tag(FarmTag::StealRequest, 8)); // rounds are disjoint
/// assert_eq!(t & FARM_TAG_BASE, FARM_TAG_BASE); // inside the farm namespace
/// ```
pub const fn farm_tag(kind: FarmTag, round: u64) -> Tag {
    FARM_TAG_BASE | (kind.code() << 59) | (round & ((1 << 59) - 1))
}

/// Base bit of the pipeline protocol's tag namespace.
pub const PIPE_TAG_BASE: u64 = 1 << 60;

/// The message kinds of the pipeline protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PipeTag {
    /// A stream item (or the end-of-stream marker) travelling down one
    /// edge of the stage graph.
    Item,
    /// A flow-control credit returned upstream after an item is consumed.
    Credit,
}

impl PipeTag {
    const fn code(self) -> u64 {
        match self {
            PipeTag::Item => 0,
            PipeTag::Credit => 1,
        }
    }
}

/// The tag for pipeline message kind `kind` on edge `edge` (the producer
/// level in the pipeline's stage graph: 0 leaving ingest, `l` leaving
/// segment `l`).
///
/// ```
/// use archetype_mp::tags::{pipe_tag, PipeTag, PIPE_TAG_BASE};
/// let t = pipe_tag(PipeTag::Item, 2);
/// assert_ne!(t, pipe_tag(PipeTag::Credit, 2)); // kinds are disjoint
/// assert_ne!(t, pipe_tag(PipeTag::Item, 3)); // edges are disjoint
/// assert_eq!(t & PIPE_TAG_BASE, PIPE_TAG_BASE); // inside the namespace
/// assert_eq!(t >> 61, 0); // and outside every other namespace
/// ```
pub const fn pipe_tag(kind: PipeTag, edge: u64) -> Tag {
    PIPE_TAG_BASE | (kind.code() << 59) | (edge & ((1 << 59) - 1))
}

/// Base bit of the composition subsystem's inter-stage handoff namespace.
pub const COMPOSE_TAG_BASE: u64 = 1 << 59;

/// The message kinds of the composition executor's handoff protocol
/// (`crates/compose`): plan values moving between a parent group's root
/// and its `Par` branches' roots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ComposeTag {
    /// A branch input travelling from the parent root to a branch root.
    Input,
    /// A branch output (with its trace) travelling back to the parent root.
    Output,
}

impl ComposeTag {
    const fn code(self) -> u64 {
        match self {
            ComposeTag::Input => 0,
            ComposeTag::Output => 1,
        }
    }
}

/// The tag for composition handoff kind `kind` at plan node `node` (the
/// preorder index of the `Par`/`Replicate` node performing the handoff,
/// unique within one plan).
///
/// ```
/// use archetype_mp::tags::{compose_tag, ComposeTag, COMPOSE_TAG_BASE};
/// let t = compose_tag(ComposeTag::Input, 3);
/// assert_ne!(t, compose_tag(ComposeTag::Output, 3)); // kinds are disjoint
/// assert_ne!(t, compose_tag(ComposeTag::Input, 4)); // nodes are disjoint
/// assert_eq!(t & COMPOSE_TAG_BASE, COMPOSE_TAG_BASE); // inside the namespace
/// assert_eq!(t >> 60, 0); // and outside every other namespace
/// ```
pub const fn compose_tag(kind: ComposeTag, node: u64) -> Tag {
    COMPOSE_TAG_BASE | (kind.code() << 57) | (node & ((1 << 57) - 1))
}

/// Base bit of the fault-tolerance protocol's tag namespace.
pub const FT_TAG_BASE: u64 = 1 << 58;

/// The message kinds of the fault-tolerant archetype protocols (the FT
/// farm's work orders and replies, and the heartbeat/timeout machinery).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FtTag {
    /// A work order (or shutdown order) from a coordinator to a worker.
    Order,
    /// A completed batch of results travelling back to the coordinator.
    Done,
    /// A liveness/statistics report; carries a worker's final accounting
    /// during shutdown and doubles as the virtual-time heartbeat kind.
    Heartbeat,
}

impl FtTag {
    const fn code(self) -> u64 {
        match self {
            FtTag::Order => 0,
            FtTag::Done => 1,
            FtTag::Heartbeat => 2,
        }
    }
}

/// The tag for fault-tolerance message kind `kind` with sequence number
/// `seq`. Unlike the lockstep farm's round-versioned tags, FT tags are
/// versioned per *message*: recovery protocols re-send work after a
/// failure, and a unique sequence number per transmission both prevents a
/// reissued order from matching a stale reply and gives the fault layer's
/// pure drop/duplicate decision function (keyed by `(from, to, tag)`) a
/// distinct key per message — see [`crate::Ctx::send_ft`].
///
/// ```
/// use archetype_mp::tags::{ft_tag, FtTag, FT_TAG_BASE};
/// let t = ft_tag(FtTag::Order, 7);
/// assert_ne!(t, ft_tag(FtTag::Done, 7)); // kinds are disjoint
/// assert_ne!(t, ft_tag(FtTag::Order, 8)); // sequence numbers are disjoint
/// assert_eq!(t & FT_TAG_BASE, FT_TAG_BASE); // inside the FT namespace
/// assert_eq!(t >> 59, 0); // and outside every other namespace
/// ```
pub const fn ft_tag(kind: FtTag, seq: u64) -> Tag {
    FT_TAG_BASE | (kind.code() << 56) | (seq & ((1 << 56) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::COLLECTIVE_TAG_BASE;

    #[test]
    fn ft_namespace_is_disjoint_from_all_others() {
        let t = ft_tag(FtTag::Heartbeat, 11);
        assert_eq!(t & COLLECTIVE_TAG_BASE, 0, "not a world collective tag");
        assert_eq!(t & (1 << 62), 0, "not a group collective tag");
        assert_eq!(t & (1 << 61), 0, "not a farm tag");
        assert_eq!(t & (1 << 60), 0, "not a pipeline tag");
        assert_eq!(t & (1 << 59), 0, "not a compose tag");
        assert_ne!(t & FT_TAG_BASE, 0);
        // Compose tags keep their kind field at bit 57, below the FT base,
        // so they can never fall inside the FT namespace — and farm /
        // pipeline / compose tags always carry their own base bits.
        assert_eq!(
            compose_tag(ComposeTag::Output, (1 << 57) - 1) & FT_TAG_BASE,
            0
        );
        assert_ne!(farm_tag(FarmTag::Wave, 3) & (1 << 61), 0);
        assert_ne!(pipe_tag(PipeTag::Credit, 3) & (1 << 60), 0);
        assert_ne!(compose_tag(ComposeTag::Input, 3) & (1 << 59), 0);
    }

    #[test]
    fn ft_kinds_and_seqs_never_collide() {
        let mut seen = std::collections::HashSet::new();
        for kind in [FtTag::Order, FtTag::Done, FtTag::Heartbeat] {
            for seq in [0u64, 1, 2, 3, 17, 1000, 123_456_789] {
                assert!(seen.insert(ft_tag(kind, seq)));
            }
        }
    }

    #[test]
    fn compose_namespace_is_disjoint_from_all_others() {
        let t = compose_tag(ComposeTag::Output, 9);
        assert_eq!(t & COLLECTIVE_TAG_BASE, 0, "not a world collective tag");
        assert_eq!(t & (1 << 62), 0, "not a group collective tag");
        assert_eq!(t & (1 << 61), 0, "not a farm tag");
        assert_eq!(t & (1 << 60), 0, "not a pipeline tag");
        assert_ne!(t & COMPOSE_TAG_BASE, 0);
        // Farm and pipeline tags always carry their own base bit, so they
        // can never fall inside the compose namespace.
        assert_ne!(farm_tag(FarmTag::Wave, 1) & (1 << 61), 0);
        assert_ne!(pipe_tag(PipeTag::Item, 1) & (1 << 60), 0);
    }

    #[test]
    fn compose_kinds_and_nodes_never_collide() {
        let mut seen = std::collections::HashSet::new();
        for kind in [ComposeTag::Input, ComposeTag::Output] {
            for node in [0u64, 1, 2, 3, 17, 1000] {
                assert!(seen.insert(compose_tag(kind, node)));
            }
        }
    }

    #[test]
    fn pipe_kinds_and_edges_never_collide() {
        let mut seen = std::collections::HashSet::new();
        for kind in [PipeTag::Item, PipeTag::Credit] {
            for edge in [0u64, 1, 2, 3, 17, 1000] {
                assert!(seen.insert(pipe_tag(kind, edge)));
            }
        }
    }

    #[test]
    fn pipe_namespace_is_disjoint_from_all_others() {
        let kinds = [FarmTag::StealRequest, FarmTag::StealReply, FarmTag::Wave];
        for kind in kinds {
            for round in [0u64, 1, (1 << 59) - 1] {
                // Farm tags always carry bit 61; pipe tags never do.
                assert_ne!(farm_tag(kind, round) & (1 << 61), 0);
            }
        }
        let t = pipe_tag(PipeTag::Credit, 5);
        assert_eq!(t & COLLECTIVE_TAG_BASE, 0, "not a world collective tag");
        assert_eq!(t & (1 << 62), 0, "not a group collective tag");
        assert_eq!(t & (1 << 61), 0, "not a farm tag");
        assert_ne!(t & PIPE_TAG_BASE, 0);
    }

    #[test]
    fn kinds_and_rounds_never_collide() {
        let kinds = [FarmTag::StealRequest, FarmTag::StealReply, FarmTag::Wave];
        let mut seen = std::collections::HashSet::new();
        for kind in kinds {
            for round in [0u64, 1, 2, 1000, 123_456_789] {
                assert!(seen.insert(farm_tag(kind, round)));
            }
        }
    }

    #[test]
    fn farm_namespace_is_disjoint_from_collectives_and_groups() {
        let t = farm_tag(FarmTag::Wave, 42);
        assert_eq!(t & COLLECTIVE_TAG_BASE, 0, "not a world collective tag");
        assert_eq!(t & (1 << 62), 0, "not a group collective tag");
        assert_ne!(t & FARM_TAG_BASE, 0);
    }
}
