//! Reserved tag namespaces for archetype-level protocols.
//!
//! The substrate's [`Tag`] space is partitioned so that user messages,
//! collectives, group collectives, and archetype protocols can never
//! collide:
//!
//! | bits            | owner                                     |
//! |-----------------|-------------------------------------------|
//! | `1 << 63`       | world collectives ([`crate::collectives`])|
//! | `1 << 62`       | group collectives ([`crate::Group`])      |
//! | `1 << 61`       | farm protocol (this module)               |
//! | rest            | free for application point-to-point use   |
//!
//! The farm namespace carries the task-farm archetype's message
//! kinds, each versioned by the farm's round number so that back-to-back
//! rounds — and even two farms run one after the other in the same SPMD
//! body, provided they execute in lockstep — cannot confuse each other's
//! traffic.

use crate::ctx::Tag;

/// Base bit of the farm protocol's tag namespace.
pub const FARM_TAG_BASE: u64 = 1 << 61;

/// The message kinds of the task-farm protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FarmTag {
    /// A load report asking the partner for surplus work.
    StealRequest,
    /// The (possibly empty) batch of tasks answering a steal request.
    StealReply,
    /// The termination/steering wave token passed along the rank ring
    /// (the verdict travels back on the collective broadcast tree).
    Wave,
}

impl FarmTag {
    const fn code(self) -> u64 {
        match self {
            FarmTag::StealRequest => 0,
            FarmTag::StealReply => 1,
            FarmTag::Wave => 2,
        }
    }
}

/// The tag for farm message kind `kind` in round `round`.
///
/// Rounds are folded into the 59 bits below the kind field; a farm would
/// need ~10¹⁷ rounds to wrap, at which point messages from round `r` and
/// round `r + 2⁵⁹` could alias — far beyond any simulated run.
///
/// ```
/// use archetype_mp::tags::{farm_tag, FarmTag, FARM_TAG_BASE};
/// let t = farm_tag(FarmTag::StealRequest, 7);
/// assert_ne!(t, farm_tag(FarmTag::StealReply, 7)); // kinds are disjoint
/// assert_ne!(t, farm_tag(FarmTag::StealRequest, 8)); // rounds are disjoint
/// assert_eq!(t & FARM_TAG_BASE, FARM_TAG_BASE); // inside the farm namespace
/// ```
pub const fn farm_tag(kind: FarmTag, round: u64) -> Tag {
    FARM_TAG_BASE | (kind.code() << 59) | (round & ((1 << 59) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::COLLECTIVE_TAG_BASE;

    #[test]
    fn kinds_and_rounds_never_collide() {
        let kinds = [FarmTag::StealRequest, FarmTag::StealReply, FarmTag::Wave];
        let mut seen = std::collections::HashSet::new();
        for kind in kinds {
            for round in [0u64, 1, 2, 1000, 123_456_789] {
                assert!(seen.insert(farm_tag(kind, round)));
            }
        }
    }

    #[test]
    fn farm_namespace_is_disjoint_from_collectives_and_groups() {
        let t = farm_tag(FarmTag::Wave, 42);
        assert_eq!(t & COLLECTIVE_TAG_BASE, 0, "not a world collective tag");
        assert_eq!(t & (1 << 62), 0, "not a group collective tag");
        assert_ne!(t & FARM_TAG_BASE, 0);
    }
}
