//! Process topologies: logical 2-D and 3-D process grids.
//!
//! The mesh-spectral archetype distributes grids over an `NPX × NPY`
//! (or `× NPZ`) arrangement of processes (paper §3.5.3: "distributing data
//! in contiguous blocks among NPX×NPY processes conceptually arranged as an
//! NPX by NPY grid"). These helpers map ranks to grid coordinates and give
//! each process its neighbours for boundary exchange.

/// A logical `px × py` arrangement of `px*py` processes, row-major:
/// rank = `i * py + j` for coordinates `(i, j)` with `0 ≤ i < px`,
/// `0 ≤ j < py`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessGrid2 {
    /// Extent along the first (x / row-block) axis.
    pub px: usize,
    /// Extent along the second (y / column-block) axis.
    pub py: usize,
}

impl ProcessGrid2 {
    /// Create a grid; panics if either extent is zero.
    pub fn new(px: usize, py: usize) -> Self {
        assert!(px > 0 && py > 0, "process grid extents must be positive");
        ProcessGrid2 { px, py }
    }

    /// Factor `n` into the most nearly square `px × py = n` grid with
    /// `px ≤ py`.
    pub fn near_square(n: usize) -> Self {
        assert!(n > 0);
        let mut px = (n as f64).sqrt() as usize;
        while px > 1 && !n.is_multiple_of(px) {
            px -= 1;
        }
        ProcessGrid2::new(px.max(1), n / px.max(1))
    }

    /// Total number of processes.
    pub fn len(&self) -> usize {
        self.px * self.py
    }

    /// True when the grid is a single process.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Rank of process at coordinates `(i, j)`.
    pub fn rank_of(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.px && j < self.py);
        i * self.py + j
    }

    /// Coordinates of `rank`.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.len());
        (rank / self.py, rank % self.py)
    }

    /// Neighbour one step in `-i` (returns `None` at the boundary).
    pub fn north(&self, rank: usize) -> Option<usize> {
        let (i, j) = self.coords_of(rank);
        (i > 0).then(|| self.rank_of(i - 1, j))
    }

    /// Neighbour one step in `+i`.
    pub fn south(&self, rank: usize) -> Option<usize> {
        let (i, j) = self.coords_of(rank);
        (i + 1 < self.px).then(|| self.rank_of(i + 1, j))
    }

    /// Neighbour one step in `-j`.
    pub fn west(&self, rank: usize) -> Option<usize> {
        let (i, j) = self.coords_of(rank);
        (j > 0).then(|| self.rank_of(i, j - 1))
    }

    /// Neighbour one step in `+j`.
    pub fn east(&self, rank: usize) -> Option<usize> {
        let (i, j) = self.coords_of(rank);
        (j + 1 < self.py).then(|| self.rank_of(i, j + 1))
    }
}

/// A logical `px × py × pz` arrangement of processes, row-major:
/// rank = `(i * py + j) * pz + k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessGrid3 {
    /// Extent along the first axis.
    pub px: usize,
    /// Extent along the second axis.
    pub py: usize,
    /// Extent along the third axis.
    pub pz: usize,
}

impl ProcessGrid3 {
    /// Create a grid; panics if any extent is zero.
    pub fn new(px: usize, py: usize, pz: usize) -> Self {
        assert!(px > 0 && py > 0 && pz > 0);
        ProcessGrid3 { px, py, pz }
    }

    /// Factor `n` into a near-cubic `px × py × pz = n` grid.
    pub fn near_cubic(n: usize) -> Self {
        assert!(n > 0);
        let mut best = (1, 1, n);
        let mut best_score = usize::MAX;
        for px in 1..=n {
            if !n.is_multiple_of(px) {
                continue;
            }
            let rest = n / px;
            for py in 1..=rest {
                if !rest.is_multiple_of(py) {
                    continue;
                }
                let pz = rest / py;
                let dims = [px, py, pz];
                let score = dims.iter().max().unwrap() - dims.iter().min().unwrap();
                if score < best_score {
                    best_score = score;
                    best = (px, py, pz);
                }
            }
        }
        ProcessGrid3::new(best.0, best.1, best.2)
    }

    /// Total number of processes.
    pub fn len(&self) -> usize {
        self.px * self.py * self.pz
    }

    /// True when the grid is a single process (never; kept for clippy).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Rank of process at `(i, j, k)`.
    pub fn rank_of(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.px && j < self.py && k < self.pz);
        (i * self.py + j) * self.pz + k
    }

    /// Coordinates of `rank`.
    pub fn coords_of(&self, rank: usize) -> (usize, usize, usize) {
        debug_assert!(rank < self.len());
        let k = rank % self.pz;
        let ij = rank / self.pz;
        (ij / self.py, ij % self.py, k)
    }

    /// Neighbour one step along `axis` (0, 1 or 2) in direction `dir`
    /// (−1 or +1); `None` at the domain boundary.
    pub fn neighbor(&self, rank: usize, axis: usize, dir: isize) -> Option<usize> {
        let (i, j, k) = self.coords_of(rank);
        let coord = [i as isize, j as isize, k as isize];
        let lim = [self.px as isize, self.py as isize, self.pz as isize];
        let mut c = coord;
        c[axis] += dir;
        if c[axis] < 0 || c[axis] >= lim[axis] {
            None
        } else {
            Some(self.rank_of(c[0] as usize, c[1] as usize, c[2] as usize))
        }
    }
}

/// Split a global extent `n` into `parts` contiguous blocks; block `idx`
/// gets `[start, start+len)`. Remainder elements go to the first blocks,
/// so sizes differ by at most one.
pub fn block_range(n: usize, parts: usize, idx: usize) -> (usize, usize) {
    debug_assert!(idx < parts);
    let base = n / parts;
    let rem = n % parts;
    let len = base + usize::from(idx < rem);
    let start = idx * base + idx.min(rem);
    (start, len)
}

/// Which block of `block_range(n, parts, ·)` owns global index `g`.
pub fn block_owner(n: usize, parts: usize, g: usize) -> usize {
    debug_assert!(g < n);
    let base = n / parts;
    let rem = n % parts;
    let big = (base + 1) * rem; // elements covered by the larger blocks
    if g < big {
        g / (base + 1)
    } else {
        rem + (g - big) / base.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2_rank_coords_roundtrip() {
        let g = ProcessGrid2::new(3, 4);
        for r in 0..g.len() {
            let (i, j) = g.coords_of(r);
            assert_eq!(g.rank_of(i, j), r);
        }
    }

    #[test]
    fn grid2_neighbors_at_edges() {
        let g = ProcessGrid2::new(2, 3);
        // rank 0 = (0,0): no north, no west
        assert_eq!(g.north(0), None);
        assert_eq!(g.west(0), None);
        assert_eq!(g.south(0), Some(3));
        assert_eq!(g.east(0), Some(1));
        // rank 5 = (1,2): no south, no east
        assert_eq!(g.south(5), None);
        assert_eq!(g.east(5), None);
        assert_eq!(g.north(5), Some(2));
        assert_eq!(g.west(5), Some(4));
    }

    #[test]
    fn near_square_factors_reasonably() {
        assert_eq!(ProcessGrid2::near_square(16), ProcessGrid2::new(4, 4));
        assert_eq!(ProcessGrid2::near_square(12), ProcessGrid2::new(3, 4));
        assert_eq!(ProcessGrid2::near_square(7), ProcessGrid2::new(1, 7));
        assert_eq!(ProcessGrid2::near_square(1), ProcessGrid2::new(1, 1));
        for n in 1..=64 {
            let g = ProcessGrid2::near_square(n);
            assert_eq!(g.len(), n);
        }
    }

    #[test]
    fn grid3_rank_coords_roundtrip() {
        let g = ProcessGrid3::new(2, 3, 4);
        for r in 0..g.len() {
            let (i, j, k) = g.coords_of(r);
            assert_eq!(g.rank_of(i, j, k), r);
        }
    }

    #[test]
    fn grid3_neighbor_respects_boundaries() {
        let g = ProcessGrid3::new(2, 2, 2);
        assert_eq!(g.neighbor(0, 0, -1), None);
        assert_eq!(g.neighbor(0, 0, 1), Some(g.rank_of(1, 0, 0)));
        assert_eq!(g.neighbor(7, 2, 1), None);
        assert_eq!(g.neighbor(7, 2, -1), Some(g.rank_of(1, 1, 0)));
    }

    #[test]
    fn near_cubic_factors_exactly() {
        for n in 1..=64 {
            let g = ProcessGrid3::near_cubic(n);
            assert_eq!(g.len(), n, "n={n}");
        }
        assert_eq!(ProcessGrid3::near_cubic(8), ProcessGrid3::new(2, 2, 2));
        assert_eq!(ProcessGrid3::near_cubic(27), ProcessGrid3::new(3, 3, 3));
    }

    #[test]
    fn block_range_partitions_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for parts in 1..=9 {
                let mut covered = 0;
                for idx in 0..parts {
                    let (start, len) = block_range(n, parts, idx);
                    assert_eq!(start, covered, "blocks must be contiguous");
                    covered += len;
                }
                assert_eq!(covered, n, "blocks must cover exactly n");
            }
        }
    }

    #[test]
    fn block_sizes_differ_by_at_most_one() {
        for n in [10usize, 11, 97] {
            for parts in 1..=8 {
                let sizes: Vec<usize> = (0..parts).map(|i| block_range(n, parts, i).1).collect();
                let mx = *sizes.iter().max().unwrap();
                let mn = *sizes.iter().min().unwrap();
                assert!(mx - mn <= 1);
            }
        }
    }

    #[test]
    fn block_owner_inverts_block_range() {
        for n in [1usize, 7, 64, 101] {
            for parts in 1..=9 {
                for idx in 0..parts {
                    let (start, len) = block_range(n, parts, idx);
                    for g in start..start + len {
                        assert_eq!(block_owner(n, parts, g), idx, "n={n} parts={parts} g={g}");
                    }
                }
            }
        }
    }
}
