//! Per-rank mailboxes: one unbounded channel per (receiver, sender) pair
//! plus a tag-indexed out-of-order buffer so receives can match on tags.
//!
//! Keeping a dedicated channel per sender preserves per-sender FIFO order
//! (like MPI's non-overtaking rule) while letting a receiver block on a
//! specific sender without inspecting traffic from others. Messages pulled
//! off the channel while waiting for a different tag are buffered in a
//! per-sender `HashMap<(Scope, Tag), VecDeque>` — matching a buffered
//! (scope, tag) pair is O(1) instead of a linear scan over everything
//! pending, while per-(sender, scope, tag) FIFO order is preserved by the
//! queue within each bucket. The scope key is what isolates
//! [`crate::Ctx::scoped`] sections: sibling scopes may reuse identical
//! tags without their traffic ever cross-matching.
//!
//! The channels underneath are backend-selected (see
//! [`crate::transport::Backend`]): the deterministic virtual-time oracle
//! and the real lock-free backend drive the *same* matching code, so the
//! ordering contract below holds identically on both.
//!
//! ## Ordering contract
//!
//! Every receive in this substrate is **sender-addressed**: there is no
//! receive-from-any primitive, so the only order a program can observe is
//! per-(sender, scope, tag) FIFO — which both backends guarantee.
//! **Cross-sender arrival order is unspecified.** Under the virtual
//! backend, host arrival order happens to be serialized by thread
//! scheduling but is never observable through matching; under the real
//! backend, messages from different senders genuinely race. Code must
//! never infer anything from the host-level interleaving of different
//! senders' traffic — the leak check ([`Mailbox::unconsumed`]) and the
//! fault-tolerant death signal ([`SenderDisconnected`]) are only
//! meaningful at quiescence or after a sender provably terminated.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::packet::Packet;
use crate::transport::{packet_channel_with, Backend, PacketReceiver, PacketSender};

/// Error returned by [`Mailbox::try_recv_matching`] when the sending
/// rank has terminated (channel empty and disconnected).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SenderDisconnected;

/// The receive side owned by one rank: `from[s]` is the channel carrying
/// messages sent by rank `s`, and `pending[s]` holds messages from `s`
/// already pulled off the channel but not yet matched, bucketed by
/// (scope, tag).
pub struct Mailbox {
    from: Vec<PacketReceiver>,
    pending: Vec<HashMap<(u64, u64), VecDeque<Packet>>>,
    /// Messages put on the wire to this mailbox but not yet pulled off a
    /// channel. One cell shared by all of this mailbox's channels (see
    /// [`build_network`]): senders increment it, channel pops decrement
    /// it, making the whole-mailbox in-flight count a single load.
    inflight: Arc<AtomicUsize>,
    /// Messages sitting in `pending` buckets, maintained incrementally so
    /// [`Mailbox::unconsumed`] never walks the n maps.
    pending_len: usize,
}

impl Mailbox {
    /// Blocking receive of the next message from `sender` carrying `tag`
    /// inside scope `scope` (see [`crate::Ctx::scoped`]; the world is
    /// scope `0`).
    ///
    /// Messages from `sender` with other (scope, tag) pairs are buffered,
    /// preserving their order, until a matching receive is posted — so a
    /// message sent inside one scoped section can never satisfy a receive
    /// posted in a different scope, even if the raw tags collide.
    ///
    /// # Panics
    /// Panics if the sending rank has terminated without ever sending a
    /// matching message (which in a correct SPMD program is a deadlock bug).
    pub fn recv_matching(&mut self, sender: usize, scope: u64, tag: u64) -> Packet {
        self.try_recv_matching(sender, scope, tag)
            .unwrap_or_else(|SenderDisconnected| {
                panic!(
                    "rank terminated while a receive (from={sender}, scope={scope}, tag={tag}) \
                     was pending"
                )
            })
    }

    /// Like [`Mailbox::recv_matching`], but returns `Err` instead of
    /// panicking when `sender`'s rank has terminated (its channel endpoint
    /// dropped) without a matching message in flight. Messages the sender
    /// put on the wire *before* dying are still delivered normally — the
    /// error surfaces only once the channel is both empty and
    /// disconnected, which is the fault-tolerant protocols' death signal.
    pub fn try_recv_matching(
        &mut self,
        sender: usize,
        scope: u64,
        tag: u64,
    ) -> Result<Packet, SenderDisconnected> {
        if let Some(q) = self.pending[sender].get_mut(&(scope, tag)) {
            if let Some(pkt) = q.pop_front() {
                if q.is_empty() {
                    self.pending[sender].remove(&(scope, tag));
                }
                self.pending_len -= 1;
                return Ok(pkt);
            }
        }
        loop {
            let pkt = self.from[sender].recv().map_err(|_| SenderDisconnected)?;
            if pkt.scope == scope && pkt.tag == tag {
                return Ok(pkt);
            }
            self.pending[sender]
                .entry((pkt.scope, pkt.tag))
                .or_default()
                .push_back(pkt);
            self.pending_len += 1;
        }
    }

    /// Number of unmatched messages addressed to this rank — buffered in
    /// `pending` or still in flight on a channel. O(1): one counter plus
    /// one shared-cell load, regardless of rank count, which is what
    /// keeps the post-run leak check out of the `run_spmd` hot path
    /// (it used to walk n pending maps and n channel lengths per rank —
    /// n² loads per run). Exact only at quiescence, like every use of
    /// the leak check (see the ordering contract above).
    pub fn unconsumed(&self) -> usize {
        self.pending_len + self.inflight.load(Ordering::Acquire)
    }
}

/// Builds the full `n × n` mesh of channels on the given backend and
/// splits it into the send sides (shared by all ranks) and the per-rank
/// receive sides.
pub fn build_network(n: usize, backend: Backend) -> (Vec<Vec<PacketSender>>, Vec<Mailbox>) {
    // senders[dest][src] : channel on which `src` sends to `dest`.
    let mut senders: Vec<Vec<PacketSender>> = Vec::with_capacity(n);
    let mut mailboxes: Vec<Mailbox> = Vec::with_capacity(n);
    for _dest in 0..n {
        let mut row_tx = Vec::with_capacity(n);
        let mut row_rx = Vec::with_capacity(n);
        // All of one destination's channels share one in-flight counter,
        // so the mailbox's leak check is a single load (`unconsumed`).
        let inflight = Arc::new(AtomicUsize::new(0));
        for _src in 0..n {
            let (tx, rx) = packet_channel_with(backend, Arc::clone(&inflight));
            row_tx.push(tx);
            row_rx.push(rx);
        }
        senders.push(row_tx);
        mailboxes.push(Mailbox {
            from: row_rx,
            pending: (0..n).map(|_| HashMap::new()).collect(),
            inflight,
            pending_len: 0,
        });
    }
    (senders, mailboxes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBody;

    /// Virtual-backend network (the original test fixture); the real
    /// backend's mirror tests live in [`real`] below and the heavy
    /// threaded fuzzing in `tests/prop_mailbox.rs`.
    fn net(n: usize) -> (Vec<Vec<PacketSender>>, Vec<Mailbox>) {
        build_network(n, Backend::Virtual)
    }

    fn pkt(from: usize, tag: u64, val: i32) -> Packet {
        pkt_scoped(from, 0, tag, val)
    }

    fn pkt_scoped(from: usize, scope: u64, tag: u64, val: i32) -> Packet {
        Packet {
            from,
            scope,
            tag,
            bytes: 4,
            arrival_time: 0.0,
            body: PacketBody::Owned(Box::new(val)),
        }
    }

    fn val(p: Packet) -> i32 {
        let PacketBody::Owned(b) = p.body else {
            panic!("expected owned body");
        };
        *b.downcast::<i32>().unwrap()
    }

    #[test]
    fn fifo_order_within_same_tag() {
        let (tx, mut mb) = net(2);
        tx[0][1].send(pkt(1, 5, 10)).unwrap();
        tx[0][1].send(pkt(1, 5, 20)).unwrap();
        let a = mb[0].recv_matching(1, 0, 5);
        let b = mb[0].recv_matching(1, 0, 5);
        assert_eq!(val(a), 10);
        assert_eq!(val(b), 20);
    }

    #[test]
    fn fifo_order_preserved_through_pending_buffer() {
        let (tx, mut mb) = net(2);
        // Three same-tag messages buffered while waiting for another tag.
        tx[0][1].send(pkt(1, 9, 1)).unwrap();
        tx[0][1].send(pkt(1, 9, 2)).unwrap();
        tx[0][1].send(pkt(1, 9, 3)).unwrap();
        tx[0][1].send(pkt(1, 8, 99)).unwrap();
        assert_eq!(val(mb[0].recv_matching(1, 0, 8)), 99);
        assert_eq!(val(mb[0].recv_matching(1, 0, 9)), 1);
        assert_eq!(val(mb[0].recv_matching(1, 0, 9)), 2);
        assert_eq!(val(mb[0].recv_matching(1, 0, 9)), 3);
        assert_eq!(mb[0].unconsumed(), 0);
    }

    #[test]
    fn tag_matching_skips_and_buffers() {
        let (tx, mut mb) = net(2);
        tx[0][1].send(pkt(1, 1, 100)).unwrap();
        tx[0][1].send(pkt(1, 2, 200)).unwrap();
        // Ask for tag 2 first; tag-1 message must be buffered, not lost.
        let b = mb[0].recv_matching(1, 0, 2);
        assert_eq!(val(b), 200);
        let a = mb[0].recv_matching(1, 0, 1);
        assert_eq!(val(a), 100);
        assert_eq!(mb[0].unconsumed(), 0);
    }

    #[test]
    fn unconsumed_counts_pending_and_queued() {
        let (tx, mut mb) = net(2);
        tx[0][1].send(pkt(1, 9, 1)).unwrap();
        tx[0][1].send(pkt(1, 8, 2)).unwrap();
        tx[0][1].send(pkt(1, 9, 3)).unwrap();
        // Matching tag 8 buffers the first tag-9 packet.
        mb[0].recv_matching(1, 0, 8);
        assert_eq!(mb[0].unconsumed(), 2);
    }

    #[test]
    fn senders_are_independent() {
        let (tx, mut mb) = net(3);
        tx[2][0].send(pkt(0, 1, 7)).unwrap();
        tx[2][1].send(pkt(1, 1, 8)).unwrap();
        // Receive from rank 1 first even though rank 0's message arrived first.
        let b = mb[2].recv_matching(1, 0, 1);
        assert_eq!(val(b), 8);
        let a = mb[2].recv_matching(0, 0, 1);
        assert_eq!(val(a), 7);
    }

    #[test]
    fn many_distinct_tags_match_without_scanning() {
        let (tx, mut mb) = net(2);
        for t in 0..256u64 {
            tx[0][1].send(pkt(1, t, t as i32)).unwrap();
        }
        // Receive in reverse order: every receive after the first hits the
        // tag index rather than re-scanning the whole pending set.
        for t in (0..256u64).rev() {
            assert_eq!(val(mb[0].recv_matching(1, 0, t)), t as i32);
        }
        assert_eq!(mb[0].unconsumed(), 0);
    }

    #[test]
    fn same_tag_different_scopes_do_not_alias() {
        let (tx, mut mb) = net(2);
        // Two messages with the same (sender, tag) but different scopes;
        // each receive must match only its own scope, in either order.
        tx[0][1].send(pkt_scoped(1, 7, 3, 111)).unwrap();
        tx[0][1].send(pkt_scoped(1, 0, 3, 222)).unwrap();
        assert_eq!(val(mb[0].recv_matching(1, 0, 3)), 222);
        assert_eq!(val(mb[0].recv_matching(1, 7, 3)), 111);
        assert_eq!(mb[0].unconsumed(), 0);
    }

    #[test]
    fn try_recv_surfaces_disconnection_only_after_draining() {
        let (tx, mut mb) = net(2);
        tx[0][1].send(pkt(1, 4, 5)).unwrap();
        drop(tx); // the sending rank dies with one message in flight
        let delivered = mb[0].try_recv_matching(1, 0, 4).unwrap();
        assert_eq!(val(delivered), 5);
        let err = mb[0].try_recv_matching(1, 0, 4).unwrap_err();
        assert_eq!(err, SenderDisconnected);
    }

    #[test]
    fn fifo_order_holds_within_one_scope_across_interleaved_scopes() {
        let (tx, mut mb) = net(2);
        tx[0][1].send(pkt_scoped(1, 5, 9, 1)).unwrap();
        tx[0][1].send(pkt_scoped(1, 6, 9, 10)).unwrap();
        tx[0][1].send(pkt_scoped(1, 5, 9, 2)).unwrap();
        tx[0][1].send(pkt_scoped(1, 6, 9, 20)).unwrap();
        assert_eq!(val(mb[0].recv_matching(1, 5, 9)), 1);
        assert_eq!(val(mb[0].recv_matching(1, 5, 9)), 2);
        assert_eq!(val(mb[0].recv_matching(1, 6, 9)), 10);
        assert_eq!(val(mb[0].recv_matching(1, 6, 9)), 20);
        assert_eq!(mb[0].unconsumed(), 0);
    }

    /// The same matching contract on the real (lock-free) backend. These
    /// mirror the virtual-backend tests above; the threaded interleaving
    /// fuzz lives in `tests/prop_mailbox.rs`.
    mod real {
        use super::*;

        fn net(n: usize) -> (Vec<Vec<PacketSender>>, Vec<Mailbox>) {
            build_network(n, Backend::Real)
        }

        #[test]
        fn fifo_and_tag_matching() {
            let (tx, mut mb) = net(2);
            tx[0][1].send(pkt(1, 9, 1)).unwrap();
            tx[0][1].send(pkt(1, 9, 2)).unwrap();
            tx[0][1].send(pkt(1, 8, 99)).unwrap();
            assert_eq!(val(mb[0].recv_matching(1, 0, 8)), 99);
            assert_eq!(val(mb[0].recv_matching(1, 0, 9)), 1);
            assert_eq!(val(mb[0].recv_matching(1, 0, 9)), 2);
            assert_eq!(mb[0].unconsumed(), 0);
        }

        #[test]
        fn scopes_do_not_alias() {
            let (tx, mut mb) = net(2);
            tx[0][1].send(pkt_scoped(1, 7, 3, 111)).unwrap();
            tx[0][1].send(pkt_scoped(1, 0, 3, 222)).unwrap();
            assert_eq!(val(mb[0].recv_matching(1, 0, 3)), 222);
            assert_eq!(val(mb[0].recv_matching(1, 7, 3)), 111);
            assert_eq!(mb[0].unconsumed(), 0);
        }

        #[test]
        fn disconnection_surfaces_only_after_draining() {
            let (tx, mut mb) = net(2);
            tx[0][1].send(pkt(1, 4, 5)).unwrap();
            drop(tx);
            assert_eq!(val(mb[0].try_recv_matching(1, 0, 4).unwrap()), 5);
            let err = mb[0].try_recv_matching(1, 0, 4).unwrap_err();
            assert_eq!(err, SenderDisconnected);
        }

        #[test]
        fn unconsumed_counts_pending_and_queued() {
            let (tx, mut mb) = net(2);
            tx[0][1].send(pkt(1, 9, 1)).unwrap();
            tx[0][1].send(pkt(1, 8, 2)).unwrap();
            tx[0][1].send(pkt(1, 9, 3)).unwrap();
            mb[0].recv_matching(1, 0, 8);
            assert_eq!(mb[0].unconsumed(), 2);
        }
    }
}
