//! Sequential cost accounting against the same machine model.
//!
//! Speedup figures compare a parallel run against the *sequential*
//! algorithm on one node of the same machine. `CostMeter` accumulates the
//! modeled cost of a sequential execution so that `T_seq / T_par` uses one
//! consistent clock.

use crate::model::MachineModel;

/// Accumulates modeled sequential execution time on a [`MachineModel`].
#[derive(Clone, Debug)]
pub struct CostMeter {
    model: MachineModel,
    elapsed: f64,
    working_set_bytes: f64,
}

impl CostMeter {
    /// New meter at time zero.
    pub fn new(model: MachineModel) -> Self {
        CostMeter {
            model,
            elapsed: 0.0,
            working_set_bytes: 0.0,
        }
    }

    /// Declare the working set (bytes) for the memory-pressure model,
    /// mirroring [`crate::Ctx::set_working_set`].
    pub fn set_working_set(&mut self, bytes: f64) {
        self.working_set_bytes = bytes;
    }

    /// Charge raw seconds.
    pub fn charge_seconds(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.elapsed += seconds;
    }

    /// Charge flop-equivalents, scaled by the memory model.
    pub fn charge_flops(&mut self, flops: f64) {
        let slow = self.model.memory.slowdown(self.working_set_bytes);
        self.charge_seconds(self.model.compute_time(flops) * slow);
    }

    /// Charge `items × flops_per_item`.
    pub fn charge_items(&mut self, items: usize, flops_per_item: f64) {
        self.charge_flops(items as f64 * flops_per_item);
    }

    /// Total modeled time so far.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// The underlying machine model.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_charges() {
        let mut m = CostMeter::new(MachineModel::ibm_sp());
        m.charge_flops(1e8); // 1 second at 100 Mflop/s
        m.charge_seconds(0.5);
        assert!((m.elapsed() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn charge_items_is_product() {
        let mut a = CostMeter::new(MachineModel::intel_delta());
        let mut b = CostMeter::new(MachineModel::intel_delta());
        a.charge_items(1000, 5.0);
        b.charge_flops(5000.0);
        assert_eq!(a.elapsed(), b.elapsed());
    }

    #[test]
    fn memory_pressure_applies() {
        let model = MachineModel::ibm_sp_with_memory(1e6, 1.0);
        let mut m = CostMeter::new(model);
        m.charge_flops(1e6);
        let base = m.elapsed();
        m.set_working_set(3e6); // slowdown 1 + 1*(3-1) = 3
        m.charge_flops(1e6);
        assert!((m.elapsed() - base - 3.0 * base).abs() < 1e-9);
    }
}
