//! Per-rank and per-run communication/computation accounting.

/// Counters accumulated by one rank during an SPMD run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankStats {
    /// Messages sent by this rank (point-to-point, including those issued
    /// on behalf of collectives).
    pub msgs_sent: u64,
    /// Payload bytes sent by this rank.
    pub bytes_sent: u64,
    /// Virtual seconds spent in compute charges.
    pub compute_time: f64,
    /// Virtual seconds spent **blocked on peers**: clock jumps at
    /// receives whose message arrives "in the future", plus modeled
    /// retransmission timeouts under an active fault plan. This is the
    /// component a critical-path analysis can hope to remove by
    /// rebalancing work; [`RankStats::overhead_time`] is the part it
    /// cannot.
    pub wait_time: f64,
    /// Virtual seconds of send/receive **CPU overhead** (the machine
    /// model's per-message `send_overhead`/`recv_overhead` charges) —
    /// substrate cost paid even when no rank ever waits.
    pub overhead_time: f64,
    /// Faults injected into this rank's operations by an active
    /// [`crate::FaultPlan`]: delayed messages, dropped attempts, and
    /// duplicated copies (0 in fault-free runs and under an inert plan).
    pub fault_events: u64,
}

impl RankStats {
    /// Total communication time: blocked-on-peer waits plus send/receive
    /// CPU overhead (the two components are tracked separately — see
    /// [`RankStats::wait_time`] / [`RankStats::overhead_time`]).
    pub fn comm_time(&self) -> f64 {
        self.wait_time + self.overhead_time
    }
}

/// Aggregated statistics for a whole run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// One entry per rank.
    pub per_rank: Vec<RankStats>,
}

impl RunStats {
    /// Total messages sent across all ranks.
    pub fn total_msgs(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs_sent).sum()
    }

    /// Total payload bytes sent across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_sent).sum()
    }

    /// Largest per-rank compute time (the critical path lower bound).
    pub fn max_compute_time(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.compute_time)
            .fold(0.0, f64::max)
    }

    /// Total injected fault events across all ranks (see
    /// [`RankStats::fault_events`]).
    pub fn total_fault_events(&self) -> u64 {
        self.per_rank.iter().map(|r| r.fault_events).sum()
    }

    /// Total virtual seconds all ranks spent blocked on peers.
    pub fn total_wait_time(&self) -> f64 {
        self.per_rank.iter().map(|r| r.wait_time).sum()
    }

    /// Total virtual seconds of send/receive CPU overhead across ranks.
    pub fn total_overhead_time(&self) -> f64 {
        self.per_rank.iter().map(|r| r.overhead_time).sum()
    }

    /// Fraction of the busiest rank's time spent communicating, a rough
    /// efficiency indicator: `comm / (comm + compute)` for the rank with
    /// the largest total.
    pub fn comm_fraction(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| {
                let comm = r.comm_time();
                let tot = comm + r.compute_time;
                if tot > 0.0 {
                    comm / tot
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_ranks() {
        let stats = RunStats {
            per_rank: vec![
                RankStats {
                    msgs_sent: 2,
                    bytes_sent: 100,
                    compute_time: 1.0,
                    wait_time: 0.75,
                    overhead_time: 0.25,
                    fault_events: 0,
                },
                RankStats {
                    msgs_sent: 3,
                    bytes_sent: 50,
                    compute_time: 2.0,
                    wait_time: 0.5,
                    overhead_time: 0.0,
                    fault_events: 1,
                },
            ],
        };
        assert_eq!(stats.total_msgs(), 5);
        assert_eq!(stats.total_bytes(), 150);
        assert_eq!(stats.max_compute_time(), 2.0);
        assert_eq!(stats.total_fault_events(), 1);
        assert!((stats.total_wait_time() - 1.25).abs() < 1e-12);
        assert!((stats.total_overhead_time() - 0.25).abs() < 1e-12);
        assert!((stats.per_rank[0].comm_time() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comm_fraction_bounded_by_one() {
        let stats = RunStats {
            per_rank: vec![RankStats {
                msgs_sent: 1,
                bytes_sent: 1,
                compute_time: 0.0,
                wait_time: 2.0,
                overhead_time: 1.0,
                fault_events: 0,
            }],
        };
        assert!((stats.comm_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_fraction() {
        let stats = RunStats { per_rank: vec![] };
        assert_eq!(stats.comm_fraction(), 0.0);
        assert_eq!(stats.total_msgs(), 0);
    }
}
