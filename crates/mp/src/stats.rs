//! Per-rank and per-run communication/computation accounting.

/// Counters accumulated by one rank during an SPMD run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankStats {
    /// Messages sent by this rank (point-to-point, including those issued
    /// on behalf of collectives).
    pub msgs_sent: u64,
    /// Payload bytes sent by this rank.
    pub bytes_sent: u64,
    /// Virtual seconds spent in compute charges.
    pub compute_time: f64,
    /// Virtual seconds spent waiting for messages (clock jumps at receives)
    /// plus send/receive CPU overheads.
    pub comm_time: f64,
    /// Faults injected into this rank's operations by an active
    /// [`crate::FaultPlan`]: delayed messages, dropped attempts, and
    /// duplicated copies (0 in fault-free runs and under an inert plan).
    pub fault_events: u64,
}

/// Aggregated statistics for a whole run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// One entry per rank.
    pub per_rank: Vec<RankStats>,
}

impl RunStats {
    /// Total messages sent across all ranks.
    pub fn total_msgs(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs_sent).sum()
    }

    /// Total payload bytes sent across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_sent).sum()
    }

    /// Largest per-rank compute time (the critical path lower bound).
    pub fn max_compute_time(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.compute_time)
            .fold(0.0, f64::max)
    }

    /// Total injected fault events across all ranks (see
    /// [`RankStats::fault_events`]).
    pub fn total_fault_events(&self) -> u64 {
        self.per_rank.iter().map(|r| r.fault_events).sum()
    }

    /// Fraction of the busiest rank's time spent communicating, a rough
    /// efficiency indicator: `comm / (comm + compute)` for the rank with
    /// the largest total.
    pub fn comm_fraction(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| {
                let tot = r.comm_time + r.compute_time;
                if tot > 0.0 {
                    r.comm_time / tot
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_ranks() {
        let stats = RunStats {
            per_rank: vec![
                RankStats {
                    msgs_sent: 2,
                    bytes_sent: 100,
                    compute_time: 1.0,
                    comm_time: 1.0,
                    fault_events: 0,
                },
                RankStats {
                    msgs_sent: 3,
                    bytes_sent: 50,
                    compute_time: 2.0,
                    comm_time: 0.5,
                    fault_events: 1,
                },
            ],
        };
        assert_eq!(stats.total_msgs(), 5);
        assert_eq!(stats.total_bytes(), 150);
        assert_eq!(stats.max_compute_time(), 2.0);
        assert_eq!(stats.total_fault_events(), 1);
    }

    #[test]
    fn comm_fraction_bounded_by_one() {
        let stats = RunStats {
            per_rank: vec![RankStats {
                msgs_sent: 1,
                bytes_sent: 1,
                compute_time: 0.0,
                comm_time: 3.0,
                fault_events: 0,
            }],
        };
        assert!((stats.comm_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_fraction() {
        let stats = RunStats { per_rank: vec![] };
        assert_eq!(stats.comm_fraction(), 0.0);
        assert_eq!(stats.total_msgs(), 0);
    }
}
