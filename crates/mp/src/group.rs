//! Process subgroups: task-parallel composition of data-parallel
//! computations.
//!
//! The paper's future-work list asks for "a theory and strategy for
//! archetype composition … for example task-parallel compositions of
//! data-parallel computations" (§7; also the group-communication archetype
//! of the paper's reference 12). This module provides the substrate for that:
//! a [`Group`] names a subset of ranks and offers the collective
//! operations *within* the subset, with a tag namespace derived from the
//! member list so that disjoint groups can run their collectives
//! concurrently without interfering and without desynchronizing the
//! global collective sequence.

use crate::ctx::{Ctx, Tag};
use crate::payload::Payload;

const GROUP_TAG_BASE: u64 = 1 << 62;

/// A subset of the SPMD ranks with its own collective operations.
///
/// All members must construct the group with the *same* member list (in
/// the same order) and then execute the same sequence of group operations
/// — the usual SPMD contract, scoped to the subset. Operations take the
/// rank's [`Ctx`] explicitly; the group only translates ranks and
/// namespaces tags.
///
/// ```
/// use archetype_mp::{run_spmd, Group, MachineModel};
///
/// // Evens and odds each sum their ranks, concurrently.
/// let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
///     let colors: Vec<usize> = (0..ctx.nprocs()).map(|r| r % 2).collect();
///     let mut g = Group::split(ctx, &colors);
///     g.all_reduce(ctx, ctx.rank() as u64, |a, b| a + b)
/// });
/// assert_eq!(out.results, vec![2, 4, 2, 4]); // 0+2 and 1+3
/// ```
#[derive(Clone, Debug)]
pub struct Group {
    members: Vec<usize>,
    my_index: usize,
    gid: u64,
    seq: u64,
}

impl Group {
    /// Create this rank's view of the group. Returns `None` if the calling
    /// rank is not in `members`.
    ///
    /// # Panics
    /// Panics if `members` is empty or contains duplicates or
    /// out-of-range ranks.
    pub fn new(ctx: &Ctx, members: Vec<usize>) -> Option<Group> {
        Self::new_salted(ctx, members, 0)
    }

    /// [`Group::new`] with a namespace salt folded into the tag-space
    /// hash. Used by [`Group::split_nested`] so a subgroup whose member
    /// list *equals* its parent's (a degenerate split with one color)
    /// still gets a tag namespace disjoint from the parent's — the
    /// member list alone cannot distinguish them.
    fn new_salted(ctx: &Ctx, members: Vec<usize>, salt: u64) -> Option<Group> {
        assert!(!members.is_empty(), "a group needs at least one member");
        let mut seen = vec![false; ctx.nprocs()];
        for &m in &members {
            assert!(m < ctx.nprocs(), "member {m} out of range");
            assert!(!seen[m], "duplicate member {m}");
            seen[m] = true;
        }
        // Tag namespace from the salt and the member list (FNV-1a over
        // the ranks), so different groups get (almost surely) disjoint
        // tag spaces.
        let mut gid: u64 = 0xcbf29ce484222325 ^ salt;
        gid = gid.wrapping_mul(0x100000001b3);
        for &m in &members {
            gid ^= m as u64 + 1;
            gid = gid.wrapping_mul(0x100000001b3);
        }
        let my_index = members.iter().position(|&m| m == ctx.rank())?;
        Some(Group {
            members,
            my_index,
            gid: gid & 0x3FFF_FFFF, // keep room for seq/step bits
            seq: 0,
        })
    }

    /// Split the world into contiguous groups by `color`: every rank calls
    /// this with its own color; ranks sharing a color form one group.
    /// `colors` must be the full per-rank color table (replicated —
    /// computable from rank alone in SPMD style).
    pub fn split(ctx: &Ctx, colors: &[usize]) -> Group {
        assert_eq!(colors.len(), ctx.nprocs());
        let my_color = colors[ctx.rank()];
        let members: Vec<usize> = (0..ctx.nprocs())
            .filter(|&r| colors[r] == my_color)
            .collect();
        Group::new(ctx, members).expect("own rank is in its color class")
    }

    /// The group of all ranks — the root of a nested-split recursion tree.
    pub fn world(ctx: &Ctx) -> Group {
        Group::new(ctx, (0..ctx.nprocs()).collect()).expect("own rank is in the world")
    }

    /// Split *this* group into subgroups by per-member color: `colors[i]`
    /// is the color of group index `i` (the table is replicated, like
    /// [`Group::split`]'s). Members sharing a color form one subgroup,
    /// preserving their relative order. The subgroup's tag namespace is
    /// derived from its member list *salted with the parent's namespace*
    /// — so sibling subgroups at any nesting depth communicate without
    /// interfering, and even a degenerate one-color split (subgroup ==
    /// parent) gets a namespace disjoint from the parent's. This is the
    /// substrate of the recursive divide-and-conquer archetype's descent
    /// onto disjoint subcommunicators.
    pub fn split_nested(&self, ctx: &Ctx, colors: &[usize]) -> Group {
        assert_eq!(colors.len(), self.len(), "one color per group member");
        let my_color = colors[self.my_index];
        let members: Vec<usize> = self
            .members
            .iter()
            .copied()
            .zip(colors)
            .filter(|&(_, c)| *c == my_color)
            .map(|(m, _)| m)
            .collect();
        Group::new_salted(ctx, members, self.gid.wrapping_add(1))
            .expect("own rank is in its color class")
    }

    /// This rank's index within the group.
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Number of group members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the group has exactly one member.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Global rank of group index `i`.
    pub fn global_rank(&self, i: usize) -> usize {
        self.members[i]
    }

    fn next_tag(&mut self) -> Tag {
        let t = GROUP_TAG_BASE | (self.gid << 24) | (self.seq << 8);
        self.seq += 1;
        t
    }

    /// Point-to-point send to group index `to`.
    pub fn send<T: Payload>(&self, ctx: &mut Ctx, to: usize, tag: Tag, value: T) {
        ctx.send(
            self.members[to],
            GROUP_TAG_BASE | (self.gid << 24) | tag,
            value,
        );
    }

    /// Point-to-point receive from group index `from`.
    pub fn recv<T: Payload>(&self, ctx: &mut Ctx, from: usize, tag: Tag) -> T {
        ctx.recv(self.members[from], GROUP_TAG_BASE | (self.gid << 24) | tag)
    }

    /// Dissemination barrier within the group.
    pub fn barrier(&mut self, ctx: &mut Ctx) {
        let n = self.len();
        let base = self.next_tag();
        let me = self.my_index;
        let mut k = 1usize;
        let mut step = 0u64;
        while k < n {
            let to = self.members[(me + k) % n];
            let from = self.members[(me + n - k) % n];
            ctx.send(to, base | step, ());
            let () = ctx.recv(from, base | step);
            k <<= 1;
            step += 1;
        }
    }

    /// Binomial broadcast from group index `root`.
    pub fn broadcast<T: Payload + Clone>(
        &mut self,
        ctx: &mut Ctx,
        root: usize,
        value: Option<T>,
    ) -> T {
        let n = self.len();
        let base = self.next_tag();
        let relative = (self.my_index + n - root) % n;
        let mut val = if relative == 0 {
            Some(value.expect("group broadcast root must supply a value"))
        } else {
            None
        };
        let mut mask = 1usize;
        while mask < n {
            if relative & mask != 0 {
                let src = self.members[(relative - mask + root) % n];
                val = Some(ctx.recv(src, base));
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        let v = val.expect("set by receive phase");
        while mask > 0 {
            if relative + mask < n {
                let dst = self.members[(relative + mask + root) % n];
                ctx.send(dst, base, v.clone());
            }
            mask >>= 1;
        }
        v
    }

    /// Recursive-doubling all-reduce within the group.
    pub fn all_reduce<T, F>(&mut self, ctx: &mut Ctx, value: T, op: F) -> T
    where
        T: Payload + Clone,
        F: Fn(T, T) -> T,
    {
        let n = self.len();
        let base = self.next_tag();
        let me = self.my_index;
        let pof2 = if n.is_power_of_two() {
            n
        } else {
            n.next_power_of_two() / 2
        };
        let rem = n - pof2;
        let mut acc = value;

        let my_idx: Option<usize> = if me < 2 * rem {
            if me.is_multiple_of(2) {
                ctx.send(self.members[me + 1], base | 0xF0, acc.clone());
                None
            } else {
                let other: T = ctx.recv(self.members[me - 1], base | 0xF0);
                acc = op(other, acc);
                Some(me / 2)
            }
        } else {
            Some(me - rem)
        };

        if let Some(idx) = my_idx {
            let to_global = |i: usize| self.members[if i < rem { 2 * i + 1 } else { i + rem }];
            let mut mask = 1usize;
            let mut step = 0u64;
            while mask < pof2 {
                let peer = to_global(idx ^ mask);
                ctx.send(peer, base | step, acc.clone());
                let other: T = ctx.recv(peer, base | step);
                acc = if idx & mask == 0 {
                    op(acc, other)
                } else {
                    op(other, acc)
                };
                mask <<= 1;
                step += 1;
            }
            if me < 2 * rem {
                ctx.send(self.members[me - 1], base | 0xF1, acc.clone());
            }
        } else {
            acc = ctx.recv(self.members[me + 1], base | 0xF1);
        }
        acc
    }

    /// All-gather within the group: every member returns the
    /// contributions of all members, indexed by group rank. Implemented
    /// as a gather to group index 0 followed by a binomial broadcast.
    /// Elements must be [`FixedSize`](crate::FixedSize) so the gathered
    /// vector is itself a payload.
    ///
    /// ```
    /// use archetype_mp::{run_spmd, Group, MachineModel};
    ///
    /// let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
    ///     let colors: Vec<usize> = (0..ctx.nprocs()).map(|r| r % 2).collect();
    ///     let mut g = Group::split(ctx, &colors);
    ///     g.all_gather(ctx, ctx.rank() as u64)
    /// });
    /// assert_eq!(out.results[0], vec![0, 2]); // even group, in group order
    /// assert_eq!(out.results[3], vec![1, 3]); // odd group
    /// ```
    pub fn all_gather<T: crate::FixedSize>(&mut self, ctx: &mut Ctx, value: T) -> Vec<T> {
        let gathered = self.gather(ctx, 0, value);
        self.broadcast(ctx, 0, gathered)
    }

    /// Linear scatter from group index `root`: the root supplies one value
    /// per member (`values[i]` goes to group index `i`); every member
    /// returns its own piece. The group-scoped counterpart of
    /// [`Ctx::scatter`], used by the recursive divide-and-conquer skeleton
    /// to deal subproblems down the recursion tree.
    pub fn scatter<T: Payload>(&mut self, ctx: &mut Ctx, root: usize, values: Option<Vec<T>>) -> T {
        let n = self.len();
        let base = self.next_tag();
        if self.my_index == root {
            let values = values.expect("group scatter root must supply values");
            assert_eq!(values.len(), n, "group scatter needs one value per member");
            let mut own = None;
            for (i, v) in values.into_iter().enumerate() {
                if i == root {
                    own = Some(v);
                } else {
                    ctx.send(self.members[i], base, v);
                }
            }
            own.expect("root keeps its own piece")
        } else {
            ctx.recv(self.members[root], base)
        }
    }

    /// Personalized all-to-all exchange within the group: `items[d]` is
    /// delivered to group index `d`; the return value's slot `s` holds
    /// what group index `s` sent here. The group-scoped counterpart of
    /// [`Ctx::all_to_all`] — the redistribution pattern of a one-deep
    /// split/merge phase, scoped to a subgroup so that sibling subgroups
    /// can redistribute concurrently.
    pub fn all_to_all<T: Payload>(&mut self, ctx: &mut Ctx, items: Vec<T>) -> Vec<T> {
        let n = self.len();
        assert_eq!(items.len(), n, "group all_to_all needs one item per member");
        let base = self.next_tag();
        let me = self.my_index;
        let mut inbox: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut outbox: Vec<Option<T>> = items.into_iter().map(Some).collect();
        inbox[me] = outbox[me].take();
        for offset in 1..n {
            let dst = (me + offset) % n;
            let src = (me + n - offset) % n;
            let outgoing = outbox[dst].take().expect("one item per destination");
            ctx.send(self.members[dst], base | offset as u64, outgoing);
            inbox[src] = Some(ctx.recv(self.members[src], base | offset as u64));
        }
        inbox
            .into_iter()
            .map(|v| v.expect("exchange completed"))
            .collect()
    }

    /// Root-only reduction to group index `root`: returns
    /// `Some(op(v₀, op(v₁, …)))` — the fold of all members' contributions
    /// in ascending group order — on the root and `None` elsewhere. The
    /// group-scoped counterpart of an `MPI_Reduce`, completing the
    /// collective family ([`Group::all_reduce`] for everyone-gets-it,
    /// [`Group::gather`] for the unfolded vector).
    ///
    /// `op` must be associative but — unlike [`Group::all_reduce`]'s —
    /// need **not** be commutative: the binomial combining tree always
    /// folds a contiguous, ascending range of group ranks, so the result
    /// equals the left-to-right fold exactly. Costs ⌈log₂ n⌉ message
    /// rounds (plus one hop when `root != 0`) instead of the gather's
    /// n − 1 into one rank.
    ///
    /// ```
    /// use archetype_mp::{run_spmd, Group, MachineModel};
    ///
    /// let out = run_spmd(5, MachineModel::ibm_sp(), |ctx| {
    ///     let mut g = Group::world(ctx);
    ///     // Non-commutative op: string-ish concatenation by powers.
    ///     g.reduce(ctx, 2, vec![ctx.rank() as u64], |mut a, b| {
    ///         a.extend(b);
    ///         a
    ///     })
    /// });
    /// assert_eq!(out.results[2], Some(vec![0, 1, 2, 3, 4])); // ascending fold
    /// assert_eq!(out.results[0], None);
    /// ```
    pub fn reduce<T, F>(&mut self, ctx: &mut Ctx, root: usize, value: T, op: F) -> Option<T>
    where
        T: Payload,
        F: Fn(T, T) -> T,
    {
        let n = self.len();
        let base = self.next_tag();
        let me = self.my_index;
        let mut acc = Some(value);
        // Binomial tree rooted at group index 0, combining ascending
        // contiguous ranges so the fold order is exactly group order.
        let mut step = 1usize;
        let mut round = 0u64;
        while step < n {
            if me % (2 * step) == step {
                ctx.send(
                    self.members[me - step],
                    base | round,
                    acc.take().expect("contribution not yet donated"),
                );
                break;
            }
            if me.is_multiple_of(2 * step) && me + step < n {
                let other: T = ctx.recv(self.members[me + step], base | round);
                acc = Some(op(
                    acc.take().expect("accumulating rank holds a value"),
                    other,
                ));
            }
            step <<= 1;
            round += 1;
        }
        // Index 0 now holds the full fold; ship it to a non-zero root.
        if root == 0 {
            return if me == 0 { acc } else { None };
        }
        match me {
            0 => {
                ctx.send(
                    self.members[root],
                    base | 63,
                    acc.expect("index 0 holds the fold"),
                );
                None
            }
            _ if me == root => Some(ctx.recv(self.members[0], base | 63)),
            _ => None,
        }
    }

    /// Linear gather to group index `root`.
    pub fn gather<T: Payload>(&mut self, ctx: &mut Ctx, root: usize, value: T) -> Option<Vec<T>> {
        let n = self.len();
        let base = self.next_tag();
        if self.my_index == root {
            let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
            out[root] = Some(value);
            #[allow(clippy::needless_range_loop)] // r is also the source index
            for r in 0..n {
                if r != root {
                    out[r] = Some(ctx.recv(self.members[r], base));
                }
            }
            Some(out.into_iter().map(|v| v.expect("gathered")).collect())
        } else {
            ctx.send(self.members[root], base, value);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;
    use crate::runner::run_spmd;

    #[test]
    fn split_forms_disjoint_groups() {
        let out = run_spmd(6, MachineModel::ibm_sp(), |ctx| {
            // Even/odd split.
            let colors: Vec<usize> = (0..ctx.nprocs()).map(|r| r % 2).collect();
            let g = Group::split(ctx, &colors);
            (g.len(), g.rank(), g.global_rank(g.rank()))
        });
        for (r, &(len, idx, global)) in out.results.iter().enumerate() {
            assert_eq!(len, 3);
            assert_eq!(global, r);
            assert_eq!(idx, r / 2);
        }
    }

    #[test]
    fn concurrent_group_reductions_do_not_interfere() {
        // The task-parallel composition: two groups run *different numbers*
        // of collectives concurrently — which would desynchronize global
        // collective tags, but group tags are namespaced by member list.
        let out = run_spmd(8, MachineModel::ibm_sp(), |ctx| {
            let colors: Vec<usize> = (0..ctx.nprocs()).map(|r| usize::from(r >= 3)).collect();
            let mut g = Group::split(ctx, &colors);
            let mut acc = 0i64;
            let rounds = if ctx.rank() < 3 { 5 } else { 2 };
            for _ in 0..rounds {
                acc = g.all_reduce(ctx, ctx.rank() as i64, |a, b| a + b);
            }
            g.barrier(ctx);
            // After the task-parallel phase, a *global* collective still
            // works because group ops never touched the global sequence.
            let world = ctx.all_reduce(acc, |a, b| a + b);
            (acc, world)
        });
        // Group A = {0,1,2}: sum 3; group B = {3..7}: sum 25.
        for (r, &(acc, world)) in out.results.iter().enumerate() {
            assert_eq!(acc, if r < 3 { 3 } else { 25 }, "rank {r}");
            assert_eq!(world, 3 * 3 + 25 * 5);
        }
    }

    #[test]
    fn group_broadcast_and_gather() {
        let out = run_spmd(7, MachineModel::ibm_sp(), |ctx| {
            // One group of the primes, one of the rest.
            let primes = [2usize, 3, 5];
            let colors: Vec<usize> = (0..ctx.nprocs())
                .map(|r| usize::from(!primes.contains(&r)))
                .collect();
            let mut g = Group::split(ctx, &colors);
            let v = g.broadcast(ctx, 0, (g.rank() == 0).then(|| ctx.rank() as u64));
            let gathered = g.gather(ctx, 0, ctx.rank() as u64);
            (v, gathered)
        });
        // Prime group broadcast root is global rank 2; other group's is 0.
        assert_eq!(out.results[3].0, 2);
        assert_eq!(out.results[5].0, 2);
        assert_eq!(out.results[6].0, 0);
        // Gathers collect the global ranks in group order.
        assert_eq!(out.results[2].1.as_ref().unwrap(), &vec![2, 3, 5]);
        assert_eq!(out.results[0].1.as_ref().unwrap(), &vec![0, 1, 4, 6]);
    }

    #[test]
    fn singleton_group_works() {
        let out = run_spmd(3, MachineModel::ibm_sp(), |ctx| {
            let colors: Vec<usize> = (0..3).collect(); // everyone alone
            let mut g = Group::split(ctx, &colors);
            g.barrier(ctx);
            g.all_reduce(ctx, ctx.rank() as i64 * 10, |a, b| a + b)
        });
        assert_eq!(out.results, vec![0, 10, 20]);
    }

    #[test]
    fn singleton_group_broadcast_gather_and_all_gather() {
        // Every degenerate single-member collective must complete without
        // communicating and return the member's own contribution.
        let out = run_spmd(3, MachineModel::ibm_sp(), |ctx| {
            let colors: Vec<usize> = (0..3).collect(); // everyone alone
            let mut g = Group::split(ctx, &colors);
            let b = g.broadcast(ctx, 0, Some(ctx.rank() as u64 * 7));
            let gathered = g.gather(ctx, 0, ctx.rank() as u64).expect("root of self");
            let all = g.all_gather(ctx, ctx.rank() as u64);
            (b, gathered, all)
        });
        for (r, (b, gathered, all)) in out.results.iter().enumerate() {
            assert_eq!(*b, r as u64 * 7);
            assert_eq!(gathered, &vec![r as u64]);
            assert_eq!(all, &vec![r as u64]);
        }
        // No messages may have crossed ranks for singleton collectives.
        assert_eq!(out.stats.total_msgs(), 0);
    }

    #[test]
    fn empty_payload_broadcast_round_trips() {
        // A zero-byte payload must traverse the broadcast tree intact:
        // the cost model sees 0 bytes, the matching still works.
        let out = run_spmd(5, MachineModel::ibm_sp(), |ctx| {
            let colors = vec![0usize; ctx.nprocs()];
            let mut g = Group::split(ctx, &colors);
            let v: Vec<u64> = g.broadcast(ctx, 2, (g.rank() == 2).then(Vec::new));
            let unit: () = g.broadcast(ctx, 0, (g.rank() == 0).then_some(()));
            (v, unit)
        });
        for (v, ()) in &out.results {
            assert!(v.is_empty());
        }
        // Empty payloads still pay per-message latency, never per-byte.
        assert!(out.elapsed_virtual >= MachineModel::ibm_sp().latency);
    }

    #[test]
    fn empty_payload_all_gather_preserves_shapes() {
        // Mixed empty/non-empty contributions: slots must line up with
        // group ranks and empties must stay empty.
        let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
            let colors = vec![0usize; ctx.nprocs()];
            let mut g = Group::split(ctx, &colors);
            let gathered = g.gather(
                ctx,
                0,
                if g.rank().is_multiple_of(2) {
                    Vec::new()
                } else {
                    vec![g.rank() as u64; g.rank()]
                },
            );
            let all = g.all_gather(ctx, g.rank() as u64);
            (gathered, all)
        });
        let gathered = out.results[0].0.as_ref().expect("group root");
        assert_eq!(gathered.len(), 4);
        assert!(gathered[0].is_empty() && gathered[2].is_empty());
        assert_eq!(gathered[1], vec![1]);
        assert_eq!(gathered[3], vec![3, 3, 3]);
        for (_, all) in &out.results {
            assert_eq!(all, &vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn world_empty_payload_broadcast_and_all_gather() {
        // The same degenerate cases against the world-level collectives
        // in `collectives.rs`, which take the shared-payload fast path.
        let out = run_spmd(6, MachineModel::ibm_sp(), |ctx| {
            let v: Vec<f64> = ctx.broadcast(1, (ctx.rank() == 1).then(Vec::new));
            let all = ctx.all_gather(Vec::<u8>::new());
            (v, all)
        });
        for (v, all) in &out.results {
            assert!(v.is_empty());
            assert_eq!(all.len(), 6);
            assert!(all.iter().all(Vec::is_empty));
        }
    }

    #[test]
    fn nested_split_forms_disjoint_subgroups() {
        let out = run_spmd(8, MachineModel::ibm_sp(), |ctx| {
            let world = Group::world(ctx);
            // Halves, then quarters, by contiguous index ranges.
            let halves: Vec<usize> = (0..world.len()).map(|i| i / 4).collect();
            let half = world.split_nested(ctx, &halves);
            let quarters: Vec<usize> = (0..half.len()).map(|i| i / 2).collect();
            let quarter = half.split_nested(ctx, &quarters);
            (
                half.len(),
                half.rank(),
                quarter.len(),
                quarter.rank(),
                quarter.global_rank(0),
            )
        });
        for (r, &(hl, hr, ql, qr, qroot)) in out.results.iter().enumerate() {
            assert_eq!(hl, 4);
            assert_eq!(hr, r % 4);
            assert_eq!(ql, 2);
            assert_eq!(qr, r % 2);
            assert_eq!(qroot, r - r % 2, "quarter root is the even partner");
        }
    }

    #[test]
    fn degenerate_one_color_nested_split_gets_a_fresh_tag_namespace() {
        // A one-color nested split yields a subgroup with the *same*
        // member list as its parent; the salt must still give it a
        // disjoint tag namespace, and interleaved parent/child
        // collectives must not alias each other's messages.
        let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
            let mut world = Group::world(ctx);
            let same = world.split_nested(ctx, &vec![0; world.len()]);
            assert_eq!(same.members, world.members, "identical member list");
            assert_ne!(same.gid, world.gid, "namespaces must differ");
            // Repeating the split reproduces the same child namespace...
            let again = world.split_nested(ctx, &vec![0; world.len()]);
            assert_eq!(again.gid, same.gid);
            // ...and a grandchild differs from both.
            let mut grand = same.split_nested(ctx, &vec![0; same.len()]);
            assert_ne!(grand.gid, same.gid);
            assert_ne!(grand.gid, world.gid);
            // Interleaved collectives on all three levels stay coherent.
            let a = world.broadcast(ctx, 0, (world.rank() == 0).then_some(11u64));
            let mut same = same;
            let b = same.all_reduce(ctx, ctx.rank() as u64, |x, y| x + y);
            let c = grand.broadcast(ctx, 0, (grand.rank() == 0).then_some(33u64));
            (a, b, c)
        });
        for &(a, b, c) in &out.results {
            assert_eq!((a, b, c), (11, 6, 33));
        }
    }

    #[test]
    fn sibling_subgroups_at_same_depth_cannot_observe_each_other() {
        // Each sibling runs a *different number* of collectives carrying
        // values stamped with the sibling's identity; every value a member
        // observes must come from its own sibling, and a global collective
        // afterwards still matches — the recursion-tree isolation property
        // the recursive D&C skeleton leans on.
        let out = run_spmd(8, MachineModel::ibm_sp(), |ctx| {
            let world = Group::world(ctx);
            let colors: Vec<usize> = (0..world.len()).map(|i| i / 2).collect();
            let mut pair = world.split_nested(ctx, &colors);
            let my_color = ctx.rank() / 2;
            let rounds = my_color + 1; // sibling j runs j+1 collectives
            let mut seen = Vec::new();
            for _ in 0..rounds {
                let got = pair.all_to_all(ctx, vec![my_color as u64; pair.len()]);
                seen.extend(got);
            }
            let gathered = pair.gather(ctx, 0, my_color as u64 * 100 + ctx.rank() as u64);
            let world_sum = ctx.all_reduce(1u64, |a, b| a + b);
            (seen, gathered, world_sum)
        });
        for (r, (seen, gathered, world_sum)) in out.results.iter().enumerate() {
            let color = (r / 2) as u64;
            assert_eq!(seen.len(), 2 * (r / 2 + 1));
            assert!(
                seen.iter().all(|&v| v == color),
                "rank {r} observed a sibling's message: {seen:?}"
            );
            if r % 2 == 0 {
                let g = gathered.as_ref().expect("pair root");
                assert_eq!(g, &vec![color * 100 + r as u64, color * 100 + r as u64 + 1]);
            } else {
                assert!(gathered.is_none());
            }
            assert_eq!(*world_sum, 8);
        }
    }

    #[test]
    fn group_scatter_delivers_one_piece_each() {
        let out = run_spmd(6, MachineModel::ibm_sp(), |ctx| {
            let colors: Vec<usize> = (0..ctx.nprocs()).map(|r| r % 2).collect();
            let mut g = Group::split(ctx, &colors);
            let values = (g.rank() == 1).then(|| {
                (0..g.len() as u64)
                    .map(|i| vec![i * 10 + ctx.rank() as u64 % 2])
                    .collect()
            });
            g.scatter(ctx, 1, values)
        });
        for (r, v) in out.results.iter().enumerate() {
            assert_eq!(v, &vec![(r as u64 / 2) * 10 + r as u64 % 2], "rank {r}");
        }
    }

    #[test]
    fn group_scatter_and_all_to_all_degenerate_cases() {
        // Singleton groups must complete without any messages; empty
        // payloads must keep their slots.
        let out = run_spmd(3, MachineModel::ibm_sp(), |ctx| {
            let colors: Vec<usize> = (0..3).collect(); // everyone alone
            let mut g = Group::split(ctx, &colors);
            let s: Vec<u64> = g.scatter(ctx, 0, Some(vec![vec![ctx.rank() as u64]]));
            let a = g.all_to_all(ctx, vec![Vec::<u64>::new()]);
            (s, a)
        });
        for (r, (s, a)) in out.results.iter().enumerate() {
            assert_eq!(s, &vec![r as u64]);
            assert_eq!(a, &vec![Vec::<u64>::new()]);
        }
        assert_eq!(out.stats.total_msgs(), 0);
    }

    #[test]
    fn group_all_to_all_transposes_within_the_group() {
        let out = run_spmd(7, MachineModel::ibm_sp(), |ctx| {
            // Odd ranks form the group; evens sit out entirely.
            let colors: Vec<usize> = (0..ctx.nprocs()).map(|r| r % 2).collect();
            if ctx.rank() % 2 == 1 {
                let mut g = Group::split(ctx, &colors);
                let items: Vec<(u64, u64)> =
                    (0..g.len() as u64).map(|d| (g.rank() as u64, d)).collect();
                Some(g.all_to_all(ctx, items))
            } else {
                None
            }
        });
        for (r, got) in out.results.iter().enumerate() {
            if r % 2 == 1 {
                let got = got.as_ref().expect("group member");
                for (s, &(from, to)) in got.iter().enumerate() {
                    assert_eq!(from, s as u64, "slot s holds member s's item");
                    assert_eq!(to, (r / 2) as u64, "and it was addressed to me");
                }
            } else {
                assert!(got.is_none());
            }
        }
    }

    #[test]
    fn group_reduce_folds_in_ascending_group_order() {
        // Non-commutative op (ordered concatenation) over a non-contiguous
        // group with a non-zero root, across power-of-two and odd sizes.
        for p in [2usize, 3, 4, 5, 7, 8] {
            let out = run_spmd(p + 1, MachineModel::ibm_sp(), move |ctx| {
                // All but the last rank form the group.
                let colors: Vec<usize> = (0..ctx.nprocs())
                    .map(|r| usize::from(r == ctx.nprocs() - 1))
                    .collect();
                let mut g = Group::split(ctx, &colors);
                if ctx.rank() == ctx.nprocs() - 1 {
                    return None;
                }
                let root = (p - 1).min(2);
                g.reduce(ctx, root, vec![g.rank() as u64], |mut a, b| {
                    a.extend(b);
                    a
                })
            });
            let root = (p - 1).min(2);
            for (r, got) in out.results.iter().enumerate() {
                if r == root {
                    let expected: Vec<u64> = (0..p as u64).collect();
                    assert_eq!(got.as_ref(), Some(&expected), "p={p}");
                } else {
                    assert!(got.is_none(), "p={p} rank={r}");
                }
            }
        }
    }

    #[test]
    fn group_reduce_matches_all_reduce_for_commutative_ops() {
        let out = run_spmd(6, MachineModel::ibm_sp(), |ctx| {
            let colors: Vec<usize> = (0..ctx.nprocs()).map(|r| r % 2).collect();
            let mut g = Group::split(ctx, &colors);
            let red = g.reduce(ctx, 0, ctx.rank() as u64, |a, b| a + b);
            let all = g.all_reduce(ctx, ctx.rank() as u64, |a, b| a + b);
            (red, all)
        });
        for (r, (red, all)) in out.results.iter().enumerate() {
            if r < 2 {
                assert_eq!(red.unwrap(), *all, "group root rank {r}");
            } else {
                assert!(red.is_none());
            }
        }
    }

    #[test]
    fn singleton_group_reduce_is_message_free() {
        let out = run_spmd(3, MachineModel::ibm_sp(), |ctx| {
            let colors: Vec<usize> = (0..3).collect(); // everyone alone
            let mut g = Group::split(ctx, &colors);
            g.reduce(ctx, 0, ctx.rank() as u64 * 5, |a, b| a + b)
        });
        for (r, v) in out.results.iter().enumerate() {
            assert_eq!(*v, Some(r as u64 * 5));
        }
        assert_eq!(out.stats.total_msgs(), 0);
    }

    #[test]
    fn group_reduce_empty_payloads_round_trip() {
        // Zero-byte contributions must traverse the combining tree and
        // keep their (empty) shape; only latency is charged.
        let out = run_spmd(5, MachineModel::ibm_sp(), |ctx| {
            let colors = vec![0usize; ctx.nprocs()];
            let mut g = Group::split(ctx, &colors);
            g.reduce(ctx, 1, Vec::<u64>::new(), |mut a, mut b| {
                a.append(&mut b);
                a
            })
        });
        assert_eq!(out.results[1], Some(Vec::new()));
        assert!(out
            .results
            .iter()
            .enumerate()
            .all(|(r, v)| r == 1 || v.is_none()));
        assert!(out.elapsed_virtual >= MachineModel::ibm_sp().latency);
    }

    #[test]
    fn group_all_reduce_non_power_of_two() {
        for size in [3usize, 5, 6, 7] {
            let out = run_spmd(size + 1, MachineModel::ibm_sp(), move |ctx| {
                // Group of all but the last rank; the last sits out but must
                // still participate in nothing (no deadlock).
                let colors: Vec<usize> = (0..ctx.nprocs())
                    .map(|r| usize::from(r == ctx.nprocs() - 1))
                    .collect();
                let mut g = Group::split(ctx, &colors);
                if g.len() > 1 {
                    g.all_reduce(ctx, 1u64, |a, b| a + b)
                } else {
                    0
                }
            });
            for (r, &v) in out.results.iter().enumerate() {
                if r < size {
                    assert_eq!(v, size as u64, "size={size} rank={r}");
                }
            }
        }
    }
}
