//! SPMD runner: wires up the network, runs one rank per worker thread,
//! and reports results plus virtual-time and traffic statistics.
//!
//! Two execution paths exist:
//!
//! * [`run_spmd`] / [`run_spmd_quiet`] dispatch ranks onto the persistent
//!   worker pool ([`crate::pool`]) and **recycle the channel network**: a
//!   run that ends with every message consumed returns its `n × n`
//!   channel mesh to a per-size cache, so repeated calls stop paying
//!   n×thread-spawn plus n² channel construction per invocation.
//! * [`run_spmd_unpooled`] spawns fresh OS threads and a fresh network
//!   every call — the seed behaviour, kept as the comparison baseline for
//!   the `substrate_overhead` bench and for callers that want full
//!   isolation.
//!
//! Virtual-time semantics are identical on both paths: clocks are driven
//! only by the machine model and message arrival times, never by host
//! scheduling, so `determinism_same_program_same_clocks` holds regardless
//! of which threads execute which rank.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock};

use crate::ctx::Ctx;
use crate::mailbox::{build_network, Mailbox};
use crate::model::MachineModel;
use crate::packet::Packet;
use crate::pool;
use crate::stats::{RankStats, RunStats};
use crossbeam::channel::Sender;

/// Everything a finished SPMD run reports.
#[derive(Debug)]
pub struct SpmdResult<R> {
    /// Per-rank return values of the body, indexed by rank.
    pub results: Vec<R>,
    /// Elapsed virtual time: the maximum final clock across ranks.
    pub elapsed_virtual: f64,
    /// Final per-rank clocks.
    pub rank_times: Vec<f64>,
    /// Communication/computation statistics per rank.
    pub stats: RunStats,
}

impl<R> SpmdResult<R> {
    /// Speedup of this run relative to a modeled sequential time.
    pub fn speedup_vs(&self, sequential_time: f64) -> f64 {
        if self.elapsed_virtual > 0.0 {
            sequential_time / self.elapsed_virtual
        } else {
            f64::INFINITY
        }
    }
}

/// One rank's endpoints: the send sides of its outgoing channels and its
/// mailbox. Owned by the rank's `Ctx` while running; returned afterwards
/// so a clean network can be recycled.
struct RankLinks {
    senders: Vec<Sender<Packet>>,
    mailbox: Mailbox,
}

/// Per-size cache of quiescent networks. Only networks whose every
/// channel and pending buffer is empty (leak check passed) are returned
/// here, so recycling can never leak a stale packet into the next run.
static NETWORK_CACHE: OnceLock<Mutex<NetworkCache>> = OnceLock::new();

/// Networks kept per process count; each costs `n²` empty channels.
const CACHED_NETWORKS_PER_SIZE: usize = 2;

/// Upper bound on the total number of empty channels retained across all
/// cached networks, so sweeping many process counts (or one huge run)
/// cannot pin unbounded memory for the process lifetime. 32k channels ≈
/// the meshes of two 128-rank runs.
const CACHE_CHANNEL_BUDGET: usize = 32 * 1024;

#[derive(Default)]
struct NetworkCache {
    by_size: HashMap<usize, Vec<Vec<RankLinks>>>,
    /// Total channels (`Σ n²`) currently held in `by_size`.
    channels: usize,
}

fn network_cache() -> &'static Mutex<NetworkCache> {
    NETWORK_CACHE.get_or_init(|| Mutex::new(NetworkCache::default()))
}

/// Build a fresh network, transposed so each rank *owns* its outgoing
/// channel ends: when a rank panics its senders drop, and peers blocked
/// on receives from it fail fast rather than deadlocking.
fn fresh_network(nprocs: usize) -> Vec<RankLinks> {
    let (senders_by_dest, mailboxes) = build_network(nprocs);
    mailboxes
        .into_iter()
        .enumerate()
        .map(|(src, mailbox)| RankLinks {
            senders: (0..nprocs)
                .map(|dest| senders_by_dest[dest][src].clone())
                .collect(),
            mailbox,
        })
        .collect()
}

fn acquire_network(nprocs: usize) -> Vec<RankLinks> {
    {
        let mut cache = network_cache().lock().unwrap();
        if let Some(links) = cache.by_size.get_mut(&nprocs).and_then(Vec::pop) {
            cache.channels -= nprocs * nprocs;
            return links;
        }
    }
    fresh_network(nprocs)
}

fn release_network(nprocs: usize, links: Vec<RankLinks>) {
    let channels = nprocs * nprocs;
    let mut cache = network_cache().lock().unwrap();
    if cache.channels + channels > CACHE_CHANNEL_BUDGET {
        return; // over budget: drop the network instead of retaining it
    }
    let slot = cache.by_size.entry(nprocs).or_default();
    if slot.len() < CACHED_NETWORKS_PER_SIZE {
        slot.push(links);
        cache.channels += channels;
    }
}

type RankOutcome<R> = (R, f64, RankStats, RankLinks);
type JobResult<R> = Result<RankOutcome<R>, Box<dyn std::any::Any + Send>>;

fn run_inner<F, R>(
    nprocs: usize,
    model: MachineModel,
    body: F,
    check_leaks: bool,
    pooled: bool,
) -> SpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    assert!(nprocs > 0, "need at least one process");
    let links = if pooled {
        acquire_network(nprocs)
    } else {
        fresh_network(nprocs)
    };

    let slots: Vec<Mutex<Option<JobResult<R>>>> = (0..nprocs).map(|_| Mutex::new(None)).collect();
    let body = &body;
    let run_rank = |rank: usize, links: RankLinks| -> JobResult<R> {
        catch_unwind(AssertUnwindSafe(|| {
            let mut ctx = Ctx::new(rank, nprocs, links.senders, links.mailbox, model);
            let r = body(&mut ctx);
            let now = ctx.now();
            let stats = ctx.stats();
            let (senders, mailbox) = ctx.into_parts();
            (r, now, stats, RankLinks { senders, mailbox })
        }))
    };
    let run_rank = &run_rank;
    let slots_ref = &slots;

    if pooled {
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = links
            .into_iter()
            .enumerate()
            .map(|(rank, l)| {
                Box::new(move || {
                    *slots_ref[rank].lock().unwrap() = Some(run_rank(rank, l));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool::run_scoped(jobs);
    } else {
        std::thread::scope(|scope| {
            for (rank, l) in links.into_iter().enumerate() {
                scope.spawn(move || {
                    *slots_ref[rank].lock().unwrap() = Some(run_rank(rank, l));
                });
            }
        });
    }

    // Assemble outcomes; a panic in any rank takes precedence and is
    // re-raised on the caller thread (matching `std::thread::scope`).
    let mut results = Vec::with_capacity(nprocs);
    let mut rank_times = Vec::with_capacity(nprocs);
    let mut per_rank = Vec::with_capacity(nprocs);
    let mut links_back = Vec::with_capacity(nprocs);
    let mut outcomes = Vec::with_capacity(nprocs);
    for slot in &slots {
        match slot.lock().unwrap().take().expect("all ranks completed") {
            Ok(out) => outcomes.push(out),
            Err(panic_payload) => resume_unwind(panic_payload),
        }
    }
    for (r, now, stats, l) in outcomes {
        results.push(r);
        rank_times.push(now);
        per_rank.push(stats);
        links_back.push(l);
    }
    // The leak check runs here — after every rank has returned — so it
    // sees a quiescent network: no send can still be in flight, making
    // the count exact rather than racing against slower peers.
    let mut leaked = false;
    for (rank, l) in links_back.iter().enumerate() {
        let unconsumed = l.mailbox.unconsumed();
        if check_leaks {
            assert_eq!(
                unconsumed, 0,
                "rank {rank} finished with {unconsumed} unreceived message(s): \
                 mismatched send/recv in the SPMD program"
            );
        }
        leaked |= unconsumed > 0;
    }
    if pooled && !leaked {
        release_network(nprocs, links_back);
    }

    let elapsed_virtual = rank_times.iter().copied().fold(0.0, f64::max);
    SpmdResult {
        results,
        elapsed_virtual,
        rank_times,
        stats: RunStats { per_rank },
    }
}

/// Run `body` as an SPMD computation with `nprocs` processes on the given
/// machine model. Panics in any rank propagate; on completion every sent
/// message must have been received (leak check), which catches mismatched
/// protocols early.
///
/// Ranks execute on a persistent worker pool and the channel network is
/// recycled between calls, so calling this in a loop costs a pool
/// dispatch — not `nprocs` thread spawns plus `nprocs²` channel
/// constructions — per invocation.
///
/// ```
/// use archetype_mp::{run_spmd, MachineModel};
///
/// // Ranks pass their rank number around a ring.
/// let out = run_spmd(3, MachineModel::cray_t3d(), |ctx| {
///     let right = (ctx.rank() + 1) % ctx.nprocs();
///     let left = (ctx.rank() + ctx.nprocs() - 1) % ctx.nprocs();
///     ctx.send(right, 0, ctx.rank() as u64);
///     ctx.recv::<u64>(left, 0)
/// });
/// assert_eq!(out.results, vec![2, 0, 1]);
/// assert!(out.elapsed_virtual > 0.0);
/// ```
pub fn run_spmd<F, R>(nprocs: usize, model: MachineModel, body: F) -> SpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    run_inner(nprocs, model, body, true, true)
}

/// Like [`run_spmd`] but without the message-leak check. Useful in tests
/// that deliberately exercise failure paths.
pub fn run_spmd_quiet<F, R>(nprocs: usize, model: MachineModel, body: F) -> SpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    run_inner(nprocs, model, body, false, true)
}

/// [`run_spmd`] on the seed execution path: fresh OS threads and a fresh
/// channel network every call, nothing pooled or recycled. Kept as the
/// baseline the `substrate_overhead` bench compares against, and for
/// callers that want complete isolation between runs.
pub fn run_spmd_unpooled<F, R>(nprocs: usize, model: MachineModel, body: F) -> SpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    run_inner(nprocs, model, body, true, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_runs_body_once() {
        let out = run_spmd(1, MachineModel::ibm_sp(), |ctx| {
            ctx.charge_flops(100.0);
            ctx.rank()
        });
        assert_eq!(out.results, vec![0]);
        assert!(out.elapsed_virtual > 0.0);
    }

    #[test]
    fn elapsed_is_max_over_ranks() {
        let out = run_spmd(4, MachineModel::zero_comm(), |ctx| {
            ctx.charge_seconds(ctx.rank() as f64);
        });
        assert_eq!(out.elapsed_virtual, 3.0);
        assert_eq!(out.rank_times, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn determinism_same_program_same_clocks() {
        let run = || {
            run_spmd(8, MachineModel::intel_delta(), |ctx| {
                let x = ctx.all_reduce(ctx.rank() as f64, |a, b| a + b);
                ctx.charge_flops(x * 10.0);
                ctx.barrier();
                ctx.now()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.rank_times, b.rank_times,
            "virtual time must be deterministic"
        );
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn pooled_and_unpooled_agree() {
        let body = |ctx: &mut Ctx| {
            let s = ctx.all_reduce(ctx.rank() as u64 + 1, |a, b| a + b);
            ctx.barrier();
            (s, ctx.now())
        };
        let pooled = run_spmd(6, MachineModel::ibm_sp(), body);
        let unpooled = run_spmd_unpooled(6, MachineModel::ibm_sp(), body);
        assert_eq!(pooled.results, unpooled.results);
        assert_eq!(pooled.rank_times, unpooled.rank_times);
    }

    #[test]
    fn repeated_runs_recycle_the_network() {
        // Uses a process count no other test in this crate runs at, so
        // concurrent tests cannot pop the cached network between the runs
        // and the observation below.
        const N: usize = 23;
        for _ in 0..3 {
            run_spmd(N, MachineModel::zero_comm(), |ctx| {
                ctx.all_reduce(1u64, |a, b| a + b)
            });
        }
        let cached = network_cache()
            .lock()
            .unwrap()
            .by_size
            .get(&N)
            .map_or(0, Vec::len);
        assert!(cached >= 1, "a clean {N}-rank network should be cached");
    }

    #[test]
    fn oversized_networks_are_not_retained() {
        // 200² channels exceed the cache budget on their own; the run
        // must succeed and the network must be dropped, not cached.
        const N: usize = 200;
        run_spmd(N, MachineModel::zero_comm(), |ctx| ctx.rank());
        let cached = network_cache()
            .lock()
            .unwrap()
            .by_size
            .get(&N)
            .map_or(0, Vec::len);
        assert_eq!(cached, 0, "an over-budget network must not be cached");
    }

    #[test]
    #[should_panic(expected = "unreceived message")]
    fn leak_check_catches_unmatched_send() {
        run_spmd(2, MachineModel::ibm_sp(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, 1u8);
                ctx.send(1, 0, 2u8); // never received
            } else {
                let _: u8 = ctx.recv(0, 0);
            }
        });
    }

    #[test]
    fn leaky_quiet_runs_do_not_poison_later_runs() {
        // A quiet run that leaves messages in flight must not hand its
        // dirty network to a subsequent same-size run.
        run_spmd_quiet(3, MachineModel::zero_comm(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 77, vec![1u8, 2, 3]); // never received
            }
        });
        let out = run_spmd_quiet(3, MachineModel::zero_comm(), |ctx| {
            // If the dirty network were recycled, the stale tag-77 packet
            // could satisfy this receive with wrong data.
            if ctx.rank() == 1 {
                ctx.send(0, 5, 9u64);
            } else if ctx.rank() == 0 {
                return ctx.recv::<u64>(1, 5);
            }
            0
        });
        assert_eq!(out.results[0], 9);
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        run_spmd_quiet(3, MachineModel::ibm_sp(), |ctx| {
            if ctx.rank() == 1 {
                panic!("rank 1 exploded");
            }
            // Other ranks wait on rank 1 and observe its termination.
            let _: u8 = ctx.recv(1, 0);
        });
    }

    #[test]
    fn speedup_vs_divides() {
        let out = run_spmd(2, MachineModel::zero_comm(), |ctx| {
            ctx.charge_seconds(1.0);
        });
        assert!((out.speedup_vs(2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn many_processes_work() {
        // 100 simulated processors on a small host: the point of the design.
        let out = run_spmd(100, MachineModel::intel_delta(), |ctx| {
            ctx.all_reduce(1u64, |a, b| a + b)
        });
        assert!(out.results.iter().all(|&v| v == 100));
    }
}
