//! SPMD runner: wires up the network, runs one rank per worker thread,
//! and reports results plus virtual-time and traffic statistics.
//!
//! Two execution paths exist:
//!
//! * [`run_spmd`] / [`run_spmd_quiet`] dispatch ranks onto the persistent
//!   worker pool ([`crate::pool`]) and **recycle the channel network**: a
//!   run that ends with every message consumed returns its `n × n`
//!   channel mesh to a per-size cache, so repeated calls stop paying
//!   n×thread-spawn plus n² channel construction per invocation.
//! * [`run_spmd_unpooled`] spawns fresh OS threads and a fresh network
//!   every call — the seed behaviour, kept as the comparison baseline for
//!   the `substrate_overhead` bench and for callers that want full
//!   isolation.
//!
//! Virtual-time semantics are identical on both paths: clocks are driven
//! only by the machine model and message arrival times, never by host
//! scheduling, so `determinism_same_program_same_clocks` holds regardless
//! of which threads execute which rank.
//!
//! Orthogonally to pooling, every run selects a transport [`Backend`]
//! via [`RunConfig`] / [`run_spmd_with`]: the deterministic virtual-time
//! oracle (the default — all plain entry points use it) or the real
//! lock-free shared-memory backend, which moves the same payloads over
//! the in-repo lock-free MPSC channels and reports measured wall-clock
//! time in [`SpmdResult::wall_us`]. Results, clocks, and statistics are
//! bit-identical across backends (see [`crate::transport`]); networks
//! are recycled per (size, backend), so a cached virtual mesh can never
//! be handed to a real run or vice versa.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::ctx::Ctx;
use crate::fault::{FaultPlan, InjectedCrash};
use crate::mailbox::{build_network, Mailbox};
use crate::model::MachineModel;
use crate::payload::PayloadArena;
use crate::pool;
use crate::stats::{RankStats, RunStats};
use crate::trace::{RankTrace, RunTrace, TraceRecorder};
use crate::transport::{Backend, PacketSender};

/// Lock a mutex, tolerating poison: a rank that panicked while holding
/// the runner's bookkeeping locks must not wedge every later `run_spmd`
/// in the process (the data under these locks stays consistent — each
/// critical section is a single assignment or cache operation).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Everything a finished SPMD run reports.
#[derive(Debug)]
pub struct SpmdResult<R> {
    /// Per-rank return values of the body, indexed by rank.
    pub results: Vec<R>,
    /// Elapsed virtual time: the maximum final clock across ranks.
    pub elapsed_virtual: f64,
    /// Final per-rank clocks.
    pub rank_times: Vec<f64>,
    /// Communication/computation statistics per rank.
    pub stats: RunStats,
    /// Measured wall-clock time of the run (dispatch to last rank done),
    /// in microseconds. This is the real backend's headline number; it is
    /// populated on every backend (the virtual oracle's wall time is its
    /// simulation cost, not a modeled quantity) and is the *only* field
    /// that legitimately differs between backends or repeated runs.
    pub wall_us: u64,
    /// Per-rank event streams of a traced run ([`RunConfig::traced`]);
    /// `None` unless tracing was requested. Export with
    /// [`RunTrace::chrome_json`], analyze with [`RunTrace::critical_path`].
    pub trace: Option<RunTrace>,
}

impl<R> SpmdResult<R> {
    /// Speedup of this run relative to a modeled sequential time.
    pub fn speedup_vs(&self, sequential_time: f64) -> f64 {
        if self.elapsed_virtual > 0.0 {
            sequential_time / self.elapsed_virtual
        } else {
            f64::INFINITY
        }
    }
}

/// Why one rank of an SPMD run failed: the structured form of a rank
/// panic, reported by [`try_run_spmd`] / [`run_spmd_ft`] instead of
/// resuming the unwind on the caller's thread.
#[derive(Clone, Debug)]
pub struct RankFailure {
    /// World rank that failed.
    pub rank: usize,
    /// The rank's panic message (or a description of the injected crash
    /// site for scheduled faults).
    pub message: String,
    /// True when the failure was scheduled by a [`FaultPlan`] crash site;
    /// false for genuine program panics.
    pub injected: bool,
    /// The rank's virtual clock at the moment of an injected crash (0.0
    /// for genuine panics, whose context is lost to the unwind).
    pub clock: f64,
    /// Statistics accumulated up to an injected crash (default for
    /// genuine panics).
    pub stats: RankStats,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = if self.injected {
            "injected crash"
        } else {
            "panic"
        };
        write!(f, "rank {} failed ({kind}): {}", self.rank, self.message)
    }
}

impl std::error::Error for RankFailure {}

/// Error returned by the fallible entry points ([`try_run_spmd`],
/// [`try_run_spmd_with`], [`run_spmd_ft_with`]).
#[derive(Clone, Debug)]
pub enum SpmdError {
    /// One or more ranks failed. The channel network of a failed run is
    /// always quarantined (dropped), never recycled: a dead rank may
    /// have left messages in flight.
    Ranks {
        /// The failed ranks, in rank order.
        failures: Vec<RankFailure>,
    },
    /// The entry point rejected the requested configuration before
    /// anything ran — e.g. fault injection on [`Backend::Real`], whose
    /// disconnect-based death signal depends on real scheduling and is
    /// therefore only validated on the deterministic virtual backend.
    UnsupportedBackend {
        /// The entry point that rejected the configuration.
        entry: &'static str,
        /// The rejected backend.
        backend: Backend,
    },
}

impl SpmdError {
    /// The failed ranks, in rank order (empty for configuration errors).
    pub fn failures(&self) -> &[RankFailure] {
        match self {
            SpmdError::Ranks { failures } => failures,
            SpmdError::UnsupportedBackend { .. } => &[],
        }
    }
}

impl std::fmt::Display for SpmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpmdError::Ranks { failures } => {
                write!(f, "{} rank(s) failed:", failures.len())?;
                for failure in failures {
                    write!(f, " [{failure}]")?;
                }
                Ok(())
            }
            SpmdError::UnsupportedBackend { entry, backend } => {
                write!(f, "{entry} does not support Backend::{backend:?}")
            }
        }
    }
}

impl std::error::Error for SpmdError {}

/// Everything a fault-injected SPMD run ([`run_spmd_ft`]) reports. Unlike
/// [`SpmdResult`], per-rank outcomes are `Result`s: scheduled crashes are
/// expected events, and surviving ranks' values remain available next to
/// the structured failures of the ranks that died.
#[derive(Debug)]
pub struct FtSpmdResult<R> {
    /// Per-rank outcomes, indexed by rank.
    pub results: Vec<Result<R, RankFailure>>,
    /// Elapsed virtual time: the maximum final clock across ranks
    /// (crashed ranks contribute their clock at the moment of death).
    pub elapsed_virtual: f64,
    /// Final per-rank clocks (clock at death for crashed ranks).
    pub rank_times: Vec<f64>,
    /// Communication/computation statistics per rank (up to the moment of
    /// death for crashed ranks).
    pub stats: RunStats,
    /// Messages left unconsumed in the network when the run ended. Always
    /// 0 for fully successful runs of leak-free programs; a run with dead
    /// ranks may legitimately strand in-flight messages (the network is
    /// quarantined, so they can never contaminate a later run).
    pub leaked_messages: usize,
}

impl<R> FtSpmdResult<R> {
    /// True if every rank completed (no scheduled crash fired and nothing
    /// panicked).
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(Result::is_ok)
    }

    /// The failures, in rank order (empty when [`FtSpmdResult::all_ok`]).
    pub fn failures(&self) -> Vec<&RankFailure> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .collect()
    }
}

/// One rank's endpoints: the send sides of its outgoing channels, its
/// mailbox, and its payload-box arena. Owned by the rank's `Ctx` while
/// running; returned afterwards so a clean network — warm freelists
/// included — can be recycled.
struct RankLinks {
    senders: Vec<PacketSender>,
    mailbox: Mailbox,
    arena: PayloadArena,
}

/// Per-(size, backend) cache of quiescent networks. Only networks whose
/// every channel and pending buffer is empty (leak check passed) are
/// returned here, so recycling can never leak a stale packet into the
/// next run — and keying by backend means a virtual mesh is never handed
/// to a real run or vice versa.
static NETWORK_CACHE: OnceLock<Mutex<NetworkCache>> = OnceLock::new();

/// Networks kept per process count; each costs `n²` empty channels.
const CACHED_NETWORKS_PER_SIZE: usize = 2;

/// Upper bound on the total number of empty channels retained across all
/// cached networks, so sweeping many process counts (or one huge run)
/// cannot pin unbounded memory for the process lifetime. 32k channels ≈
/// the meshes of two 128-rank runs. When a releasing run would push the
/// cache over this budget, the least-recently-released entries are
/// evicted to make room — so under plan-service churn across many
/// distinct subgroup sizes the cache tracks the *live* size mix instead
/// of pinning the budget with whatever sizes happened to run first.
const CACHE_CHANNEL_BUDGET: usize = 32 * 1024;

/// One cached quiescent network and the release stamp eviction orders by.
struct CachedNetwork {
    links: Vec<RankLinks>,
    /// Value of [`NetworkCache::clock`] when this network was released;
    /// entries with the smallest stamp are evicted first.
    stamp: u64,
}

#[derive(Default)]
struct NetworkCache {
    by_size: HashMap<(usize, Backend), Vec<CachedNetwork>>,
    /// Total channels (`Σ n²`) currently held in `by_size`.
    channels: usize,
    /// Monotone release counter backing the LRU stamps.
    clock: u64,
}

impl NetworkCache {
    /// Drop the least-recently-released cached network. Within a slot
    /// entries are pushed in release order, so the front of the slot with
    /// the globally smallest stamp is the eviction victim. Slots never
    /// stay empty, so the key count is bounded by the live entry count.
    fn evict_stalest(&mut self) {
        let victim = self
            .by_size
            .iter()
            .min_by_key(|(_, slot)| slot.first().map_or(u64::MAX, |e| e.stamp))
            .map(|(&key, _)| key);
        let Some(key @ (nprocs, _)) = victim else {
            return;
        };
        let slot = self.by_size.get_mut(&key).expect("victim key exists");
        slot.remove(0);
        self.channels -= nprocs * nprocs;
        if slot.is_empty() {
            self.by_size.remove(&key);
        }
    }
}

fn network_cache() -> &'static Mutex<NetworkCache> {
    NETWORK_CACHE.get_or_init(|| Mutex::new(NetworkCache::default()))
}

/// Build a fresh network, transposed so each rank *owns* its outgoing
/// channel ends: when a rank panics its senders drop, and peers blocked
/// on receives from it fail fast rather than deadlocking.
fn fresh_network(nprocs: usize, backend: Backend) -> Vec<RankLinks> {
    let (senders_by_dest, mailboxes) = build_network(nprocs, backend);
    mailboxes
        .into_iter()
        .enumerate()
        .map(|(src, mailbox)| RankLinks {
            senders: (0..nprocs)
                .map(|dest| senders_by_dest[dest][src].clone())
                .collect(),
            mailbox,
            arena: PayloadArena::new(),
        })
        .collect()
}

fn acquire_network(nprocs: usize, backend: Backend) -> Vec<RankLinks> {
    {
        let mut cache = lock_unpoisoned(network_cache());
        if let Some(entry) = cache.by_size.get_mut(&(nprocs, backend)).and_then(Vec::pop) {
            cache.channels -= nprocs * nprocs;
            let key = (nprocs, backend);
            if cache.by_size.get(&key).is_some_and(Vec::is_empty) {
                cache.by_size.remove(&key);
            }
            return entry.links;
        }
    }
    fresh_network(nprocs, backend)
}

fn release_network(nprocs: usize, backend: Backend, links: Vec<RankLinks>) {
    let channels = nprocs * nprocs;
    if channels > CACHE_CHANNEL_BUDGET {
        return; // can never fit, even with an empty cache
    }
    let mut cache = lock_unpoisoned(network_cache());
    if cache
        .by_size
        .get(&(nprocs, backend))
        .is_some_and(|slot| slot.len() >= CACHED_NETWORKS_PER_SIZE)
    {
        return; // per-size cap reached
    }
    // Evict least-recently-released networks until the newcomer fits.
    // Only quiescent networks are ever cached, so eviction just frees
    // empty channels — it cannot affect what a later fresh-or-recycled
    // acquisition observes (the bit-identical-to-fresh guarantee).
    while cache.channels + channels > CACHE_CHANNEL_BUDGET {
        cache.evict_stalest();
    }
    cache.clock += 1;
    let stamp = cache.clock;
    cache
        .by_size
        .entry((nprocs, backend))
        .or_default()
        .push(CachedNetwork { links, stamp });
    cache.channels += channels;
}

type RankOutcome<R> = (R, f64, RankStats, Option<Box<TraceRecorder>>, RankLinks);
type JobResult<R> = Result<RankOutcome<R>, Box<dyn std::any::Any + Send>>;

/// A completed rank as seen by the runner frontends: return value, final
/// clock, statistics, and — for traced runs — the rank's event stream
/// (the links were already returned to the network lifecycle by the
/// core).
type RankDone<R> = (R, f64, RankStats, Option<RankTrace>);

/// Turn a caught panic payload into a structured failure. Injected
/// crashes carry their context ([`InjectedCrash`]); genuine panics yield
/// whatever message the payload holds.
fn classify_panic(rank: usize, payload: Box<dyn std::any::Any + Send>) -> RankFailure {
    match payload.downcast::<InjectedCrash>() {
        Ok(crash) => RankFailure {
            rank: crash.rank,
            message: format!("injected crash at {}", crash.site),
            injected: true,
            clock: crash.clock,
            stats: crash.stats,
        },
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            RankFailure {
                rank,
                message,
                injected: false,
                clock: 0.0,
                stats: RankStats::default(),
            }
        }
    }
}

/// The shared execution core: runs one rank per worker, contains every
/// panic, and returns per-rank structured outcomes, the leak count, and
/// the measured wall-clock time (dispatch to last rank done) in
/// microseconds.
///
/// Network lifecycle: a *fully successful* pooled run with no stranded
/// messages returns its network to the recycle cache; any run with a
/// failed rank — or with messages left in flight — quarantines it (the
/// links are simply dropped), so stale packets and dead channels can
/// never contaminate a later run.
fn run_inner_result<F, R>(
    nprocs: usize,
    model: MachineModel,
    fault: Option<Arc<FaultPlan>>,
    body: F,
    config: RunConfig,
) -> (Vec<Result<RankDone<R>, RankFailure>>, usize, u64)
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    assert!(nprocs > 0, "need at least one process");
    let RunConfig {
        backend,
        pooled,
        traced,
        trace_capacity,
        ..
    } = config;
    let links = if pooled {
        acquire_network(nprocs, backend)
    } else {
        fresh_network(nprocs, backend)
    };

    let slots: Vec<Mutex<Option<JobResult<R>>>> = (0..nprocs).map(|_| Mutex::new(None)).collect();
    let body = &body;
    let fault = &fault;
    // One wall-clock anchor shared by every rank's recorder, taken
    // before dispatch so all tracks measure from the same instant.
    let started = Instant::now();
    let run_rank = move |rank: usize, links: RankLinks| -> JobResult<R> {
        catch_unwind(AssertUnwindSafe(|| {
            let mut ctx = Ctx::new(
                rank,
                nprocs,
                links.senders,
                links.mailbox,
                links.arena,
                model,
            );
            if let Some(plan) = fault {
                ctx.install_fault_plan(Arc::clone(plan));
            }
            if traced {
                ctx.install_tracer(Box::new(TraceRecorder::new(trace_capacity, started)));
                ctx.trace_pool_dispatch();
            }
            let r = body(&mut ctx);
            let now = ctx.now();
            let stats = ctx.stats();
            let tracer = ctx.take_tracer();
            let (senders, mailbox, arena) = ctx.into_parts();
            (
                r,
                now,
                stats,
                tracer,
                RankLinks {
                    senders,
                    mailbox,
                    arena,
                },
            )
        }))
    };
    let run_rank = &run_rank;
    let slots_ref = &slots;
    if pooled {
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = links
            .into_iter()
            .enumerate()
            .map(|(rank, l)| {
                Box::new(move || {
                    *lock_unpoisoned(&slots_ref[rank]) = Some(run_rank(rank, l));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool::run_scoped(jobs);
    } else {
        std::thread::scope(|scope| {
            for (rank, l) in links.into_iter().enumerate() {
                scope.spawn(move || {
                    *lock_unpoisoned(&slots_ref[rank]) = Some(run_rank(rank, l));
                });
            }
        });
    }
    // Measured after the dispatch barrier: every rank has returned, so
    // this spans the whole SPMD computation on either backend.
    let wall_us = started.elapsed().as_micros() as u64;

    let mut outcomes = Vec::with_capacity(nprocs);
    let mut links_back = Vec::with_capacity(nprocs);
    let mut any_failed = false;
    for (rank, slot) in slots.iter().enumerate() {
        match lock_unpoisoned(slot).take() {
            Some(Ok((r, now, stats, tracer, l))) => {
                links_back.push(l);
                let trace = tracer.map(|t| t.into_rank_trace(rank));
                outcomes.push(Ok((r, now, stats, trace)));
            }
            Some(Err(payload)) => {
                any_failed = true;
                outcomes.push(Err(classify_panic(rank, payload)));
            }
            // A worker's panic guard was escaped (double panic in the job):
            // the pool still signals completion, but the slot stays empty.
            None => {
                any_failed = true;
                outcomes.push(Err(RankFailure {
                    rank,
                    message: "rank's job vanished (worker panic guard escaped)".to_string(),
                    injected: false,
                    clock: 0.0,
                    stats: RankStats::default(),
                }));
            }
        }
    }

    // The leak count runs here — after every rank has returned — so it
    // sees a quiescent network: no send can still be in flight, making
    // the count exact rather than racing against slower peers. With dead
    // ranks the count covers the survivors' mailboxes (the dead ranks'
    // endpoints went down with their unwinds).
    let leaked: usize = links_back.iter().map(|l| l.mailbox.unconsumed()).sum();
    if pooled && !any_failed && leaked == 0 {
        release_network(nprocs, backend, links_back);
    }

    (outcomes, leaked, wall_us)
}

/// How an SPMD run executes: which transport [`Backend`] carries the
/// messages, whether ranks dispatch onto the persistent pool, and
/// whether the post-run leak check is enforced. The default is exactly
/// [`run_spmd`]'s behaviour (virtual time, pooled, leak-checked), so
/// `run_spmd_with(n, model, RunConfig::default(), body)` ≡
/// `run_spmd(n, model, body)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// Transport backend (virtual-time oracle by default).
    pub backend: Backend,
    /// Dispatch ranks onto the persistent worker pool and recycle the
    /// network (true, the default), or spawn fresh threads per call.
    pub pooled: bool,
    /// Panic if the run ends with unreceived messages (true by default).
    pub check_leaks: bool,
    /// Record per-rank event traces into [`SpmdResult::trace`] (false by
    /// default). Tracing never perturbs results, clocks, or statistics —
    /// the observer-effect guard in `tests/prop_trace.rs` holds them
    /// bit-identical to untraced runs.
    pub traced: bool,
    /// Ring-buffer capacity (events per rank) of a traced run; beyond
    /// it the oldest events are dropped and counted. Ignored unless
    /// `traced` is set.
    pub trace_capacity: usize,
}

/// Default per-rank event capacity of traced runs: enough for the test
/// and bench workloads in-repo without preallocating megabytes per rank.
pub const DEFAULT_TRACE_CAPACITY: usize = 16 * 1024;

impl RunConfig {
    /// The default configuration, spelled out: virtual-time backend,
    /// pooled dispatch, leak check on, tracing off.
    pub fn virtual_time() -> Self {
        RunConfig {
            backend: Backend::Virtual,
            pooled: true,
            check_leaks: true,
            traced: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Real shared-memory backend (lock-free channels, measured
    /// wall-clock `wall_us`); pooled and leak-checked like [`run_spmd`].
    pub fn real() -> Self {
        RunConfig {
            backend: Backend::Real,
            ..Self::virtual_time()
        }
    }

    /// [`RunConfig::virtual_time`] with event tracing on: the run
    /// returns its per-rank event streams in [`SpmdResult::trace`].
    pub fn traced() -> Self {
        RunConfig {
            traced: true,
            ..Self::virtual_time()
        }
    }

    /// Same configuration on the other backend — handy for equivalence
    /// harnesses that run each case twice.
    pub fn on(self, backend: Backend) -> Self {
        RunConfig { backend, ..self }
    }

    /// This configuration with tracing switched on (composes with
    /// [`RunConfig::real`] etc.).
    pub fn with_tracing(self) -> Self {
        RunConfig {
            traced: true,
            ..self
        }
    }

    /// This configuration with the given traced ring-buffer capacity
    /// (events per rank); implies nothing about `traced` itself.
    pub fn with_trace_capacity(self, events: usize) -> Self {
        RunConfig {
            trace_capacity: events,
            ..self
        }
    }
}

// `#[derive(Default)]` on a struct with `bool` fields would default them
// to `false`; the semantic default is run_spmd's behaviour.
impl std::default::Default for RunConfig {
    fn default() -> Self {
        Self::virtual_time()
    }
}

/// Shared frontend for the panicking entry points: re-raises the first
/// rank failure as a panic whose message contains the original panic
/// text, and applies the leak check to successful runs.
fn run_checked<F, R>(nprocs: usize, model: MachineModel, body: F, config: RunConfig) -> SpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    let (outcomes, leaked, wall_us) = run_inner_result(nprocs, model, None, body, config);
    let mut results = Vec::with_capacity(nprocs);
    let mut rank_times = Vec::with_capacity(nprocs);
    let mut per_rank = Vec::with_capacity(nprocs);
    let mut rank_traces = Vec::with_capacity(if config.traced { nprocs } else { 0 });
    for outcome in outcomes {
        match outcome {
            Ok((r, now, stats, trace)) => {
                results.push(r);
                rank_times.push(now);
                per_rank.push(stats);
                if let Some(t) = trace {
                    rank_traces.push(t);
                }
            }
            // A failed rank takes precedence, matching `std::thread::scope`
            // semantics; the message keeps the original panic text so
            // callers matching on it still work.
            Err(failure) => panic!("{}", failure.message),
        }
    }
    if config.check_leaks {
        assert_eq!(
            leaked, 0,
            "run finished with {leaked} unreceived message(s): \
             mismatched send/recv in the SPMD program"
        );
    }
    let elapsed_virtual = rank_times.iter().copied().fold(0.0, f64::max);
    let trace = config.traced.then(|| RunTrace {
        ranks: rank_traces,
        rank_times: rank_times.clone(),
        elapsed_virtual,
    });
    SpmdResult {
        results,
        elapsed_virtual,
        rank_times,
        stats: RunStats { per_rank },
        wall_us,
        trace,
    }
}

/// Run `body` as an SPMD computation with `nprocs` processes on the given
/// machine model. Panics in any rank propagate; on completion every sent
/// message must have been received (leak check), which catches mismatched
/// protocols early.
///
/// Ranks execute on a persistent worker pool and the channel network is
/// recycled between calls, so calling this in a loop costs a pool
/// dispatch — not `nprocs` thread spawns plus `nprocs²` channel
/// constructions — per invocation.
///
/// ```
/// use archetype_mp::{run_spmd, MachineModel};
///
/// // Ranks pass their rank number around a ring.
/// let out = run_spmd(3, MachineModel::cray_t3d(), |ctx| {
///     let right = (ctx.rank() + 1) % ctx.nprocs();
///     let left = (ctx.rank() + ctx.nprocs() - 1) % ctx.nprocs();
///     ctx.send(right, 0, ctx.rank() as u64);
///     ctx.recv::<u64>(left, 0)
/// });
/// assert_eq!(out.results, vec![2, 0, 1]);
/// assert!(out.elapsed_virtual > 0.0);
/// ```
pub fn run_spmd<F, R>(nprocs: usize, model: MachineModel, body: F) -> SpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    run_checked(nprocs, model, body, RunConfig::virtual_time())
}

/// [`run_spmd`] with an explicit [`RunConfig`]: the entry point that
/// selects the transport backend. `RunConfig::default()` reproduces
/// [`run_spmd`] exactly; [`RunConfig::real`] runs the same unmodified
/// body on the real lock-free shared-memory backend, whose measured
/// wall-clock time lands in [`SpmdResult::wall_us`]. Results, per-rank
/// clocks, and statistics are bit-identical across backends.
///
/// ```
/// use archetype_mp::{run_spmd_with, MachineModel, RunConfig};
///
/// let body = |ctx: &mut archetype_mp::Ctx| {
///     ctx.all_reduce(ctx.rank() as u64 + 1, |a, b| a + b)
/// };
/// let modeled = run_spmd_with(4, MachineModel::ibm_sp(), RunConfig::default(), body);
/// let measured = run_spmd_with(4, MachineModel::ibm_sp(), RunConfig::real(), body);
/// assert_eq!(modeled.results, measured.results);
/// assert_eq!(modeled.rank_times, measured.rank_times);
/// ```
pub fn run_spmd_with<F, R>(
    nprocs: usize,
    model: MachineModel,
    config: RunConfig,
    body: F,
) -> SpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    run_checked(nprocs, model, body, config)
}

/// Convenience for [`run_spmd_with`]`(…, RunConfig::real(), …)`: run the
/// body on the real shared-memory backend and read the measured time
/// from [`SpmdResult::wall_us`].
pub fn run_spmd_real<F, R>(nprocs: usize, model: MachineModel, body: F) -> SpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    run_spmd_with(nprocs, model, RunConfig::real(), body)
}

/// Like [`run_spmd`] but without the message-leak check. Useful in tests
/// that deliberately exercise failure paths.
pub fn run_spmd_quiet<F, R>(nprocs: usize, model: MachineModel, body: F) -> SpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    let config = RunConfig {
        check_leaks: false,
        ..RunConfig::virtual_time()
    };
    run_checked(nprocs, model, body, config)
}

/// [`run_spmd`] on the seed execution path: fresh OS threads and a fresh
/// channel network every call, nothing pooled or recycled. Kept as the
/// baseline the `substrate_overhead` bench compares against, and for
/// callers that want complete isolation between runs.
pub fn run_spmd_unpooled<F, R>(nprocs: usize, model: MachineModel, body: F) -> SpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    let config = RunConfig {
        pooled: false,
        ..RunConfig::virtual_time()
    };
    run_checked(nprocs, model, body, config)
}

/// Like [`run_spmd`], but rank panics are contained and reported as a
/// structured [`SpmdError`] instead of being re-raised: one panicking
/// rank cannot take the calling thread down, the worker pool stays usable
/// for the next run, and the dirty channel network is quarantined rather
/// than recycled.
///
/// ```
/// use archetype_mp::{try_run_spmd, MachineModel};
///
/// let err = try_run_spmd(2, MachineModel::zero_comm(), |ctx| {
///     if ctx.rank() == 1 {
///         panic!("boom");
///     }
///     ctx.rank()
/// })
/// .unwrap_err();
/// assert_eq!(err.failures().len(), 1);
/// assert_eq!(err.failures()[0].rank, 1);
/// assert!(err.failures()[0].message.contains("boom"));
/// ```
pub fn try_run_spmd<F, R>(
    nprocs: usize,
    model: MachineModel,
    body: F,
) -> Result<SpmdResult<R>, SpmdError>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    try_run_spmd_with(nprocs, model, RunConfig::virtual_time(), body)
}

/// [`try_run_spmd`] with an explicit [`RunConfig`]: contained rank
/// failures on either backend, reported as [`SpmdError::Ranks`].
pub fn try_run_spmd_with<F, R>(
    nprocs: usize,
    model: MachineModel,
    config: RunConfig,
    body: F,
) -> Result<SpmdResult<R>, SpmdError>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    let (outcomes, leaked, wall_us) = run_inner_result(nprocs, model, None, body, config);
    let mut results = Vec::with_capacity(nprocs);
    let mut rank_times = Vec::with_capacity(nprocs);
    let mut per_rank = Vec::with_capacity(nprocs);
    let mut rank_traces = Vec::with_capacity(if config.traced { nprocs } else { 0 });
    let mut failures = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok((r, now, stats, trace)) => {
                results.push(r);
                rank_times.push(now);
                per_rank.push(stats);
                if let Some(t) = trace {
                    rank_traces.push(t);
                }
            }
            Err(failure) => failures.push(failure),
        }
    }
    if !failures.is_empty() {
        return Err(SpmdError::Ranks { failures });
    }
    if config.check_leaks {
        assert_eq!(
            leaked, 0,
            "run finished with {leaked} unreceived message(s): \
             mismatched send/recv in the SPMD program"
        );
    }
    let elapsed_virtual = rank_times.iter().copied().fold(0.0, f64::max);
    let trace = config.traced.then(|| RunTrace {
        ranks: rank_traces,
        rank_times: rank_times.clone(),
        elapsed_virtual,
    });
    Ok(SpmdResult {
        results,
        elapsed_virtual,
        rank_times,
        stats: RunStats { per_rank },
        wall_us,
        trace,
    })
}

/// Run `body` under a deterministic fault schedule: `plan` is shared by
/// every rank (see [`FaultPlan`]), scheduled crashes really panic the
/// rank and are reported as structured per-rank failures, and the
/// channel network is quarantined whenever anything failed or leaked.
///
/// This is the chaos-testing entry point: with an inert plan
/// (`FaultPlan::new(seed)`) it behaves exactly like [`run_spmd`] modulo
/// the `Result`-wrapped outcomes — the configuration whose overhead the
/// `substrate_overhead` bench pins.
///
/// Fault injection is deliberately **virtual-backend-only**: the
/// disconnect-based death signal is the one substrate path whose timing
/// depends on real scheduling, so recovery choreography is validated
/// where it is deterministic. (The fault-free protocols those recoveries
/// wrap run on either backend.)
pub fn run_spmd_ft<F, R>(
    nprocs: usize,
    model: MachineModel,
    plan: FaultPlan,
    body: F,
) -> FtSpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    run_spmd_ft_with(nprocs, model, plan, RunConfig::virtual_time(), body)
        .expect("the virtual backend is always supported")
}

/// [`run_spmd_ft`] with an explicit [`RunConfig`] — and the guard that
/// *enforces* the virtual-only contract: a config selecting
/// [`Backend::Real`] is rejected with a typed
/// [`SpmdError::UnsupportedBackend`] before anything runs, instead of
/// silently executing a fault schedule whose death signal would depend
/// on real scheduling.
///
/// ```
/// use archetype_mp::{run_spmd_ft_with, FaultPlan, MachineModel, RunConfig, SpmdError};
///
/// let err = run_spmd_ft_with(
///     2,
///     MachineModel::zero_comm(),
///     FaultPlan::new(0),
///     RunConfig::real(),
///     |ctx| ctx.rank(),
/// )
/// .unwrap_err();
/// assert!(matches!(err, SpmdError::UnsupportedBackend { .. }));
/// ```
pub fn run_spmd_ft_with<F, R>(
    nprocs: usize,
    model: MachineModel,
    plan: FaultPlan,
    config: RunConfig,
    body: F,
) -> Result<FtSpmdResult<R>, SpmdError>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    if config.backend != Backend::Virtual {
        return Err(SpmdError::UnsupportedBackend {
            entry: "run_spmd_ft",
            backend: config.backend,
        });
    }
    // Fault-injected runs do not report traces: [`FtSpmdResult`] has no
    // trace field, and a crashed rank's recorder dies with its unwind —
    // a partial-trace API is not worth the asymmetry. Tracing is forced
    // off so the recorder is never even installed.
    let config = RunConfig {
        traced: false,
        backend: Backend::Virtual,
        ..config
    };
    let (outcomes, leaked, _wall_us) =
        run_inner_result(nprocs, model, Some(Arc::new(plan)), body, config);
    let mut results = Vec::with_capacity(nprocs);
    let mut rank_times = Vec::with_capacity(nprocs);
    let mut per_rank = Vec::with_capacity(nprocs);
    for outcome in outcomes {
        match outcome {
            Ok((r, now, stats, _trace)) => {
                results.push(Ok(r));
                rank_times.push(now);
                per_rank.push(stats);
            }
            Err(failure) => {
                rank_times.push(failure.clock);
                per_rank.push(failure.stats);
                results.push(Err(failure));
            }
        }
    }
    let elapsed_virtual = rank_times.iter().copied().fold(0.0, f64::max);
    Ok(FtSpmdResult {
        results,
        elapsed_virtual,
        rank_times,
        stats: RunStats { per_rank },
        leaked_messages: leaked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_runs_body_once() {
        let out = run_spmd(1, MachineModel::ibm_sp(), |ctx| {
            ctx.charge_flops(100.0);
            ctx.rank()
        });
        assert_eq!(out.results, vec![0]);
        assert!(out.elapsed_virtual > 0.0);
    }

    #[test]
    fn elapsed_is_max_over_ranks() {
        let out = run_spmd(4, MachineModel::zero_comm(), |ctx| {
            ctx.charge_seconds(ctx.rank() as f64);
        });
        assert_eq!(out.elapsed_virtual, 3.0);
        assert_eq!(out.rank_times, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn determinism_same_program_same_clocks() {
        let run = || {
            run_spmd(8, MachineModel::intel_delta(), |ctx| {
                let x = ctx.all_reduce(ctx.rank() as f64, |a, b| a + b);
                ctx.charge_flops(x * 10.0);
                ctx.barrier();
                ctx.now()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.rank_times, b.rank_times,
            "virtual time must be deterministic"
        );
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn pooled_and_unpooled_agree() {
        let body = |ctx: &mut Ctx| {
            let s = ctx.all_reduce(ctx.rank() as u64 + 1, |a, b| a + b);
            ctx.barrier();
            (s, ctx.now())
        };
        let pooled = run_spmd(6, MachineModel::ibm_sp(), body);
        let unpooled = run_spmd_unpooled(6, MachineModel::ibm_sp(), body);
        assert_eq!(pooled.results, unpooled.results);
        assert_eq!(pooled.rank_times, unpooled.rank_times);
    }

    #[test]
    fn repeated_runs_recycle_the_network() {
        // Uses a process count no other test in this crate runs at, so
        // concurrent tests cannot pop the cached network between the runs
        // and the observation below.
        const N: usize = 23;
        for _ in 0..3 {
            run_spmd(N, MachineModel::zero_comm(), |ctx| {
                ctx.all_reduce(1u64, |a, b| a + b)
            });
        }
        let cached = network_cache()
            .lock()
            .unwrap()
            .by_size
            .get(&(N, Backend::Virtual))
            .map_or(0, Vec::len);
        assert!(cached >= 1, "a clean {N}-rank network should be cached");
    }

    #[test]
    fn oversized_networks_are_not_retained() {
        // 200² channels exceed the cache budget on their own; the run
        // must succeed and the network must be dropped, not cached.
        const N: usize = 200;
        run_spmd(N, MachineModel::zero_comm(), |ctx| ctx.rank());
        let cached = network_cache()
            .lock()
            .unwrap()
            .by_size
            .get(&(N, Backend::Virtual))
            .map_or(0, Vec::len);
        assert_eq!(cached, 0, "an over-budget network must not be cached");
    }

    #[test]
    fn mixed_size_churn_keeps_cache_occupancy_bounded() {
        // Plan-service churn: many distinct subgroup sizes, far more
        // total channel demand than the budget. Sizes 33..56 are unique
        // to this test (and to the process), so the recency assertions
        // below cannot race other tests' cache traffic.
        const SIZES: std::ops::Range<usize> = 33..56;
        let demand: usize = SIZES.map(|n| CACHED_NETWORKS_PER_SIZE * n * n).sum();
        assert!(
            demand > CACHE_CHANNEL_BUDGET,
            "the hammer must oversubscribe the budget to exercise eviction"
        );
        for n in SIZES {
            // Two clean runs per size: fills the per-size slot.
            for _ in 0..CACHED_NETWORKS_PER_SIZE {
                run_spmd(n, MachineModel::zero_comm(), |ctx| {
                    ctx.all_reduce(1u64, |a, b| a + b)
                });
            }
        }
        let cache = network_cache().lock().unwrap();
        assert!(
            cache.channels <= CACHE_CHANNEL_BUDGET,
            "occupancy {} exceeds the channel budget",
            cache.channels
        );
        let recomputed: usize = cache
            .by_size
            .iter()
            .map(|(&(n, _), slot)| n * n * slot.len())
            .sum();
        assert_eq!(cache.channels, recomputed, "channel accounting drifted");
        for slot in cache.by_size.values() {
            assert!(!slot.is_empty(), "empty slots must be pruned");
            assert!(slot.len() <= CACHED_NETWORKS_PER_SIZE);
        }
        // LRU means the *latest* sizes survive and the earliest were
        // evicted to make room for them.
        let freshest = SIZES.end - 1;
        assert!(
            cache.by_size.contains_key(&(freshest, Backend::Virtual)),
            "the most recently released size must still be cached"
        );
        let evicted = SIZES
            .filter(|&n| !cache.by_size.contains_key(&(n, Backend::Virtual)))
            .count();
        assert!(
            evicted > 0,
            "oversubscribing the budget must evict some stale sizes"
        );
    }

    #[test]
    fn ft_runs_reject_the_real_backend_with_a_typed_error() {
        let err = run_spmd_ft_with(
            2,
            MachineModel::zero_comm(),
            FaultPlan::new(7),
            RunConfig::real(),
            |ctx| ctx.rank(),
        )
        .unwrap_err();
        match err {
            SpmdError::UnsupportedBackend { entry, backend } => {
                assert_eq!(entry, "run_spmd_ft");
                assert_eq!(backend, Backend::Real);
                assert!(err.failures().is_empty());
            }
            other => panic!("expected UnsupportedBackend, got {other:?}"),
        }
        // The virtual path through the same entry point still works.
        let ok = run_spmd_ft_with(
            2,
            MachineModel::zero_comm(),
            FaultPlan::new(7),
            RunConfig::virtual_time(),
            |ctx| ctx.rank(),
        )
        .expect("virtual backend is supported");
        assert!(ok.all_ok());
    }

    #[test]
    fn backends_recycle_networks_independently() {
        // Process count unique to this test (see
        // repeated_runs_recycle_the_network for why that matters).
        const N: usize = 29;
        for _ in 0..3 {
            run_spmd(N, MachineModel::zero_comm(), |ctx| {
                ctx.all_reduce(1u64, |a, b| a + b)
            });
            run_spmd_real(N, MachineModel::zero_comm(), |ctx| {
                ctx.all_reduce(1u64, |a, b| a + b)
            });
        }
        let cache = network_cache().lock().unwrap();
        let virt = cache
            .by_size
            .get(&(N, Backend::Virtual))
            .map_or(0, Vec::len);
        let real = cache.by_size.get(&(N, Backend::Real)).map_or(0, Vec::len);
        assert!(virt >= 1, "virtual {N}-rank networks should be cached");
        assert!(real >= 1, "real {N}-rank networks should be cached");
    }

    #[test]
    fn real_backend_matches_virtual_and_measures_wall_time() {
        let body = |ctx: &mut Ctx| {
            let s = ctx.all_reduce(ctx.rank() as u64 + 1, |a, b| a + b);
            let g = ctx.all_gather(ctx.rank() as u64);
            ctx.charge_flops(1000.0);
            ctx.barrier();
            (s, g, ctx.now())
        };
        let modeled = run_spmd(5, MachineModel::ibm_sp(), body);
        let measured = run_spmd_real(5, MachineModel::ibm_sp(), body);
        assert_eq!(modeled.results, measured.results);
        // The model clock is maintained identically on the real backend,
        // so even the virtual times coincide bit-for-bit.
        assert_eq!(modeled.rank_times, measured.rank_times);
        assert_eq!(modeled.elapsed_virtual, measured.elapsed_virtual);
    }

    #[test]
    fn run_config_default_is_run_spmd() {
        let cfg = RunConfig::default();
        assert_eq!(cfg, RunConfig::virtual_time());
        assert_eq!(cfg.backend, Backend::Virtual);
        assert!(cfg.pooled);
        assert!(cfg.check_leaks);
        assert!(!cfg.traced);
        assert_eq!(cfg.trace_capacity, DEFAULT_TRACE_CAPACITY);
        assert_eq!(RunConfig::real().on(Backend::Virtual), cfg);
        assert_eq!(RunConfig::traced(), cfg.with_tracing());
    }

    #[test]
    fn traced_runs_surface_per_rank_event_streams() {
        let cfg = RunConfig::traced();
        let out = run_spmd_with(3, MachineModel::ibm_sp(), cfg, |ctx| {
            let right = (ctx.rank() + 1) % ctx.nprocs();
            let left = (ctx.rank() + ctx.nprocs() - 1) % ctx.nprocs();
            ctx.send(right, 0, ctx.rank() as u64);
            ctx.recv::<u64>(left, 0)
        });
        let trace = out.trace.as_ref().expect("traced run must carry a trace");
        assert_eq!(trace.ranks.len(), 3);
        assert_eq!(trace.total_dropped(), 0);
        for rt in &trace.ranks {
            use crate::trace::TraceEvent;
            assert!(
                matches!(rt.events.first(), Some(TraceEvent::PoolDispatch { .. })),
                "dispatch must open rank {}'s stream",
                rt.rank
            );
            let sends = rt
                .events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Send { .. }))
                .count();
            let recvs = rt
                .events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Recv { .. }))
                .count();
            assert_eq!((sends, recvs), (1, 1), "ring body is one send, one recv");
        }
        // Untraced runs carry nothing.
        let plain = run_spmd(2, MachineModel::ibm_sp(), |ctx| ctx.rank());
        assert!(plain.trace.is_none());
    }

    #[test]
    fn trace_ring_capacity_drops_oldest_but_not_results() {
        let cfg = RunConfig::traced().with_trace_capacity(4);
        let out = run_spmd_with(2, MachineModel::ibm_sp(), cfg, |ctx| {
            let mut acc = 0u64;
            for i in 0..16u64 {
                if ctx.rank() == 0 {
                    ctx.send(1, i, i);
                } else {
                    acc += ctx.recv::<u64>(0, i);
                }
            }
            acc
        });
        assert_eq!(out.results[1], (0..16).sum::<u64>());
        let trace = out.trace.expect("traced");
        assert!(trace.total_dropped() > 0, "tiny ring must wrap");
        assert!(trace.ranks.iter().all(|r| r.events.len() <= 4));
    }

    #[test]
    #[should_panic(expected = "unreceived message")]
    fn leak_check_holds_on_real_backend() {
        run_spmd_real(2, MachineModel::ibm_sp(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, 1u8); // never received
            }
        });
    }

    #[test]
    #[should_panic(expected = "unreceived message")]
    fn leak_check_catches_unmatched_send() {
        run_spmd(2, MachineModel::ibm_sp(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, 1u8);
                ctx.send(1, 0, 2u8); // never received
            } else {
                let _: u8 = ctx.recv(0, 0);
            }
        });
    }

    #[test]
    fn leaky_quiet_runs_do_not_poison_later_runs() {
        // A quiet run that leaves messages in flight must not hand its
        // dirty network to a subsequent same-size run.
        run_spmd_quiet(3, MachineModel::zero_comm(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 77, vec![1u8, 2, 3]); // never received
            }
        });
        let out = run_spmd_quiet(3, MachineModel::zero_comm(), |ctx| {
            // If the dirty network were recycled, the stale tag-77 packet
            // could satisfy this receive with wrong data.
            if ctx.rank() == 1 {
                ctx.send(0, 5, 9u64);
            } else if ctx.rank() == 0 {
                return ctx.recv::<u64>(1, 5);
            }
            0
        });
        assert_eq!(out.results[0], 9);
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        run_spmd_quiet(3, MachineModel::ibm_sp(), |ctx| {
            if ctx.rank() == 1 {
                panic!("rank 1 exploded");
            }
            // Other ranks wait on rank 1 and observe its termination.
            let _: u8 = ctx.recv(1, 0);
        });
    }

    #[test]
    fn speedup_vs_divides() {
        let out = run_spmd(2, MachineModel::zero_comm(), |ctx| {
            ctx.charge_seconds(1.0);
        });
        assert!((out.speedup_vs(2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn many_processes_work() {
        // 100 simulated processors on a small host: the point of the design.
        let out = run_spmd(100, MachineModel::intel_delta(), |ctx| {
            ctx.all_reduce(1u64, |a, b| a + b)
        });
        assert!(out.results.iter().all(|&v| v == 100));
    }
}
