//! SPMD runner: spawns one OS thread per rank, wires up the network, runs
//! the body, and reports results plus virtual-time and traffic statistics.

use crate::ctx::Ctx;
use crate::mailbox::build_network;
use crate::model::MachineModel;
use crate::stats::RunStats;

/// Everything a finished SPMD run reports.
#[derive(Debug)]
pub struct SpmdResult<R> {
    /// Per-rank return values of the body, indexed by rank.
    pub results: Vec<R>,
    /// Elapsed virtual time: the maximum final clock across ranks.
    pub elapsed_virtual: f64,
    /// Final per-rank clocks.
    pub rank_times: Vec<f64>,
    /// Communication/computation statistics per rank.
    pub stats: RunStats,
}

impl<R> SpmdResult<R> {
    /// Speedup of this run relative to a modeled sequential time.
    pub fn speedup_vs(&self, sequential_time: f64) -> f64 {
        if self.elapsed_virtual > 0.0 {
            sequential_time / self.elapsed_virtual
        } else {
            f64::INFINITY
        }
    }
}

fn run_inner<F, R>(nprocs: usize, model: MachineModel, body: F, check_leaks: bool) -> SpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    assert!(nprocs > 0, "need at least one process");
    let (senders_by_dest, mailboxes) = build_network(nprocs);
    // Transpose so each rank *owns* its outgoing channel ends: when a rank
    // panics its senders drop, and peers blocked on receives from it fail
    // fast rather than deadlocking.
    let mut per_src: Vec<Vec<crossbeam::channel::Sender<crate::packet::Packet>>> = (0..nprocs)
        .map(|src| {
            (0..nprocs)
                .map(|dest| senders_by_dest[dest][src].clone())
                .collect()
        })
        .collect();
    drop(senders_by_dest);

    let body = &body;
    let mut outcomes: Vec<Option<(R, f64, crate::stats::RankStats, usize)>> =
        (0..nprocs).map(|_| None).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nprocs);
        let mailboxes_iter = mailboxes.into_iter().enumerate();
        let mut srcs = per_src.drain(..);
        for (rank, mailbox) in mailboxes_iter {
            let senders = srcs.next().expect("one sender row per rank");
            handles.push(scope.spawn(move || {
                let mut ctx = Ctx::new(rank, nprocs, senders, mailbox, model);
                let r = body(&mut ctx);
                (r, ctx.now(), ctx.stats(), ctx.mailbox_unconsumed())
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(out) => outcomes[rank] = Some(out),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });

    let mut results = Vec::with_capacity(nprocs);
    let mut rank_times = Vec::with_capacity(nprocs);
    let mut per_rank = Vec::with_capacity(nprocs);
    for (rank, o) in outcomes.into_iter().enumerate() {
        let (r, t, s, unconsumed) = o.expect("all ranks joined");
        if check_leaks {
            assert_eq!(
                unconsumed, 0,
                "rank {rank} finished with {unconsumed} unreceived message(s): \
                 mismatched send/recv in the SPMD program"
            );
        }
        results.push(r);
        rank_times.push(t);
        per_rank.push(s);
    }
    let elapsed_virtual = rank_times.iter().copied().fold(0.0, f64::max);
    SpmdResult {
        results,
        elapsed_virtual,
        rank_times,
        stats: RunStats { per_rank },
    }
}

/// Run `body` as an SPMD computation with `nprocs` processes on the given
/// machine model. Panics in any rank propagate; on completion every sent
/// message must have been received (leak check), which catches mismatched
/// protocols early.
pub fn run_spmd<F, R>(nprocs: usize, model: MachineModel, body: F) -> SpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    run_inner(nprocs, model, body, true)
}

/// Like [`run_spmd`] but without the message-leak check. Useful in tests
/// that deliberately exercise failure paths.
pub fn run_spmd_quiet<F, R>(nprocs: usize, model: MachineModel, body: F) -> SpmdResult<R>
where
    F: Fn(&mut Ctx) -> R + Sync,
    R: Send,
{
    run_inner(nprocs, model, body, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_runs_body_once() {
        let out = run_spmd(1, MachineModel::ibm_sp(), |ctx| {
            ctx.charge_flops(100.0);
            ctx.rank()
        });
        assert_eq!(out.results, vec![0]);
        assert!(out.elapsed_virtual > 0.0);
    }

    #[test]
    fn elapsed_is_max_over_ranks() {
        let out = run_spmd(4, MachineModel::zero_comm(), |ctx| {
            ctx.charge_seconds(ctx.rank() as f64);
        });
        assert_eq!(out.elapsed_virtual, 3.0);
        assert_eq!(out.rank_times, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn determinism_same_program_same_clocks() {
        let run = || {
            run_spmd(8, MachineModel::intel_delta(), |ctx| {
                let x = ctx.all_reduce(ctx.rank() as f64, |a, b| a + b);
                ctx.charge_flops(x * 10.0);
                ctx.barrier();
                ctx.now()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.rank_times, b.rank_times, "virtual time must be deterministic");
        assert_eq!(a.results, b.results);
    }

    #[test]
    #[should_panic(expected = "unreceived message")]
    fn leak_check_catches_unmatched_send() {
        run_spmd(2, MachineModel::ibm_sp(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, 1u8);
                ctx.send(1, 0, 2u8); // never received
            } else {
                let _: u8 = ctx.recv(0, 0);
            }
        });
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        run_spmd_quiet(3, MachineModel::ibm_sp(), |ctx| {
            if ctx.rank() == 1 {
                panic!("rank 1 exploded");
            }
            // Other ranks wait on rank 1 and observe its termination.
            let _: u8 = ctx.recv(1, 0);
        });
    }

    #[test]
    fn speedup_vs_divides() {
        let out = run_spmd(2, MachineModel::zero_comm(), |ctx| {
            ctx.charge_seconds(1.0);
        });
        assert!((out.speedup_vs(2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn many_processes_work() {
        // 100 simulated processors on a small host: the point of the design.
        let out = run_spmd(100, MachineModel::intel_delta(), |ctx| {
            ctx.all_reduce(1u64, |a, b| a + b)
        });
        assert!(out.results.iter().all(|&v| v == 100));
    }
}
