//! Per-rank execution context: the handle an SPMD process uses to send,
//! receive, and charge compute time against the virtual clock.

use std::sync::Arc;

use crate::fault::{CrashSite, FaultPlan, InjectedCrash, RankDead};
use crate::mailbox::Mailbox;
use crate::model::MachineModel;
use crate::packet::{Packet, PacketBody};
use crate::payload::{Payload, PayloadArena, Shared};
use crate::stats::RankStats;
use crate::trace::{TraceEvent, TraceRecorder};
use crate::transport::{publish_fence, PacketSender};

/// Message tag. Tags with the top bit set are reserved for collectives.
pub type Tag = u64;

pub(crate) const COLLECTIVE_TAG_BASE: u64 = 1 << 63;

/// The per-rank handle passed to the SPMD body by [`crate::run_spmd`].
///
/// One `Ctx` is owned by exactly one thread; interior state (the clock,
/// statistics, the collective sequence number) therefore needs no locking.
/// Each `Ctx` owns the send sides of its outgoing channels, so if a rank
/// panics, peers blocked on a receive from it observe channel closure and
/// fail fast with a "rank terminated" diagnostic instead of deadlocking.
pub struct Ctx {
    rank: usize,
    nprocs: usize,
    /// `senders[dest]` is the channel on which *this* rank sends to
    /// `dest` — backend-selected (virtual-time oracle or real lock-free
    /// links; see [`crate::transport::Backend`]). The `Ctx` itself never
    /// branches on the backend: clock accounting, matching, scoping, and
    /// statistics are byte-for-byte the same code on both, which is why
    /// results are bit-identical across backends.
    senders: Vec<PacketSender>,
    mailbox: Mailbox,
    /// This rank's payload-box freelist: `send` allocates from it,
    /// `recv` returns emptied blocks to it, and it travels with the
    /// mailbox through the network-recycle cache so steady-state
    /// messaging allocates nothing (see
    /// [`PayloadArena`](crate::payload::PayloadArena)'s ownership rules).
    arena: PayloadArena,
    model: MachineModel,
    clock: f64,
    stats: RankStats,
    /// Sequence number stamped into collective tags so that back-to-back
    /// collectives cannot confuse each other's messages.
    pub(crate) coll_seq: u64,
    /// Declared per-process working set, feeding the memory-pressure model.
    working_set_bytes: f64,
    /// Scope id stamped into outgoing packets and required of matching
    /// receives: `0` at the world, a member-list-derived hash inside a
    /// [`Ctx::scoped`] section. Sibling scopes therefore cannot observe
    /// each other's traffic even when their tags collide.
    scope: u64,
    /// `peers[local]` is the *world* rank behind local rank `local` in the
    /// current scope — the mailbox's channels are indexed by world rank,
    /// so scoped receives translate through this table. Identity at the
    /// world.
    peers: Vec<usize>,
    /// Shared fault schedule installed by [`crate::run_spmd_ft`]; `None`
    /// (the default) keeps every injection hook to a single branch.
    fault: Option<Arc<FaultPlan>>,
    /// Precomputed [`FaultPlan::hooks_live`] of the installed plan: false
    /// for no plan *and* for an inert plan, so idle fault-aware runs skip
    /// the per-operation hooks (and their counters) entirely and pay
    /// exactly one predictable branch per send/receive.
    fault_hot: bool,
    /// Per-rank event recorder installed by the runner for traced runs
    /// ([`crate::RunConfig`]`::traced`); `None` — the default — keeps
    /// every trace hook to a single branch. Boxed so the untraced `Ctx`
    /// carries one pointer, not a ring buffer.
    tracer: Option<Box<TraceRecorder>>,
    /// Precomputed `tracer.is_some()`, mirroring `fault_hot`: the hot
    /// path tests one bool instead of matching on the `Option`.
    trace_hot: bool,
    /// Operation counters keying the crash schedule: world-rank-local
    /// indices of sends, receives, and [`Ctx::fault_point`] calls. They
    /// deliberately survive [`Ctx::scoped`] sections — a crash site
    /// addresses the rank's k-th operation of the whole run.
    send_ops: u64,
    recv_ops: u64,
    phase_ops: u64,
}

impl Ctx {
    pub(crate) fn new(
        rank: usize,
        nprocs: usize,
        senders: Vec<PacketSender>,
        mailbox: Mailbox,
        arena: PayloadArena,
        model: MachineModel,
    ) -> Self {
        Ctx {
            rank,
            nprocs,
            senders,
            mailbox,
            arena,
            model,
            clock: 0.0,
            stats: RankStats::default(),
            coll_seq: 0,
            working_set_bytes: 0.0,
            scope: 0,
            peers: (0..nprocs).collect(),
            fault: None,
            fault_hot: false,
            tracer: None,
            trace_hot: false,
            send_ops: 0,
            recv_ops: 0,
            phase_ops: 0,
        }
    }

    /// Install the shared fault schedule (called by [`crate::run_spmd_ft`]
    /// before the body runs).
    pub(crate) fn install_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fault_hot = plan.hooks_live();
        self.fault = Some(plan);
    }

    /// Install the per-rank event recorder (called by the runner before
    /// the body runs when the [`crate::RunConfig`] asks for tracing).
    pub(crate) fn install_tracer(&mut self, tracer: Box<TraceRecorder>) {
        self.trace_hot = true;
        self.tracer = Some(tracer);
    }

    /// Remove and return the recorder (called by the runner after the
    /// body completes, before the network is recycled).
    pub(crate) fn take_tracer(&mut self) -> Option<Box<TraceRecorder>> {
        self.trace_hot = false;
        self.tracer.take()
    }

    /// True when this run is recording trace events — lets callers skip
    /// building expensive labels for untraced runs.
    pub fn is_traced(&self) -> bool {
        self.trace_hot
    }

    /// Record a trace event. Callers gate on `trace_hot`, so the unwrap
    /// of the recorder never fires on the untraced path.
    #[inline]
    fn trace(&mut self, event: TraceEvent) {
        let rec = self.tracer.as_mut().expect("trace_hot implies a recorder");
        rec.record(event);
    }

    /// Nanoseconds since the run's dispatch instant (traced runs only).
    #[inline]
    fn trace_wall_ns(&self) -> u64 {
        self.tracer
            .as_ref()
            .expect("trace_hot implies a recorder")
            .wall_ns()
    }

    /// Record entry into an archetype protocol phase. One branch and
    /// nothing else when the run is untraced, so skeletons call it
    /// unconditionally; `label` is truncated to the inline
    /// [`crate::trace::Label`] capacity without allocating.
    pub fn trace_phase(&mut self, kind: &'static str, label: &str) {
        if !self.trace_hot {
            return;
        }
        let event = TraceEvent::Phase {
            kind,
            label: label.into(),
            vt: self.clock,
            wall_ns: self.trace_wall_ns(),
        };
        self.trace(event);
    }

    /// Record the start of a plan-service wave (called by the compose
    /// layer's serve loop). A no-op for untraced runs.
    pub fn trace_wave_start(&mut self, wave: usize, plans: usize) {
        if !self.trace_hot {
            return;
        }
        let event = TraceEvent::WaveStart {
            wave: wave as u32,
            plans: plans as u32,
            vt: self.clock,
            wall_ns: self.trace_wall_ns(),
        };
        self.trace(event);
    }

    /// Record entry into a collective (called at the top of every
    /// collective in [`crate::collectives`]).
    pub(crate) fn trace_collective(&mut self, name: &'static str) {
        if !self.trace_hot {
            return;
        }
        let event = TraceEvent::Collective {
            name,
            vt: self.clock,
            wall_ns: self.trace_wall_ns(),
        };
        self.trace(event);
    }

    /// Record the rank's dispatch onto its worker (runner-internal;
    /// always the first event of a traced rank).
    pub(crate) fn trace_pool_dispatch(&mut self) {
        if !self.trace_hot {
            return;
        }
        let event = TraceEvent::PoolDispatch {
            vt: self.clock,
            wall_ns: self.trace_wall_ns(),
        };
        self.trace(event);
    }

    /// The active fault schedule, if this run is executing under
    /// [`crate::run_spmd_ft`]. Recovery choreography (the pipeline's
    /// replica failover, the farm's re-execution protocol) consults the
    /// shared plan so that every rank derives the same failure schedule
    /// without extra communication.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref()
    }

    /// This process's rank in `0..nprocs()` — within the current scope
    /// (see [`Ctx::scoped`]); equal to the world rank outside any scope.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of SPMD processes in the current scope (the whole run
    /// outside any [`Ctx::scoped`] section).
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// This process's rank in the *world*, regardless of how deeply the
    /// context is currently scoped.
    pub fn global_rank(&self) -> usize {
        self.peers[self.rank]
    }

    /// World ranks of the current scope's members, indexed by scope rank.
    pub fn peers(&self) -> &[usize] {
        &self.peers
    }

    /// The machine model driving the virtual clock.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// Current virtual time of this rank, in seconds.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Statistics accumulated so far by this rank.
    pub fn stats(&self) -> RankStats {
        self.stats
    }

    /// Declare the per-process working set (bytes). Subsequent compute
    /// charges are scaled by the machine's memory model — see
    /// [`crate::MemoryModel`] — reproducing paging effects.
    pub fn set_working_set(&mut self, bytes: f64) {
        self.working_set_bytes = bytes;
    }

    /// Advance the virtual clock by `seconds` of computation (already
    /// scaled; not subject to the memory model).
    pub fn charge_seconds(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute charge");
        self.clock += seconds;
        self.stats.compute_time += seconds;
    }

    /// Charge `flops` flop-equivalents of computation, scaled by the
    /// memory-pressure model for the declared working set.
    ///
    /// ```
    /// use archetype_mp::{run_spmd, MachineModel};
    ///
    /// // 1e8 flops on a 100 Mflop/s machine is one virtual second.
    /// let out = run_spmd(1, MachineModel::ibm_sp(), |ctx| {
    ///     ctx.charge_flops(1.0e8);
    ///     ctx.now()
    /// });
    /// assert!((out.results[0] - 1.0).abs() < 1e-12);
    /// ```
    pub fn charge_flops(&mut self, flops: f64) {
        let slow = self.model.memory.slowdown(self.working_set_bytes);
        self.charge_seconds(self.model.compute_time(flops) * slow);
    }

    /// Convenience: charge `items × flops_per_item` flop-equivalents.
    pub fn charge_items(&mut self, items: usize, flops_per_item: f64) {
        self.charge_flops(items as f64 * flops_per_item);
    }

    /// Charge send-side costs and put a packet on the wire to `to`.
    fn send_packet(&mut self, to: usize, tag: Tag, bytes: usize, body: PacketBody) {
        self.try_send_packet(to, tag, bytes, body)
            .expect("receiving rank's mailbox closed (rank panicked?)");
    }

    /// Like [`Ctx::send_packet`], but reports a dead destination instead
    /// of panicking (the fault-tolerant protocols' send primitive).
    fn try_send_packet(
        &mut self,
        to: usize,
        tag: Tag,
        bytes: usize,
        body: PacketBody,
    ) -> Result<(), RankDead> {
        self.try_send_packet_inner(to, tag, bytes, body, false)
    }

    /// Shared implementation of the loud and quiet send paths. `quiet`
    /// publishes without the per-message fence/wake handshake — the
    /// fan-out collectives' batching hook (see [`Ctx::finish_fanout`]);
    /// all clock/stats accounting is identical either way, which is what
    /// keeps batched fan-outs bit-identical to per-message sends.
    fn try_send_packet_inner(
        &mut self,
        to: usize,
        tag: Tag,
        bytes: usize,
        body: PacketBody,
        quiet: bool,
    ) -> Result<(), RankDead> {
        assert!(to < self.nprocs, "send to rank {to} out of range");
        let mut arrival_time = self.clock + self.model.wire_time(bytes);
        if self.fault_hot {
            arrival_time += self.fault_send_hook(to, tag);
        }
        self.clock += self.model.send_overhead;
        self.stats.overhead_time += self.model.send_overhead;
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        let dest = self.peers[to];
        if self.trace_hot {
            let event = TraceEvent::Send {
                to: dest as u32,
                scope: self.scope,
                tag,
                bytes: bytes as u64,
                vt: self.clock,
                arrival_vt: arrival_time,
                wall_ns: self.trace_wall_ns(),
            };
            self.trace(event);
        }
        let pkt = Packet {
            from: self.rank,
            scope: self.scope,
            tag,
            bytes,
            arrival_time,
            body,
        };
        let sent = if quiet {
            self.senders[to].send_publish(pkt)
        } else {
            self.senders[to].send(pkt)
        };
        sent.map_err(|_| RankDead { rank: dest })
    }

    /// Quiet variant of [`Ctx::send`] for fan-out loops: publishes the
    /// message without the per-message wake handshake. The caller must
    /// invoke [`Ctx::finish_fanout`] over the same destinations before
    /// blocking on anything.
    pub(crate) fn send_quiet<T: Payload>(&mut self, to: usize, tag: Tag, value: T) {
        let bytes = value.size_bytes();
        let body = PacketBody::Owned(self.arena.alloc_box(value));
        self.try_send_packet_inner(to, tag, bytes, body, true)
            .expect("receiving rank's mailbox closed (rank panicked?)");
    }

    /// Quiet variant of [`Ctx::send_shared`] (see [`Ctx::send_quiet`]).
    pub(crate) fn send_shared_quiet<T: Payload + Sync>(
        &mut self,
        to: usize,
        tag: Tag,
        value: &Shared<T>,
    ) {
        let bytes = value.size_bytes();
        let arc = std::sync::Arc::clone(value.as_arc());
        self.try_send_packet_inner(to, tag, bytes, PacketBody::Shared(arc), true)
            .expect("receiving rank's mailbox closed (rank panicked?)");
    }

    /// Complete a batch of quiet sends: one publication fence for the
    /// whole fan-out, then one parked-flag check per destination. A
    /// fan-out of k messages thus pays 1 fence + k flag reads instead of
    /// k fences + k flag reads — and on the virtual backend this is a
    /// no-op (its channel wakes on send).
    pub(crate) fn finish_fanout(&mut self, dests: impl Iterator<Item = usize>) {
        publish_fence();
        for to in dests {
            self.senders[to].wake();
        }
    }

    /// Fault hooks on the send path: count the operation, fire a
    /// scheduled crash, and return the injected extra latency (0.0 for
    /// most messages). Only called when a plan is installed.
    fn fault_send_hook(&mut self, to: usize, tag: Tag) -> f64 {
        let op = self.send_ops;
        self.send_ops += 1;
        let me = self.peers[self.rank];
        let delay = {
            let plan = self.fault.as_ref().expect("fault plan installed");
            let site = CrashSite::Send(op);
            if plan.crash_hits(me, site) {
                std::panic::panic_any(InjectedCrash {
                    rank: me,
                    clock: self.clock,
                    stats: self.stats,
                    site,
                });
            }
            plan.delay_of(me, self.peers[to], tag, op)
        };
        if delay > 0.0 {
            self.stats.fault_events += 1;
        }
        delay
    }

    /// Fault hooks on the receive path: count the operation and fire a
    /// scheduled crash. Only called when a plan is installed.
    fn fault_recv_hook(&mut self) {
        let op = self.recv_ops;
        self.recv_ops += 1;
        let me = self.peers[self.rank];
        let site = CrashSite::Recv(op);
        if self
            .fault
            .as_ref()
            .expect("fault plan installed")
            .crash_hits(me, site)
        {
            std::panic::panic_any(InjectedCrash {
                rank: me,
                clock: self.clock,
                stats: self.stats,
                site,
            });
        }
    }

    /// Declare a protocol phase boundary — the crash sites recovery
    /// choreography can reason about. Archetype skeletons call this once
    /// per unit of protocol progress (a farm batch, a pipeline item); a
    /// [`FaultPlan`] with a matching [`CrashSite::Phase`] entry kills the
    /// rank here with a real panic. A no-op without an installed plan.
    pub fn fault_point(&mut self) {
        if !self.fault_hot {
            return;
        }
        let op = self.phase_ops;
        self.phase_ops += 1;
        let me = self.peers[self.rank];
        let site = CrashSite::Phase(op);
        if self
            .fault
            .as_ref()
            .expect("fault plan installed")
            .crash_hits(me, site)
        {
            std::panic::panic_any(InjectedCrash {
                rank: me,
                clock: self.clock,
                stats: self.stats,
                site,
            });
        }
    }

    /// Advance the clock past a received packet's arrival and charge
    /// receive-side overhead. Waiting (the clock jump) and the CPU
    /// overhead are charged to separate counters so profiling can tell
    /// blocked-on-peer from substrate cost.
    fn settle_recv(&mut self, arrival_time: f64) {
        if arrival_time > self.clock {
            self.stats.wait_time += arrival_time - self.clock;
            self.clock = arrival_time;
        }
        self.clock += self.model.recv_overhead;
        self.stats.overhead_time += self.model.recv_overhead;
    }

    /// Record a completed receive: `vt_posted` is the clock captured
    /// before matching, everything else comes from the settled packet.
    fn trace_recv(&mut self, sender_world: usize, pkt: &Packet, vt_posted: f64) {
        let event = TraceEvent::Recv {
            from: sender_world as u32,
            scope: pkt.scope,
            tag: pkt.tag,
            bytes: pkt.bytes as u64,
            vt_posted,
            arrival_vt: pkt.arrival_time,
            vt: self.clock,
            wall_ns: self.trace_wall_ns(),
        };
        self.trace(event);
    }

    /// Block for the next matching packet and charge receive-side costs.
    fn recv_packet(&mut self, from: usize, tag: Tag) -> Packet {
        assert!(from < self.nprocs, "recv from rank {from} out of range");
        if self.fault_hot {
            self.fault_recv_hook();
        }
        let vt_posted = self.clock;
        let sender = self.peers[from];
        let pkt = self.mailbox.recv_matching(sender, self.scope, tag);
        self.settle_recv(pkt.arrival_time);
        if self.trace_hot {
            self.trace_recv(sender, &pkt, vt_posted);
        }
        pkt
    }

    /// Like [`Ctx::recv_packet`], but returns `Err` when `from`'s rank has
    /// died with no matching message in flight. No receive-side time is
    /// charged on the error path — the caller models its own detection
    /// timeout, keeping clocks deterministic.
    fn try_recv_packet(&mut self, from: usize, tag: Tag) -> Result<Packet, RankDead> {
        assert!(from < self.nprocs, "recv from rank {from} out of range");
        if self.fault_hot {
            self.fault_recv_hook();
        }
        let vt_posted = self.clock;
        let sender = self.peers[from];
        let pkt = self
            .mailbox
            .try_recv_matching(sender, self.scope, tag)
            .map_err(|_| RankDead { rank: sender })?;
        self.settle_recv(pkt.arrival_time);
        if self.trace_hot {
            self.trace_recv(sender, &pkt, vt_posted);
        }
        Ok(pkt)
    }

    #[cold]
    fn type_mismatch<T>(&self, from: usize, tag: Tag) -> ! {
        panic!(
            "type mismatch receiving (from={from}, tag={tag}) at rank {}: expected {}",
            self.rank,
            std::any::type_name::<T>()
        )
    }

    /// Send `value` to rank `to` with tag `tag`. Non-blocking (buffered),
    /// like an eager-protocol MPI send; costs this rank `send_overhead`
    /// of virtual time and stamps the packet's arrival time.
    ///
    /// ```
    /// use archetype_mp::{run_spmd, MachineModel};
    ///
    /// // Rank 0 sends a vector; rank 1 returns its sum.
    /// let out = run_spmd(2, MachineModel::ibm_sp(), |ctx| {
    ///     if ctx.rank() == 0 {
    ///         ctx.send(1, 7, vec![1i64, 2, 3]);
    ///         0
    ///     } else {
    ///         ctx.recv::<Vec<i64>>(0, 7).iter().sum()
    ///     }
    /// });
    /// assert_eq!(out.results[1], 6);
    /// ```
    pub fn send<T: Payload>(&mut self, to: usize, tag: Tag, value: T) {
        let bytes = value.size_bytes();
        let body = PacketBody::Owned(self.arena.alloc_box(value));
        self.send_packet(to, tag, bytes, body);
    }

    /// Send the payload behind `value` to rank `to` without copying it:
    /// the packet carries a refcounted handle to the same allocation. The
    /// virtual-time cost is identical to [`Ctx::send`] — the simulated
    /// wire still moves every byte — only host copy work is elided. The
    /// receiver must use [`Ctx::recv_shared`].
    pub fn send_shared<T: Payload + Sync>(&mut self, to: usize, tag: Tag, value: &Shared<T>) {
        let bytes = value.size_bytes();
        let arc = std::sync::Arc::clone(value.as_arc());
        self.send_packet(to, tag, bytes, PacketBody::Shared(arc));
    }

    /// Blocking receive of a `T` from rank `from` with tag `tag`.
    ///
    /// Advances the virtual clock to the message arrival time if the
    /// message "arrives in the future", then adds receive overhead.
    ///
    /// # Panics
    /// Panics if the matched message's payload is not a `T` — that is a
    /// protocol bug in the SPMD program — or if the message was sent with
    /// [`Ctx::send_shared`] (receive those with [`Ctx::recv_shared`]).
    pub fn recv<T: Payload>(&mut self, from: usize, tag: Tag) -> T {
        let pkt = self.recv_packet(from, tag);
        match pkt.body {
            PacketBody::Owned(b) => match b.downcast::<T>() {
                // Moving the value out hands the emptied box to this
                // rank's arena — the "freelists returned on recv" half
                // of the allocation-free steady state.
                Ok(v) => self.arena.reclaim(v),
                Err(_) => self.type_mismatch::<T>(from, tag),
            },
            PacketBody::Shared(_) => panic!(
                "rank {}: message (from={from}, tag={tag}) was sent with send_shared; \
                 receive it with recv_shared",
                self.rank
            ),
        }
    }

    /// Blocking receive of a shared payload from rank `from` with tag
    /// `tag`. Accepts messages sent with either [`Ctx::send`] (the owned
    /// value is wrapped without copying) or [`Ctx::send_shared`].
    pub fn recv_shared<T: Payload + Sync>(&mut self, from: usize, tag: Tag) -> Shared<T> {
        let pkt = self.recv_packet(from, tag);
        match pkt.body {
            PacketBody::Shared(arc) => match arc.downcast::<T>() {
                Ok(a) => Shared::from_arc(a),
                Err(_) => self.type_mismatch::<T>(from, tag),
            },
            PacketBody::Owned(b) => match b.downcast::<T>() {
                Ok(v) => Shared::new(self.arena.reclaim(v)),
                Err(_) => self.type_mismatch::<T>(from, tag),
            },
        }
    }

    /// Fault-aware send: like [`Ctx::send`], but (a) a dead destination is
    /// reported as `Err(RankDead)` instead of a panic, and (b) an active
    /// [`FaultPlan`] may drop or duplicate the message on this channel.
    ///
    /// Drops are modeled as virtual retransmissions: each dropped attempt
    /// charges the plan's retransmit timeout to this rank's clock, and
    /// only the surviving copy is put on the wire (capped at
    /// [`crate::fault::MAX_SEND_ATTEMPTS`] attempts, so sends always
    /// terminate). Duplicates really transmit two copies; the matching
    /// [`Ctx::recv_ft`] evaluates the same pure decision function and
    /// discards the extra copy. Both endpoints therefore agree on the
    /// number of copies in flight without any extra communication — the
    /// property that keeps fault schedules deterministic. Because the
    /// drop/duplicate decision is keyed by `(sender, receiver, tag)`,
    /// callers must use per-message-unique tags (the FT protocols embed a
    /// sequence number — see [`crate::tags::ft_tag`]).
    pub fn send_ft<T: Payload + Clone>(
        &mut self,
        to: usize,
        tag: Tag,
        value: T,
    ) -> Result<(), RankDead> {
        let (drops, dup) = match &self.fault {
            Some(plan) if plan.message_faults_enabled() => {
                let me = self.peers[self.rank];
                let peer = self.peers[to];
                let mut attempt = 0u64;
                while plan.drop_at(me, peer, tag, attempt) {
                    attempt += 1;
                }
                (attempt, plan.dup_of(me, peer, tag))
            }
            _ => (0, false),
        };
        if drops > 0 {
            let timeout = self
                .fault
                .as_ref()
                .expect("drops imply an installed plan")
                .retransmit_timeout();
            let penalty = drops as f64 * timeout;
            self.clock += penalty;
            // Retransmission stalls are wait, not CPU overhead: the rank
            // sits out the modeled timeout exactly as it would a late
            // arrival.
            self.stats.wait_time += penalty;
            self.stats.fault_events += drops;
        }
        let bytes = value.size_bytes();
        // Both copies are always attempted (and charged) even if the first
        // fails: whether the receiver's mailbox has closed yet is a
        // real-time race, and an early return here would let that race
        // leak into the sender's clock and operation counters.
        let first = if dup {
            self.stats.fault_events += 1;
            let body = PacketBody::Owned(self.arena.alloc_box(value.clone()));
            self.try_send_packet(to, tag, bytes, body)
        } else {
            Ok(())
        };
        let body = PacketBody::Owned(self.arena.alloc_box(value));
        let second = self.try_send_packet(to, tag, bytes, body);
        first.and(second)
    }

    /// Fault-aware receive matching [`Ctx::send_ft`]: returns
    /// `Err(RankDead)` when `from`'s rank has terminated with no matching
    /// message in flight, and silently discards the second copy of a
    /// message the active [`FaultPlan`] duplicated. No receive-side time
    /// is charged on the error path — recovery protocols charge their own
    /// deterministic detection timeout instead.
    pub fn recv_ft<T: Payload>(&mut self, from: usize, tag: Tag) -> Result<T, RankDead> {
        let dup = match &self.fault {
            Some(plan) if plan.message_faults_enabled() => {
                plan.dup_of(self.peers[from], self.peers[self.rank], tag)
            }
            _ => false,
        };
        let pkt = self.try_recv_packet(from, tag)?;
        if dup {
            // The sender transmitted two copies; drain and drop the second.
            self.try_recv_packet(from, tag)?;
        }
        match pkt.body {
            PacketBody::Owned(b) => match b.downcast::<T>() {
                Ok(v) => Ok(self.arena.reclaim(v)),
                Err(_) => self.type_mismatch::<T>(from, tag),
            },
            PacketBody::Shared(_) => panic!(
                "rank {}: message (from={from}, tag={tag}) was sent with send_shared; \
                 receive it with recv_shared",
                self.rank
            ),
        }
    }

    /// Send to `to` and receive from `from` in one exchange step. The send
    /// is issued first, so symmetric exchanges (`sendrecv` with a partner)
    /// do not deadlock.
    pub fn sendrecv<T: Payload, U: Payload>(
        &mut self,
        to: usize,
        send_value: T,
        from: usize,
        tag: Tag,
    ) -> U {
        self.send(to, tag, send_value);
        self.recv(from, tag)
    }

    /// Narrow this context to a subset of the current scope's ranks and
    /// run `f` against the narrowed view: inside `f`, [`Ctx::rank`] /
    /// [`Ctx::nprocs`] describe the subset, point-to-point and collective
    /// operations address subset-local ranks, and **all** traffic — user
    /// tags, collectives, archetype protocols — is matched in a fresh
    /// scope derived from the member list, the parent scope, and `salt`.
    /// Disjoint sibling scopes therefore run *any* SPMD code
    /// concurrently without interfering, which is what lets whole
    /// archetype skeletons (`run_farm`, `run_pipeline`,
    /// `run_spmd_recursive`, mesh solvers) execute unchanged on a process
    /// subgroup — the substrate of the composition archetype in
    /// `crates/compose`.
    ///
    /// `members` lists the participating ranks as *current-scope* ranks,
    /// strictly increasing; every member must call `scoped` with the same
    /// list and `salt` (the usual SPMD contract, restricted to the
    /// subset). Non-members simply don't call. The clock, statistics, and
    /// working set carry across the boundary: virtual time spent inside
    /// the scope is this rank's time like any other.
    ///
    /// ```
    /// use archetype_mp::{run_spmd, MachineModel};
    ///
    /// // Halves run *different numbers* of collectives concurrently —
    /// // impossible on the world, routine inside disjoint scopes.
    /// let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
    ///     let half: Vec<usize> = if ctx.rank() < 2 { vec![0, 1] } else { vec![2, 3] };
    ///     let sum = ctx.scoped(&half, 7, |ctx| {
    ///         let rounds = if ctx.peers()[0] == 0 { 3 } else { 1 };
    ///         let mut acc = 0;
    ///         for _ in 0..rounds {
    ///             acc = ctx.all_reduce(ctx.global_rank() as u64, |a, b| a + b);
    ///         }
    ///         acc
    ///     });
    ///     ctx.all_reduce(sum, |a, b| a + b) // the world is intact afterwards
    /// });
    /// assert_eq!(out.results, vec![12, 12, 12, 12]); // 2*(0+1) + 2*(2+3)
    /// ```
    ///
    /// # Panics
    /// Panics if `members` is empty, not strictly increasing, out of
    /// range, or does not contain the calling rank.
    pub fn scoped<R>(&mut self, members: &[usize], salt: u64, f: impl FnOnce(&mut Ctx) -> R) -> R {
        assert!(!members.is_empty(), "a scope needs at least one member");
        for w in members.windows(2) {
            assert!(w[0] < w[1], "scope members must be strictly increasing");
        }
        assert!(
            *members.last().expect("nonempty") < self.nprocs,
            "scope member out of range"
        );
        let my_index = members
            .iter()
            .position(|&m| m == self.rank)
            .expect("the calling rank must be a member of the scope");

        let global: Vec<usize> = members.iter().map(|&m| self.peers[m]).collect();
        let sub_senders: Vec<PacketSender> =
            members.iter().map(|&m| self.senders[m].clone()).collect();
        // Child scope id: FNV-1a over the parent scope, the salt, and the
        // members' world identities — so siblings (disjoint member lists),
        // nesting levels (different parents), and repeated sections over
        // the same members (different salts) all get distinct scopes.
        let mut h: u64 = 0xcbf29ce484222325 ^ self.scope;
        h = h.wrapping_mul(0x100000001b3);
        h ^= salt;
        h = h.wrapping_mul(0x100000001b3);
        for &g in &global {
            h ^= g as u64 + 1;
            h = h.wrapping_mul(0x100000001b3);
        }

        let saved_rank = std::mem::replace(&mut self.rank, my_index);
        let saved_nprocs = std::mem::replace(&mut self.nprocs, members.len());
        let saved_scope = std::mem::replace(&mut self.scope, h);
        let saved_seq = std::mem::replace(&mut self.coll_seq, 0);
        let saved_senders = std::mem::replace(&mut self.senders, sub_senders);
        let saved_peers = std::mem::replace(&mut self.peers, global);

        let out = f(self);

        self.rank = saved_rank;
        self.nprocs = saved_nprocs;
        self.scope = saved_scope;
        self.coll_seq = saved_seq;
        self.senders = saved_senders;
        self.peers = saved_peers;
        out
    }

    /// Dismantle the context, returning its channel endpoints and payload
    /// arena so the runner can recycle the network for the next
    /// `run_spmd` call.
    pub(crate) fn into_parts(self) -> (Vec<PacketSender>, Mailbox, PayloadArena) {
        (self.senders, self.mailbox, self.arena)
    }

    /// Reserve a fresh tag namespace for a user-level communication phase
    /// (e.g. a ghost exchange). Like collectives, every rank must execute
    /// the same sequence of phase-tag reservations, which SPMD programs do
    /// by construction; the low 16 bits are free for sub-message numbering.
    pub fn phase_tag(&mut self) -> Tag {
        self.next_collective_tag()
    }

    pub(crate) fn next_collective_tag(&mut self) -> u64 {
        let t = COLLECTIVE_TAG_BASE | (self.coll_seq << 16);
        self.coll_seq += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use crate::model::MachineModel;
    use crate::runner::run_spmd_quiet;

    #[test]
    fn ping_pong_transfers_value_and_advances_clock() {
        let out = run_spmd_quiet(2, MachineModel::ibm_sp(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1i64, 2, 3]);
                ctx.recv::<Vec<i64>>(1, 2)
            } else {
                let v: Vec<i64> = ctx.recv(0, 1);
                let doubled: Vec<i64> = v.iter().map(|x| x * 2).collect();
                ctx.send(0, 2, doubled.clone());
                doubled
            }
        });
        assert_eq!(out.results[0], vec![2, 4, 6]);
        assert_eq!(out.results[1], vec![2, 4, 6]);
        // Round trip must cost at least two latencies.
        assert!(out.elapsed_virtual >= 2.0 * MachineModel::ibm_sp().latency);
    }

    #[test]
    fn receive_waits_for_computing_sender() {
        let m = MachineModel::zero_comm();
        let out = run_spmd_quiet(2, m, |ctx| {
            if ctx.rank() == 0 {
                ctx.charge_seconds(5.0);
                ctx.send(1, 0, 1u8);
                ctx.now()
            } else {
                let _: u8 = ctx.recv(0, 0);
                ctx.now()
            }
        });
        // Receiver did no compute but must still end at >= 5.0 virtual.
        assert!(out.results[1] >= 5.0);
    }

    #[test]
    fn bigger_messages_arrive_later() {
        let m = MachineModel::ibm_sp();
        let arrival = |n: usize| {
            run_spmd_quiet(2, m, move |ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 0, vec![0u8; n]);
                    0.0
                } else {
                    let _: Vec<u8> = ctx.recv(0, 0);
                    ctx.now()
                }
            })
            .results[1]
        };
        assert!(arrival(1_000_000) > arrival(10));
    }

    #[test]
    fn sendrecv_symmetric_exchange_does_not_deadlock() {
        let out = run_spmd_quiet(2, MachineModel::ibm_sp(), |ctx| {
            let partner = 1 - ctx.rank();
            let got: u64 = ctx.sendrecv(partner, ctx.rank() as u64, partner, 7);
            got
        });
        assert_eq!(out.results, vec![1, 0]);
    }

    #[test]
    fn working_set_scales_compute_charges() {
        let m = MachineModel::ibm_sp_with_memory(1e6, 1.0);
        let out = run_spmd_quiet(1, m, |ctx| {
            ctx.charge_flops(1e6);
            let small = ctx.now();
            ctx.set_working_set(2e6); // 2x capacity -> slowdown 2
            ctx.charge_flops(1e6);
            (small, ctx.now())
        });
        let (small, total) = out.results[0];
        let second = total - small;
        assert!((second - 2.0 * small).abs() < 1e-9);
    }

    #[test]
    fn scoped_siblings_with_colliding_tags_stay_isolated() {
        use crate::model::MachineModel;
        use crate::runner::run_spmd;
        // Both halves run the *same* program with the same tags — only
        // the scope ids differ. Every value observed must come from the
        // caller's own half.
        let out = run_spmd(4, MachineModel::ibm_sp(), |ctx| {
            let half: Vec<usize> = if ctx.rank() < 2 {
                vec![0, 1]
            } else {
                vec![2, 3]
            };
            let marker = (ctx.rank() / 2) as u64;
            let got = ctx.scoped(&half, 1, |ctx| {
                let partner = 1 - ctx.rank();
                // Extra unmatched-order traffic to stress the buffer.
                ctx.send(partner, 40, marker * 100);
                ctx.send(partner, 41, marker);
                let late: u64 = ctx.recv(partner, 41);
                let early: u64 = ctx.recv(partner, 40);
                (early, late)
            });
            let world = ctx.all_reduce(1u64, |a, b| a + b);
            (got, world)
        });
        for (r, ((early, late), world)) in out.results.iter().enumerate() {
            let m = (r / 2) as u64;
            assert_eq!((*early, *late), (m * 100, m), "rank {r}");
            assert_eq!(*world, 4);
        }
    }

    #[test]
    fn nested_scopes_translate_ranks_and_restore_the_parent() {
        use crate::model::MachineModel;
        use crate::runner::run_spmd;
        let out = run_spmd(8, MachineModel::ibm_sp(), |ctx| {
            let half: Vec<usize> = if ctx.rank() < 4 {
                vec![0, 1, 2, 3]
            } else {
                vec![4, 5, 6, 7]
            };
            let (inner_sum, inner_peers) = ctx.scoped(&half, 2, |ctx| {
                assert_eq!(ctx.nprocs(), 4);
                let quarter: Vec<usize> = if ctx.rank() < 2 {
                    vec![0, 1]
                } else {
                    vec![2, 3]
                };
                ctx.scoped(&quarter, 3, |ctx| {
                    assert_eq!(ctx.nprocs(), 2);
                    let s = ctx.all_reduce(ctx.global_rank() as u64, |a, b| a + b);
                    (s, ctx.peers().to_vec())
                })
            });
            assert_eq!(ctx.nprocs(), 8, "world restored");
            assert_eq!(ctx.global_rank(), ctx.rank());
            (inner_sum, inner_peers)
        });
        for (r, (sum, peers)) in out.results.iter().enumerate() {
            let base = r - r % 2;
            assert_eq!(*sum, (base + base + 1) as u64, "rank {r}");
            assert_eq!(peers, &vec![base, base + 1], "rank {r}");
        }
    }

    #[test]
    fn repeated_scoped_sections_over_same_members_get_distinct_scopes() {
        use crate::model::MachineModel;
        use crate::runner::run_spmd;
        // Two back-to-back sections over the same member list but
        // different salts: a send left pending from the first section
        // (matched later) must not satisfy the second section's receive.
        let out = run_spmd(2, MachineModel::ibm_sp(), |ctx| {
            let all = [0usize, 1];
            if ctx.rank() == 0 {
                ctx.scoped(&all, 10, |ctx| ctx.send(1, 9, 111u64));
                ctx.scoped(&all, 11, |ctx| ctx.send(1, 9, 222u64));
                0
            } else {
                // Receive the *second* section's message first.
                let b = ctx.scoped(&all, 11, |ctx| ctx.recv::<u64>(0, 9));
                let a = ctx.scoped(&all, 10, |ctx| ctx.recv::<u64>(0, 9));
                assert_eq!((a, b), (111, 222));
                a + b
            }
        });
        assert_eq!(out.results[1], 333);
    }

    #[test]
    #[should_panic(expected = "must be a member")]
    fn scoped_requires_membership() {
        use crate::model::MachineModel;
        use crate::runner::run_spmd_quiet;
        run_spmd_quiet(2, MachineModel::ibm_sp(), |ctx| {
            if ctx.rank() == 1 {
                ctx.scoped(&[0], 0, |_| ());
            }
        });
    }

    #[test]
    #[should_panic]
    fn type_mismatch_panics() {
        run_spmd_quiet(2, MachineModel::zero_comm(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, 1u32);
            } else {
                let _: u64 = ctx.recv(0, 0);
            }
        });
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let out = run_spmd_quiet(2, MachineModel::ibm_sp(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![0f64; 10]);
                ctx.send(1, 1, 3u8);
            } else {
                let _: Vec<f64> = ctx.recv(0, 0);
                let _: u8 = ctx.recv(0, 1);
            }
            ctx.stats()
        });
        assert_eq!(out.results[0].msgs_sent, 2);
        assert_eq!(out.results[0].bytes_sent, 81);
        assert_eq!(out.results[1].msgs_sent, 0);
        assert!(out.results[1].comm_time() > 0.0);
        assert!(out.results[1].overhead_time > 0.0);
    }
}
