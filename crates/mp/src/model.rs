//! Machine cost models for virtual-time simulation.
//!
//! A [`MachineModel`] is a small LogGP-style parameterization of a target
//! machine: how long a unit of compute takes, how long a message takes to
//! cross the network, and how much CPU time send/receive overhead costs.
//! The presets approximate the machines in the paper's evaluation (Intel
//! Delta, IBM SP, Cray T3D, Ethernet-connected workstations). Absolute
//! values are rough — the reproduction targets the *shape* of the speedup
//! curves, which depends on ratios (compute per byte communicated), not on
//! absolute 1990s hardware constants.

/// Optional memory-pressure model.
///
/// The paper's Figure 18 (spectral code) shows *superlinear* speedup at
/// small processor counts because the per-process working set at the base
/// configuration exceeded physical memory ("ineficiencies in executing the
/// code on the base number of processors (e.g. paging)"). This model
/// reproduces that effect: when a process declares a working set larger
/// than `capacity_bytes`, its compute charges are multiplied by
/// `1 + paging_factor * (ws/capacity - 1)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryModel {
    /// Physical memory available to one process, in bytes.
    pub capacity_bytes: f64,
    /// Strength of the paging slowdown once the working set exceeds capacity.
    pub paging_factor: f64,
}

impl MemoryModel {
    /// A model with effectively infinite memory (no paging penalty).
    pub const fn unlimited() -> Self {
        MemoryModel {
            capacity_bytes: f64::INFINITY,
            paging_factor: 0.0,
        }
    }

    /// Compute-time multiplier for a given per-process working set.
    pub fn slowdown(&self, working_set_bytes: f64) -> f64 {
        if working_set_bytes <= self.capacity_bytes {
            1.0
        } else {
            1.0 + self.paging_factor * (working_set_bytes / self.capacity_bytes - 1.0)
        }
    }
}

/// LogGP-style cost model of a message-passing machine.
///
/// All times are in seconds. A message of `b` bytes sent at sender virtual
/// time `t` costs the sender `send_overhead` of CPU time and arrives at
/// `t + send_overhead + latency + b * byte_time`; the receiver additionally
/// pays `recv_overhead` of CPU time when it picks the message up.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineModel {
    /// Human-readable machine name (appears in reports).
    pub name: &'static str,
    /// Seconds per flop-equivalent unit of work (inverse of achieved flop/s).
    pub flop_time: f64,
    /// Network latency per message (the LogP `L`).
    pub latency: f64,
    /// Seconds per byte of message payload (inverse bandwidth, LogGP `G`).
    pub byte_time: f64,
    /// Sender CPU overhead per message (LogP `o`).
    pub send_overhead: f64,
    /// Receiver CPU overhead per message.
    pub recv_overhead: f64,
    /// Memory-pressure model (paging when working sets exceed capacity).
    pub memory: MemoryModel,
}

impl MachineModel {
    /// Intel Touchstone Delta: ~25 Mflop/s achieved per i860 node,
    /// ~72 µs message latency, ~10 MB/s achievable bandwidth.
    pub const fn intel_delta() -> Self {
        MachineModel {
            name: "Intel Delta",
            flop_time: 1.0 / 25.0e6,
            latency: 72.0e-6,
            byte_time: 1.0 / 10.0e6,
            send_overhead: 10.0e-6,
            recv_overhead: 10.0e-6,
            memory: MemoryModel::unlimited(),
        }
    }

    /// IBM SP (SP-2 thin nodes): ~100 Mflop/s achieved, ~40 µs latency,
    /// ~35 MB/s bandwidth.
    pub const fn ibm_sp() -> Self {
        MachineModel {
            name: "IBM SP",
            flop_time: 1.0 / 100.0e6,
            latency: 40.0e-6,
            byte_time: 1.0 / 35.0e6,
            send_overhead: 5.0e-6,
            recv_overhead: 5.0e-6,
            memory: MemoryModel::unlimited(),
        }
    }

    /// IBM SP with a finite per-node memory, for Figure 18's paging regime.
    pub const fn ibm_sp_with_memory(capacity_bytes: f64, paging_factor: f64) -> Self {
        let mut m = Self::ibm_sp();
        m.memory = MemoryModel {
            capacity_bytes,
            paging_factor,
        };
        m
    }

    /// Cray T3D: fast network relative to compute (~2 µs latency,
    /// ~120 MB/s), ~50 Mflop/s achieved per Alpha node.
    pub const fn cray_t3d() -> Self {
        MachineModel {
            name: "Cray T3D",
            flop_time: 1.0 / 50.0e6,
            latency: 2.0e-6,
            byte_time: 1.0 / 120.0e6,
            send_overhead: 1.0e-6,
            recv_overhead: 1.0e-6,
            memory: MemoryModel::unlimited(),
        }
    }

    /// Network of workstations over 10 Mbit Ethernet: high latency, low
    /// bandwidth relative to node compute speed.
    pub const fn workstation_network() -> Self {
        MachineModel {
            name: "Workstation network (Ethernet)",
            flop_time: 1.0 / 60.0e6,
            latency: 800.0e-6,
            byte_time: 1.0 / 1.0e6,
            send_overhead: 100.0e-6,
            recv_overhead: 100.0e-6,
            memory: MemoryModel::unlimited(),
        }
    }

    /// An idealized machine with zero communication cost. Useful in tests
    /// for isolating compute-cost accounting and as an upper bound.
    pub const fn zero_comm() -> Self {
        MachineModel {
            name: "ideal (zero communication cost)",
            flop_time: 1.0 / 100.0e6,
            latency: 0.0,
            byte_time: 0.0,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            memory: MemoryModel::unlimited(),
        }
    }

    /// Virtual-time cost of transferring `bytes` as one message, excluding
    /// receiver overhead: `send_overhead + latency + bytes * byte_time`.
    pub fn wire_time(&self, bytes: usize) -> f64 {
        self.send_overhead + self.latency + bytes as f64 * self.byte_time
    }

    /// Virtual-time cost of `flops` flop-equivalents of computation.
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops * self.flop_time
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        Self::ibm_sp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_is_affine_in_bytes() {
        let m = MachineModel::ibm_sp();
        let t0 = m.wire_time(0);
        let t1 = m.wire_time(1000);
        let t2 = m.wire_time(2000);
        assert!(t1 > t0);
        let d1 = t1 - t0;
        let d2 = t2 - t1;
        assert!((d1 - d2).abs() < 1e-12, "per-byte cost must be constant");
    }

    #[test]
    fn compute_time_scales_linearly() {
        let m = MachineModel::intel_delta();
        assert!((m.compute_time(2.0e6) - 2.0 * m.compute_time(1.0e6)).abs() < 1e-12);
    }

    #[test]
    fn zero_comm_model_has_free_messages() {
        let m = MachineModel::zero_comm();
        assert_eq!(m.wire_time(1 << 20), 0.0);
    }

    #[test]
    fn unlimited_memory_never_pages() {
        let mm = MemoryModel::unlimited();
        assert_eq!(mm.slowdown(1e30), 1.0);
    }

    #[test]
    fn paging_slowdown_kicks_in_above_capacity() {
        let mm = MemoryModel {
            capacity_bytes: 1e6,
            paging_factor: 2.0,
        };
        assert_eq!(mm.slowdown(0.5e6), 1.0);
        assert_eq!(mm.slowdown(1.0e6), 1.0);
        // ws = 2x capacity -> slowdown 1 + 2*(2-1) = 3
        assert!((mm.slowdown(2.0e6) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn presets_have_positive_parameters() {
        for m in [
            MachineModel::intel_delta(),
            MachineModel::ibm_sp(),
            MachineModel::cray_t3d(),
            MachineModel::workstation_network(),
        ] {
            assert!(m.flop_time > 0.0);
            assert!(m.latency > 0.0);
            assert!(m.byte_time > 0.0);
        }
    }
}
