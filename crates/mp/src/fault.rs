//! Seeded, fully deterministic fault injection for the SPMD substrate.
//!
//! A [`FaultPlan`] is a pure function from a splittable seed to a fault
//! schedule: message delays, message drops and duplications on the
//! fault-aware channel ([`crate::Ctx::send_ft`]/[`crate::Ctx::recv_ft`]),
//! and rank crashes at the k-th send, receive, or protocol phase
//! boundary. Every decision is a hash of the seed and the operation's
//! coordinates (ranks, tag, operation index), never of wall-clock state,
//! so a chaos run with a given plan is exactly reproducible: the same
//! ranks die at the same protocol points, the same messages are delayed
//! by the same virtual latencies, and the recovered results — and for
//! protocol-visible crash sites even the virtual clocks — are
//! bit-identical across repetitions.
//!
//! The plan is *globally shared*: one `Arc<FaultPlan>` is threaded
//! through every rank's [`crate::Ctx`] by [`crate::run_spmd_ft`]. That is
//! what makes choreographed recovery possible — a recovery protocol may
//! consult the plan (e.g. the pipeline's replica failover derives its
//! re-routing from the crash schedule), while the crash itself is a real
//! `panic!` that really tears the rank down and is really contained by
//! the runner.
//!
//! Injection semantics:
//!
//! - **Delay** faults apply to *every* point-to-point send: the packet's
//!   virtual arrival time is pushed back by a seeded extra latency.
//!   Delays are safe under any protocol (blocking matched receives just
//!   observe a later clock), so they can be injected under unmodified
//!   archetypes.
//! - **Drop** and **duplicate** faults apply only to the fault-aware
//!   channel: [`crate::Ctx::send_ft`] replays dropped attempts after a
//!   virtual retransmission timeout, and [`crate::Ctx::recv_ft`] consumes
//!   and discards duplicate copies. Both ends evaluate the same pure
//!   decision function, so the retransmission/dedup protocol needs no
//!   extra control traffic.
//! - **Crash** faults fire as real panics (payload [`InjectedCrash`]) at
//!   a deterministic operation index; peers observe the death through
//!   channel disconnection ([`RankDead`]) and the runner reports it as a
//!   structured failure instead of resuming the unwind.

use crate::stats::RankStats;

/// A rank never retries a fault-aware send more than this many times:
/// attempt indices at or beyond `MAX_SEND_ATTEMPTS - 1` are never
/// dropped, so every `send_ft` terminates.
pub const MAX_SEND_ATTEMPTS: u64 = 4;

/// Where in a rank's execution an injected crash fires. Operation
/// indices are 0-based and count from the start of the SPMD run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashSite {
    /// At the rank's k-th point-to-point send.
    Send(u64),
    /// At the rank's k-th point-to-point receive.
    Recv(u64),
    /// At the rank's k-th [`crate::Ctx::fault_point`] call — the
    /// protocol-visible phase boundaries archetypes place between units
    /// of work (a farm batch, a pipeline item), which is what makes
    /// recovery choreography and bit-identical re-execution possible.
    Phase(u64),
}

impl std::fmt::Display for CrashSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashSite::Send(k) => write!(f, "send #{k}"),
            CrashSite::Recv(k) => write!(f, "recv #{k}"),
            CrashSite::Phase(k) => write!(f, "phase boundary #{k}"),
        }
    }
}

/// One scheduled rank crash: world rank `rank` dies at `site`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The world rank that crashes.
    pub rank: usize,
    /// The operation at which it crashes.
    pub site: CrashSite,
}

/// The panic payload of an injected crash. The runner downcasts it to
/// recover the dying rank's virtual clock and statistics at the moment
/// of death, which a plain `&str` panic payload cannot carry.
#[derive(Clone, Debug)]
pub struct InjectedCrash {
    /// World rank that died.
    pub rank: usize,
    /// Virtual clock at the moment of death.
    pub clock: f64,
    /// Substrate statistics accumulated up to the death.
    pub stats: RankStats,
    /// The crash site that fired.
    pub site: CrashSite,
}

/// Error returned by the fault-aware channel operations when the peer's
/// rank has died (its channel endpoints were torn down by the unwind).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankDead {
    /// World rank of the dead peer.
    pub rank: usize,
}

impl std::fmt::Display for RankDead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} is dead (channel disconnected)", self.rank)
    }
}

impl std::error::Error for RankDead {}

// Decision-kind salts keeping the per-kind hash streams independent.
const SALT_DELAY: u64 = 0x64656c61; // "dela"
const SALT_DROP: u64 = 0x64726f70; // "drop"
const SALT_DUP: u64 = 0x6475706c; // "dupl"
const SALT_ATOM: u64 = 0x61746f6d; // "atom"

/// A deterministic fault schedule, keyed off a splittable seed.
///
/// Build one with [`FaultPlan::new`] (an inert plan: hooks installed,
/// nothing injected — the configuration the idle-overhead bench pins)
/// and the builder methods, then hand it to [`crate::run_spmd_ft`].
///
/// ```
/// use archetype_mp::{run_spmd_ft, CrashSite, FaultPlan, MachineModel};
///
/// // Rank 1 dies at its first send; the runner reports it structurally.
/// let plan = FaultPlan::new(7).crash(1, CrashSite::Send(0));
/// let out = run_spmd_ft(2, MachineModel::zero_comm(), plan, |ctx| {
///     if ctx.rank() == 1 {
///         ctx.send(0, 5, 42u64); // fires the injected crash
///     }
///     ctx.rank()
/// });
/// assert!(out.results[0].is_ok());
/// let failure = out.results[1].as_ref().unwrap_err();
/// assert_eq!(failure.rank, 1);
/// assert!(failure.injected);
/// ```
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    delay_prob: f64,
    delay_secs: f64,
    drop_prob: f64,
    dup_prob: f64,
    retransmit_timeout: f64,
    atom_fail_prob: f64,
    crashes: Vec<CrashSpec>,
    forced_atom_failures: Vec<(u64, u32)>,
}

impl FaultPlan {
    /// An inert plan with the given seed: the injection hooks run on
    /// every operation but inject nothing.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            delay_prob: 0.0,
            delay_secs: 0.0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            retransmit_timeout: 100e-6,
            atom_fail_prob: 0.0,
            crashes: Vec::new(),
            forced_atom_failures: Vec::new(),
        }
    }

    /// Delay each point-to-point message with probability `prob` by up to
    /// `max_secs` of extra virtual latency (the exact amount is seeded).
    pub fn delays(mut self, prob: f64, max_secs: f64) -> Self {
        self.delay_prob = prob;
        self.delay_secs = max_secs;
        self
    }

    /// Drop each fault-aware send attempt with probability `prob`
    /// (bounded by [`MAX_SEND_ATTEMPTS`], so sends always terminate).
    pub fn drops(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Duplicate each fault-aware message with probability `prob`; the
    /// receiver consumes and discards the extra copy.
    pub fn duplicates(mut self, prob: f64) -> Self {
        self.dup_prob = prob;
        self
    }

    /// Virtual time a fault-aware sender charges per dropped attempt
    /// before retransmitting (default 100 µs).
    pub fn with_retransmit_timeout(mut self, secs: f64) -> Self {
        self.retransmit_timeout = secs;
        self
    }

    /// Schedule world rank `rank` to crash at `site`.
    pub fn crash(mut self, rank: usize, site: CrashSite) -> Self {
        self.crashes.push(CrashSpec { rank, site });
        self
    }

    /// Fail each composition-atom attempt with probability `prob`
    /// (consulted by `compose`'s retry loop; see its `RetryPolicy`).
    pub fn atom_failures(mut self, prob: f64) -> Self {
        self.atom_fail_prob = prob;
        self
    }

    /// Force the atom at plan-preorder index `node` to fail its first
    /// `times` attempts, regardless of the probabilistic schedule.
    pub fn fail_atom(mut self, node: u64, times: u32) -> Self {
        self.forced_atom_failures.push((node, times));
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled crashes (recovery choreography, e.g. the pipeline's
    /// replica failover, derives its re-routing from these).
    pub fn crashes(&self) -> &[CrashSpec] {
        &self.crashes
    }

    /// True if any per-message fault (delay/drop/duplicate) can fire —
    /// the hot-path early-out for the idle configuration.
    pub fn message_faults_enabled(&self) -> bool {
        self.delay_prob > 0.0 || self.drop_prob > 0.0 || self.dup_prob > 0.0
    }

    /// True if the per-operation substrate hooks (send/receive/phase) can
    /// ever fire for this plan: a scheduled crash or a nonzero delay
    /// probability. When false the substrate skips the hook calls — and
    /// their operation counters — entirely, so an inert plan's runs are
    /// indistinguishable from plain runs on the hot path. Drop/duplicate
    /// faults are handled inside the fault-aware channel primitives and
    /// atom failures inside the composition retry loop, neither of which
    /// goes through these hooks.
    pub fn hooks_live(&self) -> bool {
        !self.crashes.is_empty() || self.delay_prob > 0.0
    }

    /// The retransmission timeout charged per dropped attempt.
    pub fn retransmit_timeout(&self) -> f64 {
        self.retransmit_timeout
    }

    /// Extra virtual latency injected into message number `seq` from
    /// world rank `from` to world rank `to` under tag `tag` (0.0 for
    /// most messages).
    pub fn delay_of(&self, from: usize, to: usize, tag: u64, seq: u64) -> f64 {
        if self.delay_prob <= 0.0 {
            return 0.0;
        }
        let h = self.mix(&[SALT_DELAY, from as u64, to as u64, tag, seq]);
        if unit(h) < self.delay_prob {
            // A second independent draw sizes the delay in (0, max].
            self.delay_secs * unit(splitmix64(h))
        } else {
            0.0
        }
    }

    /// True if attempt `attempt` of the fault-aware message `tag` from
    /// world rank `from` to world rank `to` is dropped. Both endpoints
    /// evaluate this identically, which is what lets the receiver await
    /// exactly the attempts that were really transmitted.
    pub fn drop_at(&self, from: usize, to: usize, tag: u64, attempt: u64) -> bool {
        if self.drop_prob <= 0.0 || attempt >= MAX_SEND_ATTEMPTS - 1 {
            return false;
        }
        unit(self.mix(&[SALT_DROP, from as u64, to as u64, tag, attempt])) < self.drop_prob
    }

    /// True if the fault-aware message `tag` from world rank `from` to
    /// world rank `to` is duplicated (the successful attempt is sent
    /// twice; the receiver discards the second copy).
    pub fn dup_of(&self, from: usize, to: usize, tag: u64) -> bool {
        if self.dup_prob <= 0.0 {
            return false;
        }
        unit(self.mix(&[SALT_DUP, from as u64, to as u64, tag])) < self.dup_prob
    }

    /// True if world rank `rank`'s operation `site` is a scheduled crash
    /// point.
    pub fn crash_hits(&self, rank: usize, site: CrashSite) -> bool {
        self.crashes
            .iter()
            .any(|c| c.rank == rank && c.site == site)
    }

    /// The earliest scheduled phase-boundary crash for world rank `rank`,
    /// if any — the handle recovery choreography keys off.
    pub fn first_phase_crash(&self, rank: usize) -> Option<u64> {
        self.crashes
            .iter()
            .filter_map(|c| match c.site {
                CrashSite::Phase(k) if c.rank == rank => Some(k),
                _ => None,
            })
            .min()
    }

    /// True if attempt `attempt` (0-based) of the composition atom at
    /// plan-preorder index `node` fails. Every rank of the atom's group
    /// evaluates this identically, so retries and the final verdict are
    /// collective without extra communication.
    pub fn atom_fails(&self, node: u64, attempt: u32) -> bool {
        if self
            .forced_atom_failures
            .iter()
            .any(|&(n, times)| n == node && (attempt as u64) < times as u64)
        {
            return true;
        }
        if self.atom_fail_prob <= 0.0 {
            return false;
        }
        unit(self.mix(&[SALT_ATOM, node, attempt as u64])) < self.atom_fail_prob
    }

    /// Fold the decision coordinates into the seed (splittable-seed
    /// style: each field advances a splitmix64 stream).
    fn mix(&self, parts: &[u64]) -> u64 {
        parts
            .iter()
            .fold(splitmix64(self.seed), |h, &p| splitmix64(h ^ p))
    }
}

/// The splitmix64 output function: a single avalanche step with full
/// 64-bit dispersion; the workspace's standard seeded-decision hash.
fn splitmix64(z: u64) -> u64 {
    let mut x = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a hash to the unit interval [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(42)
            .delays(0.5, 1e-3)
            .drops(0.3)
            .duplicates(0.2);
        let b = a.clone();
        for seq in 0..200 {
            assert_eq!(a.delay_of(0, 1, 7, seq), b.delay_of(0, 1, 7, seq));
            assert_eq!(a.drop_at(0, 1, 7, seq), b.drop_at(0, 1, 7, seq));
            assert_eq!(a.dup_of(0, 1, seq), b.dup_of(0, 1, seq));
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(1).delays(0.5, 1e-3);
        let b = FaultPlan::new(2).delays(0.5, 1e-3);
        let differ = (0..64).any(|s| a.delay_of(0, 1, 9, s) != b.delay_of(0, 1, 9, s));
        assert!(differ, "seed must steer the schedule");
    }

    #[test]
    fn drop_schedule_respects_the_attempt_cap() {
        let plan = FaultPlan::new(3).drops(1.0); // drop everything droppable
        for attempt in 0..MAX_SEND_ATTEMPTS - 1 {
            assert!(plan.drop_at(0, 1, 11, attempt));
        }
        assert!(
            !plan.drop_at(0, 1, 11, MAX_SEND_ATTEMPTS - 1),
            "the final attempt must always go through"
        );
    }

    #[test]
    fn probabilities_land_in_the_right_ballpark() {
        let plan = FaultPlan::new(9).delays(0.25, 1e-3);
        let hits = (0..4000)
            .filter(|&s| plan.delay_of(0, 1, 13, s) > 0.0)
            .count();
        assert!((800..1200).contains(&hits), "got {hits} delays of 4000");
    }

    #[test]
    fn inert_plan_injects_nothing() {
        let plan = FaultPlan::new(77);
        assert!(!plan.message_faults_enabled());
        assert_eq!(plan.delay_of(0, 1, 3, 0), 0.0);
        assert!(!plan.drop_at(0, 1, 3, 0));
        assert!(!plan.dup_of(0, 1, 3));
        assert!(!plan.atom_fails(0, 0));
        assert!(plan.first_phase_crash(0).is_none());
    }

    #[test]
    fn forced_atom_failures_override_the_probabilistic_schedule() {
        let plan = FaultPlan::new(5).fail_atom(4, 2);
        assert!(plan.atom_fails(4, 0));
        assert!(plan.atom_fails(4, 1));
        assert!(!plan.atom_fails(4, 2));
        assert!(!plan.atom_fails(3, 0));
    }

    #[test]
    fn crash_sites_match_exactly() {
        let plan = FaultPlan::new(0)
            .crash(2, CrashSite::Send(5))
            .crash(3, CrashSite::Phase(1));
        assert!(plan.crash_hits(2, CrashSite::Send(5)));
        assert!(!plan.crash_hits(2, CrashSite::Send(4)));
        assert!(!plan.crash_hits(1, CrashSite::Send(5)));
        assert_eq!(plan.first_phase_crash(3), Some(1));
        assert_eq!(plan.first_phase_crash(2), None);
        assert_eq!(CrashSite::Phase(1).to_string(), "phase boundary #1");
    }
}
