//! Persistent worker pool for the SPMD runner.
//!
//! The seed runner spawned `nprocs` fresh OS threads per [`crate::run_spmd`]
//! call, so benches and services invoking it in a loop paid n×thread-spawn
//! per invocation — more than the archetype body itself for small runs.
//! This pool keeps workers alive across calls: a dispatch hands each rank
//! to an already-running thread through that thread's private channel.
//!
//! Every rank of an SPMD run *blocks* on receives from its peers, so a
//! batch of `n` ranks needs `n` threads running concurrently — a
//! fixed-size pool with a shared queue would deadlock (queued ranks would
//! wait forever on running ranks that wait on them). Dispatch therefore
//! *reserves* one worker per rank up front, growing the pool when fewer
//! workers are idle, and never multiplexes two runs onto one thread.
//!
//! # Batched bookkeeping
//!
//! All per-batch coordination goes through one `Batch` object, sized so
//! a 16-rank dispatch costs O(1) lock rounds rather than O(n):
//!
//! * A finishing worker takes the batch lock once: it bumps the completion
//!   count and parks its own handle in the batch's `returned` list — it
//!   does **not** touch the global idle pool, and it notifies the (single)
//!   dispatcher only when it is the batch's last completion, so a batch
//!   costs one condvar wake total instead of one `notify_all` per job.
//! * The dispatcher collects the batch (wait for the last completion, take
//!   the returned handles) and then re-registers all of them in **one**
//!   global idle-pool lock round, trimming to `MAX_IDLE_WORKERS` inside
//!   that same critical section. The cap is thus enforced *at
//!   re-registration time*: the idle set can never be observed above the
//!   cap, no matter how batches interleave (the old opportunistic
//!   post-batch `trim_idle` could leave re-registering workers above the
//!   cap indefinitely if no later batch ran).
//!
//! Worker channels are the transport's SPSC queues: a worker's handle is
//! owned by exactly one dispatcher at a time (handed off through the idle
//! or batch mutex), so sends are naturally serialized and skip the MPSC
//! publish protocol.
//!
//! # One broadcast wake per dispatch
//!
//! Idle workers do not park inside their private queue (which would cost
//! the dispatcher one mutex + condvar wake — a futex syscall — *per
//! worker*). Instead they poll their queue with `try_recv` and park on a
//! single process-wide `Roster` condvar. A dispatch then publishes all
//! `n` jobs wake-free, issues one fence, and wakes the whole batch with a
//! single `notify_all` — O(1) syscalls per dispatch instead of O(n). The
//! usual lost-wake argument applies unchanged: a worker re-checks its
//! queue *while holding the roster mutex* before waiting, and the
//! dispatcher takes that same mutex (empty critical section) after
//! publishing, so the worker either sees the job or is already waiting
//! when the broadcast lands. Workers not addressed by a dispatch re-check
//! an empty queue and go back to sleep; the herd is bounded by
//! `MAX_IDLE_WORKERS`.
//!
//! # Scoped jobs
//!
//! Jobs borrow the caller's stack (the SPMD body is `Fn(&mut Ctx) -> R`
//! with no `'static` bound), so `run_scoped` erases their lifetime to
//! hand them to the pool and then **blocks until every delivered job has
//! completed** before returning — the same contract as
//! `std::thread::scope`, with the threads outliving the scope instead of
//! being torn down. The wait is enforced by a drop guard, so it holds
//! even if dispatch itself unwinds mid-batch: the guard lowers the
//! batch's expected count to the number of jobs actually delivered and
//! waits for exactly those.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::Duration;

use crate::transport::{publish_fence, spsc_channel, SpscReceiver, SpscSender};

/// Lock a mutex, tolerating poison. The pool's shared state (idle list,
/// batch bookkeeping) stays consistent across a panic — every critical
/// section is a push/pop or a counter bump — so a panicked rank must not
/// wedge or abort every later dispatch in the process.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A lifetime-erased unit of work.
struct Job(Box<dyn FnOnce() + Send + 'static>);

/// What a worker thread receives on its private channel.
enum Msg {
    /// Execute the job, then report completion into the batch.
    Run(Job, Arc<Batch>),
    /// Leave the pool (idle-set trim); the thread exits.
    Exit,
}

/// Handle to one idle worker thread: the send side of its private queue.
/// Owned by exactly one dispatcher at a time — every transfer goes
/// through the idle-pool or batch mutex, which is what serializes sends
/// on the underlying SPSC channel.
struct Worker {
    tx: SpscSender<Msg>,
}

impl Worker {
    /// Publish a job wake-free. The caller owes the batch one
    /// [`publish_fence`] + [`roster_broadcast`] before blocking on
    /// anything (module docs: one broadcast wake per dispatch).
    fn run_publish(&self, job: Job, batch: Arc<Batch>) {
        // SAFETY: this handle is exclusively owned and handed between
        // dispatchers through mutexes, so sends are never concurrent.
        unsafe {
            self.tx
                .send_publish(Msg::Run(job, batch))
                .unwrap_or_else(|_| panic!("worker thread alive"));
        }
    }

    /// Publish an exit request wake-free; same broadcast debt as
    /// [`Worker::run_publish`].
    fn exit_publish(self) {
        // SAFETY: as for `run_publish`. A worker that somehow vanished
        // already satisfies the trim's goal, so the error is ignored.
        let _ = unsafe { self.tx.send_publish(Msg::Exit) };
    }
}

/// The shared parking spot for every idle worker (module docs): one
/// mutex + condvar pair, so a dispatch wakes its whole batch with a
/// single `notify_all`.
struct Roster {
    gate: Mutex<()>,
    wake: Condvar,
}

static ROSTER: OnceLock<Roster> = OnceLock::new();

fn roster() -> &'static Roster {
    ROSTER.get_or_init(|| Roster {
        gate: Mutex::new(()),
        wake: Condvar::new(),
    })
}

/// Wake every parked worker. The empty critical section is the
/// producer half of the lost-wake handshake: acquiring the gate after
/// publishing guarantees any worker that saw an empty queue under the
/// gate is already in `wait` when the notify lands.
fn roster_broadcast() {
    let r = roster();
    drop(lock_unpoisoned(&r.gate));
    r.wake.notify_all();
}

/// Worker side: next message off the private queue, parking on the
/// shared roster while it is empty. `None` once every sender is gone.
fn next_msg(rx: &SpscReceiver<Msg>) -> Option<Msg> {
    loop {
        match rx.try_recv() {
            Ok(Some(m)) => return Some(m),
            Err(_) => return None,
            Ok(None) => {}
        }
        let r = roster();
        let guard = lock_unpoisoned(&r.gate);
        match rx.try_recv() {
            Ok(Some(m)) => return Some(m),
            Err(_) => return None,
            Ok(None) => {
                // The timeout is belt-and-braces only (it also bounds how
                // long a worker outlives a sender dropped without an
                // explicit Exit, whose disconnect wake targets the
                // queue's own — unused — condvar).
                let (g, _) = r
                    .wake
                    .wait_timeout(guard, Duration::from_millis(5))
                    .unwrap_or_else(PoisonError::into_inner);
                drop(g);
            }
        }
    }
}

/// Idle workers kept after a batch; anything above this is told to exit
/// during re-registration. Dispatches larger than the cap still run (the
/// pool grows to whatever a batch needs) — only the *retained* idle set
/// is bounded.
const MAX_IDLE_WORKERS: usize = 256;

static IDLE: OnceLock<Mutex<Vec<Worker>>> = OnceLock::new();

fn idle() -> &'static Mutex<Vec<Worker>> {
    IDLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Per-batch bookkeeping shared between the dispatcher and its workers.
/// All locking is poison-tolerant — it must stay operational while the
/// very panic it exists to report is unwinding through it.
struct Batch {
    state: Mutex<BatchState>,
    /// Signalled (once, by the batch's last completion) to wake the one
    /// collecting dispatcher.
    done: Condvar,
}

struct BatchState {
    /// Completions the collector is waiting for. Starts at the planned
    /// batch size; the collector lowers it to the *delivered* count if
    /// dispatch unwound mid-batch, so the last actually-delivered job
    /// still produces the wake.
    expected: usize,
    /// Jobs that have finished, by any route.
    completed: usize,
    /// Of those, jobs that finished by *unwinding* — the failure marker.
    panicked: usize,
    /// Handles of the workers that ran this batch, parked here until the
    /// collector re-registers them globally in one lock round.
    returned: Vec<Worker>,
}

impl Batch {
    fn new(expected: usize) -> Arc<Batch> {
        Arc::new(Batch {
            state: Mutex::new(BatchState {
                expected,
                completed: 0,
                panicked: 0,
                returned: Vec::with_capacity(expected),
            }),
            done: Condvar::new(),
        })
    }

    /// Worker side: one lock round reporting completion and parking the
    /// worker's handle; wakes the collector only on the last completion.
    fn complete(&self, worker: Worker, panicked: bool) {
        let mut state = lock_unpoisoned(&self.state);
        state.completed += 1;
        if panicked {
            state.panicked += 1;
        }
        state.returned.push(worker);
        if state.completed >= state.expected {
            // Single waiter (the dispatcher), hence notify_one.
            self.done.notify_one();
        }
    }

    /// Dispatcher side: wait until all `delivered` jobs have completed,
    /// then hand every parked worker back in one global idle-pool lock
    /// round. Returns how many jobs finished by unwinding.
    fn collect(&self, delivered: usize) -> usize {
        let (panicked, returned) = {
            let mut state = lock_unpoisoned(&self.state);
            // Lower the target if dispatch delivered fewer jobs than
            // planned (unwind mid-batch): completions past `delivered`
            // will never come, and the ones at or below it re-check
            // against the lowered value.
            state.expected = delivered;
            while state.completed < delivered {
                state = self
                    .done
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            (state.panicked, std::mem::take(&mut state.returned))
        };
        reregister(returned);
        panicked
    }
}

/// Return a batch's workers to the global idle pool — one lock round for
/// the whole batch — enforcing `MAX_IDLE_WORKERS` inside the same
/// critical section, so the cap holds at every instant.
fn reregister(mut workers: Vec<Worker>) {
    let mut excess = Vec::new();
    {
        let mut pool = lock_unpoisoned(idle());
        pool.append(&mut workers);
        while pool.len() > MAX_IDLE_WORKERS {
            excess.extend(pool.pop());
        }
    }
    // Exit messages go out after the lock is released: publish them all,
    // then one fence + one broadcast for the whole trim.
    if !excess.is_empty() {
        for worker in excess {
            worker.exit_publish();
        }
        publish_fence();
        roster_broadcast();
    }
}

fn spawn_worker() -> Worker {
    let (tx, rx) = spsc_channel::<Msg>();
    let own_tx = tx.clone();
    std::thread::Builder::new()
        .name("spmd-worker".into())
        .spawn(move || {
            // Exits on Msg::Exit or when every sender handle is gone.
            while let Some(Msg::Run(Job(f), batch)) = next_msg(&rx) {
                // Jobs built by `run_scoped` never unwind (they wrap
                // the body in catch_unwind); this outer catch only
                // keeps the worker alive if that invariant is ever
                // broken, and the escape is reported through the
                // batch's panicked count so the dispatcher observes
                // the failed job rather than hanging.
                let panicked = catch_unwind(AssertUnwindSafe(f)).is_err();
                if panicked {
                    eprintln!("spmd-worker: job escaped its panic guard");
                }
                // The job (and everything it borrowed) is dropped by
                // now; parking our handle in the batch is what lets
                // the dispatcher's collect unblock.
                batch.complete(Worker { tx: own_tx.clone() }, panicked);
            }
        })
        .expect("spawn spmd worker thread");
    Worker { tx }
}

/// Number of worker threads currently idle (diagnostics / tests). Never
/// exceeds `MAX_IDLE_WORKERS`: re-registration trims inside the same
/// lock round that pushes.
pub fn idle_workers() -> usize {
    lock_unpoisoned(idle()).len()
}

/// Collects the batch on drop, so the borrows erased by `run_scoped`'s
/// transmute stay alive until every delivered job is done even if
/// dispatch unwinds mid-batch.
struct CollectOnDrop {
    batch: Arc<Batch>,
    delivered: usize,
    armed: bool,
}

impl Drop for CollectOnDrop {
    fn drop(&mut self) {
        if self.armed {
            // Dispatch unwound before the normal fence + broadcast ran,
            // so the jobs delivered so far were published wake-free; pay
            // the wake debt before blocking on their completions.
            publish_fence();
            roster_broadcast();
            self.batch.collect(self.delivered);
        }
    }
}

/// Run `jobs` concurrently — one dedicated worker per job — and return
/// once all of them have finished. Jobs may borrow from the caller's
/// stack; panics inside a job should be contained by the job itself (the
/// runner wraps every rank in `catch_unwind` and reports the failure
/// after the batch completes). A job that unwinds anyway still counts as
/// a completion — with a failure marker — so the batch can never
/// deadlock; the returned count says how many jobs escaped that way (0
/// normally).
pub(crate) fn run_scoped(jobs: Vec<Box<dyn FnOnce() + Send + '_>>) -> usize {
    let n = jobs.len();
    if n == 0 {
        return 0;
    }
    let batch = Batch::new(n);
    let mut guard = CollectOnDrop {
        batch: Arc::clone(&batch),
        delivered: 0,
        armed: true,
    };

    // Reserve one worker per job before dispatching anything: ranks
    // block on each other, so partial dispatch onto too few threads
    // would deadlock. One idle-pool lock round for the whole batch.
    let mut workers = {
        let mut pool = lock_unpoisoned(idle());
        let keep = pool.len() - n.min(pool.len());
        pool.split_off(keep)
    };
    while workers.len() < n {
        workers.push(spawn_worker());
    }
    for (worker, job) in workers.into_iter().zip(jobs) {
        // SAFETY: the transmute only erases the borrow lifetimes inside
        // the job. Each delivered job reports exactly one completion to
        // `batch` (normal return or unwind — the worker's catch_unwind
        // guarantees the loop reaches `complete`), `guard.delivered`
        // counts it, and the guard blocks this frame until that many
        // completions arrive — so everything the job borrows outlives
        // its execution. The worker drops the job before reporting.
        let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
        worker.run_publish(Job(job), Arc::clone(&batch));
        guard.delivered += 1;
    }
    // One fence + one broadcast wakes the whole batch (module docs).
    publish_fence();
    roster_broadcast();
    // Normal path: collect directly so the panicked count is returned;
    // the guard only fires when dispatch itself unwound.
    guard.armed = false;
    batch.collect(guard.delivered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_scope_waits() {
        let hits = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..32)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_scoped(jobs);
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn workers_are_reused_across_batches() {
        // Record which OS threads execute a batch; a later batch reusing
        // any of them proves pooling. Re-registration is *synchronous* —
        // run_scoped returns only after its workers are back in the idle
        // pool — so back-to-back batches reuse threads deterministically.
        // The pool is process-global, though, and a concurrent test can
        // legitimately snatch our workers between the two batches, so
        // absorb that (and only that) with bounded retries — no sleeps.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let batch = |k: usize| -> HashSet<std::thread::ThreadId> {
            let seen = Mutex::new(HashSet::new());
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..k)
                .map(|_| {
                    Box::new(|| {
                        seen.lock().unwrap().insert(std::thread::current().id());
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_scoped(jobs);
            seen.into_inner().unwrap()
        };
        for _attempt in 0..64 {
            let first = batch(8);
            let second = batch(8);
            if first.intersection(&second).next().is_some() {
                return; // at least one worker thread was reused
            }
        }
        panic!("no worker thread was reused across 64 back-to-back batch pairs");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        assert_eq!(run_scoped(Vec::new()), 0);
    }

    #[test]
    fn panicking_job_signals_failure_instead_of_deadlocking() {
        // A raw panicking job escapes the worker's guard; the batch must
        // still complete (no deadlock) and report the escape.
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>,
            Box::new(|| panic!("job exploded")) as Box<dyn FnOnce() + Send + '_>,
            Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>,
        ];
        assert_eq!(run_scoped(jobs), 1);
        // The pool remains fully usable afterwards.
        let hits = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        assert_eq!(run_scoped(jobs), 0);
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn idle_set_is_bounded_after_large_batches() {
        // A batch far above the retention cap must not pin its workers.
        // The cap is enforced inside the re-registration lock round that
        // run_scoped performs before returning, so this asserts
        // immediately — no sleeps, no retries. (Concurrent tests can only
        // *remove* workers or push-and-trim under the same invariant, so
        // the bound holds at every instant.)
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..MAX_IDLE_WORKERS + 40)
            .map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        run_scoped(jobs);
        assert!(
            idle_workers() <= MAX_IDLE_WORKERS,
            "idle workers above the cap after re-registration: {}",
            idle_workers()
        );
    }

    #[test]
    fn nested_dispatch_does_not_deadlock() {
        // A job that itself dispatches a batch must reserve distinct
        // workers (the pool never multiplexes), so nesting completes.
        let hits = AtomicUsize::new(0);
        let outer: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    let inner: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                        .map(|_| {
                            Box::new(|| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    run_scoped(inner);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_scoped(outer);
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }
}
