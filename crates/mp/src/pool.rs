//! Persistent worker pool for the SPMD runner.
//!
//! The seed runner spawned `nprocs` fresh OS threads per [`crate::run_spmd`]
//! call, so benches and services invoking it in a loop paid n×thread-spawn
//! per invocation — more than the archetype body itself for small runs.
//! This pool keeps workers alive across calls: a dispatch hands each rank
//! to an already-running thread through that thread's private channel, and
//! the worker re-registers itself as idle when the rank's body returns.
//!
//! Every rank of an SPMD run *blocks* on receives from its peers, so a
//! batch of `n` ranks needs `n` threads running concurrently — a
//! fixed-size pool with a shared queue would deadlock (queued ranks would
//! wait forever on running ranks that wait on them). Dispatch therefore
//! *reserves* one worker per rank up front, growing the pool when fewer
//! workers are idle, and never multiplexes two runs onto one thread. The
//! idle set is trimmed back to `MAX_IDLE_WORKERS` after each batch, so
//! a one-off huge run does not pin its thread count for the process
//! lifetime.
//!
//! # Scoped jobs
//!
//! Jobs borrow the caller's stack (the SPMD body is `Fn(&mut Ctx) -> R`
//! with no `'static` bound), so `run_scoped` erases their lifetime to
//! hand them to the pool and then **blocks until every dispatched job has
//! signalled completion** before returning — the same contract as
//! `std::thread::scope`, with the threads outliving the scope instead of
//! being torn down. The wait is enforced by a drop guard, so it holds
//! even if dispatch itself unwinds mid-batch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock, PoisonError};

use crossbeam::channel::{unbounded, Sender};

/// Lock a mutex, tolerating poison. The pool's shared state (idle list,
/// completion counts) stays consistent across a panic — every critical
/// section is a push/pop or a counter bump — so a panicked rank must not
/// wedge or abort every later dispatch in the process.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A lifetime-erased unit of work.
struct Job(Box<dyn FnOnce() + Send + 'static>);

/// What a worker thread receives on its private channel.
enum Msg {
    /// Execute the job, then re-register as idle.
    Run(Job),
    /// Leave the pool (idle-trim); the thread exits.
    Exit,
}

/// Handle to one idle worker thread: the send side of its private queue.
struct Worker {
    tx: Sender<Msg>,
}

/// Idle workers kept after a batch; anything above this is told to exit.
/// Dispatches larger than the cap still run (the pool grows to whatever a
/// batch needs) — only the *retained* idle set is bounded.
const MAX_IDLE_WORKERS: usize = 256;

static IDLE: OnceLock<Mutex<Vec<Worker>>> = OnceLock::new();

fn idle() -> &'static Mutex<Vec<Worker>> {
    IDLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Completion bookkeeping shared between the dispatcher and its jobs.
#[derive(Default)]
struct LatchState {
    /// Jobs that have finished, by any route.
    completed: usize,
    /// Of those, jobs that finished by *unwinding* — the failure marker.
    /// The dispatcher's wait returns this count, so a panicked job is a
    /// reported outcome, never a missing completion.
    panicked: usize,
}

/// Count-up latch: completions are signalled as they happen and the
/// dispatcher waits for however many jobs it actually sent. All locking
/// is poison-tolerant — the latch must stay operational while the very
/// panic it exists to report is unwinding through it.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            state: Mutex::new(LatchState::default()),
            done: Condvar::new(),
        }
    }

    fn signal(&self, panicked: bool) {
        let mut state = lock_unpoisoned(&self.state);
        state.completed += 1;
        if panicked {
            state.panicked += 1;
        }
        self.done.notify_all();
    }

    /// Block until `count` jobs have signalled; returns how many of them
    /// signalled from a panic.
    fn wait_for(&self, count: usize) -> usize {
        let mut state = lock_unpoisoned(&self.state);
        while state.completed < count {
            state = self
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.panicked
    }
}

/// Signals the latch when dropped: on normal job completion, when a job
/// unwinds (marked as a failure), and even when an undelivered job is
/// dropped by a failed send — every dispatched job signals exactly once,
/// no matter what, so the dispatcher can never wait forever.
struct SignalOnDrop<'a>(&'a Latch);

impl Drop for SignalOnDrop<'_> {
    fn drop(&mut self) {
        self.0.signal(std::thread::panicking());
    }
}

/// Blocks until every job counted in `sent` has signalled. Runs on drop,
/// so the borrows erased by `run_scoped`'s transmute stay alive until all
/// dispatched jobs are done even if dispatch unwinds mid-batch.
struct WaitForSent<'a> {
    latch: &'a Latch,
    sent: usize,
}

impl Drop for WaitForSent<'_> {
    fn drop(&mut self) {
        self.latch.wait_for(self.sent);
    }
}

fn spawn_worker() -> Worker {
    let (tx, rx) = unbounded::<Msg>();
    let own_tx = tx.clone();
    std::thread::Builder::new()
        .name("spmd-worker".into())
        .spawn(move || {
            while let Ok(Msg::Run(Job(f))) = rx.recv() {
                // Jobs built by `run_scoped` never unwind (they wrap the
                // body in catch_unwind); this outer catch only keeps the
                // worker alive if that invariant is ever broken. The job's
                // completion latch was already notified — with the failure
                // marker set — by its drop guard during the unwind, so the
                // dispatcher observes the failed job rather than hanging.
                if catch_unwind(AssertUnwindSafe(f)).is_err() {
                    eprintln!("spmd-worker: job escaped its panic guard");
                }
                lock_unpoisoned(idle()).push(Worker { tx: own_tx.clone() });
            }
        })
        .expect("spawn spmd worker thread");
    Worker { tx }
}

/// Number of worker threads currently idle (diagnostics / tests).
pub fn idle_workers() -> usize {
    lock_unpoisoned(idle()).len()
}

/// Tell idle workers beyond [`MAX_IDLE_WORKERS`] to exit. Opportunistic:
/// workers still re-registering are trimmed by a later batch instead.
fn trim_idle() {
    let mut excess = Vec::new();
    {
        let mut pool = lock_unpoisoned(idle());
        while pool.len() > MAX_IDLE_WORKERS {
            excess.extend(pool.pop());
        }
    }
    for worker in excess {
        // A worker that somehow vanished already satisfies the goal.
        let _ = worker.tx.send(Msg::Exit);
    }
}

/// Run `jobs` concurrently — one dedicated worker per job — and return
/// once all of them have finished. Jobs may borrow from the caller's
/// stack; panics inside a job should be contained by the job itself (the
/// runner wraps every rank in `catch_unwind` and reports the failure
/// after the batch completes). A job that unwinds anyway still signals
/// completion — with a failure marker — so the batch can never deadlock;
/// the returned count says how many jobs escaped that way (0 normally).
pub(crate) fn run_scoped(jobs: Vec<Box<dyn FnOnce() + Send + '_>>) -> usize {
    let n = jobs.len();
    if n == 0 {
        return 0;
    }
    let latch = Latch::new();
    // Dropped at the end of this function — or during unwinding if
    // anything below panics — and blocks either way until every job
    // counted in `sent` has signalled. This is what makes the lifetime
    // erasure sound: no borrow handed to a worker can outlive this frame.
    let mut scope = WaitForSent {
        latch: &latch,
        sent: 0,
    };

    // Reserve one worker per job before dispatching anything: ranks
    // block on each other, so partial dispatch onto too few threads
    // would deadlock.
    let mut workers = {
        let mut pool = lock_unpoisoned(idle());
        let keep = pool.len() - n.min(pool.len());
        pool.split_off(keep)
    };
    while workers.len() < n {
        workers.push(spawn_worker());
    }
    for (worker, job) in workers.into_iter().zip(jobs) {
        let guard_latch = &latch;
        let wrapped: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let _signal = SignalOnDrop(guard_latch);
            job();
        });
        // SAFETY: the transmute only erases the borrow lifetimes inside
        // the job. Each job signals `latch` exactly once (SignalOnDrop
        // fires on completion, unwind, or undelivered drop), `scope.sent`
        // counts it before the send, and `scope`'s Drop blocks this frame
        // until that many signals arrive — so everything the job borrows
        // outlives its execution. The worker drops the job before
        // re-registering itself.
        let wrapped: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(wrapped) };
        scope.sent += 1;
        worker
            .tx
            .send(Msg::Run(Job(wrapped)))
            .expect("worker thread alive");
    }
    drop(scope); // wait for all dispatched jobs
                 // All `n` completions are in; a second wait just reads the marker.
    let escaped = latch.wait_for(n);
    trim_idle();
    escaped
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_scope_waits() {
        let hits = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..32)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_scoped(jobs);
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn workers_are_reused_across_batches() {
        // Record which OS threads execute a batch; a later batch reusing
        // any of them proves pooling. The pool is process-global and other
        // tests dispatch onto it concurrently, so thread identity — not
        // the global idle count — is the only race-free observable; retry
        // a few times in case a concurrent test snatches our warmed
        // workers between batches.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let batch = |k: usize| -> HashSet<std::thread::ThreadId> {
            let seen = Mutex::new(HashSet::new());
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..k)
                .map(|_| {
                    Box::new(|| {
                        seen.lock().unwrap().insert(std::thread::current().id());
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_scoped(jobs);
            seen.into_inner().unwrap()
        };
        for _attempt in 0..5 {
            let first = batch(8);
            // Workers re-register asynchronously after signalling the
            // latch; give them a moment to return to the idle pool.
            std::thread::sleep(std::time::Duration::from_millis(50));
            let second = batch(8);
            if first.intersection(&second).next().is_some() {
                return; // at least one worker thread was reused
            }
        }
        panic!("no worker thread was reused across five batch pairs");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        assert_eq!(run_scoped(Vec::new()), 0);
    }

    #[test]
    fn panicking_job_signals_failure_instead_of_deadlocking() {
        // A raw panicking job escapes the worker's guard; the batch must
        // still complete (no deadlock) and report the escape.
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>,
            Box::new(|| panic!("job exploded")) as Box<dyn FnOnce() + Send + '_>,
            Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>,
        ];
        assert_eq!(run_scoped(jobs), 1);
        // The pool remains fully usable afterwards.
        let hits = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        assert_eq!(run_scoped(jobs), 0);
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn idle_set_is_bounded_after_large_batches() {
        // A batch far above the retention cap must not pin its workers.
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..MAX_IDLE_WORKERS + 40)
            .map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        run_scoped(jobs);
        // Re-registration is asynchronous; run a small batch afterwards so
        // its trailing trim sees the re-registered workers, then check.
        for _ in 0..10 {
            std::thread::sleep(std::time::Duration::from_millis(20));
            run_scoped(vec![Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>]);
            // Other tests may be holding workers; the bound below is on
            // the retained idle set, which trim_idle enforces.
            if idle_workers() <= MAX_IDLE_WORKERS {
                return;
            }
        }
        panic!(
            "idle workers not trimmed below {MAX_IDLE_WORKERS}: {}",
            idle_workers()
        );
    }
}
