//! Internal wire format of the simulated network.

use std::any::Any;
use std::sync::Arc;

/// The type-erased contents of a [`Packet`].
///
/// Point-to-point sends carry [`PacketBody::Owned`] data — the receiver
/// takes it without copying. Fan-out collectives carry
/// [`PacketBody::Shared`] data, a reference-counted handle to a single
/// allocation that every hop of the collective forwards by refcount; see
/// [`crate::Shared`].
pub enum PacketBody {
    /// Exclusively owned payload, moved to the receiver.
    Owned(Box<dyn Any + Send>),
    /// Reference-counted payload shared across a collective's fan-out.
    Shared(Arc<dyn Any + Send + Sync>),
}

/// A message in flight. The payload is type-erased; [`crate::Ctx::recv`]
/// (or [`crate::Ctx::recv_shared`]) downcasts it back to the concrete type
/// the receiver expects — a type mismatch between matched send/recv pairs
/// is a program bug and panics with a diagnostic.
pub struct Packet {
    /// Sending rank.
    pub from: usize,
    /// Scope id of the sending context ([`crate::Ctx::scoped`]): `0` for
    /// the world, a member-list-derived hash inside a scoped section.
    /// Matching requires scope equality, so traffic from sibling scopes —
    /// even with colliding tags — can never satisfy each other's receives.
    pub scope: u64,
    /// User- or collective-assigned tag used for matching.
    pub tag: u64,
    /// Payload size in bytes, as reported by [`crate::Payload::size_bytes`].
    pub bytes: usize,
    /// Virtual time at which the message is fully available at the receiver.
    pub arrival_time: f64,
    /// The type-erased payload.
    pub body: PacketBody,
}

impl std::fmt::Debug for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Packet")
            .field("from", &self.from)
            .field("scope", &self.scope)
            .field("tag", &self.tag)
            .field("bytes", &self.bytes)
            .field("arrival_time", &self.arrival_time)
            .field(
                "body",
                &match self.body {
                    PacketBody::Owned(_) => "Owned(..)",
                    PacketBody::Shared(_) => "Shared(..)",
                },
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_roundtrips_owned_payload_through_any() {
        let p = Packet {
            from: 3,
            scope: 0,
            tag: 7,
            bytes: 24,
            arrival_time: 1.5,
            body: PacketBody::Owned(Box::new(vec![1i64, 2, 3])),
        };
        let PacketBody::Owned(b) = p.body else {
            panic!("expected owned body");
        };
        let v = b.downcast::<Vec<i64>>().expect("type should match");
        assert_eq!(*v, vec![1, 2, 3]);
    }

    #[test]
    fn packet_roundtrips_shared_payload_through_any() {
        let arc: Arc<dyn std::any::Any + Send + Sync> = Arc::new(vec![9u32, 8]);
        let p = Packet {
            from: 0,
            scope: 0,
            tag: 1,
            bytes: 8,
            arrival_time: 0.0,
            body: PacketBody::Shared(arc),
        };
        let PacketBody::Shared(a) = p.body else {
            panic!("expected shared body");
        };
        let v = a.downcast::<Vec<u32>>().expect("type should match");
        assert_eq!(*v, vec![9, 8]);
    }

    #[test]
    fn debug_format_mentions_sender_and_tag() {
        let p = Packet {
            from: 1,
            scope: 0,
            tag: 42,
            bytes: 0,
            arrival_time: 0.0,
            body: PacketBody::Owned(Box::new(())),
        };
        let s = format!("{p:?}");
        assert!(s.contains("from: 1") && s.contains("tag: 42"));
    }
}
