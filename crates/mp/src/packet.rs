//! Internal wire format of the simulated network.

use std::any::Any;

/// A message in flight. The payload is type-erased; [`crate::Ctx::recv`]
/// downcasts it back to the concrete type the receiver expects — a type
/// mismatch between matched send/recv pairs is a program bug and panics
/// with a diagnostic.
pub struct Packet {
    /// Sending rank.
    pub from: usize,
    /// User- or collective-assigned tag used for matching.
    pub tag: u64,
    /// Payload size in bytes, as reported by [`crate::Payload::size_bytes`].
    pub bytes: usize,
    /// Virtual time at which the message is fully available at the receiver.
    pub arrival_time: f64,
    /// The type-erased payload.
    pub payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Packet")
            .field("from", &self.from)
            .field("tag", &self.tag)
            .field("bytes", &self.bytes)
            .field("arrival_time", &self.arrival_time)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_roundtrips_payload_through_any() {
        let p = Packet {
            from: 3,
            tag: 7,
            bytes: 24,
            arrival_time: 1.5,
            payload: Box::new(vec![1i64, 2, 3]),
        };
        let v = p.payload.downcast::<Vec<i64>>().expect("type should match");
        assert_eq!(*v, vec![1, 2, 3]);
    }

    #[test]
    fn debug_format_mentions_sender_and_tag() {
        let p = Packet {
            from: 1,
            tag: 42,
            bytes: 0,
            arrival_time: 0.0,
            payload: Box::new(()),
        };
        let s = format!("{p:?}");
        assert!(s.contains("from: 1") && s.contains("tag: 42"));
    }
}
